//! Compiler soundness property: for randomly generated loop programs —
//! including ones with genuine cross-iteration dependences — whatever
//! the compiler chooses to parallelize must execute (on real threads,
//! under the race checker) to exactly the serial result.
//!
//! This is the dynamic validation of the whole static pipeline: if the
//! dependence test, privatization, reduction recognition, or induction
//! substitution ever lies, this test fails with a race or a numeric
//! mismatch.

use apar_minicheck::{forall, Rng};
use autopar::core::{Compiler, CompilerProfile};
use autopar::runtime::{run, ExecConfig, ExecMode};

/// One generated loop body statement:
/// `A(I*scale + off) = B(I + off2) * k + A(I*scale2 + off3)` shapes.
#[derive(Clone, Debug)]
struct GLine {
    write_arr: bool, // A or B
    wscale: i8,      // 1 or 2
    woff: i8,        // -2..=2
    read_arr: bool,
    roff: i8,
    k: i8,
    reduce: bool, // instead: S = S + ...
}

fn gline(rng: &mut Rng) -> GLine {
    GLine {
        write_arr: rng.bool(),
        wscale: rng.int_in(1, 2) as i8,
        woff: rng.int_in(-2, 2) as i8,
        read_arr: rng.bool(),
        roff: rng.int_in(-2, 2) as i8,
        k: rng.int_in(1, 3) as i8,
        reduce: rng.weighted(0.2),
    }
}

fn arr(b: bool) -> &'static str {
    if b {
        "A"
    } else {
        "B"
    }
}

fn render(lines: &[GLine], trip: u8) -> String {
    let mut s = String::from(
        "PROGRAM RAND\n  REAL A(400), B(400)\n  DO I = 1, 400\n    A(I) = REAL(I) * 0.25\n    B(I) = REAL(I) * 0.5 - 7.0\n  ENDDO\n  S = 0.0\n!$TARGET RANDLOOP\n",
    );
    // Offsets keep subscripts in [1, 400] for I in [3, trip+2].
    s.push_str(&format!("  DO I = 3, {}\n", trip as i64 + 2));
    for l in lines {
        if l.reduce {
            s.push_str(&format!(
                "    S = S + {}(I + {}) * {}.0\n",
                arr(l.read_arr),
                fmt(l.roff),
                l.k
            ));
        } else {
            s.push_str(&format!(
                "    {}(I * {} + {}) = {}(I + {}) * {}.0 + 1.0\n",
                arr(l.write_arr),
                l.wscale,
                fmt(l.woff),
                arr(l.read_arr),
                fmt(l.roff),
                l.k
            ));
        }
    }
    s.push_str("  ENDDO\n  CK = S\n  DO I = 1, 400\n    CK = CK + A(I) - B(I) * 0.5\n  ENDDO\n  WRITE(*,*) 'CK', CK\n  WRITE(*,*) 'S', S\nEND\n");
    s
}

fn fmt(v: i8) -> String {
    if v < 0 {
        format!("({})", v)
    } else {
        v.to_string()
    }
}

#[test]
fn parallelized_loops_match_serial() {
    forall("parallelized_loops_match_serial", 24, |rng| {
        let lines = rng.vec_of(1, 4, gline);
        let trip = rng.int_in(50, 149) as u8;
        let src = render(&lines, trip);
        for profile in [CompilerProfile::polaris2008(), CompilerProfile::full()] {
            let name = profile.name.clone();
            let r = Compiler::new(profile)
                .compile_source("rand", &src)
                .unwrap_or_else(|e| panic!("compile failed: {}\n{}", e, src));
            let serial = run(&r.rp, &[], &ExecConfig::default())
                .unwrap_or_else(|e| panic!("serial failed: {}\n{}", e, src));
            let auto = run(
                &r.rp,
                &[],
                &ExecConfig {
                    mode: ExecMode::Auto,
                    threads: 4,
                    check_races: true,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| {
                panic!("parallel run failed ({}): {}\n{}", name, e, src)
            });
            // Compare numerically (reduction reassociation tolerance).
            let nums = |out: &[String]| -> Vec<f64> {
                out.iter()
                    .flat_map(|l| l.split_whitespace())
                    .filter_map(|t| t.parse::<f64>().ok())
                    .collect()
            };
            let (a, b) = (nums(&serial.output), nums(&auto.output));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() <= 1e-6 * (1.0 + x.abs()),
                    "{} vs {} under {}\n{}",
                    x,
                    y,
                    name,
                    src
                );
            }
        }
    });
}

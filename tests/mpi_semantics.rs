//! Semantics of the message-passing substrate (ranks as threads,
//! per-pair channels, generation-counted collectives): point-to-point
//! ordering, tag matching, allreduce, allgather, barrier, and the
//! virtual-clock costs that make Figure 1's MPI bars meaningful.

use autopar::minifort::frontend;
use autopar::runtime::{run_mpi, run_mpi_cfg, ExecConfig, RtError, RunResult};

fn mpi(src: &str, ranks: usize) -> RunResult {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    run_mpi(&rp, &[], ranks, 1 << 18).unwrap_or_else(|e| panic!("{}", e))
}

fn mpi_err(src: &str, ranks: usize) -> RtError {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    match run_mpi(&rp, &[], ranks, 1 << 18) {
        Ok(r) => panic!("expected error, got output {:?}", r.output),
        Err(e) => e,
    }
}

/// Like `mpi_err` but with a short deadlock timeout so tests that rely
/// on the detector (rather than a finished peer) stay fast.
fn mpi_err_quick(src: &str, ranks: usize) -> RtError {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    let cfg = ExecConfig {
        seg_words: 1 << 18,
        mpi_timeout_ms: 250,
        ..Default::default()
    };
    match run_mpi_cfg(&rp, &[], ranks, &cfg) {
        Ok(r) => panic!("expected error, got output {:?}", r.output),
        Err(e) => e,
    }
}

#[test]
fn rank_identity_and_count() {
    // Only rank 0's output is reported; it knows its id and the world.
    let out = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  CALL MPNPROC(NP)
  IF (ME .EQ. 0) THEN
    WRITE(*,*) 'ID', ME, NP
  ENDIF
END
",
        4,
    );
    assert_eq!(out.output, vec!["ID 0 4".to_string()]);
}

#[test]
fn point_to_point_roundtrip() {
    // Rank 1 doubles what rank 0 sends and returns it.
    let out = mpi(
        "PROGRAM P
  REAL A(8)
  CALL MPMYID(ME)
  IF (ME .EQ. 0) THEN
    DO I = 1, 8
      A(I) = REAL(I)
    ENDDO
    CALL MPSEND(A, 1, 8, 1, 7)
    CALL MPRECV(A, 1, 8, 1, 8)
    WRITE(*,*) 'GOT', A(1), A(8)
  ENDIF
  IF (ME .EQ. 1) THEN
    CALL MPRECV(A, 1, 8, 0, 7)
    DO I = 1, 8
      A(I) = A(I) * 2.0
    ENDDO
    CALL MPSEND(A, 1, 8, 0, 8)
  ENDIF
END
",
        2,
    );
    assert_eq!(out.output, vec!["GOT 2.000000 16.000000".to_string()]);
}

#[test]
fn messages_from_one_sender_arrive_in_order() {
    let out = mpi(
        "PROGRAM P
  REAL A(1), B(1)
  CALL MPMYID(ME)
  IF (ME .EQ. 1) THEN
    A(1) = 1.0
    CALL MPSEND(A, 1, 1, 0, 5)
    A(1) = 2.0
    CALL MPSEND(A, 1, 1, 0, 5)
  ENDIF
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 5)
    CALL MPRECV(B, 1, 1, 1, 5)
    WRITE(*,*) 'ORD', A(1), B(1)
  ENDIF
END
",
        2,
    );
    assert_eq!(out.output, vec!["ORD 1.000000 2.000000".to_string()]);
}

#[test]
fn tag_mismatch_reports_deadlock_not_hang() {
    // Rank 1 sends tag 5 and finishes; rank 0 waits on tag 6 forever.
    // The run must terminate with a deadlock diagnostic naming the
    // blocked rank, the wanted tag, and the undelivered one — never
    // hang or silently match the wrong message.
    let e = mpi_err(
        "PROGRAM P
  REAL A(1)
  CALL MPMYID(ME)
  IF (ME .EQ. 1) THEN
    A(1) = 1.0
    CALL MPSEND(A, 1, 1, 0, 5)
  ENDIF
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 6)
  ENDIF
END
",
        2,
    );
    assert!(matches!(e, RtError::Deadlock(_)), "{}", e);
    let msg = format!("{}", e);
    assert!(msg.contains("rank 0"), "{}", msg);
    assert!(msg.contains("tag=6"), "{}", msg);
    assert!(msg.contains('5'), "undelivered tag should be named: {}", msg);
}

#[test]
fn mutual_recv_deadlock_names_both_ranks() {
    // Both ranks block on a receive no one will send: the classic
    // head-to-head deadlock. The detector (timeout path, both ranks
    // still alive) must fire within the configured timeout and name
    // each blocked rank with its wait.
    let start = std::time::Instant::now();
    let e = mpi_err_quick(
        "PROGRAM P
  REAL A(1)
  CALL MPMYID(ME)
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 7)
  ENDIF
  IF (ME .EQ. 1) THEN
    CALL MPRECV(A, 1, 1, 0, 8)
  ENDIF
END
",
        2,
    );
    assert!(matches!(e, RtError::Deadlock(_)), "{}", e);
    let msg = format!("{}", e);
    assert!(msg.contains("rank 0") && msg.contains("rank 1"), "{}", msg);
    assert!(msg.contains("MPRECV"), "{}", msg);
    assert!(msg.contains("tag=7") && msg.contains("tag=8"), "{}", msg);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "deadlock detection must not hang"
    );
}

#[test]
fn collective_missing_rank_reports_deadlock() {
    // Rank 1 skips the reduction: rank 0 waits at the collective while
    // rank 1 finishes. Must terminate with a diagnostic, not hang.
    let e = mpi_err_quick(
        "PROGRAM P
  CALL MPMYID(ME)
  X = 1.0
  IF (ME .EQ. 0) THEN
    CALL MPREDS(X)
  ENDIF
END
",
        2,
    );
    assert!(matches!(e, RtError::Deadlock(_)), "{}", e);
    let msg = format!("{}", e);
    assert!(msg.contains("MPREDS"), "{}", msg);
    assert!(msg.contains("rank 0"), "{}", msg);
}

#[test]
fn zero_length_send_and_recv_complete() {
    // A zero-count message is a pure synchronization token: it must
    // match and complete, moving no data.
    let out = mpi(
        "PROGRAM P
  REAL A(4)
  CALL MPMYID(ME)
  A(1) = 3.0
  IF (ME .EQ. 1) THEN
    CALL MPSEND(A, 1, 0, 0, 5)
  ENDIF
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 0, 1, 5)
    WRITE(*,*) 'ZLEN', A(1)
  ENDIF
END
",
        2,
    );
    // The receive must not clobber A despite the matched message.
    assert_eq!(out.output, vec!["ZLEN 3.000000".to_string()]);
}

#[test]
fn zero_length_allgather_completes() {
    // Every rank contributes an empty slice; the collective still has
    // to synchronize all ranks and leave the array untouched.
    let out = mpi(
        "PROGRAM P
  REAL A(8)
  CALL MPMYID(ME)
  A(1) = 7.0
  CALL MPALLG(A, 1, 0)
  IF (ME .EQ. 0) THEN
    WRITE(*,*) 'ZAG', A(1)
  ENDIF
END
",
        4,
    );
    assert_eq!(out.output, vec!["ZAG 7.000000".to_string()]);
}

#[test]
fn self_send_is_delivered() {
    // A rank sending to itself must see the message on its own queue —
    // not deadlock waiting for a peer.
    let out = mpi(
        "PROGRAM P
  REAL A(2), B(2)
  CALL MPMYID(ME)
  IF (ME .EQ. 0) THEN
    A(1) = 5.0
    A(2) = 6.0
    CALL MPSEND(A, 1, 2, 0, 3)
    CALL MPRECV(B, 1, 2, 0, 3)
    WRITE(*,*) 'SELF', B(1), B(2)
  ENDIF
END
",
        2,
    );
    assert_eq!(out.output, vec!["SELF 5.000000 6.000000".to_string()]);
}

#[test]
fn send_to_invalid_rank_traps() {
    let e = mpi_err(
        "PROGRAM P
  REAL A(1)
  A(1) = 1.0
  CALL MPSEND(A, 1, 1, 9, 5)
END
",
        2,
    );
    assert!(format!("{}", e).contains("MPSEND"), "{}", e);
}

#[test]
fn allreduce_sums_across_ranks() {
    // Each rank contributes (rank+1): 1+2+3+4 = 10.
    let out = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  X = REAL(ME + 1)
  CALL MPREDS(X)
  IF (ME .EQ. 0) THEN
    WRITE(*,*) 'RED', X
  ENDIF
END
",
        4,
    );
    assert_eq!(out.output, vec!["RED 10.000000".to_string()]);
}

#[test]
fn consecutive_allreduces_do_not_bleed() {
    // Generation counting: a second reduction must start fresh.
    let out = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  X = 1.0
  CALL MPREDS(X)
  Y = REAL(ME)
  CALL MPREDS(Y)
  IF (ME .EQ. 0) THEN
    WRITE(*,*) 'TWO', X, Y
  ENDIF
END
",
        4,
    );
    assert_eq!(out.output, vec!["TWO 4.000000 6.000000".to_string()]);
}

#[test]
fn allgather_distributes_every_slice() {
    // Rank r fills its slice with r+1; after MPALLG all ranks hold the
    // full vector. Verified on rank 0.
    let out = mpi(
        "PROGRAM P
  REAL A(8)
  CALL MPMYID(ME)
  CALL MPNPROC(NP)
  N = 8 / NP
  DO I = 1, N
    A(ME * N + I) = REAL(ME + 1)
  ENDDO
  CALL MPALLG(A, ME * N + 1, N)
  IF (ME .EQ. 0) THEN
    S = 0.0
    DO I = 1, 8
      S = S + A(I) * REAL(I)
    ENDDO
    WRITE(*,*) 'AG', S
  ENDIF
END
",
        4,
    );
    // A = [1,1,2,2,3,3,4,4]; sum A(i)*i = 1+2+6+8+15+18+28+32 = 110.
    assert_eq!(out.output, vec!["AG 110.000000".to_string()]);
}

#[test]
fn barrier_orders_epochs() {
    // Without the barrier rank 1 could read X before rank 0's send
    // completes; the explicit protocol plus barrier must always give
    // the post-epoch value. (The barrier itself is exercised; the
    // correctness signal is deterministic output.)
    let out = mpi(
        "PROGRAM P
  REAL A(1)
  CALL MPMYID(ME)
  CALL MPBAR()
  IF (ME .EQ. 0) THEN
    A(1) = 41.0
    CALL MPSEND(A, 1, 1, 1, 1)
  ENDIF
  IF (ME .EQ. 1) THEN
    CALL MPRECV(A, 1, 1, 0, 1)
    A(1) = A(1) + 1.0
    CALL MPSEND(A, 1, 1, 0, 2)
  ENDIF
  CALL MPBAR()
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 2)
    WRITE(*,*) 'BAR', A(1)
  ENDIF
END
",
        2,
    );
    assert_eq!(out.output, vec!["BAR 42.000000".to_string()]);
}

#[test]
fn virtual_clock_charges_messages() {
    // The same computation with and without a message exchange: the
    // messaging version must cost more virtual time (latency + words),
    // and an N-rank run reports the slowest rank plus startup.
    let no_msg = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  X = 1.0
  IF (ME .EQ. 0) THEN
    WRITE(*,*) X
  ENDIF
END
",
        2,
    );
    let with_msg = mpi(
        "PROGRAM P
  REAL A(64)
  CALL MPMYID(ME)
  IF (ME .EQ. 0) THEN
    A(1) = 1.0
    CALL MPSEND(A, 1, 64, 1, 1)
  ENDIF
  IF (ME .EQ. 1) THEN
    CALL MPRECV(A, 1, 64, 0, 1)
  ENDIF
  IF (ME .EQ. 0) THEN
    WRITE(*,*) A(1)
  ENDIF
END
",
        2,
    );
    assert!(
        with_msg.virt > no_msg.virt + 2_000,
        "message must cost latency: {} vs {}",
        with_msg.virt,
        no_msg.virt
    );
}

#[test]
fn message_timestamps_propagate_to_receiver_clock() {
    // Rank 0 does heavy local work, then sends to rank 1. Rank 1's
    // receive cannot complete before the sender's virtual time — so
    // the reported (max-rank) virtual time reflects the dependency
    // chain, not just each rank's local ops.
    let chained = mpi(
        "PROGRAM P
  REAL A(4), W(2048)
  CALL MPMYID(ME)
  IF (ME .EQ. 0) THEN
    DO I = 1, 2048
      W(I) = REAL(I) * 1.5 + REAL(I) * REAL(I)
    ENDDO
    A(1) = W(2048)
    CALL MPSEND(A, 1, 4, 1, 3)
  ENDIF
  IF (ME .EQ. 1) THEN
    CALL MPRECV(A, 1, 4, 0, 3)
    WRITE(*,*) A(1)
  ENDIF
END
",
        2,
    );
    // Rank 1 alone does almost nothing; if timestamps did not
    // propagate, total virt would be near the startup floor.
    assert!(
        chained.virt > 20_000,
        "receiver clock must include sender's work: {}",
        chained.virt
    );
}

#[test]
fn repeated_collectives_stay_in_lockstep() {
    // 20 generations of allreduce inside a loop: any generation-counter
    // slip would desynchronize the ranks or double-count a round.
    let out = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  S = 0.0
  DO K = 1, 20
    X = REAL(ME + K)
    CALL MPREDS(X)
    S = S + X
  ENDDO
  IF (ME .EQ. 0) THEN
    WRITE(*,*) 'LOCK', S
  ENDIF
END
",
        4,
    );
    // Round k: sum over ranks of (rank + k) = 6 + 4k; total over k=1..20
    // = 120 + 4*210 = 960.
    assert_eq!(out.output, vec!["LOCK 960.000000".to_string()]);
}

#[test]
fn mixed_collectives_and_messages_interleave() {
    // Barrier / reduce / point-to-point in one program — the shapes the
    // SEISMIC MPI pipelines chain together.
    let out = mpi(
        "PROGRAM P
  REAL A(4)
  CALL MPMYID(ME)
  CALL MPNPROC(NP)
  X = REAL(ME + 1)
  CALL MPREDS(X)
  CALL MPBAR()
  IF (ME .EQ. 1) THEN
    A(1) = X * 10.0
    CALL MPSEND(A, 1, 1, 0, 9)
  ENDIF
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 9)
    WRITE(*,*) 'MIX', X, A(1)
  ENDIF
END
",
        4,
    );
    assert_eq!(out.output, vec!["MIX 10.000000 100.000000".to_string()]);
}

#[test]
fn single_rank_world_works() {
    let out = mpi(
        "PROGRAM P
  CALL MPMYID(ME)
  CALL MPNPROC(NP)
  X = REAL(ME + NP)
  CALL MPREDS(X)
  WRITE(*,*) 'ONE', X
END
",
        1,
    );
    assert_eq!(out.output, vec!["ONE 1.000000".to_string()]);
}

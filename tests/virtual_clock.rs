//! Properties of the deterministic virtual-time model that Figure 1 is
//! built on: determinism across real-thread schedules, speedup for
//! independent work, fork/join overhead drowning tiny loops, and
//! monotonicity in trip count.

use apar_minicheck::forall;
use autopar::minifort::frontend;
use autopar::runtime::{
    run, ExecConfig, ExecMode, RunResult, FORK_REGION_COST, FORK_THREAD_COST,
};

fn exec(src: &str, mode: ExecMode, threads: usize) -> RunResult {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    run(
        &rp,
        &[],
        &ExecConfig {
            mode,
            threads,
            check_races: true,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}\n{}", e, src))
}

fn wide_loop(trip: u32) -> String {
    format!(
        "PROGRAM VC
  REAL A({trip}), B({trip})
  DO I = 1, {trip}
    B(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, {trip}
    A(I) = B(I) * 2.0 + B(I) * B(I) - 1.0 + B(I) / 3.0
  ENDDO
  WRITE(*,*) A({trip})
END
"
    )
}

#[test]
fn virtual_time_is_deterministic_across_schedules() {
    // Real threads race over chunks, but virtual time is a pure
    // function of the program: 10 repeat runs must agree exactly.
    let src = wide_loop(4000);
    let base = exec(&src, ExecMode::Manual, 4).virt;
    for _ in 0..9 {
        assert_eq!(exec(&src, ExecMode::Manual, 4).virt, base);
    }
}

#[test]
fn independent_work_speeds_up_with_threads() {
    let src = wide_loop(20_000);
    let t1 = exec(&src, ExecMode::Manual, 1).virt;
    let t2 = exec(&src, ExecMode::Manual, 2).virt;
    let t4 = exec(&src, ExecMode::Manual, 4).virt;
    // The init loop and I/O stay serial, so expect Amdahl-limited but
    // clearly increasing speedups, never above the thread count.
    let s2 = t1 as f64 / t2 as f64;
    let s4 = t1 as f64 / t4 as f64;
    assert!(s2 > 1.35 && s2 <= 2.0, "2-thread speedup {}", s2);
    assert!(s4 > s2 && s4 <= 4.0, "4-thread speedup {}", s4);
}

#[test]
fn serial_and_parallel_virt_agree_outside_regions() {
    // Serial execution of the same program costs at least as much as
    // the 4-thread run minus overhead, and the parallel run is never
    // cheaper than serial/threads (no free lunch).
    let src = wide_loop(20_000);
    let ser = exec(&src, ExecMode::Serial, 1);
    let par = exec(&src, ExecMode::Manual, 4);
    assert_eq!(ser.regions, 0);
    assert_eq!(par.regions, 1);
    assert!(par.virt < ser.virt);
    assert!(par.virt as f64 > ser.virt as f64 / 4.0);
}

#[test]
fn fork_overhead_makes_tiny_regions_lose() {
    // A region whose body is one statement over 4 iterations can never
    // amortize FORK_REGION_COST + 4 * FORK_THREAD_COST: parallel virt
    // must exceed serial virt. This is the Figure-1 Polaris mechanism.
    let src = "PROGRAM VC2
  REAL A(1000), B(1000)
  DO I = 1, 1000
    B(I) = REAL(I)
  ENDDO
  DO K = 1, 200
!$OMP PARALLEL DO
    DO I = 1, 4
      A(I) = B(I) + REAL(K)
    ENDDO
  ENDDO
  WRITE(*,*) A(4)
END
";
    let ser = exec(src, ExecMode::Serial, 1);
    let par = exec(src, ExecMode::Manual, 4);
    assert_eq!(par.regions, 200);
    assert!(
        par.virt > ser.virt,
        "tiny regions must lose: par {} vs ser {}",
        par.virt,
        ser.virt
    );
    // The slowdown is at least the modeled fork bill for 200 regions
    // minus what the 4-wide body could possibly save.
    let bill = 200 * (FORK_REGION_COST + 4 * FORK_THREAD_COST);
    assert!(par.virt - ser.virt > bill / 2);
}

#[test]
fn forks_counter_matches_regions_times_threads() {
    let src = wide_loop(256);
    let par = exec(&src, ExecMode::Manual, 4);
    assert_eq!(par.regions, 1);
    assert_eq!(par.forks, 4);
}

#[test]
fn virt_seconds_conversion_is_linear() {
    let src = wide_loop(256);
    let r = exec(&src, ExecMode::Serial, 1);
    let s = r.virt_seconds();
    assert!(s > 0.0);
    assert!((s * 25_000_000.0 - r.virt as f64).abs() < 1.0);
}

/// Virtual time grows strictly with trip count (serial), and the
/// parallel run of independent work never beats serial/threads.
#[test]
fn virt_monotone_in_trip() {
    forall("virt_monotone_in_trip", 16, |rng| {
        let a = rng.int_in(100, 1999) as u32;
        let b = rng.int_in(2001, 7999) as u32;
        let ra = exec(&wide_loop(a), ExecMode::Serial, 1);
        let rb = exec(&wide_loop(b), ExecMode::Serial, 1);
        assert!(ra.virt < rb.virt);
        let pa = exec(&wide_loop(b), ExecMode::Manual, 4);
        assert!(pa.virt as f64 >= rb.virt as f64 / 4.0);
    });
}

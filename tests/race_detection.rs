//! Failure-injection tests for the dynamic race checker.
//!
//! The soundness argument for the whole pipeline rests on the checker
//! actually *catching* bad parallelizations, so these tests feed it
//! hand-annotated `!$OMP PARALLEL DO` directives that are wrong on
//! purpose and assert the run aborts with a race — and that the
//! correctly-annotated twins pass.

use autopar::minifort::frontend;
use autopar::runtime::{run, ExecConfig, ExecMode, RtError};

fn manual(threads: usize) -> ExecConfig {
    ExecConfig {
        mode: ExecMode::Manual,
        threads,
        check_races: true,
        ..Default::default()
    }
}

fn run_manual(src: &str) -> Result<Vec<String>, RtError> {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    run(&rp, &[], &manual(4)).map(|r| r.output)
}

fn assert_race(src: &str) {
    match run_manual(src) {
        Err(RtError::Race(_)) => {}
        Err(e) => panic!("expected a race, got different error: {}", e),
        Ok(out) => panic!("expected a race, run succeeded: {:?}", out),
    }
}

#[test]
fn loop_carried_flow_dependence_is_caught() {
    assert_race(
        "PROGRAM RC1
  REAL A(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 99
    A(I + 1) = A(I) + 1.0
  ENDDO
  WRITE(*,*) A(100)
END
",
    );
}

#[test]
fn independent_twin_of_flow_dependence_passes() {
    let out = run_manual(
        "PROGRAM RC2
  REAL A(100), B(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 99
    B(I + 1) = A(I) + 1.0
  ENDDO
  WRITE(*,*) B(100)
END
",
    )
    .expect("independent loop must not race");
    assert_eq!(out, vec!["100.000000".to_string()]);
}

#[test]
fn unguarded_reduction_scalar_is_caught() {
    assert_race(
        "PROGRAM RC3
  REAL A(64)
  DO I = 1, 64
    A(I) = 1.0
  ENDDO
  S = 0.0
!$OMP PARALLEL DO
  DO I = 1, 64
    S = S + A(I)
  ENDDO
  WRITE(*,*) S
END
",
    );
}

#[test]
fn declared_reduction_scalar_passes() {
    let out = run_manual(
        "PROGRAM RC4
  REAL A(64)
  DO I = 1, 64
    A(I) = 1.0
  ENDDO
  S = 0.0
!$OMP PARALLEL DO REDUCTION(+:S)
  DO I = 1, 64
    S = S + A(I)
  ENDDO
  WRITE(*,*) S
END
",
    )
    .expect("declared reduction must not race");
    assert_eq!(out, vec!["64.000000".to_string()]);
}

#[test]
fn shared_temporary_scalar_is_caught() {
    assert_race(
        "PROGRAM RC5
  REAL A(64), B(64)
  DO I = 1, 64
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 64
    T = A(I) * 2.0
    B(I) = T + 1.0
  ENDDO
  WRITE(*,*) B(64)
END
",
    );
}

#[test]
fn privatized_temporary_scalar_passes() {
    let out = run_manual(
        "PROGRAM RC6
  REAL A(64), B(64)
  DO I = 1, 64
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO PRIVATE(T)
  DO I = 1, 64
    T = A(I) * 2.0
    B(I) = T + 1.0
  ENDDO
  WRITE(*,*) B(64)
END
",
    )
    .expect("privatized temporary must not race");
    assert_eq!(out, vec!["129.000000".to_string()]);
}

#[test]
fn antidependence_across_chunks_is_caught() {
    // A(I) = A(I+1): iteration i reads the cell iteration i+1 writes.
    // Within one chunk the accesses are ordered; across the chunk
    // boundary they race.
    assert_race(
        "PROGRAM RC7
  REAL A(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 99
    A(I) = A(I + 1)
  ENDDO
  WRITE(*,*) A(1)
END
",
    );
}

#[test]
fn write_write_collision_through_gather_is_caught() {
    // Indirection that maps two iterations to the same cell.
    assert_race(
        "PROGRAM RC8
  REAL A(64)
  INTEGER IX(64)
  DO I = 1, 64
    A(I) = 0.0
    IX(I) = MOD(I, 8) + 1
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 64
    A(IX(I)) = REAL(I)
  ENDDO
  WRITE(*,*) A(1)
END
",
    );
}

#[test]
fn permutation_gather_passes() {
    let out = run_manual(
        "PROGRAM RC9
  REAL A(64), B(64)
  INTEGER IX(64)
  DO I = 1, 64
    B(I) = REAL(I)
    IX(I) = 65 - I
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 64
    A(IX(I)) = B(I)
  ENDDO
  WRITE(*,*) A(64)
END
",
    )
    .expect("permutation scatter must not race");
    assert_eq!(out, vec!["1.000000".to_string()]);
}

#[test]
fn race_not_reported_when_checker_disabled_serially() {
    // With the checker on but the loop run serially, no race fires even
    // for the dependent loop — the checker only inspects cross-worker
    // overlap.
    let rp = frontend(
        "PROGRAM RC10
  REAL A(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 99
    A(I + 1) = A(I) + 1.0
  ENDDO
  WRITE(*,*) A(100)
END
",
    )
    .unwrap();
    let r = run(
        &rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Serial,
            check_races: true,
            ..Default::default()
        },
    )
    .expect("serial run never races");
    assert_eq!(r.output, vec!["100.000000".to_string()]);
    assert_eq!(r.regions, 0);
}

#[test]
fn single_thread_parallel_region_never_races() {
    // One worker = no cross-worker pair = no race, even for the
    // dependent loop. (And the answer is the serial one.)
    let out = {
        let rp = frontend(
            "PROGRAM RC11
  REAL A(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 99
    A(I + 1) = A(I) + 1.0
  ENDDO
  WRITE(*,*) A(100)
END
",
        )
        .unwrap();
        run(&rp, &[], &manual(1)).expect("1-thread run").output
    };
    assert_eq!(out, vec!["100.000000".to_string()]);
}

//! The GAMESS and SANDER mimics are real programs: they execute, their
//! multifunctionality dispatch reacts to the deck, and the compiler-
//! parallelized versions reproduce the serial numbers under the race
//! checker.

use autopar::core::{Compiler, CompilerProfile};
use autopar::minifort::frontend;
use autopar::runtime::{run, DeckVal, ExecConfig, ExecMode};
use autopar::workloads::{DataSize, DeckValue, Workload};

fn deck(w: &Workload) -> Vec<DeckVal> {
    w.deck
        .iter()
        .map(|d| match d {
            DeckValue::Int(v) => DeckVal::Int(*v),
            DeckValue::Real(v) => DeckVal::Real(*v),
        })
        .collect()
}

fn serial(w: &Workload) -> Vec<String> {
    let rp = frontend(&w.source).expect("frontend");
    run(
        &rp,
        &deck(w),
        &ExecConfig {
            seg_words: 1 << 21,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: {}", w.name, e))
    .output
}

#[test]
fn gamess_executes_and_prints_energy() {
    let w = autopar::workloads::gamess::suite(DataSize::Test);
    let out = serial(&w);
    let energy = out
        .iter()
        .find(|l| l.starts_with("ENERGY"))
        .expect("energy line");
    let v: f64 = energy.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(v.is_finite());
}

#[test]
fn gamess_dispatch_reacts_to_wavefunction_choice() {
    // Different SCFTYP decks run different code paths; the shared X is
    // used differently, so the energy differs.
    let w = autopar::workloads::gamess::suite(DataSize::Test);
    let mut energies = Vec::new();
    for scftyp in [1i64, 2, 4, 5] {
        let rp = frontend(&w.source).expect("frontend");
        let mut d = deck(&w);
        d[0] = DeckVal::Int(scftyp);
        let out = run(
            &rp,
            &d,
            &ExecConfig {
                seg_words: 1 << 21,
                ..Default::default()
            },
        )
        .expect("run")
        .output;
        let e: f64 = out
            .iter()
            .find(|l| l.starts_with("ENERGY"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|t| t.parse().ok())
            .expect("energy");
        energies.push(e);
    }
    assert!(
        energies.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12),
        "all wavefunctions produced identical energies: {:?}",
        energies
    );
}

#[test]
fn gamess_auto_parallel_matches_serial() {
    let w = autopar::workloads::gamess::suite(DataSize::Test);
    let reference = serial(&w);
    for profile in [CompilerProfile::polaris2008(), CompilerProfile::full()] {
        let name = profile.name.clone();
        let r = Compiler::new(profile)
            .compile_source(&w.name, &w.source)
            .expect("compile");
        let out = run(
            &r.rp,
            &deck(&w),
            &ExecConfig {
                mode: ExecMode::Auto,
                check_races: true,
                seg_words: 1 << 21,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("auto({}): {}", name, e));
        assert_eq!(reference, out.output, "profile {}", name);
    }
}

#[test]
fn sander_md_vs_minimization_dispatch() {
    let w = autopar::workloads::sander::suite(DataSize::Test);
    // IMIN = 0: molecular dynamics (prints EK); IMIN = 1: minimization.
    let md = serial(&w);
    assert!(md.iter().any(|l| l.starts_with("EK")));
    let rp = frontend(&w.source).expect("frontend");
    let mut d = deck(&w);
    d[0] = DeckVal::Int(1);
    let min = run(
        &rp,
        &d,
        &ExecConfig {
            seg_words: 1 << 21,
            ..Default::default()
        },
    )
    .expect("run")
    .output;
    assert!(!min.iter().any(|l| l.starts_with("EK")), "{:?}", min);
    assert!(min.iter().any(|l| l.starts_with("EP")));
}

#[test]
fn sander_auto_parallel_matches_serial() {
    let w = autopar::workloads::sander::suite(DataSize::Test);
    let reference = serial(&w);
    let r = Compiler::new(CompilerProfile::full())
        .compile_source(&w.name, &w.source)
        .expect("compile");
    let out = run(
        &r.rp,
        &deck(&w),
        &ExecConfig {
            mode: ExecMode::Auto,
            check_races: true,
            seg_words: 1 << 21,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}", e));
    // Reductions reassociate; compare numerically.
    assert_eq!(reference.len(), out.output.len());
    for (a, b) in reference.iter().zip(&out.output) {
        let pa: Vec<&str> = a.split_whitespace().collect();
        let pb: Vec<&str> = b.split_whitespace().collect();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            match (x.parse::<f64>(), y.parse::<f64>()) {
                (Ok(u), Ok(v)) => assert!(
                    (u - v).abs() <= 1e-6 * (1.0 + u.abs()),
                    "{} vs {}",
                    a,
                    b
                ),
                _ => assert_eq!(x, y),
            }
        }
    }
}

#[test]
fn perfect_and_linpack_execute() {
    for w in autopar::workloads::perfect::codes() {
        let out = serial(&w);
        assert!(!out.is_empty(), "{} produced no output", w.name);
    }
    let out = serial(&autopar::workloads::linpack::suite());
    // The LU solve of the diagonally dominant system is well-behaved.
    let v: f64 = out
        .last()
        .and_then(|l| l.split_whitespace().last())
        .and_then(|t| t.parse().ok())
        .expect("norm");
    assert!(v.is_finite() && v > 0.0);
}

//! Fault-tolerant execution: injected speculation conflicts must roll
//! back to bit-identical serial semantics with the rollback billed to
//! the virtual clock; injected worker panics and rank kills must come
//! back as structured errors, never escaped panics or hangs.

use apar_minicheck::forall;
use autopar::core::{CompileResult, Compiler, CompilerProfile};
use autopar::minifort::frontend;
use autopar::runtime::{
    run, run_mpi_cfg, ExecConfig, ExecMode, FaultPlan, MsgPat, RtError, RunResult,
};

/// Independent gather through an index array: clean data, so only an
/// injected conflict can make the speculative region roll back.
fn gather_src() -> String {
    "PROGRAM SPEC
  REAL A(2048), B(2048)
  INTEGER IX(2048)
  READ(*,*) N
  DO I = 1, 2048
    B(I) = REAL(I) * 0.5
    IX(I) = 2049 - I
  ENDDO
!$TARGET GUPD
  DO I = 1, 2048
    A(IX(I)) = B(I) * 2.0 + 1.0 + B(I) * B(I) * 0.25
  ENDDO
  S = 0.0
  DO I = 1, 2048
    S = S + A(I) * REAL(N)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
    .to_string()
}

fn compile_spec(src: &str) -> CompileResult {
    Compiler::new(CompilerProfile::polaris2008().with_runtime_test())
        .compile_source("spec", src)
        .unwrap_or_else(|e| panic!("{}", e))
}

fn deck() -> Vec<autopar::runtime::DeckVal> {
    vec![autopar::runtime::DeckVal::Int(3)]
}

fn exec(r: &CompileResult, mode: ExecMode, fault: FaultPlan) -> RunResult {
    run(
        &r.rp,
        &deck(),
        &ExecConfig {
            mode,
            threads: 4,
            fault,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}", e))
}

#[test]
fn forced_conflict_rolls_back_bit_identical_to_serial() {
    let r = compile_spec(&gather_src());
    let ser = exec(&r, ExecMode::Serial, FaultPlan::none());
    let forced = exec(&r, ExecMode::Auto, FaultPlan::none().force_conflict());
    assert_eq!(
        ser.output, forced.output,
        "rollback must restore exact serial semantics"
    );
    assert_eq!(forced.speculations, 0, "forced conflict must not commit");
    assert_eq!(forced.rollbacks, 1);
}

#[test]
fn rollback_cost_lands_on_the_virtual_clock() {
    // The same program, clean vs forced: the rollback pays for the
    // checkpoint, the wasted parallel attempt, the restore, and the
    // serial re-execution — so forced virtual time must be strictly
    // larger, and deterministically so.
    let r = compile_spec(&gather_src());
    let clean = exec(&r, ExecMode::Auto, FaultPlan::none());
    let forced = exec(&r, ExecMode::Auto, FaultPlan::none().force_conflict());
    assert_eq!(clean.rollbacks, 0);
    assert_eq!(forced.rollbacks, 1);
    assert!(
        forced.virt > clean.virt,
        "rollback must cost virtual time: forced {} vs clean {}",
        forced.virt,
        clean.virt
    );
    // Determinism: repeat runs agree exactly despite real threads.
    for _ in 0..3 {
        let again = exec(&r, ExecMode::Auto, FaultPlan::none().force_conflict());
        assert_eq!(again.virt, forced.virt);
        assert_eq!(again.output, forced.output);
    }
}

#[test]
fn worker_panic_is_contained_as_structured_error() {
    // A statically parallel region with an injected panic in worker 2:
    // the panic must surface as RtError::WorkerPanic with provenance,
    // not abort the process or poison unrelated state.
    let src = "PROGRAM P
  REAL A(512), B(512)
  DO I = 1, 512
    B(I) = REAL(I)
  ENDDO
!$OMP PARALLEL DO
  DO I = 1, 512
    A(I) = B(I) * 2.0
  ENDDO
  WRITE(*,*) A(512)
END
";
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    let err = run(
        &rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Manual,
            threads: 4,
            fault: FaultPlan::none().panic_worker(2),
            ..Default::default()
        },
    )
    .expect_err("injected worker panic must fail the run");
    match err {
        RtError::WorkerPanic { worker, ref message, .. } => {
            assert_eq!(worker, 2);
            assert!(message.contains("injected"), "{}", message);
        }
        other => panic!("expected WorkerPanic, got {}", other),
    }
}

#[test]
fn killed_rank_surfaces_as_rank_killed() {
    // Rank 1 dies at its first MP operation; the world must terminate
    // with the root cause (RankKilled), not the follow-on deadlock the
    // surviving ranks observe.
    let src = "PROGRAM P
  CALL MPMYID(ME)
  X = REAL(ME + 1)
  CALL MPREDS(X)
  IF (ME .EQ. 0) THEN
    WRITE(*,*) X
  ENDIF
END
";
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    let cfg = ExecConfig {
        seg_words: 1 << 18,
        mpi_timeout_ms: 250,
        fault: FaultPlan::none().kill_rank(1, 0),
        ..Default::default()
    };
    let err = run_mpi_cfg(&rp, &[], 4, &cfg).expect_err("killed rank must fail the world");
    match err {
        RtError::RankKilled { rank } => assert_eq!(rank, 1),
        other => panic!("expected RankKilled, got {}", other),
    }
}

#[test]
fn dropped_message_becomes_deadlock_not_hang() {
    // The fault plan silently loses the only message: the receiver must
    // report a deadlock naming its wait within the timeout.
    let src = "PROGRAM P
  REAL A(1)
  CALL MPMYID(ME)
  IF (ME .EQ. 1) THEN
    A(1) = 1.0
    CALL MPSEND(A, 1, 1, 0, 5)
  ENDIF
  IF (ME .EQ. 0) THEN
    CALL MPRECV(A, 1, 1, 1, 5)
  ENDIF
END
";
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    let cfg = ExecConfig {
        seg_words: 1 << 18,
        mpi_timeout_ms: 250,
        fault: FaultPlan::none().drop_message(MsgPat::any().with_tag(5)),
        ..Default::default()
    };
    let err = run_mpi_cfg(&rp, &[], 2, &cfg).expect_err("lost message must not hang");
    assert!(matches!(err, RtError::Deadlock(_)), "{}", err);
    let msg = format!("{}", err);
    assert!(msg.contains("rank 0") && msg.contains("tag=5"), "{}", msg);
}

/// Rollback determinism property: whatever the index data, a forced
/// conflict must land the speculative region back on the exact serial
/// output, and the virtual clock of the forced run is a pure function
/// of the program (identical across repeats on real threads).
#[test]
fn forced_rollback_always_matches_serial() {
    forall("forced_rollback_always_matches_serial", 12, |rng| {
        let mul = rng.int_in(1, 15);
        let add = rng.int_in(0, 63);
        let md = rng.int_in(1, 255);
        let trip = rng.int_in(32, 255);
        let src = format!(
            "PROGRAM SP
  REAL A(512), B(512)
  INTEGER IX(512)
  DO I = 1, 512
    A(I) = REAL(I) * 0.125
    B(I) = REAL(I) * 0.5
    IX(I) = MOD(I * {mul} + {add}, {md}) + 1
  ENDDO
!$TARGET GUPD
  DO I = 1, {trip}
    A(IX(I)) = B(I) * 2.0 + A(IX(I)) * 0.25
  ENDDO
  S = 0.0
  DO I = 1, 512
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
        );
        let r = Compiler::new(CompilerProfile::polaris2008().with_runtime_test())
            .compile_source("sp", &src)
            .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        let ser = run(&r.rp, &[], &ExecConfig::default())
            .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        let forced_cfg = ExecConfig {
            mode: ExecMode::Auto,
            threads: 4,
            fault: FaultPlan::none().force_conflict(),
            ..Default::default()
        };
        let f1 = run(&r.rp, &[], &forced_cfg).unwrap_or_else(|e| panic!("{}\n{}", e, src));
        assert_eq!(&ser.output, &f1.output, "\n{}", src);
        assert_eq!(f1.speculations, 0);
        assert!(f1.rollbacks >= 1);
        let f2 = run(&r.rp, &[], &forced_cfg).unwrap_or_else(|e| panic!("{}\n{}", e, src));
        assert_eq!(f1.virt, f2.virt, "forced rollback virt must be deterministic");
    });
}

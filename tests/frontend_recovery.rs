//! Front-end recovery, end-to-end: truncated, garbled, and mutated
//! real-suite sources must compile to diagnostics — never a panic —
//! and damage localized to one unit must leave every other unit's
//! loop classifications untouched.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use apar_core::{Classification, CompileResult, Compiler, CompilerProfile};
use apar_minicheck::mutate::mutate;
use apar_minicheck::{Rng, BASE_SEED};
use apar_workloads as wl;

fn compile_recovering(name: &str, src: &str) -> CompileResult {
    Compiler::new(CompilerProfile::polaris2008()).compile_source_recovering(name, src)
}

/// Map of (unit, stmt) → classification for cross-run comparison.
fn by_loop(r: &CompileResult) -> HashMap<(String, String), Classification> {
    r.loops
        .iter()
        .map(|l| ((l.unit.clone(), format!("{:?}", l.stmt)), l.classification))
        .collect()
}

#[test]
fn truncated_seismic_compiles_with_diagnostics() {
    let w = wl::seismic::full_suite(wl::DataSize::Test, wl::Variant::Serial);
    // Cut the source mid-statement at several depths; every prefix must
    // compile to a report, with the tail's loss showing up as
    // diagnostics or dropped units rather than a panic.
    for frac in [30, 55, 80, 95] {
        let cut = w.source.len() * frac / 100;
        let cut = (0..=cut)
            .rev()
            .find(|&i| w.source.is_char_boundary(i))
            .unwrap();
        let src = &w.source[..cut];
        let r = compile_recovering(&w.name, src);
        assert!(
            !r.report.diags.is_empty() || r.report.units > 0,
            "truncation at {}% produced neither units nor diagnostics",
            frac
        );
    }
}

#[test]
fn garbled_gamess_unit_leaves_others_identical() {
    let w = wl::gamess::suite(wl::DataSize::Test);
    let clean = Compiler::new(CompilerProfile::polaris2008())
        .compile_source(&w.name, &w.source)
        .expect("clean compile");

    // Garble the interior of ONE subroutine: find its header line and
    // damage the line after it.
    let lines: Vec<&str> = w.source.lines().collect();
    let sub_line = lines
        .iter()
        .position(|l| l.trim_start().starts_with("SUBROUTINE"))
        .expect("gamess has subroutines");
    let victim_unit = lines[sub_line]
        .trim_start()
        .trim_start_matches("SUBROUTINE")
        .trim()
        .split('(')
        .next()
        .unwrap()
        .to_string();
    let mut damaged = lines.clone();
    let junk = "X = = 'oops";
    damaged.insert(sub_line + 1, junk);
    let src = damaged.join("\n") + "\n";

    let r = compile_recovering(&w.name, &src);
    assert!(
        !r.report.diags.is_empty(),
        "garbled statement must surface as a diagnostic"
    );

    // Loops in every unit other than the victim classify identically.
    let clean_map = by_loop(&clean);
    let mut compared = 0;
    for l in &r.loops {
        if l.unit == victim_unit {
            continue;
        }
        if let Some(c) = clean_map.get(&(l.unit.clone(), format!("{:?}", l.stmt))) {
            assert_eq!(
                *c, l.classification,
                "{}:{:?} changed classification after unrelated damage",
                l.unit, l.stmt
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "no unaffected loops compared");
}

#[test]
fn mutated_suites_never_panic_and_stay_thread_invariant() {
    let suites = [
        wl::seismic::full_suite(wl::DataSize::Test, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Test),
        wl::sander::suite(wl::DataSize::Test),
    ];
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (si, w) in suites.iter().enumerate() {
        for round in 0..6u64 {
            let mut rng = Rng::new(BASE_SEED ^ (si as u64) << 32 ^ round);
            let src = mutate(&mut rng, &w.source, 3);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let serial = compile_recovering(&w.name, &src);
                let parallel = Compiler::new(CompilerProfile::polaris2008().with_threads(4))
                    .compile_source_recovering(&w.name, &src);
                (by_loop(&serial), by_loop(&parallel))
            }));
            let (s, p) = match outcome {
                Ok(maps) => maps,
                Err(_) => panic!(
                    "mutant of {} (round {}) escaped the recovering frontend:\n{}",
                    w.name, round, src
                ),
            };
            assert_eq!(
                s, p,
                "mutant of {} (round {}) diverged across thread counts",
                w.name, round
            );
        }
    }
    std::panic::set_hook(prev);
}

#[test]
fn recovering_mode_matches_strict_on_clean_suites() {
    for w in [
        wl::seismic::full_suite(wl::DataSize::Test, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Test),
        wl::sander::suite(wl::DataSize::Test),
    ] {
        let strict = Compiler::new(CompilerProfile::polaris2008())
            .compile_source(&w.name, &w.source)
            .expect("strict compile");
        let rec = compile_recovering(&w.name, &w.source);
        assert!(
            rec.report.diags.is_empty(),
            "{}: spurious diagnostics",
            w.name
        );
        assert!(rec.report.dropped_units.is_empty());
        assert_eq!(
            by_loop(&strict),
            by_loop(&rec),
            "{}: reports differ",
            w.name
        );
    }
}

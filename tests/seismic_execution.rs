//! End-to-end: every SEISMIC component produces the same numbers under
//! all four program versions of Figure 1 — serial, hand-OpenMP,
//! compiler-parallelized (both profiles), and hand-MPI — with the
//! parallel runs under the dynamic race checker.

use autopar::core::{Compiler, CompilerProfile};
use autopar::minifort::frontend;
use autopar::runtime::{run, run_mpi, DeckVal, ExecConfig, ExecMode};
use autopar::workloads::seismic::{component, Component};
use autopar::workloads::{DataSize, Variant, Workload};

fn deck(w: &Workload) -> Vec<DeckVal> {
    w.deck
        .iter()
        .map(|d| match d {
            autopar::workloads::DeckValue::Int(v) => DeckVal::Int(*v),
            autopar::workloads::DeckValue::Real(v) => DeckVal::Real(*v),
        })
        .collect()
}

/// Extracts the numeric tokens of checksum lines.
fn checksums(out: &[String]) -> Vec<f64> {
    out.iter()
        .flat_map(|l| l.split_whitespace())
        .filter_map(|t| t.parse::<f64>().ok())
        .collect()
}

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

fn run_component(c: Component) {
    let seg = 1 << 21;
    // Serial reference.
    let serial_w = component(c, DataSize::Test, Variant::Serial);
    let rp = frontend(&serial_w.source).expect("frontend");
    let serial = run(
        &rp,
        &deck(&serial_w),
        &ExecConfig {
            mode: ExecMode::Serial,
            seg_words: seg,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{:?} serial: {}", c, e));
    let reference = checksums(&serial.output);
    assert!(!reference.is_empty(), "{:?}: no checksums", c);

    // Hand-OpenMP, race-checked.
    let omp_w = component(c, DataSize::Test, Variant::OpenMp);
    let rp_omp = frontend(&omp_w.source).expect("frontend omp");
    let omp = run(
        &rp_omp,
        &deck(&omp_w),
        &ExecConfig {
            mode: ExecMode::Manual,
            check_races: true,
            seg_words: seg,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{:?} omp: {}", c, e));
    assert!(
        close(&reference, &checksums(&omp.output), 1e-6),
        "{:?} omp mismatch:\n serial={:?}\n omp={:?}",
        c,
        serial.output,
        omp.output
    );
    assert!(omp.regions > 0, "{:?}: OpenMP forked nothing", c);

    // Compiler-parallelized (baseline and full), race-checked.
    for profile in [CompilerProfile::polaris2008(), CompilerProfile::full()] {
        let name = profile.name.clone();
        let compiled = Compiler::new(profile)
            .compile_source(&serial_w.name, &serial_w.source)
            .unwrap_or_else(|e| panic!("{:?} compile: {}", c, e));
        let auto = run(
            &compiled.rp,
            &deck(&serial_w),
            &ExecConfig {
                mode: ExecMode::Auto,
                check_races: true,
                seg_words: seg,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{:?} auto({}): {}", c, name, e));
        assert!(
            close(&reference, &checksums(&auto.output), 1e-6),
            "{:?} auto({}) mismatch:\n serial={:?}\n auto={:?}",
            c,
            name,
            serial.output,
            auto.output
        );
    }

    // Hand-MPI on 4 ranks (checksum only — the MPI programs print the
    // reduced energy/sum lines).
    let mpi_w = component(c, DataSize::Test, Variant::Mpi);
    let rp_mpi = frontend(&mpi_w.source).expect("frontend mpi");
    let mpi = run_mpi(&rp_mpi, &deck(&mpi_w), 4, seg)
        .unwrap_or_else(|e| panic!("{:?} mpi: {}", c, e));
    assert!(
        !checksums(&mpi.output).is_empty(),
        "{:?} mpi produced no checksums",
        c
    );
}

#[test]
fn datagen_all_versions_agree() {
    run_component(Component::DataGen);
}

#[test]
fn stack_all_versions_agree() {
    run_component(Component::Stack);
}

#[test]
fn fft3d_all_versions_agree() {
    run_component(Component::Fft3d);
}

#[test]
fn findiff_all_versions_agree() {
    run_component(Component::FinDiff);
}

/// The MPI versions compute the same physics: compare the finite
/// difference energy between serial and MPI (identical decomposition-
/// independent result).
#[test]
fn findiff_mpi_matches_serial_energy() {
    let seg = 1 << 21;
    let w = component(Component::FinDiff, DataSize::Test, Variant::Serial);
    let rp = frontend(&w.source).unwrap();
    let serial = run(
        &rp,
        &deck(&w),
        &ExecConfig {
            seg_words: seg,
            ..Default::default()
        },
    )
    .unwrap();
    // Serial prints "FDE <energy>" via SEISOUT.
    let serial_e: f64 = serial
        .output
        .iter()
        .find(|l| l.starts_with("FDE"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|t| t.parse().ok())
        .expect("serial energy");
    let mw = component(Component::FinDiff, DataSize::Test, Variant::Mpi);
    let rp_m = frontend(&mw.source).unwrap();
    let mpi = run_mpi(&rp_m, &deck(&mw), 4, seg).unwrap();
    let mpi_e: f64 = mpi
        .output
        .iter()
        .find(|l| l.starts_with("FDE"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|t| t.parse().ok())
        .expect("mpi energy");
    assert!(
        (serial_e - mpi_e).abs() <= 1e-6 * (1.0 + serial_e.abs()),
        "serial {} vs mpi {}",
        serial_e,
        mpi_e
    );
}

//! Cross-validation: the native Rust kernels and the interpreted
//! MiniFort modules compute the same numbers (same formulas, same
//! operation order), tying the two execution substrates together.

use autopar::kernels::{datagen, fft, findiff, SeisParams, Strategy};
use autopar::minifort::frontend;
use autopar::runtime::{run, DeckVal, ExecConfig};
use autopar::workloads::seismic::{component, component_params, Component};
use autopar::workloads::{DataSize, Variant, Workload};

fn deck(w: &Workload) -> Vec<DeckVal> {
    w.deck
        .iter()
        .map(|d| match d {
            autopar::workloads::DeckValue::Int(v) => DeckVal::Int(*v),
            autopar::workloads::DeckValue::Real(v) => DeckVal::Real(*v),
        })
        .collect()
}

fn interpreted_line(c: Component, prefix: &str) -> f64 {
    let w = component(c, DataSize::Test, Variant::Serial);
    let rp = frontend(&w.source).expect("frontend");
    let r = run(
        &rp,
        &deck(&w),
        &ExecConfig {
            seg_words: 1 << 21,
            ..Default::default()
        },
    )
    .expect("run");
    r.output
        .iter()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no '{}' line in {:?}", prefix, r.output))
}

fn native_params(c: Component) -> SeisParams {
    let p = component_params(c, DataSize::Test);
    SeisParams {
        ngath: p.ngath as usize,
        nfold: p.nfold as usize,
        nsamp: p.nsamp as usize,
        nx: p.nx as usize,
        ny: p.ny as usize,
        nt: p.nt as usize,
        ntime: p.ntime as usize,
        dt: 0.002,
        dx: 10.0,
        velo: 2000.0,
    }
}

#[test]
fn datagen_checksum_matches_native() {
    let p = native_params(Component::DataGen);
    let mut otra = datagen::generate(&p, Strategy::Serial);
    // Pad to cover the QC window region before applying the passes.
    otra.resize(p.ntrc() * p.nsamp + 4 * p.nsamp, 0.0);
    datagen::apply_qc(&p, &mut otra);
    let native = datagen::checksum(&otra[..p.ntrc() * p.nsamp]);
    let interp = interpreted_line(Component::DataGen, "CWRITE");
    assert!(
        (native - interp).abs() < 1e-6 * (1.0 + native.abs()),
        "native {} vs interpreted {}",
        native,
        interp
    );
}

#[test]
fn fft_checksum_matches_native() {
    let p = native_params(Component::Fft3d);
    let ra = fft::m3fk(&p, Strategy::Serial);
    let native = datagen::checksum(&ra);
    let interp = interpreted_line(Component::Fft3d, "CWRITE");
    assert!(
        (native - interp).abs() < 1e-6 * (1.0 + native.abs()),
        "native {} vs interpreted {}",
        native,
        interp
    );
}

#[test]
fn findiff_energy_matches_native() {
    let p = native_params(Component::FinDiff);
    let (_, native) = findiff::propagate(&p, Strategy::Serial);
    let interp = interpreted_line(Component::FinDiff, "FDE");
    assert!(
        (native - interp).abs() < 1e-6 * (1.0 + native.abs()),
        "native {} vs interpreted {}",
        native,
        interp
    );
}

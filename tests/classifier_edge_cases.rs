//! Pointed end-to-end classifier tests: tiny programs, each isolating
//! one corner of the dependence machinery (GCD strides, triangular
//! bounds, zero-trip loops, negative steps, EQUIVALENCE aliasing,
//! min/max reductions), compiled with the full profile and — where the
//! loop is parallelized — executed serial vs. auto under the race
//! checker.

use autopar::core::{Classification as C, Compiler, CompilerProfile};
use autopar::runtime::{run, ExecConfig, ExecMode};

fn compile(src: &str) -> autopar::core::CompileResult {
    Compiler::new(CompilerProfile::full())
        .compile_source("edge", src)
        .unwrap_or_else(|e| panic!("compile failed: {}\n{}", e, src))
}

fn classify(src: &str, target: &str) -> (C, bool) {
    let r = compile(src);
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some(target))
        .unwrap_or_else(|| panic!("no target {} in\n{}", target, src));
    (l.classification, l.parallelized)
}

/// Serial and auto-parallel runs of the compiled program agree.
fn check_exec(src: &str) {
    let r = compile(src);
    let ser = run(&r.rp, &[], &ExecConfig::default()).expect("serial");
    let par = run(
        &r.rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Auto,
            threads: 4,
            check_races: true,
            ..Default::default()
        },
    )
    .expect("auto run");
    assert_eq!(ser.output, par.output, "serial vs auto mismatch\n{}", src);
}

#[test]
fn disjoint_gcd_strides_parallelize() {
    // Writes touch even cells, reads odd cells: the GCD/range machinery
    // must prove independence.
    let src = "PROGRAM G1
  REAL A(200)
  DO I = 1, 200
    A(I) = REAL(I)
  ENDDO
!$TARGET EVENODD
  DO I = 1, 99
    A(2 * I) = A(2 * I + 1) * 2.0
  ENDDO
  WRITE(*,*) A(100)
END
";
    let (c, par) = classify(src, "EVENODD");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn overlapping_strides_stay_serial() {
    // A(2I) written, A(I) read: iterations collide (e.g. I=2 reads the
    // cell I=1 wrote).
    let src = "PROGRAM G2
  REAL A(200)
  DO I = 1, 200
    A(I) = REAL(I)
  ENDDO
!$TARGET COLLIDE
  DO I = 1, 99
    A(2 * I) = A(I) + 1.0
  ENDDO
  WRITE(*,*) A(100)
END
";
    let (c, par) = classify(src, "COLLIDE");
    assert_ne!(c, C::Autoparallelized);
    assert!(!par);
}

#[test]
fn triangular_nest_parallelizes_outer() {
    // Row I writes A(I, 1..I): disjoint rows, triangular inner bound.
    let src = "PROGRAM G3
  REAL A(64, 64)
!$TARGET TRI
  DO I = 1, 64
    DO J = 1, I
      A(I, J) = REAL(I * 64 + J)
    ENDDO
  ENDDO
  WRITE(*,*) A(64, 64)
END
";
    let (c, par) = classify(src, "TRI");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn zero_trip_loop_is_harmless() {
    // DO I = 5, 1 never executes; the surrounding program must still
    // compile, and a parallel region over it must not misbehave.
    let src = "PROGRAM G4
  REAL A(10)
  DO I = 1, 10
    A(I) = 1.0
  ENDDO
!$TARGET ZTRIP
  DO I = 5, 1
    A(I) = 99.0
  ENDDO
  WRITE(*,*) A(1)
END
";
    compile(src);
    check_exec(src);
}

#[test]
fn negative_step_copy_parallelizes() {
    let src = "PROGRAM G5
  REAL A(100), B(100)
  DO I = 1, 100
    B(I) = REAL(I)
  ENDDO
!$TARGET NSTEP
  DO I = 100, 1, -1
    A(I) = B(I) * 3.0
  ENDDO
  WRITE(*,*) A(1)
END
";
    let (c, par) = classify(src, "NSTEP");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn equivalence_overlap_blocks() {
    // X and Y share storage through EQUIVALENCE: writing X(I) while
    // reading Y(I+1) is a real dependence through the overlay.
    let src = "PROGRAM G6
  REAL X(100), Y(100)
  EQUIVALENCE (X(1), Y(1))
  DO I = 1, 100
    X(I) = REAL(I)
  ENDDO
!$TARGET EQOV
  DO I = 1, 99
    X(I) = Y(I + 1) * 0.5
  ENDDO
  WRITE(*,*) X(1)
END
";
    let (c, par) = classify(src, "EQOV");
    assert_ne!(c, C::Autoparallelized);
    assert!(!par);
}

#[test]
fn min_reduction_is_recognized() {
    let src = "PROGRAM G7
  REAL A(128)
  DO I = 1, 128
    A(I) = REAL(MOD(I * 37, 101))
  ENDDO
  S = 1.0E9
!$TARGET RMIN
  DO I = 1, 128
    S = MIN(S, A(I))
  ENDDO
  WRITE(*,*) S
END
";
    let (c, par) = classify(src, "RMIN");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn max_reduction_is_recognized() {
    let src = "PROGRAM G8
  REAL A(128)
  DO I = 1, 128
    A(I) = REAL(MOD(I * 37, 101))
  ENDDO
  S = -1.0E9
!$TARGET RMAX
  DO I = 1, 128
    S = MAX(S, A(I))
  ENDDO
  WRITE(*,*) S
END
";
    let (c, par) = classify(src, "RMAX");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn scalar_recurrence_stays_serial() {
    let src = "PROGRAM G9
  REAL A(100)
  X = 1.0
!$TARGET SREC
  DO I = 1, 100
    X = X * 0.5 + REAL(I)
    A(I) = X
  ENDDO
  WRITE(*,*) A(100)
END
";
    let (c, par) = classify(src, "SREC");
    assert_ne!(c, C::Autoparallelized);
    assert!(!par);
}

#[test]
fn wraparound_read_blocks() {
    // First iteration reads A(100) (last cell), the rest read A(I-1):
    // classic wraparound; must not parallelize.
    let src = "PROGRAM G10
  REAL A(100), B(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
!$TARGET WRAP
  DO I = 2, 100
    A(I) = A(I - 1) + 1.0
  ENDDO
  WRITE(*,*) A(100)
END
";
    let (c, par) = classify(src, "WRAP");
    assert_ne!(c, C::Autoparallelized);
    assert!(!par);
}

#[test]
fn crossing_diagonal_pair_blocks() {
    // A(I) = A(N+1-I): iterations i and N+1-i exchange cells — the
    // range test must not be fooled by the monotone-decreasing read.
    let src = "PROGRAM G11
  REAL A(101)
  DO I = 1, 101
    A(I) = REAL(I)
  ENDDO
!$TARGET XDIAG
  DO I = 1, 100
    A(I) = A(101 - I) * 2.0
  ENDDO
  WRITE(*,*) A(1)
END
";
    let (c, par) = classify(src, "XDIAG");
    assert_ne!(c, C::Autoparallelized);
    assert!(!par);
}

#[test]
fn first_private_style_read_only_scalar_is_fine() {
    // K is read-only inside the loop: no privatization needed, no race.
    let src = "PROGRAM G12
  REAL A(100)
  K = 7
!$TARGET ROSC
  DO I = 1, 100
    A(I) = REAL(I + K)
  ENDDO
  WRITE(*,*) A(100)
END
";
    let (c, par) = classify(src, "ROSC");
    assert_eq!(c, C::Autoparallelized);
    assert!(par);
    check_exec(src);
}

#[test]
fn lastprivate_scalar_value_survives_loop() {
    // T is assigned every iteration and read after the loop: runtime
    // lastprivate must hand back the final iteration's value.
    let src = "PROGRAM G13
  REAL A(100)
  DO I = 1, 100
    A(I) = REAL(I)
  ENDDO
  T = 0.0
!$TARGET LPRIV
  DO I = 1, 100
    T = A(I) * 2.0
    A(I) = T + 1.0
  ENDDO
  WRITE(*,*) T
END
";
    let r = compile(src);
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some("LPRIV"))
        .unwrap();
    if l.parallelized {
        check_exec(src);
    }
    // Whether or not the compiler chose to parallelize, the serial
    // answer is fixed:
    let ser = run(&r.rp, &[], &ExecConfig::default()).expect("serial");
    assert_eq!(ser.output, vec!["200.000000".to_string()]);
}

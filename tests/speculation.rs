//! The speculative runtime dependence test
//! (`CompilerProfile::with_runtime_test`): loops that static analysis
//! must leave serial — gathers through unknown index arrays, bounds
//! from the input deck — run in parallel under a runtime conflict
//! check, rolling back to serial when the data turns out dependent.
//!
//! This is the reproduction's implementation of the runtime techniques
//! the paper's conclusion calls for beyond static analysis.

use apar_minicheck::forall;
use autopar::core::{Classification as C, CompileResult, Compiler, CompilerProfile};
use autopar::runtime::{run, ExecConfig, ExecMode, RunResult};

/// Gather-update through an index array the compiler cannot see
/// through. `COLLIDE = 0` fills IX with a permutation (independent);
/// `COLLIDE = 1` folds everything onto eight cells (dependent).
fn gather_src(collide: i64) -> String {
    format!(
        "PROGRAM SPEC
  REAL A(4096), B(4096)
  INTEGER IX(4096)
  DO I = 1, 4096
    B(I) = REAL(I) * 0.5
    IF ({collide} .EQ. 1) THEN
      IX(I) = MOD(I, 8) + 1
    ELSE
      IX(I) = 4097 - I
    ENDIF
  ENDDO
!$TARGET GUPD
  DO I = 1, 4096
    A(IX(I)) = B(I) * 2.0 + 1.0 + B(I) * B(I) * 0.25 - B(I) / 3.0
  ENDDO
  S = 0.0
  DO I = 1, 4096
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
    )
}

fn compile_spec(src: &str) -> CompileResult {
    Compiler::new(CompilerProfile::polaris2008().with_runtime_test())
        .compile_source("spec", src)
        .unwrap_or_else(|e| panic!("{}", e))
}

fn exec(r: &CompileResult, mode: ExecMode, threads: usize) -> RunResult {
    run(
        &r.rp,
        &[],
        &ExecConfig {
            mode,
            threads,
            check_races: false,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}", e))
}

#[test]
fn indirection_loop_gets_speculative_annotation() {
    let r = compile_spec(&gather_src(0));
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some("GUPD"))
        .expect("target");
    assert_eq!(l.classification, C::Indirection);
    assert!(l.speculative, "runtime-test profile must speculate");
    assert!(!l.parallelized, "speculative is not statically parallel");
}

#[test]
fn baseline_profile_never_speculates() {
    for profile in [CompilerProfile::polaris2008(), CompilerProfile::full()] {
        let r = Compiler::new(profile)
            .compile_source("spec", &gather_src(0))
            .unwrap();
        assert!(r.loops.iter().all(|l| !l.speculative));
    }
}

#[test]
fn independent_gather_commits_and_matches_serial() {
    let r = compile_spec(&gather_src(0));
    let ser = exec(&r, ExecMode::Serial, 1);
    let par = exec(&r, ExecMode::Auto, 4);
    assert_eq!(ser.output, par.output);
    assert_eq!(par.speculations, 1, "test must pass and commit");
    assert_eq!(par.rollbacks, 0);
}

#[test]
fn colliding_gather_rolls_back_and_matches_serial() {
    let r = compile_spec(&gather_src(1));
    let ser = exec(&r, ExecMode::Serial, 1);
    let par = exec(&r, ExecMode::Auto, 4);
    assert_eq!(ser.output, par.output, "rollback must restore serial semantics");
    assert_eq!(par.speculations, 0);
    assert_eq!(par.rollbacks, 1);
}

#[test]
fn successful_speculation_is_faster_misspeculation_slower() {
    // Baseline: the same program under the same profile minus the
    // runtime test — the other loops still parallelize, only the
    // gather stays serial. Isolates the speculation delta.
    let base_of = |src: &str| {
        let r = Compiler::new(CompilerProfile::polaris2008())
            .compile_source("spec", src)
            .unwrap();
        exec(&r, ExecMode::Auto, 4).virt
    };
    let ok_src = gather_src(0);
    let bad_src = gather_src(1);
    let ok_par = exec(&compile_spec(&ok_src), ExecMode::Auto, 4).virt;
    let bad_par = exec(&compile_spec(&bad_src), ExecMode::Auto, 4).virt;
    let ok_base = base_of(&ok_src);
    let bad_base = base_of(&bad_src);
    assert!(
        ok_par < ok_base,
        "committed speculation should win: {} vs {}",
        ok_par,
        ok_base
    );
    assert!(
        bad_par > bad_base,
        "misspeculation pays for the failed attempt: {} vs {}",
        bad_par,
        bad_base
    );
}

#[test]
fn rangeless_bound_loop_speculates() {
    // N arrives from the input deck: statically rangeless, dynamically
    // fine.
    let src = "PROGRAM SPECN
  REAL A(256)
  READ(*,*) N
  DO I = 1, 256
    A(I) = REAL(I)
  ENDDO
!$TARGET RLOOP
  DO I = 1, N
    A(I + N) = A(I) * 3.0
  ENDDO
  WRITE(*,*) A(200)
END
";
    let r = compile_spec(src);
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some("RLOOP"))
        .expect("target");
    assert!(
        l.speculative,
        "rangeless loop should speculate, classified {:?}",
        l.classification
    );
    let deck = vec![autopar::runtime::DeckVal::Int(100)];
    let ser = run(&r.rp, &deck, &ExecConfig::default()).unwrap();
    let par = run(
        &r.rp,
        &deck,
        &ExecConfig {
            mode: ExecMode::Auto,
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(ser.output, par.output);
    assert_eq!(par.speculations, 1);
    assert_eq!(par.rollbacks, 0);
}

#[test]
fn scalar_recurrence_is_not_a_speculation_candidate() {
    // The blocked scalar is a real recurrence (RealDependence, not a
    // dynamically checkable hindrance): must stay serial even under
    // the runtime-test profile.
    let src = "PROGRAM SPECX
  REAL A(100)
  X = 1.0
!$TARGET SREC
  DO I = 1, 100
    X = X * 0.5 + REAL(I)
    A(I) = X
  ENDDO
  WRITE(*,*) A(100)
END
";
    let r = compile_spec(src);
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some("SREC"))
        .expect("target");
    assert!(!l.speculative);
    assert!(!l.parallelized);
}

#[test]
fn workload_suites_run_correctly_under_speculation() {
    // The end-to-end validation on real code: every application suite
    // compiled with the runtime test enabled must still produce the
    // serial output under Auto — with dozens of speculative regions
    // committing or rolling back along the way.
    use autopar::workloads::{DataSize, DeckValue};
    let suites = vec![
        autopar::workloads::gamess::suite(DataSize::Test),
        autopar::workloads::sander::suite(DataSize::Test),
        autopar::workloads::seismic::full_suite(
            DataSize::Test,
            autopar::workloads::Variant::Serial,
        ),
    ];
    for w in suites {
        let deck: Vec<autopar::runtime::DeckVal> = w
            .deck
            .iter()
            .map(|d| match d {
                DeckValue::Int(v) => autopar::runtime::DeckVal::Int(*v),
                DeckValue::Real(v) => autopar::runtime::DeckVal::Real(*v),
            })
            .collect();
        let r = Compiler::new(CompilerProfile::polaris2008().with_runtime_test())
            .compile_source(&w.name, &w.source)
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        assert!(
            r.loops.iter().any(|l| l.speculative),
            "{}: expected speculative loops",
            w.name
        );
        let big = ExecConfig {
            seg_words: 1 << 21,
            ..Default::default()
        };
        let ser = run(&r.rp, &deck, &big).unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        let par = run(
            &r.rp,
            &deck,
            &ExecConfig {
                mode: ExecMode::Auto,
                threads: 4,
                seg_words: 1 << 21,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        assert_eq!(
            ser.output, par.output,
            "{}: speculative execution diverged from serial",
            w.name
        );
        assert!(
            par.speculations + par.rollbacks > 0,
            "{}: no speculative region actually executed",
            w.name
        );
    }
}

/// Soundness under arbitrary index arrays: whatever `IX(I) =
/// MOD(I * m + a, md) + 1` produces — permutation, fold, constant —
/// the speculative run must reproduce the serial output exactly, by
/// committing when the data is independent and rolling back when it is
/// not.
#[test]
fn speculative_run_always_matches_serial() {
    forall("speculative_run_always_matches_serial", 24, |rng| {
        let mul = rng.int_in(1, 15);
        let add = rng.int_in(0, 63);
        let md = rng.int_in(1, 255);
        let trip = rng.int_in(32, 255);
        let src = format!(
            "PROGRAM SP
  REAL A(512), B(512)
  INTEGER IX(512)
  DO I = 1, 512
    A(I) = REAL(I) * 0.125
    B(I) = REAL(I) * 0.5
    IX(I) = MOD(I * {mul} + {add}, {md}) + 1
  ENDDO
!$TARGET GUPD
  DO I = 1, {trip}
    A(IX(I)) = B(I) * 2.0 + A(IX(I)) * 0.25
  ENDDO
  S = 0.0
  DO I = 1, 512
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
        );
        let r = Compiler::new(CompilerProfile::polaris2008().with_runtime_test())
            .compile_source("sp", &src)
            .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        let ser = run(&r.rp, &[], &ExecConfig::default())
            .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        let par = run(
            &r.rp,
            &[],
            &ExecConfig {
                mode: ExecMode::Auto,
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        assert_eq!(&ser.output, &par.output);
    });
}

#[test]
fn speculation_composes_with_full_profile() {
    // full() resolves the permutation statically when indirection
    // analysis can see the IF-free initializer; with the branch in the
    // way it cannot, so the runtime test still adds loops on top of
    // full().
    let r = Compiler::new(CompilerProfile::full().with_runtime_test())
        .compile_source("spec", &gather_src(0))
        .unwrap();
    let l = r
        .target_loops()
        .find(|l| l.target.as_deref() == Some("GUPD"))
        .expect("target");
    assert!(
        l.parallelized || l.speculative,
        "full+runtime-test must handle the gather one way or the other"
    );
    let ser = exec(&r, ExecMode::Serial, 1);
    let par = exec(&r, ExecMode::Auto, 4);
    assert_eq!(ser.output, par.output);
}

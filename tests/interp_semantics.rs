//! Fortran-77 execution semantics the analyses rely on: storage
//! association through COMMON and EQUIVALENCE, by-reference argument
//! passing, implicit typing at runtime, deck reading, STOP, traps, and
//! the output limit.

use autopar::minifort::frontend;
use autopar::runtime::{run, DeckVal, ExecConfig, RtError};

fn exec(src: &str) -> Vec<String> {
    exec_deck(src, &[])
}

fn exec_deck(src: &str, deck: &[DeckVal]) -> Vec<String> {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    run(&rp, deck, &ExecConfig::default())
        .unwrap_or_else(|e| panic!("{}", e))
        .output
}

fn exec_err(src: &str) -> RtError {
    let rp = frontend(src).unwrap_or_else(|e| panic!("{}", e));
    match run(&rp, &[], &ExecConfig::default()) {
        Ok(r) => panic!("expected trap, got {:?}", r.output),
        Err(e) => e,
    }
}

#[test]
fn common_block_is_shared_across_units() {
    let out = exec(
        "PROGRAM P
  COMMON /BLK/ X, Y
  X = 1.5
  Y = 2.5
  CALL BUMP
  WRITE(*,*) X, Y
END
SUBROUTINE BUMP
  COMMON /BLK/ A, B
  A = A + 1.0
  B = B * 2.0
END
",
    );
    assert_eq!(out, vec!["2.500000 5.000000".to_string()]);
}

#[test]
fn equivalence_overlays_storage() {
    // Y(1) aliases X(3): writing one reads back through the other.
    let out = exec(
        "PROGRAM P
  REAL X(5), Y(3)
  EQUIVALENCE (X(3), Y(1))
  DO I = 1, 5
    X(I) = REAL(I)
  ENDDO
  Y(2) = 99.0
  WRITE(*,*) X(4), Y(1)
END
",
    );
    assert_eq!(out, vec!["99.000000 3.000000".to_string()]);
}

#[test]
fn arguments_pass_by_reference() {
    let out = exec(
        "PROGRAM P
  REAL A(4)
  A(2) = 10.0
  CALL TWICE(A(2))
  WRITE(*,*) A(2)
END
SUBROUTINE TWICE(X)
  X = X * 2.0
END
",
    );
    assert_eq!(out, vec!["20.000000".to_string()]);
}

#[test]
fn array_section_actual_rebases_callee_indexing() {
    // Passing A(3) gives the callee a window starting there.
    let out = exec(
        "PROGRAM P
  REAL A(8)
  DO I = 1, 8
    A(I) = REAL(I)
  ENDDO
  CALL SUMUP(A(3), 4)
END
SUBROUTINE SUMUP(V, N)
  REAL V(*)
  INTEGER N
  S = 0.0
  DO I = 1, N
    S = S + V(I)
  ENDDO
  WRITE(*,*) 'S', S
END
",
    );
    // 3+4+5+6 = 18.
    assert_eq!(out, vec!["S 18.000000".to_string()]);
}

#[test]
fn implicit_typing_integers_vs_reals() {
    // I..N names are INTEGER: assignment truncates; others are REAL.
    let out = exec(
        "PROGRAM P
  K = 2.9
  X = 2.9
  WRITE(*,*) K, X
END
",
    );
    assert_eq!(out, vec!["2 2.900000".to_string()]);
}

#[test]
fn integer_division_truncates() {
    let out = exec(
        "PROGRAM P
  I = 7
  J = 2
  K = I / J
  M = (0 - 7) / 2
  WRITE(*,*) K, M
END
",
    );
    assert_eq!(out, vec!["3 -3".to_string()]);
}

#[test]
fn deck_reads_in_order_and_exhaustion_traps() {
    let out = exec_deck(
        "PROGRAM P
  READ(*,*) N
  READ(*,*) X
  WRITE(*,*) N, X
END
",
        &[DeckVal::Int(5), DeckVal::Real(1.25)],
    );
    assert_eq!(out, vec!["5 1.250000".to_string()]);

    let rp = frontend("PROGRAM P\n  READ(*,*) N\nEND\n").unwrap();
    match run(&rp, &[], &ExecConfig::default()) {
        Err(RtError::DeckExhausted) => {}
        other => panic!("expected DeckExhausted, got {:?}", other.map(|r| r.output)),
    }
}

#[test]
fn stop_halts_and_is_reported() {
    let rp = frontend(
        "PROGRAM P
  WRITE(*,*) 'BEFORE'
  STOP
  WRITE(*,*) 'AFTER'
END
",
    )
    .unwrap();
    let r = run(&rp, &[], &ExecConfig::default()).unwrap();
    assert_eq!(r.output, vec!["BEFORE".to_string()]);
    assert!(r.stopped);
}

#[test]
fn out_of_range_subscript_traps() {
    // Per F77 storage association, intra-arena overruns are legal (a
    // COMMON overrun lands in neighbouring storage); only escaping the
    // arena entirely traps.
    let e = exec_err(
        "PROGRAM P
  REAL A(4)
  COMMON /B/ A
  I = 2000000000
  A(I) = 1.0
  WRITE(*,*) A(1)
END
",
    );
    assert!(
        format!("{}", e).contains("subscript out of range"),
        "{}",
        e
    );
}

#[test]
fn zero_do_step_traps() {
    let e = exec_err(
        "PROGRAM P
  K = 0
  DO I = 1, 10, K
    X = 1.0
  ENDDO
END
",
    );
    assert!(format!("{}", e).contains("zero DO step"), "{}", e);
}

#[test]
fn output_limit_enforced() {
    let rp = frontend(
        "PROGRAM P
  DO I = 1, 100
    WRITE(*,*) I
  ENDDO
END
",
    )
    .unwrap();
    let r = run(
        &rp,
        &[],
        &ExecConfig {
            max_output: 10,
            ..Default::default()
        },
    );
    match r {
        Err(RtError::OutputLimit) => {}
        other => panic!("expected OutputLimit, got {:?}", other.map(|r| r.output.len())),
    }
}

#[test]
fn function_subprograms_return_values() {
    let out = exec(
        "PROGRAM P
  X = POLY(2.0) + POLY(3.0)
  WRITE(*,*) X
END
REAL FUNCTION POLY(T)
  POLY = T * T + 1.0
END
",
    );
    // (4+1) + (9+1) = 15.
    assert_eq!(out, vec!["15.000000".to_string()]);
}

#[test]
fn computed_conditions_and_elseif_chain() {
    let out = exec(
        "PROGRAM P
  DO I = 1, 4
    IF (I .EQ. 1) THEN
      WRITE(*,*) 'ONE'
    ELSEIF (I .LE. 3) THEN
      WRITE(*,*) 'MID', I
    ELSE
      WRITE(*,*) 'BIG'
    ENDIF
  ENDDO
END
",
    );
    assert_eq!(
        out,
        vec![
            "ONE".to_string(),
            "MID 2".to_string(),
            "MID 3".to_string(),
            "BIG".to_string()
        ]
    );
}

#[test]
fn do_while_and_logical_operators() {
    let out = exec(
        "PROGRAM P
  K = 1
  DO WHILE (K .LT. 100 .AND. MOD(K, 7) .NE. 0)
    K = K + 3
  ENDDO
  WRITE(*,*) K
END
",
    );
    // 1,4,7 — stops at 7 (divisible by 7).
    assert_eq!(out, vec!["7".to_string()]);
}

#[test]
fn loop_variable_has_fortran_exit_value() {
    let out = exec(
        "PROGRAM P
  DO I = 1, 10
    X = REAL(I)
  ENDDO
  WRITE(*,*) I
END
",
    );
    assert_eq!(out, vec!["11".to_string()]);
}

#[test]
fn multidim_column_major_layout() {
    // A(I,J) and the EQUIVALENCE'd flat view agree on column-major
    // order — the property the reshaped-access analysis depends on.
    let out = exec(
        "PROGRAM P
  REAL A(3, 2), F(6)
  EQUIVALENCE (A(1, 1), F(1))
  K = 0
  DO J = 1, 2
    DO I = 1, 3
      K = K + 1
      A(I, J) = REAL(K)
    ENDDO
  ENDDO
  WRITE(*,*) F(1), F(4), F(6)
END
",
    );
    // Column-major: F = [A(1,1),A(2,1),A(3,1),A(1,2),A(2,2),A(3,2)].
    assert_eq!(out, vec!["1.000000 4.000000 6.000000".to_string()]);
}

//! The parallel per-loop analysis stage must be invisible in the output:
//! compiling with one worker thread and with several has to produce
//! bit-identical reports — same per-pass op counts, same per-loop
//! classifications and annotations, same Figure 5 histograms, same skip
//! ledger. Only wall seconds may differ.

use apar_bench::compile_bench::report_signature;
use apar_core::{CompileResult, Compiler, CompilerProfile};
use apar_workloads as wl;

fn compile(w: &wl::Workload, threads: usize) -> CompileResult {
    Compiler::new(CompilerProfile::polaris2008().with_threads(threads))
        .compile_source(&w.name, &w.source)
        .expect("compile")
}

fn assert_thread_invariant(w: &wl::Workload) {
    let serial = compile(w, 1);
    let parallel = compile(w, 4);

    assert!(
        serial.loops.len() > 1,
        "{}: needs several loops to exercise the fan-out",
        w.name
    );
    assert_eq!(
        serial.loops.len(),
        parallel.loops.len(),
        "{}: loop counts differ",
        w.name
    );
    for (s, p) in serial.loops.iter().zip(&parallel.loops) {
        assert_eq!(s.unit, p.unit, "{}: loop order changed", w.name);
        assert_eq!(s.stmt, p.stmt, "{}: loop order changed", w.name);
        assert_eq!(
            s.classification, p.classification,
            "{}: {}:{:?} classified differently",
            w.name, s.unit, s.stmt
        );
        assert_eq!(
            s.parallelized, p.parallelized,
            "{}: {}:{:?} annotation differs",
            w.name, s.unit, s.stmt
        );
        assert_eq!(
            s.ops_spent, p.ops_spent,
            "{}: {}:{:?} op count differs",
            w.name, s.unit, s.stmt
        );
    }
    assert_eq!(
        serial.target_histogram(),
        parallel.target_histogram(),
        "{}: Figure 5 histogram differs",
        w.name
    );
    assert_eq!(
        report_signature(&serial),
        report_signature(&parallel),
        "{}: full report signature differs",
        w.name
    );
}

#[test]
fn seismic_compiles_identically_at_any_thread_count() {
    let w = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    assert_thread_invariant(&w);
}

#[test]
fn perfect_code_compiles_identically_at_any_thread_count() {
    let w = wl::perfect::codes()
        .into_iter()
        .next()
        .expect("at least one PERFECT code");
    assert_thread_invariant(&w);
}

//! The speculative runtime dependence test, end to end: one gather
//! kernel whose index array is unknowable at compile time, executed
//! three ways — statically (the loop stays serial), speculatively with
//! an independent permutation index (the runtime test commits), and
//! speculatively with a folding index (the test detects the conflict
//! and rolls back to serial, preserving the exact serial answer).
//!
//! Run with: `cargo run --release --example speculative_gather`

use autopar::core::{Compiler, CompilerProfile};
use autopar::runtime::{run, ExecConfig, ExecMode, RunResult};

fn gather_src(collide: bool) -> String {
    let c = if collide { 1 } else { 0 };
    format!(
        "PROGRAM SPECK
  REAL A(16384), B(16384)
  INTEGER IX(16384)
  COMMON /DAT/ A, B, IX
  DO I = 1, 16384
    B(I) = REAL(I) * 0.5
    IF ({c} .EQ. 1) THEN
      IX(I) = MOD(I, 8) + 1
    ELSE
      IX(I) = 16385 - I
    ENDIF
  ENDDO
!$TARGET GUPD
  DO I = 1, 16384
    A(IX(I)) = B(I) * 2.0 + 1.0 + B(I) * B(I) * 0.25 - B(I) / 3.0
  ENDDO
  S = 0.0
  DO I = 1, 16384
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
    )
}

fn execute(profile: CompilerProfile, src: &str) -> RunResult {
    let r = Compiler::new(profile)
        .compile_source("speck", src)
        .expect("compile");
    run(
        &r.rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Auto,
            threads: 4,
            ..Default::default()
        },
    )
    .expect("run")
}

fn main() {
    println!("speculative runtime dependence test — gather kernel, 4 modeled CPUs\n");
    println!(
        "{:<34} {:>10} {:>8} {:>9}  output",
        "version", "virt s", "commits", "rollbacks"
    );
    for (label, profile, collide) in [
        ("static only (polaris2008)", CompilerProfile::polaris2008(), false),
        (
            "speculative, permutation index",
            CompilerProfile::polaris2008().with_runtime_test(),
            false,
        ),
        (
            "speculative, folding index",
            CompilerProfile::polaris2008().with_runtime_test(),
            true,
        ),
    ] {
        let out = execute(profile, &gather_src(collide));
        println!(
            "{:<34} {:>10.4} {:>8} {:>9}  {}",
            label,
            out.virt_seconds(),
            out.speculations,
            out.rollbacks,
            out.output.join(" | ")
        );
    }
    println!(
        "\nThe committed speculation beats the static compiler; the rollback\n\
         restores the exact serial answer and pays for the failed attempt."
    );
}

//! The Figure 4 story: target loops in SEISMIC sit far deeper in the
//! call graph than PERFECT's extracted kernels.
//!
//! Run with: `cargo run --release --example nesting_study`

use autopar::core::nesting::target_nesting;
use autopar::minifort::frontend;
use autopar::workloads::{self, DataSize, Variant};

fn main() {
    let d = apar_bench::fig4::measure();
    print!("{}", apar_bench::fig4::render(&d));
    // Per-loop detail for SEISMIC.
    let w = workloads::seismic::full_suite(DataSize::Small, Variant::Serial);
    let rp = frontend(&w.source).unwrap();
    println!("\nSEISMIC per-target detail (outer subs / outer loops / enclosed subs / enclosed loops):");
    for r in target_nesting(&rp) {
        println!(
            "  {:>14} in {:<8} {} / {} / {} / {}",
            r.target, r.unit, r.outer_subs, r.outer_loops, r.enclosed_subs, r.enclosed_loops
        );
    }
}

//! Per-loop hindrance report (the data behind Figure 5): every target
//! loop of the three industrial suites, its baseline category, and
//! whether the full-capability compiler recovers it.
//!
//! Run with: `cargo run --release --example hindrance_report`

use autopar::core::{Classification, Compiler, CompilerProfile};
use autopar::workloads::{self, DataSize, Variant};

fn main() {
    let suites = [
        workloads::seismic::full_suite(DataSize::Small, Variant::Serial),
        workloads::gamess::suite(DataSize::Small),
        workloads::sander::suite(DataSize::Small),
    ];
    for w in suites {
        let base = Compiler::new(CompilerProfile::polaris2008())
            .compile_source(&w.name, &w.source)
            .expect("compile");
        let full = Compiler::new(CompilerProfile::full())
            .compile_source(&w.name, &w.source)
            .expect("compile");
        println!("== {}", w.name);
        for l in base.target_loops() {
            let name = l.target.clone().unwrap();
            let recovered = full
                .target_loops()
                .find(|f| f.target.as_deref() == Some(name.as_str()))
                .map(|f| f.classification == Classification::Autoparallelized)
                .unwrap_or(false);
            println!(
                "  {:>14} {:<24} {}",
                name,
                l.classification.label(),
                if recovered { "recovered by full profile" } else { "" }
            );
        }
        println!();
    }
}

//! The Figure 2/3 story: compile every suite with the baseline profile
//! and show where the effort goes — data dependence testing and array
//! privatization dominate for the industrial codes.
//!
//! Run with: `cargo run --release --example compile_time_study`

fn main() {
    let rows = apar_bench::fig2::measure();
    print!("{}", apar_bench::fig2::render_fig2(&rows));
    println!();
    print!("{}", apar_bench::fig2::render_fig3(&rows));
}

//! The Figure 1 story on one SEISMIC component: compile the serial
//! framework source, see which loops the 2008-era compiler finds, and
//! execute all four program versions of the paper on the modeled
//! 4-processor machine.
//!
//! Run with: `cargo run --release --example seismic_pipeline [component]`
//! where component is one of: datagen stack fft findiff (default fft).

use autopar::core::{Compiler, CompilerProfile};
use autopar::minifort::frontend;
use autopar::runtime::{run, run_mpi, DeckVal, ExecConfig, ExecMode};
use autopar::workloads::seismic::{component, Component};
use autopar::workloads::{DataSize, DeckValue, Variant};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fft".into());
    let c = match which.as_str() {
        "datagen" => Component::DataGen,
        "stack" => Component::Stack,
        "fft" => Component::Fft3d,
        "findiff" => Component::FinDiff,
        other => panic!("unknown component {}", other),
    };
    let size = DataSize::Small;
    let seg = 1 << 22;
    let sw = component(c, size, Variant::Serial);
    let deck: Vec<DeckVal> = sw
        .deck
        .iter()
        .map(|d| match d {
            DeckValue::Int(v) => DeckVal::Int(*v),
            DeckValue::Real(v) => DeckVal::Real(*v),
        })
        .collect();

    println!("component: {}  (SMALL deck, modeled 4-CPU machine)\n", c.label());

    // What does the 2008 compiler see?
    let compiled = Compiler::new(CompilerProfile::polaris2008())
        .compile_source(&sw.name, &sw.source)
        .expect("compile");
    println!("target loops under the 2008 baseline:");
    for l in compiled.target_loops() {
        println!(
            "  {:>14} in {:<8} -> {:?}{}",
            l.target.clone().unwrap(),
            l.unit,
            l.classification,
            if l.parallelized { "  [parallelized]" } else { "" }
        );
    }

    // Execute the four versions.
    let rp = frontend(&sw.source).unwrap();
    let serial = run(&rp, &deck, &ExecConfig { seg_words: seg, ..Default::default() }).unwrap();
    let ow = component(c, size, Variant::OpenMp);
    let rpo = frontend(&ow.source).unwrap();
    let omp = run(
        &rpo,
        &deck,
        &ExecConfig { mode: ExecMode::Manual, threads: 4, seg_words: seg, ..Default::default() },
    )
    .unwrap();
    let auto = run(
        &compiled.rp,
        &deck,
        &ExecConfig { mode: ExecMode::Auto, threads: 4, seg_words: seg, ..Default::default() },
    )
    .unwrap();
    let mw = component(c, size, Variant::Mpi);
    let rpm = frontend(&mw.source).unwrap();
    let mpi = run_mpi(&rpm, &deck, 4, seg).unwrap();

    println!("\nmodeled elapsed time (virtual seconds):");
    println!("  serial : {:>8.2}", serial.virt_seconds());
    println!("  MPI    : {:>8.2}  ({:.2}x)", mpi.virt_seconds(), serial.virt_seconds() / mpi.virt_seconds());
    println!("  OpenMP : {:>8.2}  ({:.2}x)", omp.virt_seconds(), serial.virt_seconds() / omp.virt_seconds());
    println!(
        "  Polaris: {:>8.2}  ({:.2}x, {} fork/join regions)",
        auto.virt_seconds(),
        serial.virt_seconds() / auto.virt_seconds(),
        auto.regions
    );
}

//! Quickstart: compile a small Fortran-77-style program with the
//! autopar parallelizer, inspect what it proves, and execute both the
//! serial and the auto-parallelized versions.
//!
//! Run with: `cargo run --example quickstart`

use autopar::core::{Compiler, CompilerProfile};
use autopar::runtime::{run, ExecConfig, ExecMode};

const SRC: &str = "\
PROGRAM DEMO
  REAL A(1000), B(1000)
  INTEGER IP(1000)
! initialize
  DO I = 1, 1000
    B(I) = REAL(I) * 0.5
    IP(I) = 1000 - I + 1
  ENDDO
! a clean parallel loop
!$TARGET SAXPY
  DO I = 1, 1000
    A(I) = B(I) * 2.0 + 1.0
  ENDDO
! a reduction
  S = 0.0
!$TARGET SUMSQ
  DO I = 1, 1000
    S = S + A(I) * A(I)
  ENDDO
! a subscripted subscript (the paper's `indirection` hindrance)
!$TARGET GATHER
  DO I = 1, 1000
    A(IP(I)) = A(IP(I)) + 0.25
  ENDDO
! a genuine recurrence (never parallel)
  DO I = 2, 1000
    B(I) = B(I - 1) * 0.5 + A(I)
  ENDDO
  WRITE(*,*) 'S', S
  WRITE(*,*) 'B1000', B(1000)
END
";

fn main() {
    for profile in [CompilerProfile::polaris2008(), CompilerProfile::full()] {
        let name = profile.name.clone();
        let result = Compiler::new(profile)
            .compile_source("demo", SRC)
            .expect("compile");
        println!("== profile: {}", name);
        for l in &result.loops {
            println!(
                "  loop {:>8} (DO {}) -> {:?}{}",
                l.target.clone().unwrap_or_else(|| "-".into()),
                l.var,
                l.classification,
                if l.parallelized { "  [parallelized]" } else { "" }
            );
        }
        // Execute serial and auto-parallel; outputs must agree.
        let serial = run(&result.rp, &[], &ExecConfig::default()).expect("serial");
        let auto = run(
            &result.rp,
            &[],
            &ExecConfig {
                mode: ExecMode::Auto,
                threads: 4,
                check_races: true,
                ..Default::default()
            },
        )
        .expect("auto");
        println!("  serial output: {:?}", serial.output);
        println!("  auto   output: {:?} ({} parallel regions)", auto.output, auto.regions);
        println!();
    }
}

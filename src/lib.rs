//! Facade crate re-exporting the autopar workspace.
pub use apar_analysis as analysis;
pub use apar_core as core;
pub use apar_kernels as kernels;
pub use apar_minifort as minifort;
pub use apar_runtime as runtime;
pub use apar_symbolic as symbolic;
pub use apar_workloads as workloads;

//! Symbolic expression algebra for the autopar parallelizing compiler.
//!
//! This crate provides the symbolic machinery that the paper identifies as
//! the dominant cost of automatic parallelization (Figures 2 and 3 of
//! Armstrong & Eigenmann, ICPP 2008): canonicalized integer expressions,
//! symbolic value ranges, an assumption environment, and a prover able to
//! establish facts such as `a < b` or `gcd`-style divisibility needed by
//! the data-dependence tests and array privatization.
//!
//! Every potentially expensive operation charges *symbolic ops* to an
//! [`ops::OpCounter`], giving the compiler a deterministic complexity
//! measure in addition to wall-clock time. The paper's "compile-time
//! complexity" hindrance category is modeled as exhausting an op budget.
//!
//! # Overview
//!
//! * [`intern`] — cheap `u32` identifiers for variable names.
//! * [`expr`] — the [`expr::Expr`] type with canonicalizing constructors.
//! * [`linform`] — linear-combination-of-monomials normal form.
//! * [`range`] — symbolic ranges `[lo, hi]` with optional endpoints; a
//!   variable whose range has no endpoints is *rangeless* (the paper's
//!   `rangeless` hindrance).
//! * [`env`] — assumption environments binding variables to ranges.
//! * [`prove`] — the comparison prover used by the Range Test.
//!
//! # Example
//!
//! ```
//! use apar_symbolic::{Interner, Expr, AssumeEnv, Range, Prover, OpCounter};
//!
//! let mut ints = Interner::new();
//! let n = ints.intern("N");
//! let i = ints.intern("I");
//!
//! let mut env = AssumeEnv::new();
//! env.assume(n, Range::at_least(Expr::int(1)));
//! env.assume(i, Range::between(Expr::int(1), Expr::var(n)));
//!
//! let ops = OpCounter::unlimited();
//! let prover = Prover::new(&env, &ops);
//! // I <= N is provable; I <= N - 1 is not.
//! assert!(prover.prove_le(&Expr::var(i), &Expr::var(n)));
//! assert!(!prover.prove_le(&Expr::var(i), &Expr::var(n).sub(Expr::int(1))));
//! ```

pub mod env;
pub mod expr;
pub mod intern;
pub mod linform;
pub mod ops;
pub mod prove;
pub mod range;

pub use env::AssumeEnv;
pub use expr::{Atom, Expr};
pub use intern::{Interner, VarId};
pub use linform::{LinForm, Monomial};
pub use ops::{BudgetExceeded, OpCounter};
pub use prove::{Prover, Tristate};
pub use range::Range;

//! Canonicalized symbolic integer expressions.
//!
//! [`Expr`] wraps a [`LinForm`]; its constructors maintain the canonical
//! form, so structural equality coincides with ring equality. Nonlinear
//! operators are kept atomic inside [`Atom`]s with light local
//! simplification (constant folding, flattening of nested min/max).
//!
//! On coefficient overflow an expression degrades to a fresh opaque
//! [`Atom::Unknown`] — a sound "don't know" rather than a wrong answer.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::intern::{Interner, VarId};
use crate::linform::{LinForm, Monomial};

static NEXT_UNKNOWN: AtomicU32 = AtomicU32::new(0);

/// Allocates a process-unique token for an opaque value.
pub fn fresh_unknown_token() -> u32 {
    NEXT_UNKNOWN.fetch_add(1, Ordering::Relaxed)
}

/// An indivisible multiplicative factor.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// A program variable (or storage location) by interned id.
    Var(VarId),
    /// An opaque value the analysis cannot see through (unknown function
    /// result, unanalyzable read, overflowed arithmetic). Two unknowns
    /// are equal only if they carry the same token.
    Unknown(u32),
    /// Truncating integer division `a / b` (Fortran semantics).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder `MOD(a, b)` with the sign of `a` (Fortran `MOD`).
    Mod(Box<Expr>, Box<Expr>),
    /// `MIN(e...)` over two or more operands, sorted and deduplicated.
    Min(Vec<Expr>),
    /// `MAX(e...)` over two or more operands, sorted and deduplicated.
    Max(Vec<Expr>),
}

/// A canonical symbolic integer expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Expr {
    lin: LinForm,
}

impl Expr {
    /// Integer constant.
    pub fn int(k: i64) -> Expr {
        Expr {
            lin: LinForm::constant(k),
        }
    }

    /// Program variable.
    pub fn var(v: VarId) -> Expr {
        Expr::from_atom(Atom::Var(v))
    }

    /// A fresh opaque value, unequal to every other expression.
    pub fn unknown() -> Expr {
        Expr::from_atom(Atom::Unknown(fresh_unknown_token()))
    }

    /// Wraps an atom as an expression.
    pub fn from_atom(a: Atom) -> Expr {
        Expr {
            lin: LinForm::monomial(Monomial::atom(a)),
        }
    }

    /// Wraps a linear form directly (already canonical by construction).
    pub fn from_lin(lin: LinForm) -> Expr {
        Expr { lin }
    }

    /// The underlying linear form.
    pub fn lin(&self) -> &LinForm {
        &self.lin
    }

    /// `self + rhs`.
    pub fn add(&self, rhs: Expr) -> Expr {
        match self.lin.add(&rhs.lin) {
            Some(lin) => Expr { lin },
            None => Expr::unknown(),
        }
    }

    /// `self - rhs`.
    pub fn sub(&self, rhs: Expr) -> Expr {
        match rhs.lin.neg().and_then(|n| self.lin.add(&n)) {
            Some(lin) => Expr { lin },
            None => Expr::unknown(),
        }
    }

    /// `-self`.
    pub fn neg(&self) -> Expr {
        match self.lin.neg() {
            Some(lin) => Expr { lin },
            None => Expr::unknown(),
        }
    }

    /// `self * rhs` with full distribution.
    pub fn mul(&self, rhs: Expr) -> Expr {
        match self.lin.mul(&rhs.lin) {
            Some(lin) => Expr { lin },
            None => Expr::unknown(),
        }
    }

    /// `self * k`.
    pub fn scale(&self, k: i64) -> Expr {
        match self.lin.scale(k) {
            Some(lin) => Expr { lin },
            None => Expr::unknown(),
        }
    }

    /// Truncating division. Folds constants; `x / 1 = x`; division by a
    /// constant that exactly divides all coefficients is performed
    /// symbolically (`(2*N)/2 = N`).
    pub fn div(&self, rhs: Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_int(), rhs.as_int()) {
            if b != 0 {
                return Expr::int(a.wrapping_div(b));
            }
        }
        if rhs.as_int() == Some(1) {
            return self.clone();
        }
        if let Some(b) = rhs.as_int() {
            if b != 0
                && self.lin.constant_part() % b == 0
                && !self.lin.is_constant()
                && self.lin.terms().iter().all(|&(c, _)| c % b == 0)
            {
                // Exact symbolic division is only valid when every term is
                // divisible: truncation then distributes over the sum.
                if let Some(lin) = self.lin.scale(1).and_then(|l| {
                    LinForm::from_terms(
                        l.constant_part() / b,
                        l.terms()
                            .iter()
                            .map(|(c, m)| (c / b, m.clone()))
                            .collect(),
                    )
                }) {
                    return Expr { lin };
                }
            }
        }
        Expr::from_atom(Atom::Div(Box::new(self.clone()), Box::new(rhs)))
    }

    /// Fortran `MOD(self, rhs)` (sign of the dividend). Folds constants
    /// and `MOD(x, 1) = 0`.
    pub fn modulo(&self, rhs: Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_int(), rhs.as_int()) {
            if b != 0 {
                return Expr::int(a.wrapping_rem(b));
            }
        }
        if rhs.as_int() == Some(1) {
            return Expr::int(0);
        }
        Expr::from_atom(Atom::Mod(Box::new(self.clone()), Box::new(rhs)))
    }

    /// `MIN` of the operands: flattens nested mins, folds constants,
    /// deduplicates; a single survivor is returned unwrapped.
    pub fn min_of(args: Vec<Expr>) -> Expr {
        Self::minmax(args, true)
    }

    /// `MAX` of the operands, with the dual simplifications of
    /// [`Expr::min_of`].
    pub fn max_of(args: Vec<Expr>) -> Expr {
        Self::minmax(args, false)
    }

    fn minmax(args: Vec<Expr>, is_min: bool) -> Expr {
        let mut flat: Vec<Expr> = Vec::with_capacity(args.len());
        let mut best_const: Option<i64> = None;
        for a in args {
            let inner = match (&a.as_single_atom(), is_min) {
                (Some(Atom::Min(xs)), true) | (Some(Atom::Max(xs)), false) => xs.clone(),
                _ => vec![a],
            };
            for e in inner {
                if let Some(k) = e.as_int() {
                    best_const = Some(match best_const {
                        None => k,
                        Some(b) if is_min => b.min(k),
                        Some(b) => b.max(k),
                    });
                } else {
                    flat.push(e);
                }
            }
        }
        flat.sort();
        flat.dedup();
        if let Some(k) = best_const {
            flat.push(Expr::int(k));
        }
        match flat.len() {
            0 => Expr::int(0),
            1 => flat.pop().expect("len checked"),
            _ => Expr::from_atom(if is_min { Atom::Min(flat) } else { Atom::Max(flat) }),
        }
    }

    /// Returns the constant value if this is a literal integer.
    pub fn as_int(&self) -> Option<i64> {
        self.lin.as_constant()
    }

    /// If the expression is exactly one atom (coefficient 1, no constant),
    /// returns it.
    pub fn as_single_atom(&self) -> Option<&Atom> {
        if self.lin.constant_part() != 0 {
            return None;
        }
        match self.lin.terms() {
            [(1, m)] => m.as_single_atom(),
            _ => None,
        }
    }

    /// If the expression is exactly one variable, returns its id.
    pub fn as_var(&self) -> Option<VarId> {
        match self.as_single_atom() {
            Some(Atom::Var(v)) => Some(*v),
            _ => None,
        }
    }

    /// True if any [`Atom::Unknown`] occurs anywhere in the expression.
    pub fn has_unknown(&self) -> bool {
        self.any_atom(&mut |a| matches!(a, Atom::Unknown(_)))
    }

    /// Structural size (number of atoms + terms); op charges scale on it.
    pub fn width(&self) -> usize {
        self.lin.width()
    }

    /// Tests a predicate over every atom, including atoms nested inside
    /// div/mod/min/max operands.
    pub fn any_atom(&self, pred: &mut impl FnMut(&Atom) -> bool) -> bool {
        for (_, m) in self.lin.terms() {
            for (a, _) in m.factors() {
                if pred(a) {
                    return true;
                }
                let nested = match a {
                    Atom::Div(x, y) | Atom::Mod(x, y) => {
                        x.any_atom(pred) || y.any_atom(pred)
                    }
                    Atom::Min(xs) | Atom::Max(xs) => xs.iter().any(|e| e.any_atom(pred)),
                    Atom::Var(_) | Atom::Unknown(_) => false,
                };
                if nested {
                    return true;
                }
            }
        }
        false
    }

    /// Collects the free variables into `out` (deduplicated by the caller
    /// if needed; this appends in canonical order).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        self.any_atom(&mut |a| {
            if let Atom::Var(v) = a {
                out.push(*v);
            }
            false
        });
    }

    /// The set of free variables, deduplicated, in canonical order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs = Vec::new();
        self.collect_vars(&mut vs);
        vs.sort();
        vs.dedup();
        vs
    }

    /// Substitutes `repl` for every occurrence of variable `v`.
    pub fn subst(&self, v: VarId, repl: &Expr) -> Expr {
        self.subst_map(&mut |var| (var == v).then(|| repl.clone()))
    }

    /// Substitutes every variable for which `f` returns an expression.
    pub fn subst_map(&self, f: &mut impl FnMut(VarId) -> Option<Expr>) -> Expr {
        let mut acc = Expr::int(self.lin.constant_part());
        for (c, m) in self.lin.terms() {
            let mut term = Expr::int(*c);
            for (a, p) in m.factors() {
                let base = match a {
                    Atom::Var(v) => f(*v).unwrap_or_else(|| Expr::var(*v)),
                    Atom::Unknown(t) => Expr::from_atom(Atom::Unknown(*t)),
                    Atom::Div(x, y) => x.subst_map(f).div(y.subst_map(f)),
                    Atom::Mod(x, y) => x.subst_map(f).modulo(y.subst_map(f)),
                    Atom::Min(xs) => {
                        Expr::min_of(xs.iter().map(|e| e.subst_map(f)).collect())
                    }
                    Atom::Max(xs) => {
                        Expr::max_of(xs.iter().map(|e| e.subst_map(f)).collect())
                    }
                };
                for _ in 0..*p {
                    term = term.mul(base.clone());
                }
            }
            acc = acc.add(term);
        }
        acc
    }

    /// Evaluates under a variable assignment. Returns `None` if any
    /// unknown, unbound variable, division by zero, or overflow occurs.
    pub fn eval(&self, f: &impl Fn(VarId) -> Option<i64>) -> Option<i64> {
        let mut acc: i64 = self.lin.constant_part();
        for (c, m) in self.lin.terms() {
            let mut term: i64 = *c;
            for (a, p) in m.factors() {
                let base = match a {
                    Atom::Var(v) => f(*v)?,
                    Atom::Unknown(_) => return None,
                    Atom::Div(x, y) => {
                        let d = y.eval(f)?;
                        if d == 0 {
                            return None;
                        }
                        x.eval(f)?.checked_div(d)?
                    }
                    Atom::Mod(x, y) => {
                        let d = y.eval(f)?;
                        if d == 0 {
                            return None;
                        }
                        x.eval(f)?.checked_rem(d)?
                    }
                    Atom::Min(xs) => xs
                        .iter()
                        .map(|e| e.eval(f))
                        .collect::<Option<Vec<_>>>()?
                        .into_iter()
                        .min()?,
                    Atom::Max(xs) => xs
                        .iter()
                        .map(|e| e.eval(f))
                        .collect::<Option<Vec<_>>>()?
                        .into_iter()
                        .max()?,
                };
                for _ in 0..*p {
                    term = term.checked_mul(base)?;
                }
            }
            acc = acc.checked_add(term)?;
        }
        Some(acc)
    }

    /// Renders with variable names resolved through `ints`.
    pub fn display<'a>(&'a self, ints: &'a Interner) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, ints }
    }

    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, ints: Option<&Interner>) -> fmt::Result {
        let lin = &self.lin;
        let mut first = true;
        if lin.constant_part() != 0 || lin.terms().is_empty() {
            write!(f, "{}", lin.constant_part())?;
            first = false;
        }
        for (c, m) in lin.terms() {
            if !first {
                write!(f, "{}", if *c < 0 { " - " } else { " + " })?;
            } else if *c < 0 {
                write!(f, "-")?;
            }
            first = false;
            let mag = c.unsigned_abs();
            if mag != 1 {
                write!(f, "{}*", mag)?;
            }
            let mut first_factor = true;
            for (a, p) in m.factors() {
                if !first_factor {
                    write!(f, "*")?;
                }
                first_factor = false;
                fmt_atom(a, f, ints)?;
                if *p > 1 {
                    write!(f, "^{}", p)?;
                }
            }
        }
        Ok(())
    }
}

fn fmt_atom(a: &Atom, f: &mut fmt::Formatter<'_>, ints: Option<&Interner>) -> fmt::Result {
    match a {
        Atom::Var(v) => match ints {
            Some(i) => write!(f, "{}", i.name(*v)),
            None => write!(f, "{:?}", v),
        },
        Atom::Unknown(t) => write!(f, "?{}", t),
        Atom::Div(x, y) => {
            write!(f, "(")?;
            x.fmt_with(f, ints)?;
            write!(f, ")/(")?;
            y.fmt_with(f, ints)?;
            write!(f, ")")
        }
        Atom::Mod(x, y) => {
            write!(f, "MOD(")?;
            x.fmt_with(f, ints)?;
            write!(f, ", ")?;
            y.fmt_with(f, ints)?;
            write!(f, ")")
        }
        Atom::Min(xs) | Atom::Max(xs) => {
            write!(f, "{}(", if matches!(a, Atom::Min(_)) { "MIN" } else { "MAX" })?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                x.fmt_with(f, ints)?;
            }
            write!(f, ")")
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, None)
    }
}

/// Display adapter produced by [`Expr::display`].
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    ints: &'a Interner,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expr.fmt_with(f, Some(self.ints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Expr {
        Expr::var(VarId(i))
    }

    #[test]
    fn ring_identities() {
        let x = v(0);
        let y = v(1);
        assert_eq!(x.add(y.clone()), y.add(x.clone()));
        assert_eq!(x.sub(x.clone()), Expr::int(0));
        assert_eq!(x.mul(Expr::int(0)), Expr::int(0));
        assert_eq!(x.mul(Expr::int(1)), x);
        // (x+y)^2 == x^2 + 2xy + y^2
        let s = x.add(y.clone());
        let lhs = s.mul(s.clone());
        let rhs = x
            .mul(x.clone())
            .add(x.mul(y.clone()).scale(2))
            .add(y.mul(y.clone()));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn div_simplifications() {
        assert_eq!(Expr::int(7).div(Expr::int(2)), Expr::int(3));
        assert_eq!(Expr::int(-7).div(Expr::int(2)), Expr::int(-3)); // truncation
        let x = v(0);
        assert_eq!(x.div(Expr::int(1)), x);
        assert_eq!(x.scale(4).div(Expr::int(2)), x.scale(2));
        // 4x+1 / 2 must NOT simplify termwise.
        let e = x.scale(4).add(Expr::int(1)).div(Expr::int(2));
        assert!(e.as_single_atom().is_some());
    }

    #[test]
    fn mod_simplifications() {
        assert_eq!(Expr::int(7).modulo(Expr::int(3)), Expr::int(1));
        assert_eq!(Expr::int(-7).modulo(Expr::int(3)), Expr::int(-1)); // Fortran MOD
        assert_eq!(v(0).modulo(Expr::int(1)), Expr::int(0));
    }

    #[test]
    fn minmax_flatten_and_fold() {
        let x = v(0);
        let m = Expr::min_of(vec![
            Expr::min_of(vec![x.clone(), Expr::int(5)]),
            Expr::int(3),
            x.clone(),
        ]);
        match m.as_single_atom() {
            Some(Atom::Min(xs)) => {
                assert_eq!(xs.len(), 2);
                assert!(xs.contains(&x));
                assert!(xs.contains(&Expr::int(3)));
            }
            other => panic!("expected min atom, got {:?}", other),
        }
        assert_eq!(Expr::max_of(vec![Expr::int(2), Expr::int(9)]), Expr::int(9));
        assert_eq!(Expr::min_of(vec![x.clone()]), x);
    }

    #[test]
    fn unknowns_are_distinct() {
        assert_ne!(Expr::unknown(), Expr::unknown());
        let u = Expr::unknown();
        assert_eq!(u, u.clone());
        assert!(u.has_unknown());
        assert!(!v(0).has_unknown());
    }

    #[test]
    fn subst_replaces_everywhere() {
        let x = VarId(0);
        let n = VarId(1);
        // e = 2x + x*n + MOD(x, 3)
        let e = v(0)
            .scale(2)
            .add(v(0).mul(v(1)))
            .add(v(0).modulo(Expr::int(3)));
        let got = e.subst(x, &Expr::int(5));
        // 10 + 5n + 2
        let want = Expr::int(12).add(Expr::var(n).scale(5));
        assert_eq!(got, want);
    }

    #[test]
    fn eval_matches_structure() {
        let e = v(0).scale(3).add(v(1).mul(v(1))).sub(Expr::int(4));
        let val = e.eval(&|v| Some(if v == VarId(0) { 2 } else { 5 }));
        assert_eq!(val, Some(3 * 2 + 25 - 4));
        assert_eq!(e.eval(&|_| None), None);
    }

    #[test]
    fn eval_div_by_zero_is_none() {
        let e = v(0).div(v(1));
        assert_eq!(e.eval(&|_| Some(0)), None);
    }

    #[test]
    fn vars_collects_nested() {
        let e = v(0).add(v(1).div(v(2).add(Expr::int(1))));
        assert_eq!(e.vars(), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn display_is_readable() {
        let mut ints = Interner::new();
        let i = ints.intern("I");
        let n = ints.intern("N");
        let e = Expr::var(i).scale(2).add(Expr::var(n).neg()).add(Expr::int(1));
        assert_eq!(format!("{}", e.display(&ints)), "1 + 2*I - N");
    }
}

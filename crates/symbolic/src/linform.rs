//! Canonical linear-form representation of symbolic expressions.
//!
//! Every [`crate::Expr`] is a *linear form*: an integer constant plus a sum
//! of `coefficient * monomial` terms, where a [`Monomial`] is a product of
//! [`Atom`]s raised to positive powers. Nonlinear structure (division,
//! modulo, min/max, opaque unknowns) lives inside atoms, so two
//! expressions are semantically equal under ring axioms iff their linear
//! forms are structurally equal. This canonicalization is what lets the
//! dependence tests compare array subscripts cheaply.

use crate::expr::Atom;

/// A product of atoms with positive integer powers, kept sorted by atom.
///
/// The empty monomial is the multiplicative unit and never appears in a
/// [`LinForm`] term list (its coefficient is folded into the constant).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial {
    factors: Vec<(Atom, u32)>,
}

impl Monomial {
    /// The unit monomial (empty product).
    pub fn unit() -> Self {
        Self::default()
    }

    /// A monomial consisting of a single atom to the first power.
    pub fn atom(a: Atom) -> Self {
        Monomial {
            factors: vec![(a, 1)],
        }
    }

    /// True for the unit monomial.
    pub fn is_unit(&self) -> bool {
        self.factors.is_empty()
    }

    /// The factors `(atom, power)` in canonical order.
    pub fn factors(&self) -> &[(Atom, u32)] {
        &self.factors
    }

    /// Total degree (sum of powers).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, p)| p).sum()
    }

    /// If this monomial is a single atom to the first power, returns it.
    pub fn as_single_atom(&self) -> Option<&Atom> {
        match self.factors.as_slice() {
            [(a, 1)] => Some(a),
            _ => None,
        }
    }

    /// Product of two monomials (merges factor lists, adds powers).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut factors = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            match self.factors[i].0.cmp(&other.factors[j].0) {
                std::cmp::Ordering::Less => {
                    factors.push(self.factors[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    factors.push(other.factors[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Saturate rather than overflow: a degree-4-billion
                    // monomial only arises from adversarial input, and a
                    // pinned power is still a valid canonical form.
                    factors.push((
                        self.factors[i].0.clone(),
                        self.factors[i].1.saturating_add(other.factors[j].1),
                    ));
                    i += 1;
                    j += 1;
                }
            }
        }
        factors.extend_from_slice(&self.factors[i..]);
        factors.extend_from_slice(&other.factors[j..]);
        Monomial { factors }
    }

    /// Builds a monomial from unsorted factors, merging duplicates.
    pub fn from_factors(mut fs: Vec<(Atom, u32)>) -> Monomial {
        fs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut factors: Vec<(Atom, u32)> = Vec::with_capacity(fs.len());
        for (a, p) in fs {
            if p == 0 {
                continue;
            }
            match factors.last_mut() {
                Some((la, lp)) if *la == a => *lp = lp.saturating_add(p),
                _ => factors.push((a, p)),
            }
        }
        Monomial { factors }
    }
}

/// `constant + Σ coef_i * monomial_i`, terms sorted by monomial, all
/// coefficients nonzero, no unit monomial among the terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinForm {
    pub(crate) constant: i64,
    pub(crate) terms: Vec<(i64, Monomial)>,
}

impl LinForm {
    /// The constant form `k`.
    pub fn constant(k: i64) -> Self {
        LinForm {
            constant: k,
            terms: Vec::new(),
        }
    }

    /// The form `1 * m` for a monomial `m`.
    pub fn monomial(m: Monomial) -> Self {
        if m.is_unit() {
            LinForm::constant(1)
        } else {
            LinForm {
                constant: 0,
                terms: vec![(1, m)],
            }
        }
    }

    /// Constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Non-constant terms in canonical order.
    pub fn terms(&self) -> &[(i64, Monomial)] {
        &self.terms
    }

    /// True if the form is a plain integer constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if the form is constant.
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.constant)
    }

    /// Builds a form from a constant and unsorted terms, canonicalizing.
    /// Returns `None` on coefficient overflow.
    pub fn from_terms(constant: i64, mut raw: Vec<(i64, Monomial)>) -> Option<LinForm> {
        raw.sort_by(|a, b| a.1.cmp(&b.1));
        let mut constant = constant;
        let mut terms: Vec<(i64, Monomial)> = Vec::with_capacity(raw.len());
        for (c, m) in raw {
            if c == 0 {
                continue;
            }
            if m.is_unit() {
                constant = constant.checked_add(c)?;
                continue;
            }
            match terms.last_mut() {
                Some((lc, lm)) if *lm == m => *lc = lc.checked_add(c)?,
                _ => terms.push((c, m)),
            }
        }
        terms.retain(|&(c, _)| c != 0);
        Some(LinForm { constant, terms })
    }

    /// `self + other`; `None` on overflow.
    pub fn add(&self, other: &LinForm) -> Option<LinForm> {
        let mut raw = self.terms.clone();
        raw.extend(other.terms.iter().cloned());
        LinForm::from_terms(self.constant.checked_add(other.constant)?, raw)
    }

    /// `self * k`; `None` on overflow.
    pub fn scale(&self, k: i64) -> Option<LinForm> {
        if k == 0 {
            return Some(LinForm::constant(0));
        }
        let constant = self.constant.checked_mul(k)?;
        let mut terms = Vec::with_capacity(self.terms.len());
        for (c, m) in &self.terms {
            terms.push((c.checked_mul(k)?, m.clone()));
        }
        Some(LinForm { constant, terms })
    }

    /// `-self`; `None` on overflow (only for `i64::MIN` coefficients).
    pub fn neg(&self) -> Option<LinForm> {
        self.scale(-1)
    }

    /// `self * other` by full distribution; `None` on overflow.
    pub fn mul(&self, other: &LinForm) -> Option<LinForm> {
        let mut raw: Vec<(i64, Monomial)> = Vec::new();
        let constant = self.constant.checked_mul(other.constant)?;
        for (c, m) in &self.terms {
            raw.push((c.checked_mul(other.constant)?, m.clone()));
        }
        for (c, m) in &other.terms {
            raw.push((c.checked_mul(self.constant)?, m.clone()));
        }
        for (c1, m1) in &self.terms {
            for (c2, m2) in &other.terms {
                raw.push((c1.checked_mul(*c2)?, m1.mul(m2)));
            }
        }
        LinForm::from_terms(constant, raw)
    }

    /// Number of (term, atom) nodes — a size measure used for op charges.
    pub fn width(&self) -> usize {
        1 + self
            .terms
            .iter()
            .map(|(_, m)| 1 + m.factors().len())
            .sum::<usize>()
    }

    /// GCD of all term coefficients (not the constant); 0 if no terms.
    pub fn coef_gcd(&self) -> i64 {
        self.terms
            .iter()
            .fold(0i64, |g, &(c, _)| gcd(g, c.unsigned_abs() as i64))
    }
}

/// Greatest common divisor of two non-negative integers.
pub fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::VarId;

    fn va(i: u32) -> Atom {
        Atom::Var(VarId(i))
    }

    #[test]
    fn monomial_mul_merges_powers() {
        let x = Monomial::atom(va(0));
        let xy = x.mul(&Monomial::atom(va(1)));
        let x2y = xy.mul(&x);
        assert_eq!(x2y.factors(), &[(va(0), 2), (va(1), 1)]);
        assert_eq!(x2y.degree(), 3);
    }

    #[test]
    fn from_terms_cancels() {
        let x = Monomial::atom(va(0));
        let lf = LinForm::from_terms(3, vec![(2, x.clone()), (-2, x)]).unwrap();
        assert_eq!(lf.as_constant(), Some(3));
    }

    #[test]
    fn add_and_scale() {
        let x = LinForm::monomial(Monomial::atom(va(0)));
        let two_x = x.add(&x).unwrap();
        assert_eq!(two_x, x.scale(2).unwrap());
        assert_eq!(
            two_x.add(&two_x.neg().unwrap()).unwrap().as_constant(),
            Some(0)
        );
    }

    #[test]
    fn mul_distributes() {
        // (x + 1)(x - 1) = x^2 - 1
        let x = LinForm::monomial(Monomial::atom(va(0)));
        let a = x.add(&LinForm::constant(1)).unwrap();
        let b = x.add(&LinForm::constant(-1)).unwrap();
        let p = a.mul(&b).unwrap();
        let x2 = x.mul(&x).unwrap();
        assert_eq!(p, x2.add(&LinForm::constant(-1)).unwrap());
    }

    #[test]
    fn overflow_is_reported() {
        let big = LinForm::constant(i64::MAX);
        assert!(big.add(&LinForm::constant(1)).is_none());
        assert!(big.scale(2).is_none());
    }

    #[test]
    fn coef_gcd_ignores_constant() {
        let x = Monomial::atom(va(0));
        let y = Monomial::atom(va(1));
        let lf = LinForm::from_terms(7, vec![(6, x), (9, y)]).unwrap();
        assert_eq!(lf.coef_gcd(), 3);
    }

    #[test]
    fn monomial_powers_saturate_instead_of_overflowing() {
        let deep = Monomial::from_factors(vec![(va(0), u32::MAX), (va(0), 7)]);
        assert_eq!(deep.factors(), &[(va(0), u32::MAX)]);
        let sq = deep.mul(&deep);
        assert_eq!(sq.factors(), &[(va(0), u32::MAX)]);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(-12, 18), 6);
    }
}

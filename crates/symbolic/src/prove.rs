//! The comparison prover behind the Range Test.
//!
//! Proving `a <= b` reduces to bounding `d = a - b` above by a constant
//! `<= 0`. Bounds are computed by *monotone substitution*: a variable
//! `v` with a known range is replaced by its upper or lower endpoint
//! according to the sign of `∂d/∂v`, which preserves correlations that
//! plain interval arithmetic loses (`I - N` with `I ∈ [1, N]` cancels to
//! `0`). Derivative signs of nonlinear terms are established recursively.
//!
//! All work is charged to an [`OpCounter`]; once a budget trips, the
//! prover fails conservatively (nothing is provable) and the caller can
//! observe [`OpCounter::exceeded`] — the paper's `complexity` hindrance.

use crate::env::AssumeEnv;
use crate::expr::{Atom, Expr};
use crate::intern::VarId;
use crate::ops::OpCounter;
use crate::range::Range;

/// Outcome of a query that may be provable either way or undecided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tristate {
    /// The queried relation is proven.
    True,
    /// The negation of the queried relation is proven.
    False,
    /// Neither direction could be established.
    Unknown,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Sign {
    Nonneg,
    Nonpos,
    Zero,
}

/// Default recursion depth for derivative-sign queries.
const DEFAULT_DEPTH: u32 = 8;
/// Cap on substitution sweeps per bound computation.
const MAX_SWEEPS: usize = 16;

/// A prover over an assumption environment.
pub struct Prover<'a> {
    env: &'a AssumeEnv,
    ops: &'a OpCounter,
    depth: u32,
}

impl<'a> Prover<'a> {
    /// Creates a prover with the default recursion depth.
    pub fn new(env: &'a AssumeEnv, ops: &'a OpCounter) -> Self {
        Prover {
            env,
            ops,
            depth: DEFAULT_DEPTH,
        }
    }

    /// Overrides the recursion depth (mainly for tests).
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.depth = depth;
        self
    }

    /// Proves `a <= b` (false means "could not prove", not "a > b").
    pub fn prove_le(&self, a: &Expr, b: &Expr) -> bool {
        self.prove_le_zero(&a.sub(b.clone()))
    }

    /// Proves `a < b`.
    pub fn prove_lt(&self, a: &Expr, b: &Expr) -> bool {
        self.prove_le_zero(&a.sub(b.clone()).add(Expr::int(1)))
    }

    /// Proves `a >= b`.
    pub fn prove_ge(&self, a: &Expr, b: &Expr) -> bool {
        self.prove_le(b, a)
    }

    /// Proves `a > b`.
    pub fn prove_gt(&self, a: &Expr, b: &Expr) -> bool {
        self.prove_lt(b, a)
    }

    /// Proves `e <= 0`.
    pub fn prove_le_zero(&self, e: &Expr) -> bool {
        match self.bound(e, true, self.depth).as_int() {
            Some(k) => k <= 0,
            None => false,
        }
    }

    /// Proves `e >= 0`.
    pub fn prove_ge_zero(&self, e: &Expr) -> bool {
        match self.bound(e, false, self.depth).as_int() {
            Some(k) => k >= 0,
            None => false,
        }
    }

    /// Proves `a != b`, by separation in either direction or by a GCD
    /// divisibility argument on `a - b`.
    pub fn prove_ne(&self, a: &Expr, b: &Expr) -> bool {
        let d = a.sub(b.clone());
        if let Some(k) = d.as_int() {
            return k != 0;
        }
        if self.prove_le_zero(&d.add(Expr::int(1))) || self.prove_ge_zero(&d.sub(Expr::int(1))) {
            return true;
        }
        // GCD test: g | every coefficient but g ∤ constant ⇒ d ≠ 0.
        let g = d.lin().coef_gcd();
        g > 1 && d.lin().constant_part() % g != 0
    }

    /// Three-way `a <= b`: `True` when proven, `False` when `a > b` is
    /// proven, else `Unknown`.
    pub fn cmp_le(&self, a: &Expr, b: &Expr) -> Tristate {
        if self.prove_le(a, b) {
            Tristate::True
        } else if self.prove_gt(a, b) {
            Tristate::False
        } else {
            Tristate::Unknown
        }
    }

    /// Best-effort symbolic range of `e`. Endpoints are always valid
    /// bounds (at worst `e` itself); [`Range::as_const`] tells whether a
    /// ground bound was reached.
    pub fn range_of(&self, e: &Expr) -> Range {
        Range {
            lo: Some(self.bound(e, false, self.depth)),
            hi: Some(self.bound(e, true, self.depth)),
        }
    }

    /// Constant upper bound of `e`, if one is derivable.
    pub fn const_upper(&self, e: &Expr) -> Option<i64> {
        self.bound(e, true, self.depth).as_int()
    }

    /// Constant lower bound of `e`, if one is derivable.
    pub fn const_lower(&self, e: &Expr) -> Option<i64> {
        self.bound(e, false, self.depth).as_int()
    }

    /// Computes a bound of `e` (`upper` selects the direction) by
    /// monotone substitution. The result is always a sound bound; it may
    /// simply be `e` unchanged when nothing is known.
    fn bound(&self, e: &Expr, upper: bool, depth: u32) -> Expr {
        if self.ops.charge(e.width() as u64).is_err() {
            return e.clone();
        }
        if depth == 0 || e.as_int().is_some() {
            return e.clone();
        }
        let mut cur = e.clone();
        for _sweep in 0..MAX_SWEEPS {
            if cur.as_int().is_some() {
                return cur;
            }
            if self.ops.charge(cur.width() as u64).is_err() {
                return cur;
            }
            match self.substitute_one(&cur, upper, depth) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Performs one sound substitution step toward the requested bound,
    /// or returns `None` when no step applies.
    fn substitute_one(&self, e: &Expr, upper: bool, depth: u32) -> Option<Expr> {
        // 1. Variables occurring only as plain monomial factors: replace
        //    by a range endpoint chosen by derivative sign. Variables
        //    whose endpoint is itself symbolic go first — substituting
        //    them preserves correlations (I ∈ [1,N] into I - N cancels),
        //    whereas grounding N first would lose them.
        let mut candidates: Vec<(VarId, Expr)> = Vec::new();
        for v in substitutable_vars(e) {
            let r = self.env.range_of(v);
            if r.is_rangeless() {
                continue;
            }
            let Some(sign) = self.deriv_sign(e, v, depth) else {
                continue;
            };
            let repl = match (sign, upper) {
                (Sign::Zero, _) => continue,
                (Sign::Nonneg, true) | (Sign::Nonpos, false) => r.hi,
                (Sign::Nonneg, false) | (Sign::Nonpos, true) => r.lo,
            };
            let Some(b) = repl else { continue };
            if b.vars().contains(&v) {
                continue; // avoid non-terminating self-substitution
            }
            candidates.push((v, b));
        }
        // Order candidates by *dependency depth*: a variable whose
        // endpoint mentions another candidate substitutes first
        // (innermost-first in a loop nest), because its replacement
        // cancels against the variables it depends on. `I' ∈ [I+1, N]`
        // must ground before `I ∈ [1, N]`, which must ground before `N`.
        let cand_vars: Vec<VarId> = candidates.iter().map(|(v, _)| *v).collect();
        let dep_depth = |v: VarId| -> usize {
            // Bounded DFS over candidate bounds.
            fn go(
                v: VarId,
                cands: &[(VarId, Expr)],
                seen: &mut Vec<VarId>,
            ) -> usize {
                if seen.contains(&v) || seen.len() > 8 {
                    return 0;
                }
                seen.push(v);
                let d = cands
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, b)| {
                        b.vars()
                            .into_iter()
                            .filter(|u| cands.iter().any(|(c, _)| c == u))
                            .map(|u| 1 + go(u, cands, seen))
                            .max()
                            .unwrap_or(0)
                    })
                    .unwrap_or(0);
                seen.pop();
                d
            }
            go(v, &candidates, &mut Vec::new())
        };
        let _ = &cand_vars;
        let mut keyed: Vec<(usize, bool, VarId, Expr)> = candidates
            .iter()
            .map(|(v, b)| (dep_depth(*v), b.as_int().is_some(), *v, b.clone()))
            .collect();
        keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let candidates: Vec<(VarId, Expr)> =
            keyed.into_iter().map(|(_, _, v, b)| (v, b)).collect();
        // Symbolic endpoints first — they preserve correlations.
        for (v, b) in &candidates {
            if b.as_int().is_some() {
                continue;
            }
            let next = e.subst(*v, b);
            if next != *e {
                return Some(next);
            }
        }
        // 2. Min/Max and MOD atoms occurring linearly: replace by an
        //    operand-wise bound when the coefficient sign is known. This
        //    must run BEFORE grounding variables to constants: an atom's
        //    operand may hold the cancellation partner of a variable
        //    still in the expression.
        if let Some(next) = self.replace_one_atom(e, upper, depth) {
            return Some(next);
        }
        // 3. Constant endpoints last.
        for (v, b) in &candidates {
            if b.as_int().is_none() {
                continue;
            }
            let next = e.subst(*v, b);
            if next != *e {
                return Some(next);
            }
        }
        None
    }

    /// Replaces one nonlinear atom that occurs linearly (power 1, alone
    /// in its monomial) by a bound. Min/Max atoms admit several valid
    /// replacements (any operand bounds a max from below, a min from
    /// above); each alternative is explored with bounded backtracking
    /// and the tightest constant result wins.
    fn replace_one_atom(&self, e: &Expr, upper: bool, depth: u32) -> Option<Expr> {
        for (c, m) in e.lin().terms() {
            let Some(atom) = m.as_single_atom() else {
                continue;
            };
            // Need the bound of the atom in direction `upper XOR (c < 0)`.
            let want_upper = if *c >= 0 { upper } else { !upper };
            let alts = self.atom_bounds(atom, want_upper, depth);
            if alts.is_empty() {
                continue;
            }
            let atom_expr = Expr::from_atom(atom.clone());
            let rest = e.sub(atom_expr.scale(*c));
            let mut best_const: Option<i64> = None;
            let mut first_symbolic: Option<Expr> = None;
            for alt in alts {
                if alt == atom_expr {
                    continue;
                }
                let candidate = rest.add(alt.scale(*c));
                let resolved = self.bound(&candidate, upper, depth.saturating_sub(1));
                match resolved.as_int() {
                    Some(k) => {
                        best_const = Some(match best_const {
                            None => k,
                            Some(b) if upper => b.min(k),
                            Some(b) => b.max(k),
                        });
                    }
                    None => {
                        if first_symbolic.is_none() {
                            first_symbolic = Some(candidate);
                        }
                    }
                }
            }
            if let Some(k) = best_const {
                return Some(Expr::int(k));
            }
            if let Some(s) = first_symbolic {
                return Some(s);
            }
        }
        None
    }

    /// Valid replacements for a nonlinear atom in the given direction.
    fn atom_bounds(&self, a: &Atom, upper: bool, depth: u32) -> Vec<Expr> {
        if depth == 0 {
            return Vec::new();
        }
        match a {
            // min(xs) <= each operand; min(xs) >= min of operand lbs.
            Atom::Min(xs) => {
                if upper {
                    xs.clone()
                } else {
                    vec![Expr::min_of(
                        xs.iter()
                            .map(|x| self.bound(x, false, depth - 1))
                            .collect(),
                    )]
                }
            }
            // max(xs) >= each operand; max(xs) <= max of operand ubs.
            Atom::Max(xs) => {
                if upper {
                    vec![Expr::max_of(
                        xs.iter().map(|x| self.bound(x, true, depth - 1)).collect(),
                    )]
                } else {
                    xs.clone()
                }
            }
            Atom::Mod(x, y) => {
                // Only the nonnegative-dividend, positive-constant-modulus
                // case is handled: MOD(x, k) ∈ [0, k-1].
                let Some(k) = y.as_int() else {
                    return Vec::new();
                };
                let sub = Prover {
                    env: self.env,
                    ops: self.ops,
                    depth: depth - 1,
                };
                if k > 0 && sub.prove_ge_zero(x) {
                    vec![if upper { Expr::int(k - 1) } else { Expr::int(0) }]
                } else {
                    Vec::new()
                }
            }
            Atom::Div(x, y) => {
                // Truncating division by a positive constant is monotone
                // nondecreasing in the dividend; and for a nonnegative
                // dividend, `x / k <= x` bounds it without losing the
                // correlation with `x`.
                let Some(k) = y.as_int() else {
                    return Vec::new();
                };
                let mut alts = Vec::new();
                if k > 0 {
                    let b = self.bound(x, upper, depth - 1);
                    if b != **x {
                        alts.push(b.div(Expr::int(k)));
                    }
                    if upper && k >= 1 {
                        let sub = Prover {
                            env: self.env,
                            ops: self.ops,
                            depth: depth - 1,
                        };
                        if sub.prove_ge_zero(x) {
                            alts.push((**x).clone());
                        }
                    }
                }
                alts
            }
            Atom::Var(_) | Atom::Unknown(_) => Vec::new(),
        }
    }

    /// The sign of `∂e/∂v`, established directly for constant derivatives
    /// and recursively otherwise.
    fn deriv_sign(&self, e: &Expr, v: VarId, depth: u32) -> Option<Sign> {
        let d = derivative(e, v);
        if let Some(k) = d.as_int() {
            return Some(if k == 0 {
                Sign::Zero
            } else if k > 0 {
                Sign::Nonneg
            } else {
                Sign::Nonpos
            });
        }
        if depth == 0 {
            return None;
        }
        let sub = Prover {
            env: self.env,
            ops: self.ops,
            depth: depth - 1,
        };
        if sub.prove_ge_zero(&d) {
            Some(Sign::Nonneg)
        } else if sub.prove_le_zero(&d) {
            Some(Sign::Nonpos)
        } else {
            None
        }
    }
}

/// Variables of `e` that occur *only* as plain monomial factors (never
/// nested inside div/mod/min/max), so endpoint substitution is sound
/// given the derivative sign.
fn substitutable_vars(e: &Expr) -> Vec<VarId> {
    let mut plain = Vec::new();
    let mut nested = Vec::new();
    for (_, m) in e.lin().terms() {
        for (a, _) in m.factors() {
            match a {
                Atom::Var(v) => plain.push(*v),
                _ => {
                    Expr::from_atom(a.clone()).collect_vars(&mut nested);
                }
            }
        }
    }
    plain.sort();
    plain.dedup();
    nested.sort();
    nested.dedup();
    plain.retain(|v| !nested.contains(v));
    plain
}

/// `∂e/∂v` treating nonlinear atoms as constants with respect to `v`
/// (callers exclude variables nested inside such atoms).
fn derivative(e: &Expr, v: VarId) -> Expr {
    let mut acc = Expr::int(0);
    for (c, m) in e.lin().terms() {
        let Some(p) = m
            .factors()
            .iter()
            .find(|(a, _)| *a == Atom::Var(v))
            .map(|&(_, p)| p)
        else {
            continue;
        };
        // d/dv (c * v^p * rest) = c * p * v^(p-1) * rest
        let mut term = Expr::int((*c).saturating_mul(p as i64));
        for (a, q) in m.factors() {
            let (base, pow) = if *a == Atom::Var(v) {
                (Expr::var(v), p - 1)
            } else {
                (Expr::from_atom(a.clone()), *q)
            };
            for _ in 0..pow {
                term = term.mul(base.clone());
            }
        }
        acc = acc.add(term);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    struct Setup {
        ints: Interner,
        env: AssumeEnv,
        ops: OpCounter,
    }

    impl Setup {
        fn new() -> Self {
            Setup {
                ints: Interner::new(),
                env: AssumeEnv::new(),
                ops: OpCounter::unlimited(),
            }
        }
        fn var(&mut self, name: &str) -> VarId {
            self.ints.intern(name)
        }
    }

    #[test]
    fn loop_index_within_bounds() {
        let mut s = Setup::new();
        let n = s.var("N");
        let i = s.var("I");
        s.env.assume(n, Range::at_least(Expr::int(1)));
        s.env.assume(i, Range::between(Expr::int(1), Expr::var(n)));
        let p = Prover::new(&s.env, &s.ops);
        assert!(p.prove_le(&Expr::var(i), &Expr::var(n)));
        assert!(p.prove_ge(&Expr::var(i), &Expr::int(1)));
        assert!(!p.prove_lt(&Expr::var(i), &Expr::var(n)));
        assert!(p.prove_lt(&Expr::var(i), &Expr::var(n).add(Expr::int(1))));
    }

    #[test]
    fn correlated_cancellation_beats_intervals() {
        // A(I) vs A(I+N): with N >= 1, subscripts never collide for the
        // same I; prove I < I + N.
        let mut s = Setup::new();
        let n = s.var("N");
        let i = s.var("I");
        s.env.assume(n, Range::at_least(Expr::int(1)));
        let p = Prover::new(&s.env, &s.ops);
        let a = Expr::var(i);
        let b = Expr::var(i).add(Expr::var(n));
        assert!(p.prove_lt(&a, &b));
        assert!(p.prove_ne(&a, &b));
    }

    #[test]
    fn rangeless_variable_defeats_proof() {
        // The paper's `rangeless` hindrance: no bound on M, nothing provable.
        let mut s = Setup::new();
        let m = s.var("M");
        let i = s.var("I");
        s.env.assume(i, Range::between(Expr::int(1), Expr::int(10)));
        let p = Prover::new(&s.env, &s.ops);
        assert!(!p.prove_le(&Expr::var(i), &Expr::var(m)));
        assert!(!p.prove_ne(&Expr::var(i), &Expr::var(m)));
        assert_eq!(
            p.cmp_le(&Expr::var(i), &Expr::var(m)),
            Tristate::Unknown
        );
    }

    #[test]
    fn gcd_separation() {
        // 2i and 2j+1 can never be equal.
        let mut s = Setup::new();
        let i = s.var("I");
        let j = s.var("J");
        let p = Prover::new(&s.env, &s.ops);
        let a = Expr::var(i).scale(2);
        let b = Expr::var(j).scale(2).add(Expr::int(1));
        assert!(p.prove_ne(&a, &b));
        // but 2i vs 2j is not separable
        assert!(!p.prove_ne(&a, &Expr::var(j).scale(2)));
    }

    #[test]
    fn nonlinear_product_with_sign_info() {
        // ld >= 1, j in [0, m-1], i in [1, ld] ⇒ j*ld + i <= m*ld.
        let mut s = Setup::new();
        let ld = s.var("LD");
        let m = s.var("M");
        let j = s.var("J");
        let i = s.var("I");
        s.env.assume(ld, Range::at_least(Expr::int(1)));
        s.env.assume(m, Range::at_least(Expr::int(1)));
        s.env
            .assume(j, Range::between(Expr::int(0), Expr::var(m).sub(Expr::int(1))));
        s.env.assume(i, Range::between(Expr::int(1), Expr::var(ld)));
        let p = Prover::new(&s.env, &s.ops);
        let access = Expr::var(j).mul(Expr::var(ld)).add(Expr::var(i));
        let limit = Expr::var(m).mul(Expr::var(ld));
        assert!(p.prove_le(&access, &limit));
    }

    #[test]
    fn row_disjointness_linearized() {
        // Rows j and j+1 of a linearized 2-D array do not overlap:
        // j*ld + i1 < (j+1)*ld + i2 for i1 in [1,ld], i2 >= 1.
        let mut s = Setup::new();
        let ld = s.var("LD");
        let j = s.var("J");
        let i1 = s.var("I1");
        let i2 = s.var("I2");
        s.env.assume(ld, Range::at_least(Expr::int(1)));
        s.env.assume(i1, Range::between(Expr::int(1), Expr::var(ld)));
        s.env.assume(i2, Range::at_least(Expr::int(1)));
        let p = Prover::new(&s.env, &s.ops);
        let a = Expr::var(j).mul(Expr::var(ld)).add(Expr::var(i1));
        let b = Expr::var(j)
            .add(Expr::int(1))
            .mul(Expr::var(ld))
            .add(Expr::var(i2));
        assert!(p.prove_lt(&a, &b));
    }

    #[test]
    fn min_max_bounds() {
        let mut s = Setup::new();
        let n = s.var("N");
        let k = s.var("K");
        s.env.assume(n, Range::between(Expr::int(1), Expr::int(100)));
        let p = Prover::new(&s.env, &s.ops);
        // min(N, K) <= 100 even though K is rangeless.
        let m = Expr::min_of(vec![Expr::var(n), Expr::var(k)]);
        assert!(p.prove_le(&m, &Expr::int(100)));
        // max(N, K) >= 1 likewise.
        let mx = Expr::max_of(vec![Expr::var(n), Expr::var(k)]);
        assert!(p.prove_ge(&mx, &Expr::int(1)));
        // but min(N, K) >= 1 needs K's lower bound: unprovable.
        assert!(!p.prove_ge(&m, &Expr::int(1)));
    }

    #[test]
    fn mod_bounds() {
        let mut s = Setup::new();
        let i = s.var("I");
        s.env.assume(i, Range::at_least(Expr::int(0)));
        let p = Prover::new(&s.env, &s.ops);
        let m = Expr::var(i).modulo(Expr::int(8));
        assert!(p.prove_le(&m, &Expr::int(7)));
        assert!(p.prove_ge_zero(&m));
        assert!(!p.prove_le(&m, &Expr::int(6)));
    }

    #[test]
    fn div_bounds() {
        let mut s = Setup::new();
        let i = s.var("I");
        s.env.assume(i, Range::between(Expr::int(0), Expr::int(100)));
        let p = Prover::new(&s.env, &s.ops);
        let d = Expr::var(i).div(Expr::int(4));
        assert!(p.prove_le(&d, &Expr::int(25)));
        assert!(p.prove_ge_zero(&d));
    }

    #[test]
    fn budget_exhaustion_fails_conservatively() {
        let mut s = Setup::new();
        let n = s.var("N");
        let i = s.var("I");
        s.env.assume(n, Range::at_least(Expr::int(1)));
        s.env.assume(i, Range::between(Expr::int(1), Expr::var(n)));
        let ops = OpCounter::with_budget(1);
        let p = Prover::new(&s.env, &ops);
        assert!(!p.prove_le(&Expr::var(i), &Expr::var(n)));
        assert!(ops.exceeded());
    }

    #[test]
    fn unknown_atoms_are_never_provable() {
        let s = Setup::new();
        let p = Prover::new(&s.env, &s.ops);
        let u = Expr::unknown();
        assert!(!p.prove_le(&u, &Expr::int(1_000_000)));
        assert!(!p.prove_ge(&u, &Expr::int(-1_000_000)));
    }

    #[test]
    fn cmp_le_reports_false_direction() {
        let mut s = Setup::new();
        let i = s.var("I");
        s.env.assume(i, Range::at_least(Expr::int(10)));
        let p = Prover::new(&s.env, &s.ops);
        assert_eq!(p.cmp_le(&Expr::var(i), &Expr::int(5)), Tristate::False);
        assert_eq!(p.cmp_le(&Expr::int(5), &Expr::var(i)), Tristate::True);
    }
}

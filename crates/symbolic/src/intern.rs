//! String interning for symbolic variable names.
//!
//! Symbolic expressions refer to variables through a [`VarId`], a dense
//! `u32` handle produced by an [`Interner`]. Analyses create one interner
//! per program and qualify names by program unit or storage location
//! (e.g. `"SEISPROC::NTRC"`, `"/CBLK/+8"`), so distinct storage gets a
//! distinct id even when source names collide.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned variable name.
///
/// Ordering follows interning order; it is used only to canonicalize term
/// order inside expressions, never for semantic comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl VarId {
    /// Raw index into the interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between names and [`VarId`]s.
#[derive(Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    ids: HashMap<String, VarId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.ids.get(name).copied()
    }

    /// The name behind `id`.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }

    /// True when `other` extends this interner: every `(id, name)` pair
    /// here appears identically in `other`. Forked interners (clones
    /// that only interned further) always satisfy this against their
    /// origin.
    pub fn is_prefix_of(&self, other: &Interner) -> bool {
        self.names.len() <= other.names.len()
            && self.names.iter().zip(&other.names).all(|(a, b)| a == b)
    }

    /// Canonically merges a forked interner back into this one: every
    /// name of `other` is interned here, in `other`'s id order. Ids
    /// already present keep their value; new names get fresh ids in a
    /// deterministic order, so absorbing the same forks in the same
    /// sequence always yields the same table regardless of how the
    /// forks were produced (e.g. which worker thread ran them).
    pub fn absorb(&mut self, other: &Interner) {
        for name in &other.names {
            self.intern(name);
        }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("A");
        let b = i.intern("B");
        assert_ne!(a, b);
        assert_eq!(i.intern("A"), a);
        assert_eq!(i.name(a), "A");
        assert_eq!(i.name(b), "B");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("X").is_none());
        let x = i.intern("X");
        assert_eq!(i.get("X"), Some(x));
    }

    #[test]
    fn absorb_is_canonical() {
        let mut base = Interner::new();
        base.intern("A");
        base.intern("B");
        // Two forks intern different (overlapping) names.
        let mut f1 = base.clone();
        f1.intern("C");
        f1.intern("D");
        let mut f2 = base.clone();
        f2.intern("D");
        f2.intern("E");
        assert!(base.is_prefix_of(&f1));
        assert!(base.is_prefix_of(&f2));
        // Absorbing in a fixed order is deterministic regardless of
        // which fork interned what.
        let mut m1 = base.clone();
        m1.absorb(&f1);
        m1.absorb(&f2);
        let mut m2 = base.clone();
        m2.absorb(&f1);
        m2.absorb(&f2);
        assert_eq!(
            m1.iter().map(|(i, n)| (i, n.to_string())).collect::<Vec<_>>(),
            m2.iter().map(|(i, n)| (i, n.to_string())).collect::<Vec<_>>()
        );
        // Shared ids keep their values; all names present.
        assert_eq!(m1.get("A"), Some(base.get("A").unwrap()));
        for n in ["A", "B", "C", "D", "E"] {
            assert!(m1.get(n).is_some(), "{} missing after merge", n);
        }
    }

    #[test]
    fn prefix_detects_divergence() {
        let mut a = Interner::new();
        a.intern("X");
        let mut b = Interner::new();
        b.intern("Y");
        b.intern("X");
        assert!(!a.is_prefix_of(&b));
        assert!(Interner::new().is_prefix_of(&a));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        let a = i.intern("A");
        let b = i.intern("B");
        let got: Vec<_> = i.iter().collect();
        assert_eq!(got, vec![(a, "A"), (b, "B")]);
    }
}

//! String interning for symbolic variable names.
//!
//! Symbolic expressions refer to variables through a [`VarId`], a dense
//! `u32` handle produced by an [`Interner`]. Analyses create one interner
//! per program and qualify names by program unit or storage location
//! (e.g. `"SEISPROC::NTRC"`, `"/CBLK/+8"`), so distinct storage gets a
//! distinct id even when source names collide.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned variable name.
///
/// Ordering follows interning order; it is used only to canonicalize term
/// order inside expressions, never for semantic comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl VarId {
    /// Raw index into the interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between names and [`VarId`]s.
#[derive(Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    ids: HashMap<String, VarId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.ids.get(name).copied()
    }

    /// The name behind `id`.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("A");
        let b = i.intern("B");
        assert_ne!(a, b);
        assert_eq!(i.intern("A"), a);
        assert_eq!(i.name(a), "A");
        assert_eq!(i.name(b), "B");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("X").is_none());
        let x = i.intern("X");
        assert_eq!(i.get("X"), Some(x));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        let a = i.intern("A");
        let b = i.intern("B");
        let got: Vec<_> = i.iter().collect();
        assert_eq!(got, vec![(a, "A"), (b, "B")]);
    }
}

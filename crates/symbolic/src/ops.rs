//! Deterministic accounting of symbolic-analysis work.
//!
//! The paper bounds "reasonable" compilation at twelve hours and four
//! gigabytes; loops whose analysis exceeds the bound fall into the
//! `complexity` hindrance category. Wall-clock limits are not
//! reproducible in tests, so the prover charges every unit of symbolic
//! work to an [`OpCounter`] with an optional hard budget. Pass timings
//! for Figures 2/3 report both ops and seconds.

use std::cell::Cell;

/// Error-marker returned when a charge would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

/// A single-threaded counter of symbolic operations with an optional
/// budget. Once the budget trips, the counter stays in the exceeded
/// state until [`OpCounter::reset`].
#[derive(Debug)]
pub struct OpCounter {
    spent: Cell<u64>,
    budget: Option<u64>,
    exceeded: Cell<bool>,
}

impl OpCounter {
    /// A counter that never trips.
    pub fn unlimited() -> Self {
        OpCounter {
            spent: Cell::new(0),
            budget: None,
            exceeded: Cell::new(false),
        }
    }

    /// A counter that trips once more than `budget` ops are charged.
    pub fn with_budget(budget: u64) -> Self {
        OpCounter {
            spent: Cell::new(0),
            budget: Some(budget),
            exceeded: Cell::new(false),
        }
    }

    /// Charges `n` ops. On exceeding the budget the counter latches the
    /// exceeded flag and reports [`BudgetExceeded`].
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        let spent = self.spent.get().saturating_add(n);
        self.spent.set(spent);
        if let Some(b) = self.budget {
            if spent > b {
                self.exceeded.set(true);
                return Err(BudgetExceeded);
            }
        }
        Ok(())
    }

    /// Total ops charged so far (including any charge that tripped).
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Whether the budget has ever been exceeded since the last reset.
    pub fn exceeded(&self) -> bool {
        self.exceeded.get()
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Clears the spent count and the exceeded latch.
    pub fn reset(&self) {
        self.spent.set(0);
        self.exceeded.set(false);
    }
}

impl Default for OpCounter {
    fn default() -> Self {
        OpCounter::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let c = OpCounter::unlimited();
        assert!(c.charge(u64::MAX).is_ok());
        assert!(!c.exceeded());
        assert_eq!(c.spent(), u64::MAX);
    }

    #[test]
    fn budget_latches() {
        let c = OpCounter::with_budget(10);
        assert!(c.charge(10).is_ok());
        assert!(!c.exceeded());
        assert_eq!(c.charge(1), Err(BudgetExceeded));
        assert!(c.exceeded());
        // Still exceeded even for a free charge.
        assert_eq!(c.charge(0), Err(BudgetExceeded));
        c.reset();
        assert!(!c.exceeded());
        assert_eq!(c.spent(), 0);
        assert!(c.charge(5).is_ok());
    }

    #[test]
    fn spent_saturates() {
        let c = OpCounter::unlimited();
        c.charge(u64::MAX).unwrap();
        c.charge(10).unwrap();
        assert_eq!(c.spent(), u64::MAX);
    }
}

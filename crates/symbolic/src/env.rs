//! Assumption environments: what the compiler knows about variable values.
//!
//! An [`AssumeEnv`] maps variables to symbolic [`Range`]s. Environments
//! are built by range propagation (loop bounds, IF guards, input-deck
//! relations, interprocedural constants) and consumed by the
//! [`crate::Prover`]. Scoped refinement — e.g. entering the THEN branch
//! of `IF (N .GT. 0)` — is expressed with [`AssumeEnv::child`] plus
//! additional assumptions.

use std::collections::HashMap;

use crate::expr::Expr;
use crate::intern::VarId;
use crate::range::Range;

/// A persistent map from variables to ranges with cheap scoped layering.
#[derive(Clone, Debug, Default)]
pub struct AssumeEnv {
    ranges: HashMap<VarId, Range>,
}

impl AssumeEnv {
    /// An empty environment: every variable is rangeless.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `r` for `v`, intersecting with any existing assumption.
    pub fn assume(&mut self, v: VarId, r: Range) {
        match self.ranges.get_mut(&v) {
            Some(old) => *old = old.intersect(&r),
            None => {
                self.ranges.insert(v, r);
            }
        }
    }

    /// Replaces any existing assumption for `v` (used when a variable is
    /// redefined and old facts must be killed).
    pub fn set(&mut self, v: VarId, r: Range) {
        self.ranges.insert(v, r);
    }

    /// Drops all knowledge about `v` (kill on unanalyzable assignment).
    pub fn kill(&mut self, v: VarId) {
        self.ranges.remove(&v);
    }

    /// The assumed range of `v`; rangeless if never assumed.
    pub fn range_of(&self, v: VarId) -> Range {
        self.ranges.get(&v).cloned().unwrap_or_default()
    }

    /// True if `v` has no usable bound in either direction.
    pub fn is_rangeless(&self, v: VarId) -> bool {
        self.range_of(v).is_rangeless()
    }

    /// Constant value of `v`, if its range is an exact integer.
    pub fn const_of(&self, v: VarId) -> Option<i64> {
        self.ranges.get(&v).and_then(Range::as_const)
    }

    /// A copy to refine within a nested scope.
    pub fn child(&self) -> AssumeEnv {
        self.clone()
    }

    /// Number of variables with assumptions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when no assumptions exist.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates over all assumptions.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Range)> {
        self.ranges.iter()
    }

    /// Assumes `v == e` exactly.
    pub fn assume_eq(&mut self, v: VarId, e: Expr) {
        self.assume(v, Range::exact(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_rangeless() {
        let env = AssumeEnv::new();
        assert!(env.is_rangeless(VarId(0)));
        assert_eq!(env.const_of(VarId(0)), None);
    }

    #[test]
    fn assume_intersects() {
        let mut env = AssumeEnv::new();
        let v = VarId(0);
        env.assume(v, Range::at_least(Expr::int(0)));
        env.assume(v, Range::at_most(Expr::int(10)));
        assert_eq!(env.range_of(v), Range::between(Expr::int(0), Expr::int(10)));
        env.assume(v, Range::at_least(Expr::int(5)));
        assert_eq!(env.range_of(v), Range::between(Expr::int(5), Expr::int(10)));
    }

    #[test]
    fn set_replaces_and_kill_removes() {
        let mut env = AssumeEnv::new();
        let v = VarId(1);
        env.assume(v, Range::exact(Expr::int(3)));
        env.set(v, Range::at_least(Expr::int(0)));
        assert_eq!(env.range_of(v), Range::at_least(Expr::int(0)));
        env.kill(v);
        assert!(env.is_rangeless(v));
    }

    #[test]
    fn child_is_independent() {
        let mut env = AssumeEnv::new();
        env.assume_eq(VarId(0), Expr::int(1));
        let mut c = env.child();
        c.assume_eq(VarId(1), Expr::int(2));
        assert_eq!(env.const_of(VarId(1)), None);
        assert_eq!(c.const_of(VarId(0)), Some(1));
        assert_eq!(c.const_of(VarId(1)), Some(2));
    }
}

//! Symbolic value ranges.
//!
//! A [`Range`] bounds an integer value by optional symbolic expressions
//! `[lo, hi]` (inclusive). A variable whose environment entry has neither
//! endpoint — or no entry at all — is *rangeless*: the paper observes that
//! comparisons of subscripts involving such variables make symbolic
//! analysis futile and force conservative assumptions (§3, the
//! `rangeless` hindrance category).

use crate::expr::Expr;

/// An inclusive symbolic interval; either endpoint may be absent.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Range {
    /// Greatest known lower bound, if any.
    pub lo: Option<Expr>,
    /// Least known upper bound, if any.
    pub hi: Option<Expr>,
}

impl Range {
    /// The range with no information (rangeless).
    pub fn unbounded() -> Self {
        Range { lo: None, hi: None }
    }

    /// The singleton range `[e, e]`.
    pub fn exact(e: Expr) -> Self {
        Range {
            lo: Some(e.clone()),
            hi: Some(e),
        }
    }

    /// `[lo, hi]`.
    pub fn between(lo: Expr, hi: Expr) -> Self {
        Range {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// `[lo, +inf)`.
    pub fn at_least(lo: Expr) -> Self {
        Range {
            lo: Some(lo),
            hi: None,
        }
    }

    /// `(-inf, hi]`.
    pub fn at_most(hi: Expr) -> Self {
        Range {
            lo: None,
            hi: Some(hi),
        }
    }

    /// True when neither endpoint is known.
    pub fn is_rangeless(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// True when both endpoints are known and equal.
    pub fn as_exact(&self) -> Option<&Expr> {
        match (&self.lo, &self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Constant value, when the range is an exact integer.
    pub fn as_const(&self) -> Option<i64> {
        self.as_exact().and_then(Expr::as_int)
    }

    /// Pointwise sum: `[a,b] + [c,d] = [a+c, b+d]` (absent stays absent).
    pub fn add(&self, other: &Range) -> Range {
        Range {
            lo: both(&self.lo, &other.lo, |a, b| a.add(b.clone())),
            hi: both(&self.hi, &other.hi, |a, b| a.add(b.clone())),
        }
    }

    /// Shift by a known expression.
    pub fn shift(&self, by: &Expr) -> Range {
        Range {
            lo: self.lo.as_ref().map(|e| e.add(by.clone())),
            hi: self.hi.as_ref().map(|e| e.add(by.clone())),
        }
    }

    /// Multiplication by a constant; negative constants swap endpoints.
    pub fn scale(&self, k: i64) -> Range {
        if k >= 0 {
            Range {
                lo: self.lo.as_ref().map(|e| e.scale(k)),
                hi: self.hi.as_ref().map(|e| e.scale(k)),
            }
        } else {
            Range {
                lo: self.hi.as_ref().map(|e| e.scale(k)),
                hi: self.lo.as_ref().map(|e| e.scale(k)),
            }
        }
    }

    /// Interval union using MIN/MAX expressions on matching endpoints;
    /// a missing endpoint on either side erases it in the result.
    pub fn union(&self, other: &Range) -> Range {
        Range {
            lo: both(&self.lo, &other.lo, |a, b| {
                Expr::min_of(vec![a.clone(), b.clone()])
            }),
            hi: both(&self.hi, &other.hi, |a, b| {
                Expr::max_of(vec![a.clone(), b.clone()])
            }),
        }
    }

    /// Interval intersection: keeps the tighter endpoint where both exist,
    /// either endpoint where only one exists.
    pub fn intersect(&self, other: &Range) -> Range {
        Range {
            lo: merge(&self.lo, &other.lo, |a, b| {
                Expr::max_of(vec![a.clone(), b.clone()])
            }),
            hi: merge(&self.hi, &other.hi, |a, b| {
                Expr::min_of(vec![a.clone(), b.clone()])
            }),
        }
    }

    /// Substitutes a variable in both endpoints.
    pub fn subst(&self, v: crate::VarId, repl: &Expr) -> Range {
        Range {
            lo: self.lo.as_ref().map(|e| e.subst(v, repl)),
            hi: self.hi.as_ref().map(|e| e.subst(v, repl)),
        }
    }
}

fn both(
    a: &Option<Expr>,
    b: &Option<Expr>,
    f: impl FnOnce(&Expr, &Expr) -> Expr,
) -> Option<Expr> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        _ => None,
    }
}

fn merge(
    a: &Option<Expr>,
    b: &Option<Expr>,
    f: impl FnOnce(&Expr, &Expr) -> Expr,
) -> Option<Expr> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::VarId;

    fn v(i: u32) -> Expr {
        Expr::var(VarId(i))
    }

    #[test]
    fn rangeless_detection() {
        assert!(Range::unbounded().is_rangeless());
        assert!(!Range::at_least(Expr::int(0)).is_rangeless());
        assert!(!Range::exact(v(0)).is_rangeless());
    }

    #[test]
    fn exact_and_const() {
        let r = Range::exact(Expr::int(7));
        assert_eq!(r.as_const(), Some(7));
        assert_eq!(Range::between(Expr::int(1), Expr::int(2)).as_const(), None);
    }

    #[test]
    fn add_shift_scale() {
        let r = Range::between(Expr::int(1), v(0));
        let s = r.add(&Range::exact(Expr::int(3)));
        assert_eq!(s, Range::between(Expr::int(4), v(0).add(Expr::int(3))));
        assert_eq!(r.shift(&Expr::int(3)), s);
        let neg = r.scale(-2);
        assert_eq!(neg.lo, Some(v(0).scale(-2)));
        assert_eq!(neg.hi, Some(Expr::int(-2)));
    }

    #[test]
    fn union_keeps_sound_bounds() {
        let a = Range::between(Expr::int(1), Expr::int(5));
        let b = Range::between(Expr::int(3), Expr::int(9));
        let u = a.union(&b);
        assert_eq!(u, Range::between(Expr::int(1), Expr::int(9)));
        let half = Range::at_least(Expr::int(0)).union(&a);
        assert_eq!(half.lo, Some(Expr::int(0)));
        assert_eq!(half.hi, None);
    }

    #[test]
    fn intersect_tightens() {
        let a = Range::at_least(Expr::int(1));
        let b = Range::at_most(v(0));
        let i = a.intersect(&b);
        assert_eq!(i, Range::between(Expr::int(1), v(0)));
        let c = Range::between(Expr::int(0), Expr::int(10)).intersect(&Range::between(
            Expr::int(5),
            Expr::int(20),
        ));
        assert_eq!(c, Range::between(Expr::int(5), Expr::int(10)));
    }

    #[test]
    fn subst_hits_both_ends() {
        let r = Range::between(v(0), v(0).add(Expr::int(1)));
        let s = r.subst(VarId(0), &Expr::int(4));
        assert_eq!(s, Range::between(Expr::int(4), Expr::int(5)));
    }
}

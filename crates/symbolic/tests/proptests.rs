//! Property tests: canonicalization preserves semantics, and the prover
//! is sound (it never proves a relation that a concrete valuation
//! falsifies).

use proptest::prelude::*;

use apar_symbolic::{AssumeEnv, Expr, Interner, OpCounter, Prover, Range, VarId};

/// A reference AST evaluated naively, used to cross-check `Expr`'s
/// canonicalizing constructors.
#[derive(Clone, Debug)]
enum Raw {
    Const(i64),
    Var(u32),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Div(Box<Raw>, Box<Raw>),
    Mod(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
    Neg(Box<Raw>),
}

impl Raw {
    fn eval(&self, vals: &[i64]) -> Option<i64> {
        Some(match self {
            Raw::Const(k) => *k,
            Raw::Var(i) => vals[*i as usize % vals.len()],
            Raw::Add(a, b) => a.eval(vals)?.checked_add(b.eval(vals)?)?,
            Raw::Sub(a, b) => a.eval(vals)?.checked_sub(b.eval(vals)?)?,
            Raw::Mul(a, b) => a.eval(vals)?.checked_mul(b.eval(vals)?)?,
            Raw::Div(a, b) => {
                let d = b.eval(vals)?;
                if d == 0 {
                    return None;
                }
                a.eval(vals)?.checked_div(d)?
            }
            Raw::Mod(a, b) => {
                let d = b.eval(vals)?;
                if d == 0 {
                    return None;
                }
                a.eval(vals)?.checked_rem(d)?
            }
            Raw::Min(a, b) => a.eval(vals)?.min(b.eval(vals)?),
            Raw::Max(a, b) => a.eval(vals)?.max(b.eval(vals)?),
            Raw::Neg(a) => a.eval(vals)?.checked_neg()?,
        })
    }

    fn to_expr(&self, nvars: u32) -> Expr {
        match self {
            Raw::Const(k) => Expr::int(*k),
            Raw::Var(i) => Expr::var(VarId(i % nvars)),
            Raw::Add(a, b) => a.to_expr(nvars).add(b.to_expr(nvars)),
            Raw::Sub(a, b) => a.to_expr(nvars).sub(b.to_expr(nvars)),
            Raw::Mul(a, b) => a.to_expr(nvars).mul(b.to_expr(nvars)),
            Raw::Div(a, b) => a.to_expr(nvars).div(b.to_expr(nvars)),
            Raw::Mod(a, b) => a.to_expr(nvars).modulo(b.to_expr(nvars)),
            Raw::Min(a, b) => Expr::min_of(vec![a.to_expr(nvars), b.to_expr(nvars)]),
            Raw::Max(a, b) => Expr::max_of(vec![a.to_expr(nvars), b.to_expr(nvars)]),
            Raw::Neg(a) => a.to_expr(nvars).neg(),
        }
    }
}

const NVARS: u32 = 4;

fn raw_strategy() -> impl Strategy<Value = Raw> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Raw::Const),
        (0u32..NVARS).prop_map(Raw::Var),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Max(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Raw::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    /// Canonicalization is evaluation-preserving wherever the reference
    /// evaluation is defined.
    #[test]
    fn canonical_form_preserves_semantics(
        raw in raw_strategy(),
        vals in proptest::collection::vec(-9i64..=9, NVARS as usize),
    ) {
        let expr = raw.to_expr(NVARS);
        let reference = raw.eval(&vals);
        let canonical = expr.eval(&|v: VarId| vals.get(v.index()).copied());
        // The canonical evaluator may fail (overflow in a rearranged
        // order, unknowns from constructor overflow); when both sides are
        // defined they must agree.
        if let (Some(a), Some(b)) = (reference, canonical) {
            prop_assert_eq!(a, b, "raw {:?}", raw);
        }
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn subst_commutes_with_eval(
        raw in raw_strategy(),
        vals in proptest::collection::vec(-9i64..=9, NVARS as usize),
        k in -9i64..=9,
    ) {
        let expr = raw.to_expr(NVARS);
        let target = VarId(0);
        let substituted = expr.subst(target, &Expr::int(k));
        let mut patched = vals.clone();
        patched[0] = k;
        let direct = expr.eval(&|v: VarId| patched.get(v.index()).copied());
        let via_subst = substituted.eval(&|v: VarId| patched.get(v.index()).copied());
        if let (Some(a), Some(b)) = (direct, via_subst) {
            prop_assert_eq!(a, b);
        }
    }

    /// The prover never proves `a <= b` when a concrete valuation inside
    /// the assumed ranges gives `a > b` (soundness of the Range Test
    /// foundation).
    #[test]
    fn prover_le_is_sound(
        raw_a in raw_strategy(),
        raw_b in raw_strategy(),
        bounds in proptest::collection::vec((-10i64..=10, 0i64..=10), NVARS as usize),
        // fractional positions used to pick concrete values inside ranges
        picks in proptest::collection::vec(0.0f64..1.0, NVARS as usize),
    ) {
        let a = raw_a.to_expr(NVARS);
        let b = raw_b.to_expr(NVARS);
        let mut env = AssumeEnv::new();
        let mut vals = vec![0i64; NVARS as usize];
        for (i, ((lo, width), t)) in bounds.iter().zip(&picks).enumerate() {
            let hi = lo + width;
            env.assume(VarId(i as u32), Range::between(Expr::int(*lo), Expr::int(hi)));
            vals[i] = lo + ((*t * (*width as f64 + 1.0)) as i64).min(*width);
        }
        let ops = OpCounter::unlimited();
        let prover = Prover::new(&env, &ops);
        if prover.prove_le(&a, &b) {
            if let (Some(va), Some(vb)) = (
                a.eval(&|v: VarId| vals.get(v.index()).copied()),
                b.eval(&|v: VarId| vals.get(v.index()).copied()),
            ) {
                prop_assert!(va <= vb, "proved {:?} <= {:?} but {} > {}", a, b, va, vb);
            }
        }
        if prover.prove_ne(&a, &b) {
            if let (Some(va), Some(vb)) = (
                a.eval(&|v: VarId| vals.get(v.index()).copied()),
                b.eval(&|v: VarId| vals.get(v.index()).copied()),
            ) {
                prop_assert!(va != vb, "proved {:?} != {:?} but both = {}", a, b, va);
            }
        }
    }

    /// `range_of` endpoints really bound the expression.
    #[test]
    fn range_of_is_sound(
        raw in raw_strategy(),
        bounds in proptest::collection::vec((-10i64..=10, 0i64..=10), NVARS as usize),
        picks in proptest::collection::vec(0.0f64..1.0, NVARS as usize),
    ) {
        let e = raw.to_expr(NVARS);
        let mut env = AssumeEnv::new();
        let mut vals = vec![0i64; NVARS as usize];
        for (i, ((lo, width), t)) in bounds.iter().zip(&picks).enumerate() {
            let hi = lo + width;
            env.assume(VarId(i as u32), Range::between(Expr::int(*lo), Expr::int(hi)));
            vals[i] = lo + ((*t * (*width as f64 + 1.0)) as i64).min(*width);
        }
        let ops = OpCounter::unlimited();
        let prover = Prover::new(&env, &ops);
        let r = prover.range_of(&e);
        let lookup = |v: VarId| vals.get(v.index()).copied();
        if let Some(val) = e.eval(&lookup) {
            if let Some(klo) = r.lo.as_ref().and_then(Expr::as_int) {
                prop_assert!(klo <= val, "lo {} > value {} for {:?}", klo, val, e);
            }
            if let Some(khi) = r.hi.as_ref().and_then(Expr::as_int) {
                prop_assert!(val <= khi, "hi {} < value {} for {:?}", khi, val, e);
            }
        }
    }
}

#[test]
fn display_round_trip_sanity() {
    let mut ints = Interner::new();
    let n = ints.intern("N");
    let e = Expr::var(n).scale(3).add(Expr::int(2));
    assert_eq!(format!("{}", e.display(&ints)), "2 + 3*N");
}

//! Property tests: canonicalization preserves semantics, and the prover
//! is sound (it never proves a relation that a concrete valuation
//! falsifies).

use apar_minicheck::{forall, Rng};
use apar_symbolic::{AssumeEnv, Expr, Interner, OpCounter, Prover, Range, VarId};

/// A reference AST evaluated naively, used to cross-check `Expr`'s
/// canonicalizing constructors.
#[derive(Clone, Debug)]
enum Raw {
    Const(i64),
    Var(u32),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Div(Box<Raw>, Box<Raw>),
    Mod(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
    Neg(Box<Raw>),
}

impl Raw {
    fn eval(&self, vals: &[i64]) -> Option<i64> {
        Some(match self {
            Raw::Const(k) => *k,
            Raw::Var(i) => vals[*i as usize % vals.len()],
            Raw::Add(a, b) => a.eval(vals)?.checked_add(b.eval(vals)?)?,
            Raw::Sub(a, b) => a.eval(vals)?.checked_sub(b.eval(vals)?)?,
            Raw::Mul(a, b) => a.eval(vals)?.checked_mul(b.eval(vals)?)?,
            Raw::Div(a, b) => {
                let d = b.eval(vals)?;
                if d == 0 {
                    return None;
                }
                a.eval(vals)?.checked_div(d)?
            }
            Raw::Mod(a, b) => {
                let d = b.eval(vals)?;
                if d == 0 {
                    return None;
                }
                a.eval(vals)?.checked_rem(d)?
            }
            Raw::Min(a, b) => a.eval(vals)?.min(b.eval(vals)?),
            Raw::Max(a, b) => a.eval(vals)?.max(b.eval(vals)?),
            Raw::Neg(a) => a.eval(vals)?.checked_neg()?,
        })
    }

    fn to_expr(&self, nvars: u32) -> Expr {
        match self {
            Raw::Const(k) => Expr::int(*k),
            Raw::Var(i) => Expr::var(VarId(i % nvars)),
            Raw::Add(a, b) => a.to_expr(nvars).add(b.to_expr(nvars)),
            Raw::Sub(a, b) => a.to_expr(nvars).sub(b.to_expr(nvars)),
            Raw::Mul(a, b) => a.to_expr(nvars).mul(b.to_expr(nvars)),
            Raw::Div(a, b) => a.to_expr(nvars).div(b.to_expr(nvars)),
            Raw::Mod(a, b) => a.to_expr(nvars).modulo(b.to_expr(nvars)),
            Raw::Min(a, b) => Expr::min_of(vec![a.to_expr(nvars), b.to_expr(nvars)]),
            Raw::Max(a, b) => Expr::max_of(vec![a.to_expr(nvars), b.to_expr(nvars)]),
            Raw::Neg(a) => a.to_expr(nvars).neg(),
        }
    }
}

const NVARS: u32 = 4;

/// Random expression tree, depth-bounded; leaf probability rises as the
/// budget shrinks, mirroring `prop_recursive`'s shape.
fn raw_gen(rng: &mut Rng, depth: u32) -> Raw {
    if depth == 0 || rng.weighted(0.3) {
        return if rng.bool() {
            Raw::Const(rng.int_in(-20, 20))
        } else {
            Raw::Var(rng.int_in(0, NVARS as i64 - 1) as u32)
        };
    }
    let bin = |rng: &mut Rng, f: fn(Box<Raw>, Box<Raw>) -> Raw| {
        let a = raw_gen(rng, depth - 1);
        let b = raw_gen(rng, depth - 1);
        f(Box::new(a), Box::new(b))
    };
    match rng.int_in(0, 7) {
        0 => bin(rng, Raw::Add),
        1 => bin(rng, Raw::Sub),
        2 => bin(rng, Raw::Mul),
        3 => bin(rng, Raw::Div),
        4 => bin(rng, Raw::Mod),
        5 => bin(rng, Raw::Min),
        6 => bin(rng, Raw::Max),
        _ => Raw::Neg(Box::new(raw_gen(rng, depth - 1))),
    }
}

fn vals_gen(rng: &mut Rng) -> Vec<i64> {
    (0..NVARS).map(|_| rng.int_in(-9, 9)).collect()
}

/// Assumed ranges plus one concrete valuation inside them.
fn env_gen(rng: &mut Rng) -> (AssumeEnv, Vec<i64>) {
    let mut env = AssumeEnv::new();
    let mut vals = vec![0i64; NVARS as usize];
    for (i, v) in vals.iter_mut().enumerate() {
        let lo = rng.int_in(-10, 10);
        let width = rng.int_in(0, 10);
        let hi = lo + width;
        env.assume(VarId(i as u32), Range::between(Expr::int(lo), Expr::int(hi)));
        *v = rng.int_in(lo, hi);
    }
    (env, vals)
}

/// Canonicalization is evaluation-preserving wherever the reference
/// evaluation is defined.
#[test]
fn canonical_form_preserves_semantics() {
    forall("canonical_form_preserves_semantics", 256, |rng| {
        let raw = raw_gen(rng, 4);
        let vals = vals_gen(rng);
        let expr = raw.to_expr(NVARS);
        let reference = raw.eval(&vals);
        let canonical = expr.eval(&|v: VarId| vals.get(v.index()).copied());
        // The canonical evaluator may fail (overflow in a rearranged
        // order, unknowns from constructor overflow); when both sides
        // are defined they must agree.
        if let (Some(a), Some(b)) = (reference, canonical) {
            assert_eq!(a, b, "raw {:?}", raw);
        }
    });
}

/// Substitution commutes with evaluation.
#[test]
fn subst_commutes_with_eval() {
    forall("subst_commutes_with_eval", 256, |rng| {
        let raw = raw_gen(rng, 4);
        let vals = vals_gen(rng);
        let k = rng.int_in(-9, 9);
        let expr = raw.to_expr(NVARS);
        let target = VarId(0);
        let substituted = expr.subst(target, &Expr::int(k));
        let mut patched = vals.clone();
        patched[0] = k;
        let direct = expr.eval(&|v: VarId| patched.get(v.index()).copied());
        let via_subst = substituted.eval(&|v: VarId| patched.get(v.index()).copied());
        if let (Some(a), Some(b)) = (direct, via_subst) {
            assert_eq!(a, b);
        }
    });
}

/// The prover never proves `a <= b` when a concrete valuation inside
/// the assumed ranges gives `a > b` (soundness of the Range Test
/// foundation).
#[test]
fn prover_le_is_sound() {
    forall("prover_le_is_sound", 256, |rng| {
        let raw_a = raw_gen(rng, 4);
        let raw_b = raw_gen(rng, 4);
        let (env, vals) = env_gen(rng);
        let a = raw_a.to_expr(NVARS);
        let b = raw_b.to_expr(NVARS);
        let ops = OpCounter::unlimited();
        let prover = Prover::new(&env, &ops);
        if prover.prove_le(&a, &b) {
            if let (Some(va), Some(vb)) = (
                a.eval(&|v: VarId| vals.get(v.index()).copied()),
                b.eval(&|v: VarId| vals.get(v.index()).copied()),
            ) {
                assert!(va <= vb, "proved {:?} <= {:?} but {} > {}", a, b, va, vb);
            }
        }
        if prover.prove_ne(&a, &b) {
            if let (Some(va), Some(vb)) = (
                a.eval(&|v: VarId| vals.get(v.index()).copied()),
                b.eval(&|v: VarId| vals.get(v.index()).copied()),
            ) {
                assert!(va != vb, "proved {:?} != {:?} but both = {}", a, b, va);
            }
        }
    });
}

/// `range_of` endpoints really bound the expression.
#[test]
fn range_of_is_sound() {
    forall("range_of_is_sound", 256, |rng| {
        let raw = raw_gen(rng, 4);
        let (env, vals) = env_gen(rng);
        let e = raw.to_expr(NVARS);
        let ops = OpCounter::unlimited();
        let prover = Prover::new(&env, &ops);
        let r = prover.range_of(&e);
        let lookup = |v: VarId| vals.get(v.index()).copied();
        if let Some(val) = e.eval(&lookup) {
            if let Some(klo) = r.lo.as_ref().and_then(Expr::as_int) {
                assert!(klo <= val, "lo {} > value {} for {:?}", klo, val, e);
            }
            if let Some(khi) = r.hi.as_ref().and_then(Expr::as_int) {
                assert!(val <= khi, "hi {} < value {} for {:?}", khi, val, e);
            }
        }
    });
}

#[test]
fn display_round_trip_sanity() {
    let mut ints = Interner::new();
    let n = ints.intern("N");
    let e = Expr::var(n).scale(3).add(Expr::int(2));
    assert_eq!(format!("{}", e.display(&ints)), "2 + 3*N");
}

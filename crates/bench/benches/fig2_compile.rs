//! Figure 2 benchmark: whole-application compile time per suite under
//! the baseline profile.

use apar_core::{Compiler, CompilerProfile};
use apar_workloads as wl;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_compile");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let mut suites = vec![
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
        wl::linpack::suite(),
    ];
    suites.extend(wl::perfect::codes());
    for w in suites {
        g.bench_function(&w.name, |b| {
            b.iter(|| {
                Compiler::new(CompilerProfile::polaris2008())
                    .compile_source(&w.name, &w.source)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Speculation benchmark: wall cost of the runtime dependence test on
//! the gather kernel — committed (permutation index) vs rolled back
//! (folding index) — against the non-speculative baseline. The modeled
//! virtual-time comparison lives in the `speculation` binary; this
//! bench tracks the real interpreter overhead of checkpoint + conflict
//! logging.

use apar_core::{Compiler, CompilerProfile};
use apar_runtime::{run, ExecConfig, ExecMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn gather_src(collide: bool) -> String {
    let c = if collide { 1 } else { 0 };
    format!(
        "PROGRAM SPECK
  REAL A(16384), B(16384)
  INTEGER IX(16384)
  COMMON /DAT/ A, B, IX
  DO I = 1, 16384
    B(I) = REAL(I) * 0.5
    IF ({c} .EQ. 1) THEN
      IX(I) = MOD(I, 8) + 1
    ELSE
      IX(I) = 16385 - I
    ENDIF
  ENDDO
!$TARGET GUPD
  DO I = 1, 16384
    A(IX(I)) = B(I) * 2.0 + 1.0 + B(I) * B(I) * 0.25 - B(I) / 3.0
  ENDDO
  S = 0.0
  DO I = 1, 16384
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("speculation_gather");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let cases = [
        ("baseline", CompilerProfile::polaris2008(), false),
        (
            "spec_commit",
            CompilerProfile::polaris2008().with_runtime_test(),
            false,
        ),
        (
            "spec_rollback",
            CompilerProfile::polaris2008().with_runtime_test(),
            true,
        ),
    ];
    for (name, profile, collide) in cases {
        let r = Compiler::new(profile)
            .compile_source("speck", &gather_src(collide))
            .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                run(
                    &r.rp,
                    &[],
                    &ExecConfig {
                        mode: ExecMode::Auto,
                        threads: 4,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Engine microbenchmarks: the symbolic prover (Range Test core) and
//! the interpreter's serial throughput.

use apar_minifort::frontend;
use apar_runtime::{run, ExecConfig};
use apar_symbolic::{AssumeEnv, Expr, OpCounter, Prover, Range, VarId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    // Range Test core: the linearized-row disjointness proof.
    let mut env = AssumeEnv::new();
    let (ld, j, jp, i1, i2) = (VarId(0), VarId(1), VarId(2), VarId(3), VarId(4));
    env.assume(ld, Range::at_least(Expr::int(1)));
    env.assume(j, Range::between(Expr::int(1), Expr::int(100)));
    env.assume(jp, Range::between(Expr::var(j).add(Expr::int(1)), Expr::int(100)));
    env.assume(i1, Range::between(Expr::int(1), Expr::var(ld)));
    env.assume(i2, Range::between(Expr::int(1), Expr::var(ld)));
    let a = Expr::var(j).mul(Expr::var(ld)).add(Expr::var(i1));
    let b = Expr::var(jp).mul(Expr::var(ld)).add(Expr::var(i2));
    g.bench_function("range_test_nonlinear_disjointness", |bch| {
        bch.iter(|| {
            let ops = OpCounter::unlimited();
            let p = Prover::new(&env, &ops);
            assert!(p.prove_lt(&a, &b));
        })
    });
    // Interpreter throughput on a tight numeric loop.
    let rp = frontend(
        "PROGRAM P\nS = 0.0\nDO I = 1, 20000\nS = S + SQRT(REAL(I)) * 0.001\nENDDO\nWRITE(*,*) S\nEND\n",
    )
    .unwrap();
    g.bench_function("interpreter_20k_sqrt_loop", |bch| {
        bch.iter(|| run(&rp, &[], &ExecConfig { seg_words: 1 << 12, ..Default::default() }).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

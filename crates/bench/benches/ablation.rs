//! Ablation benchmark: compile cost of each capability profile on the
//! SEISMIC suite (the design-choice study of DESIGN.md §5).

use apar_core::{Compiler, CompilerProfile};
use apar_workloads as wl;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_profiles");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let w = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    let mut profiles = vec![CompilerProfile::polaris2008()];
    profiles.extend(CompilerProfile::ablations());
    profiles.push(CompilerProfile::full());
    for p in profiles {
        let name = p.name.clone();
        g.bench_function(&name, |b| {
            b.iter(|| {
                Compiler::new(p.clone())
                    .compile_source(&w.name, &w.source)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

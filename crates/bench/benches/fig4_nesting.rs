//! Figure 4 benchmark: nesting-metric computation over the suites.

use apar_core::nesting::target_nesting;
use apar_minifort::frontend;
use apar_workloads as wl;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_nesting");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let w = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    let rp = frontend(&w.source).unwrap();
    g.bench_function("seismic_target_nesting", |b| b.iter(|| target_nesting(&rp)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Incremental-recompilation benchmark: a one-line edit in a five-suite
//! batch.
//!
//! One [`CompileService`] compiles the five-suite batch cold, then the
//! same batch with a single one-line value edit in the first suite. The
//! four untouched suites answer from the result cache; the edited
//! suite misses it, recompiles, and splices every loop whose per-loop
//! content key is unchanged from the shared store. The artifact records
//! the headline — edited-batch wall within 10% of cold wall — plus the
//! loop-tier counters and the two verdicts CI gates on:
//!
//! * **identity** — every report in the edited batch is bit-identical
//!   to a plain service-free compile of the same (edited) source;
//! * **splices happened** — the warm pass scored at least one loop hit
//!   and zero splice refusals.
//!
//! Wall clock is recorded, not gated: a loaded CI runner is not a
//! correctness signal.

use apar_core::{Compiler, CompilerProfile};
use apar_service::{CompileService, ServiceConfig, SuiteRequest};
use apar_workloads as wl;

use crate::json::{Json, ToJson};

/// One suite's cold-vs-incremental measurement.
#[derive(Clone, Debug)]
pub struct IncrBenchRow {
    pub suite: String,
    pub loops: usize,
    /// True for the suite that received the one-line edit.
    pub edited: bool,
    /// Wall seconds first-sight (cold caches).
    pub cold_s: f64,
    /// Wall seconds in the post-edit batch.
    pub incr_s: f64,
    /// Report bit-identical to a plain compile of the same source.
    pub identical: bool,
}

/// The whole `BENCH_incr.json` payload.
#[derive(Clone, Debug)]
pub struct IncrBenchData {
    pub workers: usize,
    pub rows: Vec<IncrBenchRow>,
    /// Name of the edited suite and the edit applied to it.
    pub edited_suite: String,
    pub edit: String,
    /// Batch wall seconds, cold and post-edit.
    pub cold_wall_s: f64,
    pub incr_wall_s: f64,
    /// `incr_wall_s / cold_wall_s` — the headline is this staying < 0.10.
    pub incr_over_cold: f64,
    pub incr_within_10pct: bool,
    /// Result-cache hits in the post-edit batch (the four untouched
    /// suites).
    pub incr_result_hits: usize,
    /// Loop-tier counters scored by the post-edit batch: records
    /// spliced, lookups that re-analyzed, and splices discarded because
    /// structural verification failed (must be zero).
    pub loop_hits: u64,
    pub loop_misses: u64,
    pub loop_refusals: u64,
    /// Every row identical to its plain reference.
    pub all_identical: bool,
}

impl IncrBenchData {
    /// The CI contract: the edited batch spliced at least one loop
    /// record, discarded none, and every report is bit-identical to a
    /// plain compile. (The 10% headline is recorded, not gated.)
    pub fn ok(&self) -> bool {
        self.all_identical && self.loop_hits > 0 && self.loop_refusals == 0
    }
}

impl ToJson for IncrBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite", self.suite.to_json()),
            ("loops", self.loops.to_json()),
            ("edited", self.edited.to_json()),
            ("cold_s", self.cold_s.to_json()),
            ("incr_s", self.incr_s.to_json()),
            ("identical", self.identical.to_json()),
        ])
    }
}

impl ToJson for IncrBenchData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers", self.workers.to_json()),
            ("edited_suite", self.edited_suite.to_json()),
            ("edit", self.edit.to_json()),
            ("cold_wall_s", self.cold_wall_s.to_json()),
            ("incr_wall_s", self.incr_wall_s.to_json()),
            ("incr_over_cold", self.incr_over_cold.to_json()),
            ("incr_within_10pct", self.incr_within_10pct.to_json()),
            ("incr_result_hits", self.incr_result_hits.to_json()),
            ("loop_hits", self.loop_hits.to_json()),
            ("loop_misses", self.loop_misses.to_json()),
            ("loop_refusals", self.loop_refusals.to_json()),
            ("all_identical", self.all_identical.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// The five-suite batch the headline is measured on.
pub fn five_suites() -> Vec<SuiteRequest> {
    let seismic = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    let gamess = wl::gamess::suite(wl::DataSize::Small);
    let sander = wl::sander::suite(wl::DataSize::Small);
    let perfect = &wl::perfect::codes()[0];
    let linpack = wl::linpack::suite();
    vec![
        SuiteRequest::new(seismic.name.clone(), seismic.source),
        SuiteRequest::new(gamess.name.clone(), gamess.source),
        SuiteRequest::new(sander.name.clone(), sander.source),
        SuiteRequest::new(perfect.name.clone(), perfect.source.clone()),
        SuiteRequest::new(linpack.name.clone(), linpack.source),
    ]
}

/// Applies a one-line *value-only* edit. Value edits keep the
/// program's name set — and so the interner — stable, which is what
/// lets untouched units keep their loop keys.
///
/// Prefers a scalar float assignment in the main `PROGRAM` unit: the
/// driver is never called, so per-loop keys outside it survive and the
/// recompile is the realistic "tweak a parameter, rerun" dev loop. An
/// edit inside a shared utility instead invalidates — correctly — the
/// loops of every unit that inlines it, which the callee-edit tests
/// cover; the headline measures the common case.
pub fn one_line_edit(src: &str) -> Option<(String, String)> {
    let mut in_main = false;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("PROGRAM") {
            in_main = true;
            continue;
        }
        if in_main && t == "END" {
            break;
        }
        if !in_main {
            continue;
        }
        if let Some((lhs, rhs)) = t.split_once(" = ") {
            if !lhs.contains('(') && rhs.contains('.') {
                if let Ok(v) = rhs.parse::<f64>() {
                    let edited_line = line.replacen(rhs, &format!("{}", v + 0.5), 1);
                    let edited = src.replacen(line, &edited_line, 1);
                    return Some((edited, format!("{t} -> {}", edited_line.trim())));
                }
            }
        }
    }
    // Fallback: the first value-only assignment anywhere.
    for line in src.lines() {
        if line.contains("1.0") && line.contains('=') && !line.trim_start().starts_with("DO ") {
            let edited_line = line.replacen("1.0", "1.5", 1);
            let edited = src.replacen(line, &edited_line, 1);
            return Some((edited, format!("{} -> {}", line.trim(), edited_line.trim())));
        }
    }
    None
}

/// Cold batch, one-line edit, post-edit batch, identity check.
///
/// Runs three independent trials (fresh service each) and reports the
/// median-ratio trial's walls and counters; the correctness gates —
/// identity, refusals — are aggregated across *all* trials, so a
/// violation in any trial fails [`IncrBenchData::ok`]. Wall clock on a
/// shared runner spikes; a report must never.
pub fn measure(workers: usize) -> IncrBenchData {
    let mut trials: Vec<IncrBenchData> = (0..3).map(|_| measure_once(workers)).collect();
    let every_identical = trials.iter().all(|t| t.all_identical);
    let min_hits = trials.iter().map(|t| t.loop_hits).min().unwrap_or(0);
    let max_refusals = trials.iter().map(|t| t.loop_refusals).max().unwrap_or(0);
    trials.sort_by(|a, b| a.incr_over_cold.total_cmp(&b.incr_over_cold));
    let mut median = trials.swap_remove(trials.len() / 2);
    median.all_identical = every_identical;
    if min_hits == 0 {
        median.loop_hits = 0; // any spliceless trial fails the gate
    }
    median.loop_refusals = median.loop_refusals.max(max_refusals);
    median
}

/// One trial: a fresh service, one cold batch, one post-edit batch.
pub fn measure_once(workers: usize) -> IncrBenchData {
    let reqs = five_suites();
    let (edited_src, edit) =
        one_line_edit(&reqs[0].source).expect("first suite has an editable line");
    let mut edited_reqs = reqs.clone();
    edited_reqs[0] = SuiteRequest::new(reqs[0].name.clone(), edited_src);

    // Plain service-free reference compiles of the *edited* batch.
    let plain = Compiler::new(CompilerProfile::polaris2008());
    let reference: Vec<String> = edited_reqs
        .iter()
        .map(|r| {
            plain
                .compile_source_recovering(&r.name, &r.source)
                .report_signature()
        })
        .collect();

    let service = CompileService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let cold = service.compile_many(&reqs);
    let before = service.facts_store().stats();
    let incr = service.compile_many(&edited_reqs);
    let delta = service.facts_store().stats().since(&before);

    let rows: Vec<IncrBenchRow> = edited_reqs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let cold_o = &cold.outcomes[i];
            let incr_o = &incr.outcomes[i];
            let loops = incr_o.artifact.compile().map_or(0, |c| c.loops.len());
            IncrBenchRow {
                suite: r.name.clone(),
                loops,
                edited: i == 0,
                cold_s: cold_o.wall_s,
                incr_s: incr_o.wall_s,
                identical: incr_o.artifact.signature() == reference[i],
            }
        })
        .collect();

    let incr_over_cold = incr.stats.wall_s / cold.stats.wall_s.max(1e-9);
    IncrBenchData {
        workers,
        all_identical: rows.iter().all(|r| r.identical),
        edited_suite: reqs[0].name.clone(),
        edit,
        cold_wall_s: cold.stats.wall_s,
        incr_wall_s: incr.stats.wall_s,
        incr_over_cold,
        incr_within_10pct: incr_over_cold < 0.10,
        incr_result_hits: incr.stats.result_hits,
        loop_hits: delta.loop_hits,
        loop_misses: delta.loop_misses,
        loop_refusals: delta.loop_refusals,
        rows,
    }
}

/// ASCII table mirroring the artifact.
pub fn render(d: &IncrBenchData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "incremental bench: one-line edit in {} ({} workers)\n",
        d.edited_suite, d.workers
    ));
    out.push_str(&format!("edit: {}\n", d.edit));
    out.push_str(&format!(
        "{:<14} {:>6} {:>7} {:>10} {:>10} {:>6}\n",
        "suite", "loops", "edited", "cold_s", "incr_s", "ident"
    ));
    for r in &d.rows {
        out.push_str(&format!(
            "{:<14} {:>6} {:>7} {:>10.4} {:>10.6} {:>6}\n",
            r.suite, r.loops, r.edited, r.cold_s, r.incr_s, r.identical
        ));
    }
    out.push_str(&format!(
        "cold {:.3}s  post-edit {:.4}s  ratio {:.4} (<0.10: {})\n",
        d.cold_wall_s, d.incr_wall_s, d.incr_over_cold, d.incr_within_10pct
    ));
    out.push_str(&format!(
        "result hits {}  loop splices h/m/r {}/{}/{}  identical {}\n",
        d.incr_result_hits, d.loop_hits, d.loop_misses, d.loop_refusals, d.all_identical
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measure_splices_and_stays_identical() {
        let d = measure(2);
        assert!(d.all_identical, "{:?}", d);
        assert_eq!(d.incr_result_hits, 4, "four untouched suites: {:?}", d);
        assert!(d.loop_hits > 0, "the edited suite spliced: {:?}", d);
        assert_eq!(d.loop_refusals, 0, "{:?}", d);
        assert!(d.ok());
    }
}

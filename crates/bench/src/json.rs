//! JSON conversions for the figure artifacts.
//!
//! The value tree and renderer live in [`apar_core::jsonio`] (shared
//! with the service layer); this module re-exports them and keeps the
//! `ToJson` impls for bench-local row types.

use crate::ablation::AblationRow;
use crate::compile_bench::CompileBenchRow;
use crate::exec_bench::{ExecBenchData, ExecBenchRow};
use crate::fig1::{Fig1Data, Fig1Row};
use crate::fig2::Fig2Row;
use crate::fig4::Fig4Data;
use crate::fig5::Fig5Row;
use crate::spec::{DynamicRow, ReachRow, SpecReport};

pub use apar_core::jsonio::{Json, ToJson};

impl ToJson for CompileBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("loops", self.loops.to_json()),
            ("threads", self.threads.to_json()),
            ("serial_s", self.serial_s.to_json()),
            ("parallel_s", self.parallel_s.to_json()),
            ("speedup", self.speedup.to_json()),
            ("serial_ops", self.serial_ops.to_json()),
            ("parallel_ops", self.parallel_ops.to_json()),
            ("panicked_loops", self.panicked_loops.to_json()),
            ("budget_tripped_loops", self.budget_tripped_loops.to_json()),
            ("diag_units", self.diag_units.to_json()),
            ("identical", self.identical.to_json()),
        ])
    }
}

impl ToJson for ExecBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite", self.suite.to_json()),
            ("loops", self.loops.to_json()),
            ("emitted", self.emitted.to_json()),
            ("not_emittable", self.not_emittable.to_json()),
            ("reparse_diags", self.reparse_diags.to_json()),
            ("serial_virt_s", self.serial_virt_s.to_json()),
            ("auto_virt_s", self.auto_virt_s.to_json()),
            ("speedup", self.speedup.to_json()),
            ("regions", self.regions.to_json()),
            ("correct", self.correct.to_json()),
        ])
    }
}

impl ToJson for ExecBenchData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads", self.threads.to_json()),
            ("all_correct", self.all_correct().to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile", self.profile.to_json()),
            ("per_app", self.per_app.to_json()),
            ("total", self.total.to_json()),
        ])
    }
}

impl ToJson for Fig1Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("component", self.component.to_json()),
            ("serial_s", self.serial_s.to_json()),
            ("mpi_s", self.mpi_s.to_json()),
            ("openmp_s", self.openmp_s.to_json()),
            ("polaris_s", self.polaris_s.to_json()),
            ("serial_wall_s", self.serial_wall_s.to_json()),
            ("polaris_regions", self.polaris_regions.to_json()),
        ])
    }
}

impl ToJson for Fig1Data {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("size", self.size.to_json()),
            ("threads", self.threads.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("statements", self.statements.to_json()),
            ("total_seconds", self.total_seconds.to_json()),
            ("total_ops", self.total_ops.to_json()),
            (
                "seconds_per_statement",
                self.seconds_per_statement.to_json(),
            ),
            ("ops_per_statement", self.ops_per_statement.to_json()),
            ("per_pass", self.per_pass.to_json()),
        ])
    }
}

impl ToJson for Fig4Data {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("perfect", self.perfect.to_json()),
            ("seismic", self.seismic.to_json()),
        ])
    }
}

impl ToJson for Fig5Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("total_targets", self.total_targets.to_json()),
            ("counts", self.counts.to_json()),
        ])
    }
}

impl ToJson for ReachRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile", self.profile.to_json()),
            ("per_app", self.per_app.to_json()),
            ("total_static", self.total_static.to_json()),
            ("total_speculative", self.total_speculative.to_json()),
        ])
    }
}

impl ToJson for DynamicRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario", self.scenario.to_json()),
            ("baseline_virt_s", self.baseline_virt_s.to_json()),
            ("spec_virt_s", self.spec_virt_s.to_json()),
            ("speculations", self.speculations.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
        ])
    }
}

impl ToJson for SpecReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("reach", self.reach.to_json()),
            ("dynamic", self.dynamic.to_json()),
        ])
    }
}

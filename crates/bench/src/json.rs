//! Minimal JSON output for figure artifacts.
//!
//! The offline workspace has no serde; artifacts are small and their
//! shapes are fixed, so a hand-rolled value tree is enough. Rendering
//! is pretty-printed with two-space indentation to keep the artifact
//! files diffable, matching what `serde_json::to_string_pretty` used to
//! produce for these structs.

use apar_core::nesting::NestingAverages;

use crate::ablation::AblationRow;
use crate::compile_bench::CompileBenchRow;
use crate::exec_bench::{ExecBenchData, ExecBenchRow};
use crate::fig1::{Fig1Data, Fig1Row};
use crate::fig2::Fig2Row;
use crate::fig4::Fig4Data;
use crate::fig5::Fig5Row;
use crate::spec::{DynamicRow, ReachRow, SpecReport};

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a decimal point so the value reads back as float.
                    out.push_str(&format!("{:.1}", v));
                } else {
                    out.push_str(&format!("{}", v));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    it.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    out.push_str(&format!("\"{}\": ", k));
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl ToJson for CompileBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("loops", self.loops.to_json()),
            ("threads", self.threads.to_json()),
            ("serial_s", self.serial_s.to_json()),
            ("parallel_s", self.parallel_s.to_json()),
            ("speedup", self.speedup.to_json()),
            ("serial_ops", self.serial_ops.to_json()),
            ("parallel_ops", self.parallel_ops.to_json()),
            ("panicked_loops", self.panicked_loops.to_json()),
            ("budget_tripped_loops", self.budget_tripped_loops.to_json()),
            ("diag_units", self.diag_units.to_json()),
            ("identical", self.identical.to_json()),
        ])
    }
}

impl ToJson for ExecBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite", self.suite.to_json()),
            ("loops", self.loops.to_json()),
            ("emitted", self.emitted.to_json()),
            ("not_emittable", self.not_emittable.to_json()),
            ("reparse_diags", self.reparse_diags.to_json()),
            ("serial_virt_s", self.serial_virt_s.to_json()),
            ("auto_virt_s", self.auto_virt_s.to_json()),
            ("speedup", self.speedup.to_json()),
            ("regions", self.regions.to_json()),
            ("correct", self.correct.to_json()),
        ])
    }
}

impl ToJson for ExecBenchData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads", self.threads.to_json()),
            ("all_correct", self.all_correct().to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for NestingAverages {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("outer_subs", self.outer_subs.to_json()),
            ("outer_loops", self.outer_loops.to_json()),
            ("enclosed_subs", self.enclosed_subs.to_json()),
            ("enclosed_loops", self.enclosed_loops.to_json()),
            ("n", self.n.to_json()),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile", self.profile.to_json()),
            ("per_app", self.per_app.to_json()),
            ("total", self.total.to_json()),
        ])
    }
}

impl ToJson for Fig1Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("component", self.component.to_json()),
            ("serial_s", self.serial_s.to_json()),
            ("mpi_s", self.mpi_s.to_json()),
            ("openmp_s", self.openmp_s.to_json()),
            ("polaris_s", self.polaris_s.to_json()),
            ("serial_wall_s", self.serial_wall_s.to_json()),
            ("polaris_regions", self.polaris_regions.to_json()),
        ])
    }
}

impl ToJson for Fig1Data {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("size", self.size.to_json()),
            ("threads", self.threads.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("statements", self.statements.to_json()),
            ("total_seconds", self.total_seconds.to_json()),
            ("total_ops", self.total_ops.to_json()),
            (
                "seconds_per_statement",
                self.seconds_per_statement.to_json(),
            ),
            ("ops_per_statement", self.ops_per_statement.to_json()),
            ("per_pass", self.per_pass.to_json()),
        ])
    }
}

impl ToJson for Fig4Data {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("perfect", self.perfect.to_json()),
            ("seismic", self.seismic.to_json()),
        ])
    }
}

impl ToJson for Fig5Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app", self.app.to_json()),
            ("total_targets", self.total_targets.to_json()),
            ("counts", self.counts.to_json()),
        ])
    }
}

impl ToJson for ReachRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile", self.profile.to_json()),
            ("per_app", self.per_app.to_json()),
            ("total_static", self.total_static.to_json()),
            ("total_speculative", self.total_speculative.to_json()),
        ])
    }
}

impl ToJson for DynamicRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario", self.scenario.to_json()),
            ("baseline_virt_s", self.baseline_virt_s.to_json()),
            ("spec_virt_s", self.spec_virt_s.to_json()),
            ("speculations", self.speculations.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
        ])
    }
}

impl ToJson for SpecReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("reach", self.reach.to_json()),
            ("dynamic", self.dynamic.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"b\"".into())),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("f", Json::Num(1.5)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"a \\\"b\\\"\""), "{}", s);
        assert!(s.contains("\"f\": 1.5"), "{}", s);
        assert!(s.contains("\"empty\": []"), "{}", s);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Int(2).render(), "2");
    }
}

//! End-to-end source-to-source benchmark: compile each application
//! suite, emit directive-annotated MiniFort through the codegen
//! backend, reparse the artifact with the recovering front end, and
//! execute both the original serial source and the annotated artifact
//! on the thread-parallel interpreter.
//!
//! Two properties are the benchmark's contract, checked per suite and
//! folded into `correct`:
//!
//! * the artifact round-trips (zero reparse diagnostics), and
//! * the parallel run is bit-identical to serial (same output lines,
//!   same STOP state).
//!
//! The speedup column is the serial-to-parallel ratio of *virtual*
//! seconds (deterministic modeled time on the 4-CPU machine, fork/join
//! overhead included), so suites dominated by tiny inner loops honestly
//! report values below 1.0 — the same effect the paper's Figure 1
//! discusses for Polaris-parallelized inner loops.

use apar_core::report::SkipReason;
use apar_core::{Compiler, CompilerProfile};
use apar_minifort::frontend;
use apar_runtime::{run, ExecConfig, ExecMode};
use apar_workloads::all_suites;

use crate::bar;
use crate::deck;

pub const THREADS: usize = 4;
const SEG: usize = 1 << 22;

/// One suite's end-to-end measurement.
#[derive(Clone, Debug)]
pub struct ExecBenchRow {
    pub suite: String,
    /// Loops the analysis stage reported on.
    pub loops: usize,
    /// Loops emitted under a `!$PAR DO` directive.
    pub emitted: usize,
    /// Parallelizable loops the backend refused to emit
    /// (`SkipReason::NotEmittable` ledger entries).
    pub not_emittable: usize,
    /// Diagnostics from reparsing the emitted artifact (0 = clean
    /// round-trip).
    pub reparse_diags: usize,
    /// Virtual seconds of the serial original.
    pub serial_virt_s: f64,
    /// Virtual seconds of the annotated artifact at [`THREADS`].
    pub auto_virt_s: f64,
    /// `serial_virt_s / auto_virt_s`.
    pub speedup: f64,
    /// Parallel regions the annotated run forked.
    pub regions: u64,
    /// Round-trip clean, both runs succeeded, and outputs bit-identical.
    pub correct: bool,
}

/// Whole-benchmark artifact (`BENCH_exec.json`).
#[derive(Clone, Debug)]
pub struct ExecBenchData {
    pub threads: usize,
    pub rows: Vec<ExecBenchRow>,
}

impl ExecBenchData {
    pub fn all_correct(&self) -> bool {
        self.rows.iter().all(|r| r.correct)
    }
}

/// Measures every suite whose name passes `filter` (empty = all).
pub fn measure(threads: usize, filter: &[String]) -> ExecBenchData {
    let rows = all_suites()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|f| w.name.eq_ignore_ascii_case(f)))
        .map(|w| measure_suite(&w, threads))
        .collect();
    ExecBenchData { threads, rows }
}

/// Compiles, emits, reparses, and runs one suite both ways.
pub fn measure_suite(w: &apar_workloads::Workload, threads: usize) -> ExecBenchRow {
    let d = deck(w);
    let emit = Compiler::new(CompilerProfile::polaris2008())
        .compile_and_emit(&w.name, &w.source)
        .expect("compile_and_emit");
    let not_emittable = emit
        .result
        .report
        .skipped
        .iter()
        .filter(|s| matches!(s.reason, SkipReason::NotEmittable { .. }))
        .count();

    let serial_rp = frontend(&w.source).expect("serial frontend");
    let serial = run(
        &serial_rp,
        &d,
        &ExecConfig {
            seg_words: SEG,
            ..Default::default()
        },
    );
    // The annotated artifact is executed from its *reparsed* form: the
    // emitted text, not the in-memory annotation, is what's measured.
    let auto = run(
        &emit.reparsed,
        &d,
        &ExecConfig {
            mode: ExecMode::Auto,
            threads,
            seg_words: SEG,
            ..Default::default()
        },
    );

    let (serial_virt_s, auto_virt_s, regions, correct) = match (&serial, &auto) {
        (Ok(s), Ok(a)) => (
            s.virt_seconds(),
            a.virt_seconds(),
            a.regions,
            emit.reparse_diags.is_empty() && s.output == a.output && s.stopped == a.stopped,
        ),
        (Ok(s), Err(_)) => (s.virt_seconds(), f64::NAN, 0, false),
        _ => (f64::NAN, f64::NAN, 0, false),
    };
    ExecBenchRow {
        suite: w.name.clone(),
        loops: emit.result.loops.len(),
        emitted: emit.emitted,
        not_emittable,
        reparse_diags: emit.reparse_diags.len(),
        serial_virt_s,
        auto_virt_s,
        speedup: serial_virt_s / auto_virt_s,
        regions,
        correct,
    }
}

/// ASCII rendering of the end-to-end table.
pub fn render(data: &ExecBenchData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Source-to-source execution — emit, reparse, run ({} modeled CPUs; virtual seconds)\n",
        data.threads
    ));
    out.push_str(&format!(
        "{:>14} {:>6} {:>8} {:>6} {:>9} {:>9} {:>8}  {:>8}\n",
        "suite", "loops", "emitted", "noemit", "serial", "auto", "speedup", "verdict"
    ));
    let max = data
        .rows
        .iter()
        .map(|r| r.speedup)
        .filter(|s| s.is_finite())
        .fold(0.0, f64::max);
    for r in &data.rows {
        out.push_str(&format!(
            "{:>14} {:>6} {:>8} {:>6} {:>9.3} {:>9.3} {:>7.2}x  {:>8}  {}\n",
            r.suite,
            r.loops,
            r.emitted,
            r.not_emittable,
            r.serial_virt_s,
            r.auto_virt_s,
            r.speedup,
            if r.correct { "ok" } else { "MISMATCH" },
            bar(r.speedup, max, 24),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linpack_runs_end_to_end_correct() {
        let data = measure(4, &["LINPACK".to_string()]);
        assert_eq!(data.rows.len(), 1);
        let r = &data.rows[0];
        assert!(r.correct, "{:?}", r);
        assert!(r.emitted > 0);
        assert_eq!(r.reparse_diags, 0);
        assert!(r.regions > 0);
        assert!(r.speedup.is_finite());
    }

    #[test]
    fn filter_is_case_insensitive() {
        let data = measure(2, &["linpack".to_string()]);
        assert_eq!(data.rows.len(), 1);
        assert_eq!(data.rows[0].suite, "LINPACK");
    }
}

//! Crash-torture benchmark for the durable cache store.
//!
//! Two phases, one artifact (`BENCH_persist.json`):
//!
//! * **Warm restart** — compile a corpus cold through a store, drop the
//!   service (a clean shutdown), reopen the directory, and measure
//!   recovery wall plus how much of the second batch answers from the
//!   recovered result tier. Every recovered answer must be bit-identical
//!   to a plain service-free compile.
//! * **Crash torture** ([`torture`]) — seeded write → kill-at-random-
//!   offset → recover → recompile cycles. Each cycle clones a clean
//!   snapshot of the tier logs, damages one of them (truncation at a
//!   random offset simulating `kill -9` mid-append, a flipped bit, or a
//!   clobbered word), then recovers and recompiles at 1 or 4 workers.
//!   Every few cycles the damage is injected at *write* time instead,
//!   through the store's seeded fault shim (short writes, failed
//!   flushes and renames, ENOSPC), and a forced-low compaction
//!   threshold keeps the rename path hot.
//!
//! The gates CI holds: zero escaped panics, zero report divergences,
//! and a nonzero warm-hit count — corruption must cost at most the
//! damaged records, never correctness and never the process.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use apar_core::{Compiler, CompilerProfile};
use apar_minicheck::{Rng, BASE_SEED};
use apar_service::{
    CompileService, PersistentStore, Served, ServiceConfig, StoreFaults, StoreStats, SuiteRequest,
    Tier,
};

use crate::json::{Json, ToJson};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Scratch directories must be unique per use even when tests in one
/// process run concurrently (the store's single-writer lock is
/// process-wide).
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "apar_persist_bench_{}_{}_{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The torture corpus: three small distinct suites, each with a loop
/// that calls a subroutine so the inliner populates the facts tier.
pub fn corpus() -> Vec<SuiteRequest> {
    let alpha = "\
PROGRAM PALPHA
REAL A(100)
DO I = 1, 100
CALL PFILL(A, I)
ENDDO
END
SUBROUTINE PFILL(X, K)
REAL X(100)
X(K) = K * 2.0
END
";
    let beta = "\
PROGRAM PBETA
REAL B(80), C(80)
DO I = 1, 80
CALL PADD(B, C, I)
ENDDO
DO I = 1, 80
C(I) = B(I) * 3.0
ENDDO
END
SUBROUTINE PADD(X, Y, K)
REAL X(80)
REAL Y(80)
X(K) = Y(K) + 1.0
END
";
    let gamma = "\
PROGRAM PGAMMA
REAL S
REAL D(60)
S = 0.0
DO I = 1, 60
CALL PSCALE(D, I)
ENDDO
DO I = 1, 60
S = S + D(I)
ENDDO
END
SUBROUTINE PSCALE(X, K)
REAL X(60)
X(K) = K * 1.5
END
";
    vec![
        SuiteRequest::new("palpha", alpha),
        SuiteRequest::new("pbeta", beta),
        SuiteRequest::new("pgamma", gamma),
    ]
}

/// Plain service-free reference signatures, one per corpus suite — the
/// bit-identity oracle every recovered-state compile is held to.
pub fn reference_signatures() -> Vec<String> {
    let plain = Compiler::new(CompilerProfile::polaris2008());
    corpus()
        .iter()
        .map(|r| {
            plain
                .compile_source_recovering(&r.name, &r.source)
                .report_signature()
        })
        .collect()
}

/// The whole `BENCH_persist.json` payload.
#[derive(Clone, Debug, Default)]
pub struct PersistBenchData {
    /// Torture cycles run (the warm-restart phase is extra).
    pub cycles: usize,
    pub workers_checked: Vec<usize>,
    /// Panics that escaped recovery or a recovered-state compile. Gate:
    /// zero.
    pub escaped_panics: usize,
    /// Recovered-state reports that differed from a plain cold compile.
    /// Gate: zero.
    pub divergences: usize,
    /// Result-cache hits served from recovered state across all
    /// cycles. Gate: nonzero (recovery actually recovers).
    pub warm_hits: u64,
    /// True when the clean warm-restart phase ran ([`measure`]); the
    /// torture-only entry point ([`torture`]) leaves it false and its
    /// gate disarmed.
    pub warm_phase: bool,
    /// Warm-restart phase: hits in the post-restart batch (3 = all).
    pub restart_hits: u64,
    /// Totals across every recovery in the run.
    pub recovered_facts: u64,
    pub recovered_loops: u64,
    pub recovered_results: u64,
    pub recovery_refusals: u64,
    pub append_errors: u64,
    pub compactions: u64,
    /// Warm-restart walls: cold batch, reopen+recover, warm batch.
    pub cold_wall_s: f64,
    pub recover_wall_s: f64,
    pub warm_wall_s: f64,
    /// On-disk bytes of the clean snapshot the torture clones.
    pub snapshot_bytes: u64,
    /// First few failing cycles, described (empty on a green run).
    pub crashers: Vec<String>,
}

impl PersistBenchData {
    /// The CI contract.
    pub fn ok(&self) -> bool {
        self.escaped_panics == 0
            && self.divergences == 0
            && self.warm_hits > 0
            && (!self.warm_phase || self.restart_hits > 0)
    }

    fn absorb_stats(&mut self, s: &StoreStats) {
        self.recovered_facts += s.recovered_facts;
        self.recovered_loops += s.recovered_loops;
        self.recovered_results += s.recovered_results;
        self.recovery_refusals += s.recovery_refusals;
        self.append_errors += s.append_errors;
        self.compactions += s.compactions;
    }

    fn note_crasher(&mut self, desc: String) {
        if self.crashers.len() < 10 {
            self.crashers.push(desc);
        }
    }
}

impl ToJson for PersistBenchData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles", self.cycles.to_json()),
            ("workers_checked", self.workers_checked.to_json()),
            ("escaped_panics", self.escaped_panics.to_json()),
            ("divergences", self.divergences.to_json()),
            ("warm_hits", (self.warm_hits as usize).to_json()),
            ("restart_hits", (self.restart_hits as usize).to_json()),
            ("recovered_facts", (self.recovered_facts as usize).to_json()),
            ("recovered_loops", (self.recovered_loops as usize).to_json()),
            (
                "recovered_results",
                (self.recovered_results as usize).to_json(),
            ),
            (
                "recovery_refusals",
                (self.recovery_refusals as usize).to_json(),
            ),
            ("append_errors", (self.append_errors as usize).to_json()),
            ("compactions", (self.compactions as usize).to_json()),
            ("cold_wall_s", self.cold_wall_s.to_json()),
            ("recover_wall_s", self.recover_wall_s.to_json()),
            ("warm_wall_s", self.warm_wall_s.to_json()),
            ("snapshot_bytes", (self.snapshot_bytes as usize).to_json()),
            (
                "crashers",
                Json::Arr(self.crashers.iter().map(|c| c.to_json()).collect()),
            ),
            ("ok", self.ok().to_json()),
        ])
    }
}

fn service(workers: usize) -> CompileService {
    CompileService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
}

/// Seeds a clean store at `dir` and returns the three tier logs' bytes
/// (the snapshot every torture cycle clones).
fn seed_snapshot(dir: &Path) -> [Vec<u8>; 3] {
    let svc = service(2).with_store(dir);
    let batch = svc.compile_many(&corpus());
    assert!(
        batch.outcomes.iter().all(|o| o.served == Served::Cold),
        "snapshot seed must be cold"
    );
    drop(svc);
    Tier::ALL.map(|t| {
        let name = match t {
            Tier::Facts => "facts.log",
            Tier::Loops => "loops.log",
            Tier::Results => "results.log",
        };
        fs::read(dir.join(name)).expect("seeded tier log")
    })
}

/// One seeded mutation: kill-at-random-offset truncation, a flipped
/// bit, or a clobbered 4-byte word. Total over any length.
fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    match rng.usize_in(0, 2) {
        0 => {
            // The process died mid-append: everything past a random
            // offset never reached the disk.
            let keep = rng.usize_in(0, bytes.len() - 1);
            bytes.truncate(keep);
        }
        1 => {
            let at = rng.usize_in(0, bytes.len() - 1);
            bytes[at] ^= 1 << rng.usize_in(0, 7);
        }
        _ => {
            let at = rng.usize_in(0, bytes.len() - 1);
            for i in at..bytes.len().min(at + 4) {
                bytes[i] = (rng.next_u64() & 0xFF) as u8;
            }
        }
    }
}

/// What one recovered-state check observed.
struct CycleCheck {
    stats: StoreStats,
    hits: u64,
    diverged: bool,
}

/// Opens a service over `dir`, recompiles the corpus, and holds every
/// answer to the plain reference. Runs under `catch_unwind` upstairs.
fn check_recovery(dir: &Path, workers: usize, refs: &[String]) -> CycleCheck {
    let svc = service(workers).with_store(dir);
    let batch = svc.compile_many(&corpus());
    let hits = batch
        .outcomes
        .iter()
        .filter(|o| o.served == Served::CacheHit)
        .count() as u64;
    let diverged = batch
        .outcomes
        .iter()
        .zip(refs)
        .any(|(o, r)| &o.artifact.signature() != r);
    CycleCheck {
        stats: svc.store_stats(),
        hits,
        diverged,
    }
}

/// The crash-torture loop: `cycles` seeded kill/recover/recompile
/// rounds over clean-snapshot clones. Also the store-loader fuzzer the
/// `fuzz_compile` binary drives — same corpus, same mutators, same
/// zero-panic / bit-identity verdicts.
pub fn torture(cycles: usize) -> PersistBenchData {
    let mut data = PersistBenchData {
        cycles,
        workers_checked: vec![1, 4],
        ..Default::default()
    };

    let snap_dir = scratch("snapshot");
    let clean = seed_snapshot(&snap_dir);
    let _ = fs::remove_dir_all(&snap_dir);
    data.snapshot_bytes = clean.iter().map(|b| b.len() as u64).sum();
    let refs = reference_signatures();

    // Caught panics from hostile bytes print backtraces by default;
    // silence the hook for the duration (same policy as the compile
    // fuzzer).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for cycle in 0..cycles {
        let mut rng = Rng::new(BASE_SEED ^ (cycle as u64).wrapping_mul(GOLDEN));
        let workers = if cycle % 2 == 0 { 1 } else { 4 };
        let dir = scratch("cycle");

        let checked = if cycle % 8 == 7 {
            // Fault-injected *write* cycle: the damage happens inside
            // append/flush/rename, then a clean service recovers from
            // whatever actually landed.
            let faults = StoreFaults {
                seed: rng.next_u64(),
                write_fail_1_in: 4,
                short_write_1_in: 3,
                flush_fail_1_in: 5,
                rename_fail_1_in: 2,
                read_fail_1_in: 0,
            };
            catch_unwind(AssertUnwindSafe(|| {
                let store = PersistentStore::open_with_faults(&dir, faults)
                    .with_compact_bytes(256);
                let svc = service(workers).attach_store(store);
                let batch = svc.compile_many(&corpus());
                let diverged = batch
                    .outcomes
                    .iter()
                    .zip(&refs)
                    .any(|(o, r)| &o.artifact.signature() != r);
                let stats = svc.store_stats();
                drop(svc);
                let mut after = check_recovery(&dir, workers, &refs);
                after.diverged |= diverged;
                after.stats.append_errors += stats.append_errors;
                after.stats.compactions += stats.compactions;
                after
            }))
        } else {
            // Clone the clean snapshot, damage one tier, recover.
            fs::create_dir_all(&dir).expect("cycle dir");
            for (tier, bytes) in ["facts.log", "loops.log", "results.log"]
                .iter()
                .zip(clean.iter())
            {
                let mut copy = bytes.clone();
                if Tier::ALL[cycle % 3].file_name() == *tier {
                    mutate(&mut rng, &mut copy);
                }
                fs::write(dir.join(tier), &copy).expect("write cycle log");
            }
            catch_unwind(AssertUnwindSafe(|| check_recovery(&dir, workers, &refs)))
        };

        match checked {
            Ok(check) => {
                data.warm_hits += check.hits;
                data.absorb_stats(&check.stats);
                if check.diverged {
                    data.divergences += 1;
                    data.note_crasher(format!("cycle {cycle}: report divergence"));
                }
            }
            Err(p) => {
                data.escaped_panics += 1;
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                data.note_crasher(format!("cycle {cycle}: panic: {msg}"));
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
    std::panic::set_hook(prev);
    data
}

/// Warm-restart measurement plus the full torture loop.
pub fn measure(cycles: usize) -> PersistBenchData {
    let dir = scratch("warm");
    let refs = reference_signatures();

    let svc = service(2).with_store(&dir);
    let t0 = Instant::now();
    let cold = svc.compile_many(&corpus());
    let cold_wall_s = t0.elapsed().as_secs_f64();
    drop(svc);

    let t1 = Instant::now();
    let svc = service(2).with_store(&dir);
    let recover_wall_s = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let warm = svc.compile_many(&corpus());
    let warm_wall_s = t2.elapsed().as_secs_f64();

    let mut data = torture(cycles);
    data.warm_phase = true;
    data.cold_wall_s = cold_wall_s;
    data.recover_wall_s = recover_wall_s;
    data.warm_wall_s = warm_wall_s;
    data.restart_hits = warm
        .outcomes
        .iter()
        .filter(|o| o.served == Served::CacheHit)
        .count() as u64;
    data.absorb_stats(&svc.store_stats());
    for batch in [&cold, &warm] {
        if batch
            .outcomes
            .iter()
            .zip(&refs)
            .any(|(o, r)| &o.artifact.signature() != r)
        {
            data.divergences += 1;
            data.note_crasher("warm-restart phase: report divergence".to_string());
        }
    }
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
    data
}

/// ASCII table mirroring the artifact.
pub fn render(d: &PersistBenchData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "persistence bench: {} kill/recover cycles (workers {:?})\n",
        d.cycles, d.workers_checked
    ));
    if d.warm_phase {
        out.push_str(&format!(
            "warm restart: cold {:.4}s  recover {:.4}s  warm {:.4}s  hits {}/3\n",
            d.cold_wall_s, d.recover_wall_s, d.warm_wall_s, d.restart_hits
        ));
    }
    out.push_str(&format!(
        "torture: {} warm hits, recovered f/l/r {}/{}/{}, {} refusals, \
         {} append errors, {} compactions\n",
        d.warm_hits,
        d.recovered_facts,
        d.recovered_loops,
        d.recovered_results,
        d.recovery_refusals,
        d.append_errors,
        d.compactions
    ));
    out.push_str(&format!(
        "gates: escaped_panics={} divergences={} warm_hits>0={} (ok: {})\n",
        d.escaped_panics,
        d.divergences,
        d.warm_hits > 0,
        d.ok()
    ));
    for c in &d.crashers {
        out.push_str(&format!("  ! {}\n", c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measure_recovers_without_panic_or_divergence() {
        let d = measure(16);
        assert_eq!(d.escaped_panics, 0, "{}", render(&d));
        assert_eq!(d.divergences, 0, "{}", render(&d));
        assert_eq!(d.restart_hits, 3, "{}", render(&d));
        assert!(d.warm_hits > 0, "{}", render(&d));
        assert!(
            d.recovery_refusals > 0,
            "sixteen mutated cycles must refuse something: {}",
            render(&d)
        );
        assert!(d.ok(), "{}", render(&d));
    }

    #[test]
    fn mutators_are_deterministic() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        mutate(&mut Rng::new(42), &mut a);
        mutate(&mut Rng::new(42), &mut b);
        assert_eq!(a, b);
    }
}

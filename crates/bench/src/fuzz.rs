//! Structural compile fuzzer.
//!
//! Builds a fixed-seed corpus — randomly generated MiniFort programs
//! (clean and deliberately garbled), deadline-adversarial op bombs
//! (deep nests with huge trip counts that trip `loop_op_budget` late),
//! plus byte/token-level mutants of the real SEISMIC, GAMESS, and
//! SANDER sources — and asserts the crash-proofing contract on every
//! case:
//!
//! 1. **No panic.** `compile_source_recovering` is total: any byte
//!    sequence yields a report (possibly all diagnostics), never an
//!    abort. Contained per-loop panics (the sandbox) are *allowed*;
//!    they appear as `InternalError` skips, not process death.
//! 2. **Thread invariance.** The report signature at one worker thread
//!    equals the signature at N — including the containment counters.
//! 3. **Cancellation determinism.** A compile under a pre-expired
//!    [`CancelToken`] never panics, answers structurally
//!    (`deadline_expired` with every loop ledgered), and produces the
//!    same signature at 1 and N threads — cancellation checkpoints must
//!    not introduce schedule-dependent results.
//!
//! Failures are minimized by greedy line removal and reported with the
//! case seed, so every crasher is reproducible by construction.
//!
//! A second, deeper contract ([`run_exec`]) drives the same corpus all
//! the way through the source-to-source backend: compile, emit
//! annotated MiniFort, reparse the artifact, and execute it serially
//! and auto-parallel at 1 and 4 threads. Zero escaped panics anywhere
//! in that pipeline, the artifact must round-trip cleanly, and whenever
//! the serial run succeeds the parallel runs must reproduce its output
//! bit-for-bit.

use std::panic::{catch_unwind, AssertUnwindSafe};

use apar_core::{CancelToken, CompileResult, Compiler, CompilerProfile};
use apar_minicheck::fortgen::{gen_op_bomb, gen_program, GenConfig};
use apar_minicheck::mutate::mutate;
use apar_minicheck::{Rng, BASE_SEED};
use apar_runtime::{run as rt_run, ExecConfig, ExecMode};
use apar_workloads as wl;

use crate::compile_bench::report_signature;

/// How one corpus case failed the contract.
#[derive(Clone, Debug)]
pub enum FailKind {
    /// The compile panicked (escaped the sandbox / front end).
    Panic(String),
    /// Serial and parallel reports diverged.
    Divergence,
}

/// A failing case, minimized.
#[derive(Clone, Debug)]
pub struct Crasher {
    pub case: usize,
    pub seed: u64,
    pub kind: FailKind,
    /// Line-minimized source still exhibiting the failure.
    pub minimized: String,
}

/// Corpus-wide result.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub cases: usize,
    /// Cases whose recovering compile produced at least one diagnostic.
    pub diag_cases: usize,
    /// Cases where the per-loop sandbox contained a panic.
    pub contained_panics: usize,
    pub crashers: Vec<Crasher>,
}

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn case_seed(case: usize) -> u64 {
    BASE_SEED ^ (case as u64).wrapping_mul(GOLDEN)
}

/// Deterministically builds corpus case `case` of `total`.
///
/// Quarters: clean generated programs, garbled generated programs,
/// deadline-adversarial op bombs, and mutants of the real suite
/// sources.
pub fn corpus_case(case: usize, total: usize) -> String {
    let mut rng = Rng::new(case_seed(case));
    let quarter = total.div_ceil(4);
    if case < quarter {
        gen_program(&mut rng, &GenConfig::default())
    } else if case < 2 * quarter {
        let cfg = GenConfig {
            garble: 0.12,
            ..GenConfig::default()
        };
        gen_program(&mut rng, &cfg)
    } else if case < 3 * quarter {
        gen_op_bomb(&mut rng)
    } else {
        let suites = [
            wl::seismic::full_suite(wl::DataSize::Test, wl::Variant::Serial),
            wl::gamess::suite(wl::DataSize::Test),
            wl::sander::suite(wl::DataSize::Test),
        ];
        let src = &suites[case % suites.len()].source;
        let rounds = rng.usize_in(1, 4);
        mutate(&mut rng, src, rounds)
    }
}

/// Checks the no-panic + thread-invariance contract on one source.
/// `Ok` carries (diags nonempty, contained-panic count).
pub fn check_source(src: &str, threads: usize) -> Result<(bool, usize), FailKind> {
    let serial = Compiler::new(CompilerProfile::polaris2008());
    let parallel = Compiler::new(CompilerProfile::polaris2008().with_threads(threads));
    let compile = |c: &Compiler| -> Result<CompileResult, FailKind> {
        catch_unwind(AssertUnwindSafe(|| {
            c.compile_source_recovering("fuzz", src)
        }))
        .map_err(|p| {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            FailKind::Panic(msg)
        })
    };
    let sr = compile(&serial)?;
    let pr = compile(&parallel)?;
    if report_signature(&sr) != report_signature(&pr) {
        return Err(FailKind::Divergence);
    }
    // Cancellation determinism: a pre-expired token must degrade the
    // compile structurally and identically at any thread count — every
    // checkpoint is exercised without any wall-clock race.
    let cancelled_serial = Compiler::new(CompilerProfile::polaris2008())
        .with_cancel(CancelToken::expired());
    let cancelled_parallel = Compiler::new(CompilerProfile::polaris2008().with_threads(threads))
        .with_cancel(CancelToken::expired());
    let cs = compile(&cancelled_serial)?;
    let cp = compile(&cancelled_parallel)?;
    if report_signature(&cs) != report_signature(&cp) {
        return Err(FailKind::Divergence);
    }
    if cs.report.loops > 0 && !cs.report.deadline_expired {
        // A loop-bearing program must record the expiry; treat a
        // silent full compile under a cancelled token as divergence
        // from the cancellation contract.
        return Err(FailKind::Divergence);
    }
    Ok((!sr.report.diags.is_empty(), sr.report.panicked_loops()))
}

fn fails_same_way(src: &str, threads: usize, want: &FailKind) -> bool {
    matches!(
        (check_source(src, threads), want),
        (Err(FailKind::Panic(_)), FailKind::Panic(_))
            | (Err(FailKind::Divergence), FailKind::Divergence)
    )
}

/// Greedy line-removal minimization: repeatedly drops any line whose
/// removal preserves the failure, until a fixed point.
pub fn minimize(src: &str, threads: usize, kind: &FailKind) -> String {
    let mut lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let mut changed = true;
    while changed && lines.len() > 1 {
        changed = false;
        let mut i = 0;
        while i < lines.len() {
            let mut candidate = lines.clone();
            candidate.remove(i);
            let text = candidate.join("\n") + "\n";
            if fails_same_way(&text, threads, kind) {
                lines = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    lines.join("\n") + "\n"
}

/// Runs the corpus. Panics inside individual compiles are caught and
/// reported; the run itself always completes.
pub fn run(count: usize, threads: usize) -> FuzzReport {
    // The default panic hook prints a backtrace per caught panic;
    // silence it for the duration so garbled corpus entries don't
    // flood stderr. The per-loop sandbox keeps its behavior either way.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = FuzzReport {
        cases: count,
        ..Default::default()
    };
    for case in 0..count {
        let src = corpus_case(case, count);
        match check_source(&src, threads) {
            Ok((had_diags, contained)) => {
                if had_diags {
                    report.diag_cases += 1;
                }
                report.contained_panics += contained;
            }
            Err(kind) => {
                let minimized = minimize(&src, threads, &kind);
                report.crashers.push(Crasher {
                    case,
                    seed: case_seed(case),
                    kind,
                    minimized,
                });
            }
        }
    }
    std::panic::set_hook(prev);
    report
}

// ---------------- emit → reparse → execute contract ----------------

/// How one corpus case failed the end-to-end contract.
#[derive(Clone, Debug)]
pub enum ExecFail {
    /// A panic escaped the compile/emit/execute pipeline.
    Panic(String),
    /// The emitted artifact did not reparse cleanly (diagnostic count).
    RoundTrip(usize),
    /// A parallel run of the artifact did not reproduce the serial
    /// output (the string names the diverging configuration).
    Divergence(String),
}

/// A case failing the end-to-end contract.
#[derive(Clone, Debug)]
pub struct ExecCrasher {
    pub case: usize,
    pub seed: u64,
    pub fail: ExecFail,
    pub source: String,
}

/// Corpus-wide result of the end-to-end contract.
#[derive(Clone, Debug, Default)]
pub struct ExecFuzzReport {
    pub cases: usize,
    /// Cases whose serial execution succeeded (and were therefore
    /// compared against both parallel runs).
    pub executed: usize,
    /// Cases whose serial execution hit a runtime error (random
    /// programs trap; those skip the equality check but still must not
    /// panic).
    pub serial_errors: usize,
    /// Total loops emitted under `!$PAR DO` across the corpus.
    pub emitted_loops: usize,
    pub crashers: Vec<ExecCrasher>,
}

fn exec_config(mode: ExecMode, threads: usize) -> ExecConfig {
    ExecConfig {
        mode,
        threads,
        seg_words: 1 << 20,
        max_output: 2_000,
        // Fuel cap: mutated sources can contain infinite DO WHILE
        // loops; a capped run counts as a serial error, not a hang.
        max_virt: 2_000_000,
        ..Default::default()
    }
}

/// Pushes one source through compile → emit → reparse → execute and
/// checks the whole-pipeline contract. `Ok` carries
/// (serial ran to completion, loops emitted parallel).
pub fn check_emit_exec(src: &str) -> Result<(bool, usize), ExecFail> {
    let panic_msg = |p: Box<dyn std::any::Any + Send>| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ExecFail::Panic(msg)
    };
    let compiler = Compiler::new(CompilerProfile::polaris2008());
    let emit = catch_unwind(AssertUnwindSafe(|| {
        let r = compiler.compile_source_recovering("fuzz", src);
        compiler.emit(r)
    }))
    .map_err(panic_msg)?;
    if !emit.reparse_diags.is_empty() {
        return Err(ExecFail::RoundTrip(emit.reparse_diags.len()));
    }
    let exec = |mode: ExecMode, threads: usize| {
        catch_unwind(AssertUnwindSafe(|| {
            rt_run(&emit.reparsed, &[], &exec_config(mode, threads))
        }))
        .map_err(panic_msg)
    };
    let serial = exec(ExecMode::Serial, 1)?;
    let par1 = exec(ExecMode::Auto, 1)?;
    let par4 = exec(ExecMode::Auto, 4)?;
    let Ok(s) = serial else {
        // Random programs may trap (bounds, uninit, exhausted deck);
        // the contract is only that nothing panicked above.
        return Ok((false, emit.emitted));
    };
    for (label, p) in [("auto@1", par1), ("auto@4", par4)] {
        match p {
            Ok(ref r) if r.output == s.output && r.stopped == s.stopped => {}
            // Fork/join overhead is part of the virtual clock, so a
            // run that just fits the serial budget can exceed it in
            // parallel. A budget trip is not a divergence.
            Err(apar_runtime::RtError::OpLimit) => {}
            other => {
                return Err(ExecFail::Divergence(format!(
                    "{}: serial ok but parallel {:?}",
                    label,
                    other.map(|r| r.output)
                )))
            }
        }
    }
    Ok((true, emit.emitted))
}

/// Runs the end-to-end contract over the corpus.
pub fn run_exec(count: usize) -> ExecFuzzReport {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = ExecFuzzReport {
        cases: count,
        ..Default::default()
    };
    for case in 0..count {
        let src = corpus_case(case, count);
        match check_emit_exec(&src) {
            Ok((ran, emitted)) => {
                if ran {
                    report.executed += 1;
                } else {
                    report.serial_errors += 1;
                }
                report.emitted_loops += emitted;
            }
            Err(fail) => report.crashers.push(ExecCrasher {
                case,
                seed: case_seed(case),
                fail,
                source: src,
            }),
        }
    }
    std::panic::set_hook(prev);
    report
}

/// ASCII rendering of an end-to-end fuzz run.
pub fn render_exec(r: &ExecFuzzReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FUZZ emit+exec — {} cases, {} executed, {} serial errors, {} loops emitted, {} crashers\n",
        r.cases,
        r.executed,
        r.serial_errors,
        r.emitted_loops,
        r.crashers.len()
    ));
    for c in &r.crashers {
        out.push_str(&format!(
            "  case {} (seed {:#x}) {:?}:\n",
            c.case, c.seed, c.fail
        ));
        for l in c.source.lines().take(40) {
            out.push_str(&format!("    | {}\n", l));
        }
    }
    out
}

/// ASCII rendering of a fuzz run.
pub fn render(r: &FuzzReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FUZZ compile — {} cases, {} with diagnostics, {} contained panics, {} crashers\n",
        r.cases,
        r.diag_cases,
        r.contained_panics,
        r.crashers.len()
    ));
    for c in &r.crashers {
        out.push_str(&format!(
            "  case {} (seed {:#x}) {:?}:\n",
            c.case, c.seed, c.kind
        ));
        for l in c.minimized.lines() {
            out.push_str(&format!("    | {}\n", l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        for case in [0, 10, 180, 340, 499] {
            assert_eq!(corpus_case(case, 500), corpus_case(case, 500));
        }
    }

    #[test]
    fn corpus_covers_all_four_modes() {
        // A clean generated case, a garbled one, an op bomb, and a
        // suite mutant (quarters of 500: 0 / 125 / 250 / 375).
        assert!(corpus_case(0, 500).contains("PROGRAM FUZZ"));
        assert!(corpus_case(200, 500).contains("PROGRAM FUZZ"));
        let bomb = corpus_case(300, 500);
        assert!(bomb.contains("PROGRAM FUZZ") && bomb.contains("000000"));
        assert!(!corpus_case(400, 500).contains("PROGRAM FUZZ"));
    }

    #[test]
    fn smoke_corpus_has_no_crashers() {
        // The full 500-case run is the `fuzz_compile` binary's job (and
        // CI's); this keeps a fast sample in the unit suite, spanning
        // all four corpus modes.
        let r = run(36, 2);
        assert!(r.crashers.is_empty(), "crashers found:\n{}", render(&r));
        assert!(r.diag_cases > 0, "garbled cases should produce diagnostics");
    }

    #[test]
    fn op_bombs_trip_the_watchdog_not_the_process() {
        // The op-bomb family exists to push analysis into the
        // late-budget regime; at least one sampled bomb must actually
        // trip `loop_op_budget` (a `Complexity` classification), and
        // none may panic or diverge across thread counts — with or
        // without a cancelled token (checked inside `check_source`).
        let mut tripped = 0usize;
        for case in 260..268 {
            let src = corpus_case(case, 500);
            assert!(src.contains("PROGRAM FUZZ"), "case {case} not a bomb");
            check_source(&src, 4).expect("bomb case failed the contract");
            let r = Compiler::new(CompilerProfile::polaris2008())
                .compile_source_recovering("bomb", &src);
            tripped += r
                .loops
                .iter()
                .filter(|l| {
                    matches!(
                        l.classification,
                        apar_core::Classification::Complexity
                    )
                })
                .count();
        }
        assert!(tripped > 0, "no sampled op bomb tripped the op budget");
    }

    #[test]
    fn smoke_corpus_survives_emit_and_execute() {
        // Fast end-to-end sample spanning the corpus modes; the
        // full run is the `fuzz_compile` binary's second phase.
        let r = run_exec(24);
        assert!(r.crashers.is_empty(), "crashers found:\n{}", render_exec(&r));
        assert!(r.executed > 0, "no corpus case executed to completion");
        assert!(r.emitted_loops > 0, "no corpus loop was emitted parallel");
    }

    #[test]
    fn minimizer_shrinks_while_preserving_failure() {
        // A synthetic failure: treat any source containing the marker
        // line as "failing" by checking with a always-diverging stub is
        // overkill; instead verify the public property on a real panic
        // if one ever appears. Here we at least pin minimize() totality.
        let m = minimize("X = 1\nY = 2\n", 2, &FailKind::Divergence);
        assert!(!m.is_empty());
    }
}

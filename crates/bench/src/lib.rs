//! Figure and table harnesses.
//!
//! One module per experiment; each produces a serializable data struct,
//! an ASCII rendering that mirrors the paper's figure, and is driven by
//! both a standalone binary (`cargo run -p apar-bench --bin figN`) and a
//! Criterion bench. `all_figures` writes the JSON artifacts that
//! EXPERIMENTS.md records.

pub mod ablation;
pub mod compile_bench;
pub mod exec_bench;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fuzz;
pub mod incr_bench;
pub mod json;
pub mod persist_bench;
pub mod resilience_bench;
pub mod service_bench;
pub mod spec;

use apar_runtime::DeckVal;
use apar_workloads::Workload;

/// Converts a workload deck for the runtime.
pub fn deck(w: &Workload) -> Vec<DeckVal> {
    w.deck
        .iter()
        .map(|d| match d {
            apar_workloads::DeckValue::Int(v) => DeckVal::Int(*v),
            apar_workloads::DeckValue::Real(v) => DeckVal::Real(*v),
        })
        .collect()
}

/// Writes a JSON artifact under `target/figures/`.
pub fn write_artifact(name: &str, value: &impl json::ToJson) -> std::path::PathBuf {
    let dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(dir).expect("create target/figures");
    let path = dir.join(name);
    std::fs::write(&path, value.to_json().render()).expect("write artifact");
    path
}

/// Renders a horizontal bar of `value` against `max` in `width` cells.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

//! Resilience chaos/soak harness driver.
//!
//! Usage: `bench_resilience [REQUESTS] [WORKERS]` (default: 500
//! requests, 4 workers). Drives the compile service through a seeded
//! adversarial mix — garbled suites, injected panics, deadline-tripping
//! op bombs, duplicate storms, held-capacity waves — plus a scripted
//! daemon session, and writes `BENCH_resilience.json`. Exits nonzero
//! unless every gate holds: zero escaped panics, zero identity
//! divergences, bounded queue depth, every refusal class exercised,
//! quarantine convergence, and daemon survival.

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let data = apar_bench::resilience_bench::soak(requests, workers);
    print!("{}", apar_bench::resilience_bench::render(&data));
    let path = apar_bench::write_artifact("BENCH_resilience.json", &data);
    println!("(artifact: {})", path.display());
    if !data.ok() {
        eprintln!(
            "FAIL: escaped_panics={} identity_divergences={} peak_pending={}/{} \
             rejected={} expired={} quarantined={} degraded={} daemon_ok={}",
            data.escaped_panics,
            data.identity_divergences,
            data.peak_pending,
            data.max_pending,
            data.rejected,
            data.deadline_expired,
            data.quarantined,
            data.degraded,
            data.daemon_ok
        );
        std::process::exit(1);
    }
}

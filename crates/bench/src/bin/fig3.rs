//! Regenerates Figure 3 (per-pass share of compile effort).

fn main() {
    let rows = apar_bench::fig2::measure();
    print!("{}", apar_bench::fig2::render_fig3(&rows));
    let path = apar_bench::write_artifact("fig3.json", &rows);
    println!("(artifact: {})", path.display());
}

//! Incremental-recompilation benchmark: a one-line edit in the
//! five-suite batch.
//!
//! Usage: `bench_incr [WORKERS]` (default: 4). Compiles the batch cold,
//! applies a one-line value edit to the first suite, recompiles, and
//! writes `BENCH_incr.json`. Exits nonzero if any report diverges from
//! a plain service-free compile, the edited pass spliced zero loop
//! records, or any splice was refused.

fn main() {
    let workers = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4usize);
    let data = apar_bench::incr_bench::measure(workers);
    print!("{}", apar_bench::incr_bench::render(&data));
    let path = apar_bench::write_artifact("BENCH_incr.json", &data);
    println!("(artifact: {})", path.display());
    if !data.ok() {
        eprintln!(
            "FAIL: all_identical={} loop_hits={} loop_refusals={}",
            data.all_identical, data.loop_hits, data.loop_refusals
        );
        std::process::exit(1);
    }
}

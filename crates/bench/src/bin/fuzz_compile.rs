//! Compile fuzzer driver: no-panic + thread-invariant reports over a
//! fixed-seed corpus (generated MiniFort, garbled MiniFort, and
//! mutated suite sources), then the end-to-end backend contract —
//! emit annotated source, reparse it, execute serial vs auto-parallel
//! at 1 and 4 threads — over the same corpus, then the durable-store
//! loader contract — clean snapshots × truncate/bit/word mutators,
//! recovery must never panic and recovered-state compiles must be
//! bit-identical at 1 and 4 workers.
//!
//! Usage: `fuzz_compile [COUNT] [THREADS] [EXEC_COUNT] [STORE_COUNT]`
//! (defaults: 500, 4, COUNT/4, COUNT/8). Writes minimized crashers to
//! `target/fuzz/crasher_<case>.f` (compile phase) and full failing
//! sources to `target/fuzz/exec_crasher_<case>.f` (exec phase); exits
//! nonzero on any contract violation in any phase.

fn main() {
    let mut args = std::env::args().skip(1);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let exec_count: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(count.div_ceil(4));

    let store_count: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(count.div_ceil(8));

    let report = apar_bench::fuzz::run(count, threads);
    print!("{}", apar_bench::fuzz::render(&report));

    let exec_report = apar_bench::fuzz::run_exec(exec_count);
    print!("{}", apar_bench::fuzz::render_exec(&exec_report));

    let store_report = apar_bench::persist_bench::torture(store_count);
    print!("{}", apar_bench::persist_bench::render(&store_report));

    // Crasher artifacts are best-effort evidence: a full disk must not
    // turn a red fuzz run into a panic that hides the verdict.
    let save = |path: &std::path::Path, bytes: &[u8]| match std::fs::write(path, bytes) {
        Ok(()) => eprintln!("crasher written to {}", path.display()),
        Err(e) => eprintln!("fuzz_compile: cannot write {}: {}", path.display(), e),
    };
    let mut failed = false;
    let dir = std::path::Path::new("target/fuzz");
    if !report.crashers.is_empty() || !exec_report.crashers.is_empty() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fuzz_compile: cannot create {}: {}", dir.display(), e);
        }
    }
    if !report.crashers.is_empty() {
        failed = true;
        for c in &report.crashers {
            save(&dir.join(format!("crasher_{}.f", c.case)), c.minimized.as_bytes());
        }
    }
    if !exec_report.crashers.is_empty() {
        failed = true;
        for c in &exec_report.crashers {
            save(&dir.join(format!("exec_crasher_{}.f", c.case)), c.source.as_bytes());
        }
    }
    // The store phase has no source to minimize — its crashers are
    // cycle seeds, already printed by render above.
    if store_report.escaped_panics > 0
        || store_report.divergences > 0
        || store_report.warm_hits == 0
    {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: {} compile cases + {} exec cases + {} store cycles, zero crashers",
        report.cases, exec_report.cases, store_report.cycles
    );
}

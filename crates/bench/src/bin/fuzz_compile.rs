//! Compile fuzzer driver: no-panic + thread-invariant reports over a
//! fixed-seed corpus (generated MiniFort, garbled MiniFort, and
//! mutated suite sources).
//!
//! Usage: `fuzz_compile [COUNT] [THREADS]` (defaults: 500, 4). Writes
//! minimized crashers to `target/fuzz/crasher_<case>.f` and exits
//! nonzero if any case panicked or diverged across thread counts.

fn main() {
    let mut args = std::env::args().skip(1);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let report = apar_bench::fuzz::run(count, threads);
    print!("{}", apar_bench::fuzz::render(&report));

    if !report.crashers.is_empty() {
        let dir = std::path::Path::new("target/fuzz");
        std::fs::create_dir_all(dir).expect("create target/fuzz");
        for c in &report.crashers {
            let path = dir.join(format!("crasher_{}.f", c.case));
            std::fs::write(&path, &c.minimized).expect("write crasher");
            eprintln!("minimized crasher written to {}", path.display());
        }
        std::process::exit(1);
    }
    println!("ok: {} cases, zero crashers", report.cases);
}

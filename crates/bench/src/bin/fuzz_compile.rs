//! Compile fuzzer driver: no-panic + thread-invariant reports over a
//! fixed-seed corpus (generated MiniFort, garbled MiniFort, and
//! mutated suite sources), then the end-to-end backend contract —
//! emit annotated source, reparse it, execute serial vs auto-parallel
//! at 1 and 4 threads — over the same corpus.
//!
//! Usage: `fuzz_compile [COUNT] [THREADS] [EXEC_COUNT]` (defaults:
//! 500, 4, COUNT/4). Writes minimized crashers to
//! `target/fuzz/crasher_<case>.f` (compile phase) and full failing
//! sources to `target/fuzz/exec_crasher_<case>.f` (exec phase); exits
//! nonzero on any contract violation in either phase.

fn main() {
    let mut args = std::env::args().skip(1);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let exec_count: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(count.div_ceil(4));

    let report = apar_bench::fuzz::run(count, threads);
    print!("{}", apar_bench::fuzz::render(&report));

    let exec_report = apar_bench::fuzz::run_exec(exec_count);
    print!("{}", apar_bench::fuzz::render_exec(&exec_report));

    let mut failed = false;
    let dir = std::path::Path::new("target/fuzz");
    if !report.crashers.is_empty() {
        failed = true;
        std::fs::create_dir_all(dir).expect("create target/fuzz");
        for c in &report.crashers {
            let path = dir.join(format!("crasher_{}.f", c.case));
            std::fs::write(&path, &c.minimized).expect("write crasher");
            eprintln!("minimized crasher written to {}", path.display());
        }
    }
    if !exec_report.crashers.is_empty() {
        failed = true;
        std::fs::create_dir_all(dir).expect("create target/fuzz");
        for c in &exec_report.crashers {
            let path = dir.join(format!("exec_crasher_{}.f", c.case));
            std::fs::write(&path, &c.source).expect("write crasher");
            eprintln!("exec crasher written to {}", path.display());
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: {} compile cases + {} exec cases, zero crashers",
        report.cases, exec_report.cases
    );
}

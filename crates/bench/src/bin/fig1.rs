//! Regenerates Figure 1. Usage: `fig1 [test|small|medium ...]`
//! (default: small medium).

use apar_bench::fig1;
use apar_workloads::DataSize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<DataSize> = if args.is_empty() {
        vec![DataSize::Small, DataSize::Medium]
    } else {
        args.iter()
            .map(|a| match a.as_str() {
                "test" => DataSize::Test,
                "small" => DataSize::Small,
                "medium" => DataSize::Medium,
                other => panic!("unknown size {}", other),
            })
            .collect()
    };
    for size in sizes {
        let data = fig1::measure(size);
        print!("{}", fig1::render(&data));
        let path = apar_bench::write_artifact(
            &format!("fig1_{}.json", data.size.to_lowercase()),
            &data,
        );
        println!("(artifact: {})\n", path.display());
    }
}

//! Crash-torture benchmark for the durable cache store.
//!
//! Usage: `bench_persist [CYCLES]` (default: 200). Measures a clean
//! warm restart, then runs CYCLES seeded write → kill-at-random-offset
//! → recover → recompile cycles (plus fault-injected write cycles),
//! and writes `BENCH_persist.json`. Exits nonzero if any panic escaped
//! recovery, any recovered-state report diverged from a plain cold
//! compile, or recovery never produced a warm hit.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200usize);
    let data = apar_bench::persist_bench::measure(cycles);
    print!("{}", apar_bench::persist_bench::render(&data));
    let path = apar_bench::write_artifact("BENCH_persist.json", &data);
    println!("(artifact: {})", path.display());
    if !data.ok() {
        eprintln!(
            "FAIL: escaped_panics={} divergences={} warm_hits={} restart_hits={}",
            data.escaped_panics, data.divergences, data.warm_hits, data.restart_hits
        );
        std::process::exit(1);
    }
}

//! Regenerates Figure 2 (compile effort per statement).

fn main() {
    let rows = apar_bench::fig2::measure();
    print!("{}", apar_bench::fig2::render_fig2(&rows));
    let path = apar_bench::write_artifact("fig2.json", &rows);
    println!("(artifact: {})", path.display());
}

//! End-to-end source-to-source benchmark: emit annotated MiniFort,
//! reparse it, execute serial vs auto-parallel, compare bit-for-bit.
//!
//! Usage: `bench_exec [THREADS] [SUITE...]` (defaults: 4, all suites).
//! Exits nonzero if any suite's round-trip or serial-vs-parallel
//! comparison fails — correctness is the benchmark's contract, the
//! speedup column is the measurement.

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let threads: usize = args
        .peek()
        .and_then(|a| a.parse().ok())
        .inspect(|_| {
            args.next();
        })
        .unwrap_or(4);
    let filter: Vec<String> = args.collect();
    let data = apar_bench::exec_bench::measure(threads, &filter);
    print!("{}", apar_bench::exec_bench::render(&data));
    if data.rows.is_empty() {
        eprintln!("FAIL: no suite matched the filter");
        std::process::exit(1);
    }
    let path = apar_bench::write_artifact("BENCH_exec.json", &data);
    println!("(artifact: {})", path.display());
    if !data.all_correct() {
        eprintln!("FAIL: a suite's annotated execution diverged from serial");
        std::process::exit(1);
    }
}

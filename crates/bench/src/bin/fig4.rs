//! Regenerates Figure 4 (target-loop nesting characteristics).

fn main() {
    let d = apar_bench::fig4::measure();
    print!("{}", apar_bench::fig4::render(&d));
    let path = apar_bench::write_artifact("fig4.json", &d);
    println!("(artifact: {})", path.display());
}

//! Service-layer benchmark: cold vs warm batch compilation.
//!
//! Usage: `bench_service [WORKERS] [--all]` (default: 4 workers over
//! the two-suite smoke set; `--all` measures every workload). Compiles
//! the set twice through one service — cold then warm — and writes
//! `BENCH_service.json`. Exits nonzero if the warm pass reports zero
//! result-cache hits or any report diverges across warm/cold, worker
//! counts, or a plain service-free compile.

fn main() {
    let mut workers = 4usize;
    let mut all = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--all" => all = true,
            other => {
                if let Ok(n) = other.parse() {
                    workers = n;
                }
            }
        }
    }
    let reqs = if all {
        apar_bench::service_bench::all_requests()
    } else {
        apar_bench::service_bench::smoke_requests()
    };
    let data = apar_bench::service_bench::measure(&reqs, workers);
    print!("{}", apar_bench::service_bench::render(&data));
    let path = apar_bench::write_artifact("BENCH_service.json", &data);
    println!("(artifact: {})", path.display());
    if !data.ok() {
        eprintln!(
            "FAIL: warm_result_hits={} all_identical={}",
            data.warm_result_hits, data.all_identical
        );
        std::process::exit(1);
    }
}

//! Regenerates the ablation table (loops recovered per capability).

fn main() {
    let rows = apar_bench::ablation::measure();
    print!("{}", apar_bench::ablation::render(&rows));
    let path = apar_bench::write_artifact("ablation.json", &rows);
    println!("(artifact: {})", path.display());
}

//! Regenerates Figure 5 (hindrance categories of target loops).

fn main() {
    let rows = apar_bench::fig5::measure();
    print!("{}", apar_bench::fig5::render(&rows));
    let path = apar_bench::write_artifact("fig5.json", &rows);
    println!("(artifact: {})", path.display());
}

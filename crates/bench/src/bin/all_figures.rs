//! Regenerates every figure and the ablation table in one run.
//! Usage: `all_figures [--quick]` (quick = Fig 1 on SMALL only).

use apar_workloads::DataSize;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        vec![DataSize::Small]
    } else {
        vec![DataSize::Small, DataSize::Medium]
    };
    for size in sizes {
        let d = apar_bench::fig1::measure(size);
        print!("{}", apar_bench::fig1::render(&d));
        apar_bench::write_artifact(&format!("fig1_{}.json", d.size.to_lowercase()), &d);
        println!();
    }
    let rows = apar_bench::fig2::measure();
    print!("{}", apar_bench::fig2::render_fig2(&rows));
    println!();
    print!("{}", apar_bench::fig2::render_fig3(&rows));
    apar_bench::write_artifact("fig2.json", &rows);
    println!();
    let d4 = apar_bench::fig4::measure();
    print!("{}", apar_bench::fig4::render(&d4));
    apar_bench::write_artifact("fig4.json", &d4);
    println!();
    let d5 = apar_bench::fig5::measure();
    print!("{}", apar_bench::fig5::render(&d5));
    apar_bench::write_artifact("fig5.json", &d5);
    println!();
    let ab = apar_bench::ablation::measure();
    print!("{}", apar_bench::ablation::render(&ab));
    apar_bench::write_artifact("ablation.json", &ab);
    println!();
    let sp = apar_bench::spec::measure();
    print!("{}", apar_bench::spec::render(&sp));
    apar_bench::write_artifact("speculation.json", &sp);
    println!("\nArtifacts written under target/figures/");
}

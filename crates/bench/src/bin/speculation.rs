//! Regenerates the speculative runtime-test extension tables.

fn main() {
    let rep = apar_bench::spec::measure();
    print!("{}", apar_bench::spec::render(&rep));
    let path = apar_bench::write_artifact("speculation.json", &rep);
    println!("(artifact: {})", path.display());
}

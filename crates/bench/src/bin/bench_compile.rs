//! Compile-time benchmark: serial vs parallel per-loop analysis.
//!
//! Usage: `bench_compile [THREADS] [REPEATS]` (defaults: 4, 3). Exits
//! nonzero if any app's serial and parallel reports diverge — the
//! identity check is part of the benchmark's contract, not just the
//! speedup number.

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let rows = apar_bench::compile_bench::measure(threads, repeats);
    print!("{}", apar_bench::compile_bench::render(&rows));
    let path = apar_bench::write_artifact("BENCH_compile.json", &rows);
    println!("(artifact: {})", path.display());
    if rows.iter().any(|r| !r.identical) {
        eprintln!("FAIL: serial and parallel reports diverged");
        std::process::exit(1);
    }
}

//! Ablation: how many target loops each single enabling technique
//! recovers over the baseline — the quantitative version of the paper's
//! §3 conclusion that these techniques are "missing from the state of
//! the art".

use apar_core::{Classification, Compiler, CompilerProfile};
use apar_workloads as wl;
#[derive(Clone, Debug)]
pub struct AblationRow {
    pub profile: String,
    /// Per app: (name, autoparallelized target count).
    pub per_app: Vec<(String, usize)>,
    pub total: usize,
}

fn suites() -> Vec<wl::Workload> {
    vec![
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
    ]
}

fn count_auto(profile: CompilerProfile, w: &wl::Workload) -> usize {
    let r = Compiler::new(profile)
        .compile_source(&w.name, &w.source)
        .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
    r.target_loops()
        .filter(|l| l.classification == Classification::Autoparallelized)
        .count()
}

pub fn measure() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let mut profiles = vec![CompilerProfile::polaris2008()];
    profiles.extend(CompilerProfile::ablations());
    profiles.push(CompilerProfile::full());
    let suites = suites();
    for p in profiles {
        let per_app: Vec<(String, usize)> = suites
            .iter()
            .map(|w| (w.name.clone(), count_auto(p.clone(), w)))
            .collect();
        let total = per_app.iter().map(|(_, n)| n).sum();
        rows.push(AblationRow {
            profile: p.name.clone(),
            per_app,
            total,
        });
    }
    rows
}

pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Ablation — target loops auto-parallelized per capability profile\n",
    );
    out.push_str(&format!("{:>28}", "profile"));
    for (app, _) in &rows[0].per_app {
        out.push_str(&format!(" {:>9}", app));
    }
    out.push_str(&format!(" {:>7}\n", "total"));
    for r in rows {
        out.push_str(&format!("{:>28}", r.profile));
        for (_, n) in &r.per_app {
            out.push_str(&format!(" {:>9}", n));
        }
        out.push_str(&format!(" {:>7}\n", r.total));
    }
    out
}

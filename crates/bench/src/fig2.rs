//! Figures 2 and 3: compile time per statement, broken down by pass.
//!
//! Each suite is compiled with the baseline profile; SEISMIC/GAMESS/
//! SANDER are whole applications, PERFECT's codes are compiled
//! separately and averaged, LINPACK is one small code — exactly the
//! paper's accounting. Both wall seconds and deterministic symbolic ops
//! are reported; the figure shapes hold in either metric.

use apar_core::{CompileReport, Compiler, CompilerProfile, PassId};
use apar_workloads as wl;
#[derive(Clone, Debug)]
pub struct Fig2Row {
    pub app: String,
    pub statements: usize,
    pub total_seconds: f64,
    pub total_ops: u64,
    pub seconds_per_statement: f64,
    pub ops_per_statement: f64,
    /// `(pass label, seconds, ops)` in legend order.
    pub per_pass: Vec<(String, f64, u64)>,
}

impl Fig2Row {
    fn from_report(app: &str, r: &CompileReport) -> Fig2Row {
        Fig2Row {
            app: app.to_string(),
            statements: r.statements,
            total_seconds: r.total_seconds(),
            total_ops: r.total_ops(),
            seconds_per_statement: r.seconds_per_statement(),
            ops_per_statement: r.ops_per_statement(),
            per_pass: PassId::ALL
                .iter()
                .map(|&p| {
                    let c = r.per_pass.get(&p).copied().unwrap_or_default();
                    (p.label().to_string(), c.seconds, c.ops)
                })
                .collect(),
        }
    }

    /// Averages rows (used for the PERFECT codes).
    fn average(app: &str, rows: &[Fig2Row]) -> Fig2Row {
        let n = rows.len().max(1) as f64;
        let mut per_pass: Vec<(String, f64, u64)> = rows[0]
            .per_pass
            .iter()
            .map(|(l, _, _)| (l.clone(), 0.0, 0u64))
            .collect();
        for r in rows {
            for (k, (_, s, o)) in r.per_pass.iter().enumerate() {
                per_pass[k].1 += s / n;
                per_pass[k].2 += (*o as f64 / n) as u64;
            }
        }
        let statements =
            (rows.iter().map(|r| r.statements).sum::<usize>() as f64 / n) as usize;
        let total_seconds = rows.iter().map(|r| r.total_seconds).sum::<f64>() / n;
        let total_ops = (rows.iter().map(|r| r.total_ops).sum::<u64>() as f64 / n) as u64;
        Fig2Row {
            app: app.to_string(),
            statements,
            total_seconds,
            total_ops,
            seconds_per_statement: total_seconds / statements.max(1) as f64,
            ops_per_statement: total_ops as f64 / statements.max(1) as f64,
            per_pass,
        }
    }
}

/// Compiles every suite and collects the per-pass accounting.
pub fn measure() -> Vec<Fig2Row> {
    let compiler = Compiler::new(CompilerProfile::polaris2008());
    let mut rows = Vec::new();
    for w in [
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
    ] {
        let r = compiler
            .compile_source(&w.name, &w.source)
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        rows.push(Fig2Row::from_report(&w.name, &r.report));
    }
    // PERFECT: compile each code, average.
    let perfect: Vec<Fig2Row> = wl::perfect::codes()
        .iter()
        .map(|w| {
            let r = compiler
                .compile_source(&w.name, &w.source)
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
            Fig2Row::from_report(&w.name, &r.report)
        })
        .collect();
    rows.push(Fig2Row::average("PERFECT", &perfect));
    let lin = wl::linpack::suite();
    let r = compiler
        .compile_source(&lin.name, &lin.source)
        .expect("linpack");
    rows.push(Fig2Row::from_report("LINPACK", &r.report));
    rows
}

/// Figure 2 rendering: per-statement columns plus total dashes.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2 — Compile effort per statement (deterministic symbolic ops; wall seconds alongside)\n");
    out.push_str(&format!(
        "{:>10} {:>8} {:>12} {:>14} {:>12} {:>12}\n",
        "app", "stmts", "total ops", "ops/stmt", "total s", "s/stmt"
    ));
    let max = rows
        .iter()
        .map(|r| r.ops_per_statement)
        .fold(0.0f64, f64::max);
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>8} {:>12} {:>14.1} {:>12.4} {:>12.6}  |{}\n",
            r.app,
            r.statements,
            r.total_ops,
            r.ops_per_statement,
            r.total_seconds,
            r.seconds_per_statement,
            crate::bar(r.ops_per_statement, max, 40),
        ));
    }
    out
}

/// Figure 3 rendering: percentage breakdown by pass.
pub fn render_fig3(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 3 — Share of compile effort per pass (% of symbolic ops)\n");
    out.push_str(&format!("{:>38}", "pass \\ app"));
    for r in rows {
        out.push_str(&format!(" {:>9}", shorten(&r.app)));
    }
    out.push('\n');
    let npasses = rows[0].per_pass.len();
    for k in 0..npasses {
        out.push_str(&format!("{:>38}", rows[0].per_pass[k].0));
        for r in rows {
            let total = r.total_ops.max(1) as f64;
            let pct = 100.0 * r.per_pass[k].2 as f64 / total;
            out.push_str(&format!(" {:>8.1}%", pct));
        }
        out.push('\n');
    }
    out
}

fn shorten(app: &str) -> String {
    app.chars().take(9).collect()
}

//! Service-layer benchmark: cold vs warm batch compiles.
//!
//! One [`CompileService`] compiles a set of suites twice — a cold pass
//! (empty caches) and a warm pass (both cache tiers populated) — and
//! the artifact records, per suite, the cold and warm wall seconds and
//! their ratio, plus aggregate throughput, the shared facts-store
//! counters (hits / misses / structured refusals / evictions), and the
//! two verdicts the service's contract rests on:
//!
//! * **identity** — every warm report is bit-identical to its cold
//!   report, to a one-worker service run, and to a plain service-free
//!   `Compiler` compile;
//! * **warm ≤ 10% of cold** — recompiling an already-seen suite costs
//!   at most a tenth of first-sight compilation (it is a cache lookup).

use apar_core::{Compiler, CompilerProfile};
use apar_service::{CompileService, ServiceConfig, SuiteRequest};
use apar_workloads as wl;

use crate::json::{Json, ToJson};

/// One suite's cold-vs-warm measurement.
#[derive(Clone, Debug)]
pub struct ServiceBenchRow {
    pub suite: String,
    pub loops: usize,
    /// Wall seconds first-sight (cold caches).
    pub cold_s: f64,
    /// Wall seconds on recompile (warm caches).
    pub warm_s: f64,
    /// `warm_s / cold_s` — the headline is this staying ≤ 0.10.
    pub warm_over_cold: f64,
    /// Report bit-identical across warm/cold, worker counts, and a
    /// plain service-free compile.
    pub identical: bool,
}

/// The whole `BENCH_service.json` payload.
#[derive(Clone, Debug)]
pub struct ServiceBenchData {
    /// Worker pool width of the measured service.
    pub workers: usize,
    pub rows: Vec<ServiceBenchRow>,
    /// Batch wall seconds, cold and warm.
    pub cold_wall_s: f64,
    pub warm_wall_s: f64,
    /// Aggregate throughput, suites per second.
    pub cold_suites_per_s: f64,
    pub warm_suites_per_s: f64,
    /// Result-cache hits the warm pass reported (must be nonzero).
    pub warm_result_hits: usize,
    /// A *second client* — fresh service, empty result cache, sharing
    /// only the facts store — recompiling the same suites: its batch
    /// wall seconds and the shared-tier hits it scored (whole-program
    /// facts adoptions and per-loop record splices).
    pub second_client_wall_s: f64,
    pub second_client_facts_hits: u64,
    pub second_client_loop_hits: u64,
    /// `second_client_wall_s / cold_wall_s`.
    pub second_client_over_cold: f64,
    /// Shared facts-store lifetime counters.
    pub facts_hits: u64,
    pub facts_misses: u64,
    /// Structured `CacheRefusal` count: budget-tripped or panicked
    /// builds the cache refused to retain (not misses).
    pub facts_refusals: u64,
    pub facts_evictions: u64,
    /// `warm_wall_s / cold_wall_s`.
    pub warm_over_cold: f64,
    /// The headline: warm batch within 10% of the cold batch.
    pub warm_within_10pct: bool,
    /// Every row identical.
    pub all_identical: bool,
}

impl ServiceBenchData {
    /// The CI contract: nonzero warm hits and full identity. (The 10%
    /// headline is recorded in the artifact but not gated here — wall
    /// clock on a loaded runner is not a correctness signal.)
    pub fn ok(&self) -> bool {
        self.warm_result_hits > 0 && self.all_identical
    }
}

impl ToJson for ServiceBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite", self.suite.to_json()),
            ("loops", self.loops.to_json()),
            ("cold_s", self.cold_s.to_json()),
            ("warm_s", self.warm_s.to_json()),
            ("warm_over_cold", self.warm_over_cold.to_json()),
            ("identical", self.identical.to_json()),
        ])
    }
}

impl ToJson for ServiceBenchData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers", self.workers.to_json()),
            ("cold_wall_s", self.cold_wall_s.to_json()),
            ("warm_wall_s", self.warm_wall_s.to_json()),
            ("cold_suites_per_s", self.cold_suites_per_s.to_json()),
            ("warm_suites_per_s", self.warm_suites_per_s.to_json()),
            ("warm_result_hits", self.warm_result_hits.to_json()),
            ("second_client_wall_s", self.second_client_wall_s.to_json()),
            (
                "second_client_facts_hits",
                self.second_client_facts_hits.to_json(),
            ),
            (
                "second_client_loop_hits",
                self.second_client_loop_hits.to_json(),
            ),
            (
                "second_client_over_cold",
                self.second_client_over_cold.to_json(),
            ),
            ("facts_hits", self.facts_hits.to_json()),
            ("facts_misses", self.facts_misses.to_json()),
            ("facts_refusals", self.facts_refusals.to_json()),
            ("facts_evictions", self.facts_evictions.to_json()),
            ("warm_over_cold", self.warm_over_cold.to_json()),
            ("warm_within_10pct", self.warm_within_10pct.to_json()),
            ("all_identical", self.all_identical.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// The smoke set: the two suites the CI job compiles twice.
pub fn smoke_requests() -> Vec<SuiteRequest> {
    let seismic = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    let perfect = &wl::perfect::codes()[0];
    vec![
        SuiteRequest::new(seismic.name.clone(), seismic.source),
        SuiteRequest::new(perfect.name.clone(), perfect.source.clone()),
    ]
}

/// Every workload in the repo.
pub fn all_requests() -> Vec<SuiteRequest> {
    wl::all_suites()
        .into_iter()
        .map(|w| SuiteRequest::new(w.name, w.source))
        .collect()
}

/// Cold pass, warm pass, and the three-way identity check.
pub fn measure(reqs: &[SuiteRequest], workers: usize) -> ServiceBenchData {
    // Reference A: plain service-free compiles, one at a time.
    let plain = Compiler::new(CompilerProfile::polaris2008());
    let reference: Vec<String> = reqs
        .iter()
        .map(|r| {
            plain
                .compile_source_recovering(&r.name, &r.source)
                .report_signature()
        })
        .collect();
    // Reference B: a one-worker service, cold.
    let single = CompileService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let single_cold = single.compile_many(reqs);

    // The measured service: cold then warm.
    let service = CompileService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let cold = service.compile_many(reqs);
    let warm = service.compile_many(reqs);

    // A second client: fresh result cache, shared facts store. Its
    // compiles run, but each adopts the first client's analysis facts.
    let second = CompileService::with_facts_store(
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        std::sync::Arc::clone(service.facts_store()),
    );
    let second_batch = second.compile_many(reqs);

    let rows: Vec<ServiceBenchRow> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let cold_o = &cold.outcomes[i];
            let warm_o = &warm.outcomes[i];
            let sig = cold_o.artifact.signature();
            let identical = sig == warm_o.artifact.signature()
                && sig == single_cold.outcomes[i].artifact.signature()
                && sig == second_batch.outcomes[i].artifact.signature()
                && sig == reference[i];
            let loops = cold_o.artifact.compile().map_or(0, |c| c.loops.len());
            // A lookup can round to zero microseconds; floor the ratio's
            // denominator so the column stays finite.
            let warm_over_cold = warm_o.wall_s / cold_o.wall_s.max(1e-9);
            ServiceBenchRow {
                suite: r.name.clone(),
                loops,
                cold_s: cold_o.wall_s,
                warm_s: warm_o.wall_s,
                warm_over_cold,
                identical,
            }
        })
        .collect();

    let facts = service.facts_store().stats();
    let warm_over_cold = warm.stats.wall_s / cold.stats.wall_s.max(1e-9);
    ServiceBenchData {
        workers,
        all_identical: rows.iter().all(|r| r.identical),
        warm_within_10pct: warm_over_cold <= 0.10,
        warm_over_cold,
        cold_wall_s: cold.stats.wall_s,
        warm_wall_s: warm.stats.wall_s,
        cold_suites_per_s: cold.stats.suites_per_s,
        warm_suites_per_s: warm.stats.suites_per_s,
        warm_result_hits: warm.stats.result_hits,
        second_client_wall_s: second_batch.stats.wall_s,
        second_client_facts_hits: second_batch.stats.facts.hits,
        second_client_loop_hits: second_batch.stats.facts.loop_hits,
        second_client_over_cold: second_batch.stats.wall_s / cold.stats.wall_s.max(1e-9),
        facts_hits: facts.hits,
        facts_misses: facts.misses,
        facts_refusals: facts.refusals,
        facts_evictions: facts.evictions,
        rows,
    }
}

/// ASCII table mirroring the artifact.
pub fn render(d: &ServiceBenchData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "service bench: {} suites, {} workers\n",
        d.rows.len(),
        d.workers
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>10} {:>10} {:>8} {:>6}\n",
        "suite", "loops", "cold_s", "warm_s", "w/c", "ident"
    ));
    for r in &d.rows {
        out.push_str(&format!(
            "{:<14} {:>6} {:>10.4} {:>10.6} {:>8.4} {:>6}\n",
            r.suite, r.loops, r.cold_s, r.warm_s, r.warm_over_cold, r.identical
        ));
    }
    out.push_str(&format!(
        "cold {:.3}s ({:.1}/s)  warm {:.4}s ({:.0}/s)  warm/cold {:.4} (≤0.10: {})\n",
        d.cold_wall_s,
        d.cold_suites_per_s,
        d.warm_wall_s,
        d.warm_suites_per_s,
        d.warm_over_cold,
        d.warm_within_10pct
    ));
    out.push_str(&format!(
        "result hits (warm) {}  facts h/m/r/e {}/{}/{}/{}  identical {}\n",
        d.warm_result_hits,
        d.facts_hits,
        d.facts_misses,
        d.facts_refusals,
        d.facts_evictions,
        d.all_identical
    ));
    out.push_str(&format!(
        "second client (fresh result cache, shared facts): {:.4}s, {} facts hits, {} loop splices, {:.4}× cold\n",
        d.second_client_wall_s,
        d.second_client_facts_hits,
        d.second_client_loop_hits,
        d.second_client_over_cold
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measure_is_identical_with_warm_hits() {
        let d = measure(&smoke_requests(), 2);
        assert!(d.all_identical, "{:?}", d);
        assert_eq!(d.warm_result_hits, 2, "{:?}", d);
        assert!(
            d.second_client_facts_hits + d.second_client_loop_hits > 0,
            "the second client adopts shared analysis (facts or loop records): {:?}",
            d
        );
        assert!(d.ok());
    }
}

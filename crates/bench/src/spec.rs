//! Extension experiment — the speculative runtime dependence test.
//!
//! The paper's conclusion argues the remaining hindrances "must be
//! addressed"; for the dynamically checkable ones (indirection,
//! rangeless variables, failed symbolic analysis) the classic answer is
//! an LRPD-style runtime test. This harness measures two things:
//!
//! 1. **Static reach** — how many of the 93 target loops each profile
//!    annotates (statically parallel + speculative) once the runtime
//!    test is available.
//! 2. **Dynamic price** — committed vs rolled-back speculation on a
//!    gather kernel whose index array is a permutation (independent)
//!    or a many-to-one fold (dependent), in modeled virtual seconds.

use apar_core::{Compiler, CompilerProfile};
use apar_runtime::{run, ExecConfig, ExecMode};
use apar_workloads as wl;
#[derive(Clone, Debug)]
pub struct ReachRow {
    pub profile: String,
    /// Per app: (name, statically parallel targets, speculative targets).
    pub per_app: Vec<(String, usize, usize)>,
    pub total_static: usize,
    pub total_speculative: usize,
}

#[derive(Clone, Debug)]
pub struct DynamicRow {
    pub scenario: String,
    pub baseline_virt_s: f64,
    pub spec_virt_s: f64,
    pub speculations: u64,
    pub rollbacks: u64,
}

#[derive(Clone, Debug)]
pub struct SpecReport {
    pub reach: Vec<ReachRow>,
    pub dynamic: Vec<DynamicRow>,
}

fn suites() -> Vec<wl::Workload> {
    vec![
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
    ]
}

fn reach(profile: CompilerProfile) -> ReachRow {
    let name = profile.name.clone();
    let mut per_app = Vec::new();
    for w in suites() {
        let r = Compiler::new(profile.clone())
            .compile_source(&w.name, &w.source)
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        // Count by classification, not annotation: an outer speculative
        // region legitimately absorbs inner statically-parallel loops,
        // which would make the static column look smaller than it is.
        let par = r
            .target_loops()
            .filter(|l| {
                l.classification == apar_core::Classification::Autoparallelized
            })
            .count();
        let spec = r.target_loops().filter(|l| l.speculative).count();
        per_app.push((w.name.clone(), par, spec));
    }
    let total_static = per_app.iter().map(|(_, p, _)| p).sum();
    let total_speculative = per_app.iter().map(|(_, _, s)| s).sum();
    ReachRow {
        profile: name,
        per_app,
        total_static,
        total_speculative,
    }
}

/// The gather kernel: a large update through an index array the
/// compiler cannot analyze (initialized behind a data-dependent
/// branch). `collide` folds the permutation onto eight cells.
fn gather_src(collide: bool) -> String {
    let c = if collide { 1 } else { 0 };
    format!(
        "PROGRAM SPECK
  REAL A(16384), B(16384)
  INTEGER IX(16384)
  COMMON /DAT/ A, B, IX
  DO I = 1, 16384
    B(I) = REAL(I) * 0.5
    IF ({c} .EQ. 1) THEN
      IX(I) = MOD(I, 8) + 1
    ELSE
      IX(I) = 16385 - I
    ENDIF
  ENDDO
!$TARGET GUPD
  DO I = 1, 16384
    A(IX(I)) = B(I) * 2.0 + 1.0 + B(I) * B(I) * 0.25 - B(I) / 3.0
  ENDDO
  S = 0.0
  DO I = 1, 16384
    S = S + A(I)
  ENDDO
  WRITE(*,*) 'SUM', S
END
"
    )
}

fn run_virt(profile: CompilerProfile, src: &str) -> (f64, u64, u64) {
    let r = Compiler::new(profile)
        .compile_source("speck", src)
        .unwrap_or_else(|e| panic!("{}", e));
    let out = run(
        &r.rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Auto,
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}", e));
    (out.virt_seconds(), out.speculations, out.rollbacks)
}

pub fn measure() -> SpecReport {
    let reach_rows = vec![
        reach(CompilerProfile::polaris2008()),
        reach(CompilerProfile::polaris2008().with_runtime_test()),
        reach(CompilerProfile::full()),
        reach(CompilerProfile::full().with_runtime_test()),
    ];
    let mut dynamic = Vec::new();
    for (scenario, collide) in [("permutation (independent)", false), ("fold (dependent)", true)] {
        let src = gather_src(collide);
        let (base, _, _) = run_virt(CompilerProfile::polaris2008(), &src);
        let (spec, s, rb) =
            run_virt(CompilerProfile::polaris2008().with_runtime_test(), &src);
        dynamic.push(DynamicRow {
            scenario: scenario.into(),
            baseline_virt_s: base,
            spec_virt_s: spec,
            speculations: s,
            rollbacks: rb,
        });
    }
    SpecReport {
        reach: reach_rows,
        dynamic,
    }
}

pub fn render(r: &SpecReport) -> String {
    let mut out = String::new();
    out.push_str("Extension — speculative runtime dependence test (LRPD-style)\n");
    out.push_str(&format!("{:>28}", "profile"));
    for (app, _, _) in &r.reach[0].per_app {
        out.push_str(&format!(" {:>16}", app));
    }
    out.push_str(&format!(" {:>13}\n", "total"));
    for row in &r.reach {
        out.push_str(&format!("{:>28}", row.profile));
        for (_, p, s) in &row.per_app {
            out.push_str(&format!(" {:>10}+{:<5}", p, s));
        }
        out.push_str(&format!(
            " {:>6}+{:<6}\n",
            row.total_static, row.total_speculative
        ));
    }
    out.push_str("(columns are static-parallel + speculative target loops)\n\n");
    out.push_str("Dynamic price of speculation (gather kernel, 4 modeled CPUs)\n");
    out.push_str(&format!(
        "{:>28} {:>12} {:>12} {:>8} {:>9}\n",
        "scenario", "baseline s", "spec s", "commits", "rollbacks"
    ));
    for d in &r.dynamic {
        out.push_str(&format!(
            "{:>28} {:>12.4} {:>12.4} {:>8} {:>9}\n",
            d.scenario, d.baseline_virt_s, d.spec_virt_s, d.speculations, d.rollbacks
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_is_monotone_in_runtime_test() {
        let base = reach(CompilerProfile::polaris2008());
        let with = reach(CompilerProfile::polaris2008().with_runtime_test());
        assert_eq!(base.total_speculative, 0);
        assert!(with.total_speculative > 0);
        assert_eq!(base.total_static, with.total_static);
    }

    #[test]
    fn dynamic_rows_have_expected_outcomes() {
        let rep = measure();
        let perm = &rep.dynamic[0];
        let fold = &rep.dynamic[1];
        assert!(perm.speculations > 0 && perm.rollbacks == 0);
        assert!(fold.rollbacks > 0 && fold.speculations == 0);
        assert!(perm.spec_virt_s < perm.baseline_virt_s);
        assert!(fold.spec_virt_s > fold.baseline_virt_s);
    }
}

//! Chaos/soak harness for the compile service's resilience layer.
//!
//! Drives one [`CompileService`] (with an injected analysis fault
//! armed) through hundreds of seeded adversarial requests — clean
//! programs, garbled programs, deadline-carrying op bombs, a small
//! pool of crash-looping suites, and duplicate storms — in batches of
//! varying size, with every fifth batch issued while most of the
//! pending queue is held occupied. The artifact (`BENCH_resilience.json`)
//! records the structural classification of every response and the
//! harness's gates:
//!
//! * **zero escaped panics** — nothing gets past the service's
//!   containment, under any mix;
//! * **bounded queue** — the pending depth never exceeds the
//!   configured `max_pending`;
//! * **identity** — every full-fidelity response (`Cold` / `CacheHit` /
//!   `Deduped`) is bit-identical to a plain service-free `Compiler`
//!   compile of the same source;
//! * **total classification** — the adversarial mix actually produces
//!   every structured refusal class (`Rejected`, `DeadlineExpired`,
//!   `Quarantined`, `Degraded`), so none of the paths is dead;
//! * **quarantine convergence** — each crash-looping suite is compiled
//!   only a bounded number of times (strikes plus backoff probations),
//!   not once per request;
//! * **daemon survival** — a scripted daemon session under held
//!   capacity answers `REJECTED` and `"overloaded":true`, then serves
//!   normally once the hold drops.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use apar_core::{Compiler, CompilerProfile, PassId};
use apar_minicheck::fortgen::{gen_op_bomb, gen_program, GenConfig};
use apar_minicheck::{Rng, BASE_SEED};
use apar_service::daemon::serve;
use apar_service::{CompileService, Served, ServiceConfig, SuiteRequest};

use crate::json::{Json, ToJson};

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

/// How many crash-looping suites the soak cycles through. Small on
/// purpose: quarantine convergence is only visible when the same bad
/// suite comes back again and again.
const PANIC_POOL: usize = 4;

/// Distinct clean suites the duplicate storms draw from.
const DUP_POOL: usize = 3;

/// The `BENCH_resilience.json` payload.
#[derive(Clone, Debug)]
pub struct ResilienceData {
    pub requests: usize,
    pub batches: usize,
    pub workers: usize,
    pub max_pending: usize,
    // Structural classification of every response.
    pub cold: usize,
    pub cache_hits: usize,
    pub deduped: usize,
    pub deadline_expired: usize,
    pub rejected: usize,
    pub quarantined: usize,
    pub degraded: usize,
    /// Contained whole-compile panics ([`SuiteArtifact::Failed`]) — the
    /// per-loop sandbox should make this zero even under fault
    /// injection.
    pub failed: usize,
    /// Panics that escaped `compile_many` into the harness. Gate: zero.
    pub escaped_panics: usize,
    /// Full-fidelity responses compared against a plain compile.
    pub identity_checked: usize,
    /// Comparisons that diverged. Gate: zero.
    pub identity_divergences: usize,
    /// Deepest the pending queue ever was. Gate: ≤ `max_pending`.
    pub peak_pending: usize,
    /// Most times any one crash-looping suite was actually compiled.
    pub panic_source_max_compiles: usize,
    /// The convergence bound that count must stay under
    /// (strikes + backoff-probation allowance).
    pub panic_compile_bound: usize,
    /// Suites under active quarantine when the soak ended.
    pub quarantined_suites_final: usize,
    /// Facts-store quarantine refusal hits over the soak.
    pub facts_quarantine_hits: u64,
    /// Scripted daemon phase verdict (REJECTED under hold, recovery
    /// after, deadline expiry over the wire, loop survives garbage).
    pub daemon_ok: bool,
    /// `REJECTED` answers the daemon phase produced.
    pub daemon_rejected: usize,
    pub wall_s: f64,
}

impl ResilienceData {
    /// The CI contract.
    pub fn ok(&self) -> bool {
        self.escaped_panics == 0
            && self.identity_divergences == 0
            && self.failed == 0
            && self.peak_pending <= self.max_pending
            && self.identity_checked > 0
            && self.rejected > 0
            && self.deadline_expired > 0
            && self.quarantined > 0
            && self.degraded > 0
            && self.panic_source_max_compiles <= self.panic_compile_bound
            && self.daemon_ok
    }
}

impl ToJson for ResilienceData {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests", self.requests.to_json()),
            ("batches", self.batches.to_json()),
            ("workers", self.workers.to_json()),
            ("max_pending", self.max_pending.to_json()),
            ("cold", self.cold.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("deduped", self.deduped.to_json()),
            ("deadline_expired", self.deadline_expired.to_json()),
            ("rejected", self.rejected.to_json()),
            ("quarantined", self.quarantined.to_json()),
            ("degraded", self.degraded.to_json()),
            ("failed", self.failed.to_json()),
            ("escaped_panics", self.escaped_panics.to_json()),
            ("identity_checked", self.identity_checked.to_json()),
            (
                "identity_divergences",
                self.identity_divergences.to_json(),
            ),
            ("peak_pending", self.peak_pending.to_json()),
            (
                "panic_source_max_compiles",
                self.panic_source_max_compiles.to_json(),
            ),
            ("panic_compile_bound", self.panic_compile_bound.to_json()),
            (
                "quarantined_suites_final",
                self.quarantined_suites_final.to_json(),
            ),
            (
                "facts_quarantine_hits",
                self.facts_quarantine_hits.to_json(),
            ),
            ("daemon_ok", self.daemon_ok.to_json()),
            ("daemon_rejected", self.daemon_rejected.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("ok", self.ok().to_json()),
        ])
    }
}

fn case_seed(i: usize) -> u64 {
    BASE_SEED ^ (i as u64).wrapping_mul(GOLDEN)
}

/// One request of the adversarial mix. `kind` decides the family; the
/// request index seeds the generator so the stream is reproducible.
fn soak_request(i: usize, rng: &mut Rng) -> SuiteRequest {
    let mut gen_rng = Rng::new(case_seed(i));
    let roll = rng.usize_in(0, 99);
    if roll < 30 {
        // Fresh clean program: always a cold, full-fidelity compile.
        SuiteRequest::new(
            format!("clean-{}", i),
            gen_program(&mut gen_rng, &GenConfig::default()),
        )
    } else if roll < 45 {
        // Garbled program: recovery diagnostics, still full fidelity.
        let cfg = GenConfig {
            garble: 0.12,
            ..GenConfig::default()
        };
        SuiteRequest::new(format!("garbled-{}", i), gen_program(&mut gen_rng, &cfg))
    } else if roll < 60 {
        // Deadline-carrying op bomb. Half expire deterministically
        // (zero budget); half race a 2ms budget — both outcomes are
        // structurally valid, which is the point.
        let deadline = if rng.weighted(0.5) {
            Duration::ZERO
        } else {
            Duration::from_millis(2)
        };
        SuiteRequest::new(format!("bomb-{}", i), gen_op_bomb(&mut gen_rng))
            .with_deadline(deadline)
    } else if roll < 75 {
        // Crash-looping suite from the small pool: the injected fault
        // fires on every loop of unit FZPANIC, so this source strikes
        // out and must converge into quarantine.
        let p = rng.usize_in(0, PANIC_POOL - 1);
        let mut pool_rng = Rng::new(case_seed(1_000 + p));
        let src = gen_program(&mut pool_rng, &GenConfig::default())
            .replace("PROGRAM FUZZ", "PROGRAM FZPANIC");
        SuiteRequest::new(format!("panic-p{}", p), src)
    } else {
        // Duplicate storm: a source from the small clean pool, again.
        let d = rng.usize_in(0, DUP_POOL - 1);
        let mut pool_rng = Rng::new(case_seed(2_000 + d));
        SuiteRequest::new(
            format!("dup-d{}", d),
            gen_program(&mut pool_rng, &GenConfig::default()),
        )
    }
}

/// The scripted daemon phase: one session under held capacity (must
/// reject compiles but keep answering `HEALTH`/`STATS`), one after the
/// hold drops (must compile again, honor wire deadlines, and survive
/// garbage). Returns (ok, rejected count).
fn daemon_phase(service: &CompileService) -> (bool, usize) {
    let held_out = {
        let _hold = service.hold_capacity(service.config().max_pending - 2);
        let input: &[u8] =
            b"HEALTH\nSRC held 2\nPROGRAM MAIN\nEND\nFILE /nonexistent/apar-soak\nQUIT\n";
        let mut out = Vec::new();
        match serve(service, input, &mut out) {
            Ok(s) => (s, String::from_utf8_lossy(&out).into_owned()),
            Err(_) => return (false, 0),
        }
    };
    let (held_summary, held) = held_out;
    let input: &[u8] = b"HEALTH\nSRC again 5 \nPROGRAM MAIN\nINTEGER I\nDO I = 1, 9\nENDDO\nEND\nSRC dead 5 0\nPROGRAM MAIN\nINTEGER I\nDO I = 1, 77\nENDDO\nEND\n)(garbage\nSTATS\nQUIT\n";
    let mut out = Vec::new();
    let Ok(summary) = serve(service, input, &mut out) else {
        return (false, held_summary.rejected);
    };
    let after = String::from_utf8_lossy(&out);
    let ok = held.contains("\"overloaded\":true")
        && held.contains("REJECTED overload")
        && held_summary.rejected == 2
        && held_summary.quit
        && after.contains("\"overloaded\":false")
        && after.contains("\"served\":\"cold\"")
        && after.contains("\"served\":\"expired\"")
        && summary.errors == 1
        && summary.quit;
    (ok, held_summary.rejected)
}

/// Runs the soak: `requests` adversarial requests through one service
/// at `workers` workers, then the scripted daemon phase.
pub fn soak(requests: usize, workers: usize) -> ResilienceData {
    let t0 = std::time::Instant::now();
    // Contained panics (the injected fault) would otherwise print a
    // backtrace each; keep the soak's output readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let profile =
        CompilerProfile::polaris2008().with_fault(PassId::DataDependence, "FZPANIC", None);
    let config = ServiceConfig {
        profile: profile.clone(),
        workers,
        result_entries: 64,
        max_pending: 8,
        high_watermark: 6,
        low_watermark: 3,
        quarantine_strikes: 3,
        quarantine_backoff_ms: 200,
        ..ServiceConfig::default()
    };
    let max_pending = config.max_pending;
    let quarantine_strikes = config.quarantine_strikes as usize;
    let service = CompileService::new(config);

    let mut data = ResilienceData {
        requests: 0,
        batches: 0,
        workers,
        max_pending,
        cold: 0,
        cache_hits: 0,
        deduped: 0,
        deadline_expired: 0,
        rejected: 0,
        quarantined: 0,
        degraded: 0,
        failed: 0,
        escaped_panics: 0,
        identity_checked: 0,
        identity_divergences: 0,
        peak_pending: 0,
        panic_source_max_compiles: 0,
        // Strikes, plus a probation compile for each backoff lapse a
        // multi-second soak can plausibly see.
        panic_compile_bound: quarantine_strikes + 8,
        quarantined_suites_final: 0,
        facts_quarantine_hits: 0,
        daemon_ok: false,
        daemon_rejected: 0,
        wall_s: 0.0,
    };

    // Lazily memoized plain-compiler reference signatures, keyed by
    // request source. The plain compile uses the same (faulted)
    // profile, no service: the identity oracle.
    let mut reference: HashMap<String, String> = HashMap::new();
    let plain = Compiler::new(profile);
    // Compiles actually run per crash-looping suite name.
    let mut panic_compiles: HashMap<String, usize> = HashMap::new();

    let mut mix_rng = Rng::new(BASE_SEED ^ GOLDEN);
    let mut next = 0usize;
    while next < requests {
        // Mostly small batches (full-tier compiles for the identity
        // oracle), occasionally a storm that overflows admission.
        let size = if mix_rng.weighted(0.7) {
            mix_rng.usize_in(1, 3)
        } else {
            mix_rng.usize_in(4, 12)
        };
        let size = size.min(requests - next);
        let mut batch: Vec<SuiteRequest> =
            (0..size).map(|k| soak_request(next + k, &mut mix_rng)).collect();
        next += size;
        data.batches += 1;

        // Every fifth batch runs with most of the queue held occupied:
        // deterministic shedding and parse-only degradation. Force a
        // fresh clean request in so the degraded path really compiles.
        let held = data.batches.is_multiple_of(5);
        let hold = if held {
            let mut fresh = Rng::new(case_seed(3_000 + data.batches));
            batch[0] = SuiteRequest::new(
                format!("held-{}", data.batches),
                gen_program(&mut fresh, &GenConfig::default()),
            );
            Some(service.hold_capacity(max_pending - 2))
        } else {
            None
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| service.compile_many(&batch)));
        drop(hold);
        let result = match outcome {
            Ok(b) => b,
            Err(_) => {
                data.escaped_panics += 1;
                data.requests += size;
                continue;
            }
        };

        data.requests += size;
        for (req, o) in batch.iter().zip(&result.outcomes) {
            match o.served {
                Served::Cold => data.cold += 1,
                Served::CacheHit => data.cache_hits += 1,
                Served::Deduped => data.deduped += 1,
                Served::DeadlineExpired => data.deadline_expired += 1,
                Served::Rejected => data.rejected += 1,
                Served::Quarantined => data.quarantined += 1,
                Served::Degraded => data.degraded += 1,
            }
            if matches!(&*o.artifact, apar_service::SuiteArtifact::Failed(_)) {
                data.failed += 1;
            }
            if req.name.starts_with("panic-") && o.artifact.compile().is_some() {
                *panic_compiles.entry(req.name.clone()).or_insert(0) += 1;
            }
            if o.served.full_fidelity() {
                let sig = reference.entry(req.source.clone()).or_insert_with(|| {
                    plain
                        .compile_source_recovering(&req.name, &req.source)
                        .report_signature()
                });
                data.identity_checked += 1;
                if o.artifact.signature() != *sig {
                    data.identity_divergences += 1;
                }
            }
        }
    }

    data.peak_pending = service.peak_pending();
    data.panic_source_max_compiles = panic_compiles.values().copied().max().unwrap_or(0);
    data.quarantined_suites_final = service.quarantined_suites();
    data.facts_quarantine_hits = service.facts_store().stats().quarantine_hits;

    let (daemon_ok, daemon_rejected) = daemon_phase(&service);
    data.daemon_ok = daemon_ok;
    data.daemon_rejected = daemon_rejected;

    std::panic::set_hook(prev_hook);
    data.wall_s = t0.elapsed().as_secs_f64();
    data
}

/// ASCII rendering of the soak.
pub fn render(d: &ResilienceData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "resilience soak: {} requests in {} batches, {} workers, {:.2}s\n",
        d.requests, d.batches, d.workers, d.wall_s
    ));
    out.push_str(&format!(
        "classes: {} cold, {} hits, {} dedup, {} expired, {} rejected, {} quarantined, {} degraded, {} failed\n",
        d.cold,
        d.cache_hits,
        d.deduped,
        d.deadline_expired,
        d.rejected,
        d.quarantined,
        d.degraded,
        d.failed
    ));
    out.push_str(&format!(
        "escaped panics {}  identity {}/{} diverged  peak pending {}/{}\n",
        d.escaped_panics,
        d.identity_divergences,
        d.identity_checked,
        d.peak_pending,
        d.max_pending
    ));
    out.push_str(&format!(
        "quarantine: max compiles of one bad suite {} (bound {}), {} suites active at end, {} facts-quarantine hits\n",
        d.panic_source_max_compiles,
        d.panic_compile_bound,
        d.quarantined_suites_final,
        d.facts_quarantine_hits
    ));
    out.push_str(&format!(
        "daemon phase: ok={} ({} rejected under hold)\n",
        d.daemon_ok, d.daemon_rejected
    ));
    out.push_str(&format!("OK: {}\n", d.ok()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_passes_every_gate() {
        // The full 500-request soak is the `bench_resilience` binary's
        // job (and CI's); this keeps a fast sample in the unit suite
        // that still covers every adversarial family and both daemon
        // phases.
        let d = soak(120, 2);
        assert!(d.ok(), "soak failed gates:\n{}", render(&d));
    }

    #[test]
    fn soak_request_stream_is_deterministic() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        for i in 0..40 {
            let ra = soak_request(i, &mut a);
            let rb = soak_request(i, &mut b);
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.source, rb.source);
            assert_eq!(ra.deadline, rb.deadline);
        }
    }
}

//! Figure 1: measured performance of the four SEISMIC components under
//! serial, MPI, OpenMP, and Polaris (auto-parallelized) versions, for
//! the SMALL and MEDIUM datasets, on the modeled 4-processor machine.
//!
//! Times are *virtual seconds* (deterministic modeled time on the
//! 4-CPU machine; see `apar_runtime::interp::OPS_PER_SECOND` and
//! DESIGN.md's substitution table). Wall time of the underlying serial
//! interpretation is reported alongside for transparency.

use apar_core::{Compiler, CompilerProfile};
use apar_minifort::frontend;
use apar_runtime::{run, run_mpi, ExecConfig, ExecMode};
use apar_workloads::seismic::{component, Component};
use apar_workloads::{DataSize, Variant};
use crate::deck;

pub const THREADS: usize = 4;
const SEG: usize = 1 << 22;

#[derive(Clone, Debug)]
pub struct Fig1Row {
    pub component: String,
    pub serial_s: f64,
    pub mpi_s: f64,
    pub openmp_s: f64,
    pub polaris_s: f64,
    pub serial_wall_s: f64,
    pub polaris_regions: u64,
}

#[derive(Clone, Debug)]
pub struct Fig1Data {
    pub size: String,
    pub threads: usize,
    pub rows: Vec<Fig1Row>,
}

/// Runs all four components at one dataset size.
pub fn measure(size: DataSize) -> Fig1Data {
    let rows = [
        Component::DataGen,
        Component::Stack,
        Component::Fft3d,
        Component::FinDiff,
    ]
    .into_iter()
    .map(|c| measure_component(c, size))
    .collect();
    Fig1Data {
        size: format!("{:?}", size).to_uppercase(),
        threads: THREADS,
        rows,
    }
}

/// Runs one component under all four versions.
pub fn measure_component(c: Component, size: DataSize) -> Fig1Row {
    let sw = component(c, size, Variant::Serial);
    let rp = frontend(&sw.source).expect("serial frontend");
    let serial = run(
        &rp,
        &deck(&sw),
        &ExecConfig {
            seg_words: SEG,
            ..Default::default()
        },
    )
    .expect("serial run");

    let ow = component(c, size, Variant::OpenMp);
    let rpo = frontend(&ow.source).expect("omp frontend");
    let omp = run(
        &rpo,
        &deck(&ow),
        &ExecConfig {
            mode: ExecMode::Manual,
            threads: THREADS,
            seg_words: SEG,
            ..Default::default()
        },
    )
    .expect("omp run");

    let compiled = Compiler::new(CompilerProfile::polaris2008())
        .compile_source(&sw.name, &sw.source)
        .expect("compile");
    let auto = run(
        &compiled.rp,
        &deck(&sw),
        &ExecConfig {
            mode: ExecMode::Auto,
            threads: THREADS,
            seg_words: SEG,
            ..Default::default()
        },
    )
    .expect("auto run");

    let mw = component(c, size, Variant::Mpi);
    let rpm = frontend(&mw.source).expect("mpi frontend");
    let mpi = run_mpi(&rpm, &deck(&mw), THREADS, SEG).expect("mpi run");

    Fig1Row {
        component: c.label().to_string(),
        serial_s: serial.virt_seconds(),
        mpi_s: mpi.virt_seconds(),
        openmp_s: omp.virt_seconds(),
        polaris_s: auto.virt_seconds(),
        serial_wall_s: serial.wall.as_secs_f64(),
        polaris_regions: auto.regions,
    }
}

/// ASCII rendering mirroring the paper's stacked chart.
pub fn render(data: &Fig1Data) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 — SEISMIC performance, {} dataset ({} modeled CPUs; virtual seconds)\n",
        data.size, data.threads
    ));
    out.push_str(&format!(
        "{:>14} {:>9} {:>9} {:>9} {:>9}   speedup vs serial\n",
        "component", "serial", "MPI", "OpenMP", "Polaris"
    ));
    for r in &data.rows {
        out.push_str(&format!(
            "{:>14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}   mpi {:>4.2}x  omp {:>4.2}x  polaris {:>4.2}x\n",
            r.component,
            r.serial_s,
            r.mpi_s,
            r.openmp_s,
            r.polaris_s,
            r.serial_s / r.mpi_s,
            r.serial_s / r.openmp_s,
            r.serial_s / r.polaris_s,
        ));
    }
    out
}

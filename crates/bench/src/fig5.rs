//! Figure 5: remaining hindrances to automatic parallelization of the
//! target loops — per application, the count of target loops in each
//! category under the baseline compiler.

use apar_core::{Classification, Compiler, CompilerProfile};
use apar_workloads as wl;
/// Legend order of the paper's stacked chart.
pub const CATEGORIES: [Classification; 7] = [
    Classification::Autoparallelized,
    Classification::Aliasing,
    Classification::Rangeless,
    Classification::Indirection,
    Classification::SymbolAnalysis,
    Classification::AccessRepresentation,
    Classification::Complexity,
];

#[derive(Clone, Debug)]
pub struct Fig5Row {
    pub app: String,
    pub total_targets: usize,
    /// Counts in [`CATEGORIES`] order.
    pub counts: Vec<usize>,
}

pub fn measure() -> Vec<Fig5Row> {
    let compiler = Compiler::new(CompilerProfile::polaris2008());
    [
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
    ]
    .into_iter()
    .map(|w| {
        let r = compiler
            .compile_source(&w.name, &w.source)
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        let hist = r.target_histogram();
        let counts: Vec<usize> = CATEGORIES
            .iter()
            .map(|c| {
                hist.iter()
                    .find(|(h, _)| h == c)
                    .map(|(_, n)| *n)
                    .unwrap_or(0)
            })
            .collect();
        Fig5Row {
            app: w.name.clone(),
            total_targets: r.target_loops().count(),
            counts,
        }
    })
    .collect()
}

pub fn render(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — Remaining hindrances to automatic parallelization of target loops\n");
    out.push_str(&format!("{:>22}", "category \\ app"));
    for r in rows {
        out.push_str(&format!(" {:>9}", r.app));
    }
    out.push('\n');
    for (k, c) in CATEGORIES.iter().enumerate() {
        out.push_str(&format!("{:>22}", c.label()));
        for r in rows {
            out.push_str(&format!(" {:>9}", r.counts[k]));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>22}", "total target loops"));
    for r in rows {
        out.push_str(&format!(" {:>9}", r.total_targets));
    }
    out.push('\n');
    out
}

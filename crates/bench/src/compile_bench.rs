//! Compile-time benchmark: the per-loop analysis fan-out.
//!
//! Measures the compiler's own wall time per application at one worker
//! thread versus several, and — the correctness half of the claim —
//! checks that the two runs produce bit-identical reports: same
//! per-pass op counts, same per-loop classifications and annotations,
//! same Figure 5 histograms, same skip ledger. Wall seconds are the
//! only thing threads are allowed to change.
//!
//! The artifact (`BENCH_compile.json`) records, per app: loop count,
//! best-of-K serial and parallel seconds, the speedup, both total op
//! counts, and the identity verdict.

use std::time::Instant;

use apar_core::{CompileResult, Compiler, CompilerProfile};
use apar_workloads as wl;

/// One application's serial-vs-parallel compile measurement.
#[derive(Clone, Debug)]
pub struct CompileBenchRow {
    pub app: String,
    pub loops: usize,
    /// Worker threads used for the parallel measurement.
    pub threads: usize,
    /// Best-of-K wall seconds with one worker thread.
    pub serial_s: f64,
    /// Best-of-K wall seconds with `threads` worker threads.
    pub parallel_s: f64,
    pub speedup: f64,
    pub serial_ops: u64,
    pub parallel_ops: u64,
    /// Loops the panic sandbox degraded (should be 0 on clean suites).
    pub panicked_loops: usize,
    /// Loops the op-budget watchdog abandoned as `Complexity`.
    pub budget_tripped_loops: usize,
    /// Units the recovering frontend dropped with diagnostics (0 when
    /// compiled strictly, as this benchmark does).
    pub diag_units: usize,
    /// True when the serial and parallel reports are bit-identical
    /// (everything except wall seconds) — including the containment
    /// counters above.
    pub identical: bool,
}

/// Everything in a compile result that must not depend on the thread
/// count. Now a method on [`CompileResult`] (the service layer needs it
/// too); this free function remains as the bench-local spelling.
pub fn report_signature(r: &CompileResult) -> String {
    r.report_signature()
}

fn best_of<F: FnMut() -> CompileResult>(k: usize, mut f: F) -> (f64, CompileResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..k.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one run"))
}

fn measure_one(app: &str, src: &str, threads: usize, repeats: usize) -> CompileBenchRow {
    let serial = Compiler::new(CompilerProfile::polaris2008());
    let parallel = Compiler::new(CompilerProfile::polaris2008().with_threads(threads));
    let (serial_s, sr) = best_of(repeats, || {
        serial.compile_source(app, src).expect("serial compile")
    });
    let (parallel_s, pr) = best_of(repeats, || {
        parallel.compile_source(app, src).expect("parallel compile")
    });
    CompileBenchRow {
        app: app.to_string(),
        loops: sr.report.loops,
        threads,
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(f64::MIN_POSITIVE),
        serial_ops: sr.report.total_ops(),
        parallel_ops: pr.report.total_ops(),
        panicked_loops: sr.report.panicked_loops(),
        budget_tripped_loops: sr.budget_tripped_loops(),
        diag_units: sr.report.dropped_units.len(),
        identical: report_signature(&sr) == report_signature(&pr),
    }
}

/// Compiles every suite serial and parallel. `threads` is the parallel
/// worker count, `repeats` the best-of-K sample size per configuration.
pub fn measure(threads: usize, repeats: usize) -> Vec<CompileBenchRow> {
    let mut rows = Vec::new();
    for w in [
        wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial),
        wl::gamess::suite(wl::DataSize::Small),
        wl::sander::suite(wl::DataSize::Small),
    ] {
        rows.push(measure_one(&w.name, &w.source, threads, repeats));
    }
    for w in wl::perfect::codes() {
        rows.push(measure_one(&w.name, &w.source, threads, repeats));
    }
    rows
}

/// ASCII rendering of the benchmark table.
pub fn render(rows: &[CompileBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("BENCH compile — per-loop analysis fan-out (best-of-K wall seconds)\n");
    out.push_str(&format!(
        "{:>10} {:>6} {:>8} {:>10} {:>10} {:>8} {:>10}\n",
        "app", "loops", "threads", "serial s", "par s", "speedup", "identical"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>6} {:>8} {:>10.4} {:>10.4} {:>7.2}x {:>10}\n",
            r.app, r.loops, r.threads, r.serial_s, r.parallel_s, r.speedup, r.identical
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_detect_report_divergence() {
        let w = wl::linpack::suite();
        let a = Compiler::new(CompilerProfile::polaris2008())
            .compile_source(&w.name, &w.source)
            .expect("compile");
        let b = Compiler::new(CompilerProfile::full())
            .compile_source(&w.name, &w.source)
            .expect("compile");
        assert_eq!(report_signature(&a), report_signature(&a));
        // Different capability sets analyze differently; the signature
        // must notice.
        assert_ne!(report_signature(&a), report_signature(&b));
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let w = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
        let row = measure_one(&w.name, &w.source, 4, 1);
        assert!(
            row.identical,
            "{}: reports diverged across threads",
            row.app
        );
        assert_eq!(row.serial_ops, row.parallel_ops);
        assert!(row.loops > 1, "fan-out needs a multi-loop workload");
    }
}

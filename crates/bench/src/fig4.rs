//! Figure 4: nesting characteristics of the hand-identified target
//! loops — PERFECT vs SEISMIC averages of outer/enclosed subroutine and
//! loop depths.

use apar_core::nesting::{averages, target_nesting, NestingAverages};
use apar_minifort::frontend;
use apar_workloads as wl;
#[derive(Clone, Debug)]
pub struct Fig4Data {
    pub perfect: NestingAverages,
    pub seismic: NestingAverages,
}

pub fn measure() -> Fig4Data {
    let seismic_w = wl::seismic::full_suite(wl::DataSize::Small, wl::Variant::Serial);
    let rp = frontend(&seismic_w.source).expect("seismic frontend");
    let seismic = averages(&target_nesting(&rp));

    // PERFECT: pool the target loops of all codes.
    let mut rows = Vec::new();
    for w in wl::perfect::codes() {
        let rp = frontend(&w.source).expect("perfect frontend");
        rows.extend(target_nesting(&rp));
    }
    let perfect = averages(&rows);
    Fig4Data { perfect, seismic }
}

pub fn render(d: &Fig4Data) -> String {
    let mut out = String::new();
    out.push_str("Figure 4 — Nesting characteristics of loops manually identified as parallel\n");
    out.push_str(&format!(
        "{:>16} {:>12} {:>12}\n",
        "metric", "Perf. Bench.", "Seismic"
    ));
    for (label, p, s) in [
        ("outer subs", d.perfect.outer_subs, d.seismic.outer_subs),
        ("outer loops", d.perfect.outer_loops, d.seismic.outer_loops),
        ("enclosed subs", d.perfect.enclosed_subs, d.seismic.enclosed_subs),
        (
            "enclosed loops",
            d.perfect.enclosed_loops,
            d.seismic.enclosed_loops,
        ),
    ] {
        out.push_str(&format!(
            "{:>16} {:>12.2} {:>12.2}  |{}\n",
            label,
            p,
            s,
            crate::bar(s, 6.0, 30)
        ));
    }
    out.push_str(&format!(
        "(averaged over {} PERFECT and {} SEISMIC target loops)\n",
        d.perfect.n, d.seismic.n
    ));
    out
}

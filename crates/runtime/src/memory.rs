//! The shared cell arena.
//!
//! All COMMON storage lives at the front of one arena; each execution
//! thread owns a disjoint stack segment for activation records. Cells
//! are individually `UnsafeCell`-wrapped: the *compiler's* dependence
//! analysis (or the hand annotations) guarantees parallel iterations
//! touch disjoint shared cells, and the dynamic race checker validates
//! exactly that guarantee in tests.

use std::cell::UnsafeCell;

/// One storage word. Fortran storage association is by word; MiniFort
/// keeps the runtime type in the cell and treats uninitialized reads as
/// numeric zero (static zero-initialized storage, common F77 practice).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cell {
    Uninit,
    Int(i64),
    Real(f64),
}

impl Cell {
    #[inline]
    pub fn as_real(self) -> f64 {
        match self {
            Cell::Real(v) => v,
            Cell::Int(v) => v as f64,
            Cell::Uninit => 0.0,
        }
    }

    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Cell::Int(v) => v,
            Cell::Real(v) => v as i64,
            Cell::Uninit => 0,
        }
    }
}

/// The arena: commons at the front, then one stack segment per thread.
pub struct Arena {
    cells: Box<[UnsafeCell<Cell>]>,
    commons_len: usize,
    seg_len: usize,
    segments: usize,
}

// SAFETY: concurrent access discipline is enforced by the parallelizer
// (validated by the race checker); each cell is independently mutable.
unsafe impl Sync for Arena {}

impl Arena {
    /// `commons_len` words of global storage plus `segments` stacks of
    /// `seg_len` words each.
    pub fn new(commons_len: usize, segments: usize, seg_len: usize) -> Arena {
        let total = commons_len + segments * seg_len;
        let cells = (0..total)
            .map(|_| UnsafeCell::new(Cell::Uninit))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arena {
            cells,
            commons_len,
            seg_len,
            segments,
        }
    }

    #[inline]
    pub fn read(&self, addr: usize) -> Cell {
        unsafe { *self.cells[addr].get() }
    }

    #[inline]
    pub fn write(&self, addr: usize, v: Cell) {
        unsafe {
            *self.cells[addr].get() = v;
        }
    }

    /// Words of COMMON/global storage at the front of the arena.
    pub fn commons_len(&self) -> usize {
        self.commons_len
    }

    /// Copies `[lo, hi)` out of the arena — the checkpoint a
    /// speculative parallel region restores on rollback. Must not run
    /// concurrently with writers to the range.
    pub fn snapshot_range(&self, lo: usize, hi: usize) -> Vec<Cell> {
        (lo..hi).map(|a| self.read(a)).collect()
    }

    /// Writes a snapshot back starting at `lo`.
    pub fn restore_range(&self, lo: usize, cells: &[Cell]) {
        for (i, &c) in cells.iter().enumerate() {
            self.write(lo + i, c);
        }
    }

    /// Base address of thread segment `tid`.
    pub fn segment_base(&self, tid: usize) -> usize {
        assert!(tid < self.segments, "thread segment out of range");
        self.commons_len + tid * self.seg_len
    }

    pub fn segment_len(&self) -> usize {
        self.seg_len
    }

    pub fn total_len(&self) -> usize {
        self.cells.len()
    }
}

/// Bump allocator over one thread's stack segment.
#[derive(Clone, Copy, Debug)]
pub struct BumpStack {
    pub base: usize,
    pub top: usize,
    pub limit: usize,
}

impl BumpStack {
    pub fn new(base: usize, len: usize) -> BumpStack {
        BumpStack {
            base,
            top: base,
            limit: base + len,
        }
    }

    /// Allocates `n` words; returns the base address.
    pub fn alloc(&mut self, n: usize) -> Result<usize, super::interp::RtError> {
        let at = self.top;
        if at + n > self.limit {
            return Err(super::interp::RtError::StackOverflow);
        }
        self.top += n;
        Ok(at)
    }

    /// Restores the stack to a saved mark.
    pub fn release_to(&mut self, mark: usize) {
        debug_assert!(mark >= self.base && mark <= self.top);
        self.top = mark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_coercions() {
        assert_eq!(Cell::Uninit.as_real(), 0.0);
        assert_eq!(Cell::Uninit.as_int(), 0);
        assert_eq!(Cell::Int(3).as_real(), 3.0);
        assert_eq!(Cell::Real(2.7).as_int(), 2);
    }

    #[test]
    fn arena_layout() {
        let a = Arena::new(100, 3, 50);
        assert_eq!(a.total_len(), 250);
        assert_eq!(a.segment_base(0), 100);
        assert_eq!(a.segment_base(2), 200);
        a.write(10, Cell::Real(1.5));
        assert_eq!(a.read(10), Cell::Real(1.5));
        assert_eq!(a.read(11), Cell::Uninit);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let a = Arena::new(8, 1, 8);
        for i in 0..8 {
            a.write(i, Cell::Int(i as i64));
        }
        let snap = a.snapshot_range(0, 8);
        for i in 0..8 {
            a.write(i, Cell::Real(-1.0));
        }
        a.restore_range(0, &snap);
        for i in 0..8 {
            assert_eq!(a.read(i), Cell::Int(i as i64));
        }
        assert_eq!(a.commons_len(), 8);
    }

    #[test]
    fn partial_snapshot_leaves_rest_untouched() {
        let a = Arena::new(10, 1, 4);
        for i in 0..10 {
            a.write(i, Cell::Int(100 + i as i64));
        }
        let snap = a.snapshot_range(3, 6);
        assert_eq!(snap.len(), 3);
        a.write(2, Cell::Int(-2));
        a.write(4, Cell::Int(-4));
        a.write(7, Cell::Int(-7));
        a.restore_range(3, &snap);
        assert_eq!(a.read(2), Cell::Int(-2), "outside range stays modified");
        assert_eq!(a.read(4), Cell::Int(104), "inside range restored");
        assert_eq!(a.read(7), Cell::Int(-7), "outside range stays modified");
    }

    #[test]
    fn bump_stack_discipline() {
        let mut s = BumpStack::new(100, 20);
        let a = s.alloc(8).unwrap();
        let mark = s.top;
        let b = s.alloc(8).unwrap();
        assert_eq!(a, 100);
        assert_eq!(b, 108);
        assert!(s.alloc(8).is_err());
        s.release_to(mark);
        assert_eq!(s.alloc(8).unwrap(), 108);
    }
}

//! Lowering from the resolved AST to a slot-addressed runtime program.
//!
//! All name lookups happen here, once: scalars become indices into an
//! activation's resolved-address table, array references become
//! descriptor indices, COMMON members get absolute arena addresses.
//! The interpreter's hot path never touches a string.

use std::collections::HashMap;

use apar_minifort::ast::{self, BinOp, Expr as Ast, RedOp, Stmt, StmtKind, UnitKind};
use apar_minifort::resolve::is_intrinsic;
use apar_minifort::symtab::{ConstVal, Storage, SymbolKind};
use apar_minifort::{ResolvedProgram, Ty};

use crate::interp::RtError;
use crate::intrinsics::Intr;
use crate::memory::Cell;

pub type UnitId = usize;
pub type ScalarId = u16;
pub type ArrId = u16;

/// Where a scalar lives, resolved per activation.
#[derive(Clone, Copy, Debug)]
pub enum SLoc {
    /// Absolute arena address (COMMON member).
    Abs(usize),
    /// Offset within a local area.
    Local { area: u16, offset: u32 },
    /// Bound at call time.
    Formal { pos: u16 },
}

/// Where an array's storage starts.
#[derive(Clone, Copy, Debug)]
pub enum ABase {
    Abs(usize),
    Local { area: u16, offset: u32 },
    Formal { pos: u16 },
}

/// Runtime expression.
#[derive(Clone, Debug)]
pub enum RExpr {
    Ci(i64),
    Cr(f64),
    LoadS(ScalarId),
    LoadA(ArrId, Vec<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
    Neg(Box<RExpr>),
    Not(Box<RExpr>),
    Intr(Intr, Vec<RExpr>),
    CallF(UnitId, Vec<RActual>),
}

/// Lvalues.
#[derive(Clone, Debug)]
pub enum RLval {
    S(ScalarId),
    A(ArrId, Vec<RExpr>),
}

/// Actual arguments.
#[derive(Clone, Debug)]
pub enum RActual {
    /// By-value expression (copy-in temp).
    Val(RExpr),
    /// Scalar by reference.
    ScalarRef(ScalarId),
    /// Whole array.
    ArrayRef(ArrId),
    /// Array section starting at an element.
    Section(ArrId, Vec<RExpr>),
}

/// Parallel-region directive, slot-resolved.
#[derive(Clone, Debug, Default)]
pub struct RDirective {
    pub private_scalars: Vec<ScalarId>,
    pub private_arrays: Vec<ArrId>,
    pub reductions: Vec<(RedOp, ScalarId)>,
    /// Iteration-to-worker mapping: contiguous chunks (`Static`) or
    /// round-robin (`Cyclic`, for imbalanced bodies).
    pub schedule: ast::Schedule,
    /// Run the region under the speculative runtime dependence test:
    /// checkpoint shared state, execute in parallel with conflict
    /// logging, and re-execute serially on a detected conflict.
    pub speculative: bool,
    /// True when `write_scalars`/`write_arrays` exactly cover the
    /// body's possible shared writes (compiler write summary), letting
    /// the speculative checkpoint save only those cells.
    pub writes_known: bool,
    /// Scalars the body may write (valid when `writes_known`).
    pub write_scalars: Vec<ScalarId>,
    /// Arrays the body may write (valid when `writes_known`).
    pub write_arrays: Vec<ArrId>,
}

/// Output list items.
#[derive(Clone, Debug)]
pub enum WItem {
    Str(String),
    E(RExpr),
}

/// External targets a CALL may hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpOp {
    MyId,
    NProc,
    Send,
    Recv,
    RedSum,
    AllGather,
    Barrier,
}

#[derive(Clone, Debug)]
pub enum CallTarget {
    Unit(UnitId),
    Mpi(MpOp),
}

/// Runtime statements.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum RStmt {
    Assign(RLval, RExpr),
    If(Vec<(RExpr, Vec<RStmt>)>, Option<Vec<RStmt>>),
    Do {
        var: ScalarId,
        lo: RExpr,
        hi: RExpr,
        step: Option<RExpr>,
        body: Vec<RStmt>,
        /// Manual (`!$OMP`) directive, if any.
        manual: Option<RDirective>,
        /// Compiler (`auto_par`) directive, if any.
        auto: Option<RDirective>,
        /// DO variables of nested loops (auto-privatized in parallel runs).
        inner_vars: Vec<ScalarId>,
    },
    DoWhile {
        cond: RExpr,
        body: Vec<RStmt>,
    },
    Call(CallTarget, Vec<RActual>),
    Read(Vec<RLval>),
    Write(Vec<WItem>),
    Return,
    Stop,
}

/// One scalar of a unit.
#[derive(Clone, Copy, Debug)]
pub struct ScalarInfo {
    pub loc: SLoc,
    pub ty: Ty,
}

/// One array of a unit.
#[derive(Clone, Debug)]
pub struct ArrInfo {
    pub base: ABase,
    /// `(lo, extent)` per dimension; extent `None` = assumed size.
    pub dims: Vec<(RExpr, Option<RExpr>)>,
    pub ty: Ty,
}

/// Static initialization (DATA): linear element fills.
#[derive(Clone, Debug)]
pub struct RDataInit {
    pub array: Option<ArrId>,
    pub scalar: Option<ScalarId>,
    pub start_elem: i64,
    pub values: Vec<Cell>,
}

/// A lowered unit.
#[derive(Clone, Debug)]
pub struct RUnit {
    pub name: String,
    pub is_function: bool,
    /// Scalar slot holding a function's return value.
    pub fn_slot: Option<ScalarId>,
    pub nformals: usize,
    pub scalars: Vec<ScalarInfo>,
    pub arrays: Vec<ArrInfo>,
    /// Size of each local area in words.
    pub area_sizes: Vec<usize>,
    pub frame_words: usize,
    pub data: Vec<RDataInit>,
    pub body: Vec<RStmt>,
}

/// The lowered program.
#[derive(Clone, Debug)]
pub struct RProgram {
    pub units: Vec<RUnit>,
    pub main: UnitId,
    pub commons_total: usize,
    /// DATA fills into COMMON storage (absolute addressed), applied once.
    pub common_data: Vec<(usize, Vec<Cell>)>,
}

impl RProgram {
    /// Lowers a resolved program.
    pub fn lower(rp: &ResolvedProgram) -> Result<RProgram, RtError> {
        // Assign COMMON block bases.
        let mut common_bases: HashMap<String, usize> = HashMap::new();
        let mut next = 0usize;
        let mut blocks: Vec<(&String, &i64)> = rp.common_sizes.iter().collect();
        blocks.sort();
        for (name, size) in blocks {
            common_bases.insert(name.clone(), next);
            next += *size as usize;
        }
        let unit_ids: HashMap<&str, UnitId> = rp
            .program
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.as_str(), i))
            .collect();
        let mut units = Vec::new();
        let mut main = None;
        let mut common_data = Vec::new();
        for (i, unit) in rp.program.units.iter().enumerate() {
            if unit.kind == UnitKind::Main {
                main = Some(i);
            }
            let lowered = Lowerer::new(rp, unit, &common_bases, &unit_ids)?.run(&mut common_data)?;
            units.push(lowered);
        }
        Ok(RProgram {
            units,
            main: main.ok_or_else(|| RtError::Lower("no main program".into()))?,
            commons_total: next,
            common_data,
        })
    }

    pub fn unit_id(&self, name: &str) -> Option<UnitId> {
        self.units.iter().position(|u| u.name == name)
    }
}

struct Lowerer<'a> {
    rp: &'a ResolvedProgram,
    unit: &'a ast::Unit,
    common_bases: &'a HashMap<String, usize>,
    unit_ids: &'a HashMap<&'a str, UnitId>,
    scalar_ids: HashMap<String, ScalarId>,
    arr_ids: HashMap<String, ArrId>,
    scalars: Vec<ScalarInfo>,
    arrays: Vec<ArrInfo>,
}

impl<'a> Lowerer<'a> {
    fn new(
        rp: &'a ResolvedProgram,
        unit: &'a ast::Unit,
        common_bases: &'a HashMap<String, usize>,
        unit_ids: &'a HashMap<&'a str, UnitId>,
    ) -> Result<Self, RtError> {
        Ok(Lowerer {
            rp,
            unit,
            common_bases,
            unit_ids,
            scalar_ids: HashMap::new(),
            arr_ids: HashMap::new(),
            scalars: Vec::new(),
            arrays: Vec::new(),
        })
    }

    fn err(&self, msg: impl Into<String>) -> RtError {
        RtError::Lower(format!("{}: {}", self.unit.name, msg.into()))
    }

    fn run(mut self, common_data: &mut Vec<(usize, Vec<Cell>)>) -> Result<RUnit, RtError> {
        let table = self.rp.table(&self.unit.name);
        // Enumerate data symbols deterministically.
        let mut names: Vec<&str> = table.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        for name in names {
            let sym = table
                .get(name)
                .ok_or_else(|| self.err(format!("symbol {} vanished from its table", name)))?;
            let loc = |storage: &Storage| -> Option<SLoc> {
                Some(match storage {
                    Storage::Common { block, offset } => SLoc::Abs(
                        self.common_bases.get(block).copied().unwrap_or(0) + *offset as usize,
                    ),
                    Storage::Local { area, offset } => SLoc::Local {
                        area: *area as u16,
                        offset: *offset as u32,
                    },
                    Storage::Formal { position } => SLoc::Formal {
                        pos: *position as u16,
                    },
                    Storage::None => return None,
                })
            };
            match &sym.kind {
                SymbolKind::Scalar => {
                    if let Some(l) = loc(&sym.storage) {
                        let id = self.scalars.len() as ScalarId;
                        self.scalars.push(ScalarInfo { loc: l, ty: sym.ty });
                        self.scalar_ids.insert(name.to_string(), id);
                    }
                }
                SymbolKind::Array(_) => {
                    if let Some(l) = loc(&sym.storage) {
                        let base = match l {
                            SLoc::Abs(a) => ABase::Abs(a),
                            SLoc::Local { area, offset } => ABase::Local { area, offset },
                            SLoc::Formal { pos } => ABase::Formal { pos },
                        };
                        let id = self.arrays.len() as ArrId;
                        self.arrays.push(ArrInfo {
                            base,
                            dims: Vec::new(), // filled below (needs scalar ids)
                            ty: sym.ty,
                        });
                        self.arr_ids.insert(name.to_string(), id);
                    }
                }
                _ => {}
            }
        }
        // Array dims (may reference scalars).
        let arr_names: Vec<(String, ArrId)> =
            self.arr_ids.iter().map(|(n, i)| (n.clone(), *i)).collect();
        for (name, id) in arr_names {
            let sym = table
                .get(&name)
                .ok_or_else(|| self.err(format!("array {} vanished from its table", name)))?;
            let shape = sym
                .shape()
                .ok_or_else(|| self.err(format!("{} has no array shape", name)))?;
            let mut dims = Vec::new();
            for d in &shape.dims {
                let lo = self.lower_expr(&d.lo)?;
                let hi = match &d.hi {
                    Some(h) => {
                        let hi = self.lower_expr(h)?;
                        let lo2 = self.lower_expr(&d.lo)?;
                        // extent = hi - lo + 1
                        Some(RExpr::Bin(
                            BinOp::Add,
                            Box::new(RExpr::Bin(BinOp::Sub, Box::new(hi), Box::new(lo2))),
                            Box::new(RExpr::Ci(1)),
                        ))
                    }
                    None => None,
                };
                dims.push((lo, hi));
            }
            self.arrays[id as usize].dims = dims;
        }

        // DATA initializations.
        let mut data = Vec::new();
        for init in &table.data {
            let mut values = Vec::new();
            for (rep, lit) in &init.values {
                let c = match lit {
                    ast::Literal::Int(v) => Cell::Int(*v),
                    ast::Literal::Real(v) => Cell::Real(*v),
                    ast::Literal::Logical(b) => Cell::Int(*b as i64),
                };
                for _ in 0..*rep {
                    values.push(c);
                }
            }
            let sym = table
                .get(&init.name)
                .ok_or_else(|| self.err(format!("DATA names unknown symbol {}", init.name)))?;
            match (&sym.storage, &sym.kind) {
                (Storage::Common { block, offset }, _) => {
                    let base = self.common_bases.get(block).copied().unwrap_or(0)
                        + *offset as usize
                        + init.start_elem as usize;
                    common_data.push((base, values));
                }
                (_, SymbolKind::Array(_)) => data.push(RDataInit {
                    array: self.arr_ids.get(&init.name).copied(),
                    scalar: None,
                    start_elem: init.start_elem,
                    values,
                }),
                _ => data.push(RDataInit {
                    array: None,
                    scalar: self.scalar_ids.get(&init.name).copied(),
                    start_elem: 0,
                    values,
                }),
            }
        }

        let body = self.lower_block(&self.unit.body)?;
        let fn_slot = if self.unit.kind == UnitKind::Function {
            self.scalar_ids.get(&self.unit.name).copied()
        } else {
            None
        };
        let area_sizes: Vec<usize> = table.area_sizes.iter().map(|&s| s as usize).collect();
        Ok(RUnit {
            name: self.unit.name.clone(),
            is_function: self.unit.kind == UnitKind::Function,
            fn_slot,
            nformals: self.unit.formals.len(),
            scalars: self.scalars,
            arrays: self.arrays,
            frame_words: area_sizes.iter().sum(),
            area_sizes,
            data,
            body,
        })
    }

    fn scalar(&self, name: &str) -> Result<ScalarId, RtError> {
        self.scalar_ids
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown scalar {}", name)))
    }

    fn lower_block(&self, b: &ast::Block) -> Result<Vec<RStmt>, RtError> {
        b.stmts.iter().filter_map(|s| self.lower_stmt(s).transpose()).collect()
    }

    fn lower_stmt(&self, s: &Stmt) -> Result<Option<RStmt>, RtError> {
        Ok(Some(match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                let lv = match lhs {
                    Ast::Name(n) => RLval::S(self.scalar(n)?),
                    Ast::Index { name, subs } => {
                        let id = *self
                            .arr_ids
                            .get(name)
                            .ok_or_else(|| self.err(format!("unknown array {}", name)))?;
                        RLval::A(
                            id,
                            subs.iter()
                                .map(|e| self.lower_expr(e))
                                .collect::<Result<_, _>>()?,
                        )
                    }
                    _ => return Err(self.err("bad lvalue")),
                };
                RStmt::Assign(lv, self.lower_expr(rhs)?)
            }
            StmtKind::If { arms, else_blk } => {
                let mut rarms = Vec::new();
                for (c, b) in arms {
                    rarms.push((self.lower_expr(c)?, self.lower_block(b)?));
                }
                let relse = match else_blk {
                    Some(b) => Some(self.lower_block(b)?),
                    None => None,
                };
                RStmt::If(rarms, relse)
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                omp,
                auto_par,
                ..
            } => {
                let mut inner_vars = Vec::new();
                body.walk_stmts(&mut |st| {
                    if let StmtKind::Do { var: v, .. } = &st.kind {
                        if let Ok(id) = self.scalar(v) {
                            inner_vars.push(id);
                        }
                    }
                });
                inner_vars.sort_unstable();
                inner_vars.dedup();
                RStmt::Do {
                    var: self.scalar(var)?,
                    lo: self.lower_expr(lo)?,
                    hi: self.lower_expr(hi)?,
                    step: step.as_ref().map(|e| self.lower_expr(e)).transpose()?,
                    body: self.lower_block(body)?,
                    manual: omp.as_ref().map(|d| self.lower_directive(d)).transpose()?,
                    auto: auto_par
                        .as_ref()
                        .map(|d| self.lower_directive(d))
                        .transpose()?,
                    inner_vars,
                }
            }
            StmtKind::DoWhile { cond, body } => RStmt::DoWhile {
                cond: self.lower_expr(cond)?,
                body: self.lower_block(body)?,
            },
            StmtKind::Call { name, args } => {
                let target = match name.as_str() {
                    "MPMYID" => CallTarget::Mpi(MpOp::MyId),
                    "MPNPROC" => CallTarget::Mpi(MpOp::NProc),
                    "MPSEND" => CallTarget::Mpi(MpOp::Send),
                    "MPRECV" => CallTarget::Mpi(MpOp::Recv),
                    "MPREDS" => CallTarget::Mpi(MpOp::RedSum),
                    "MPALLG" => CallTarget::Mpi(MpOp::AllGather),
                    "MPBAR" => CallTarget::Mpi(MpOp::Barrier),
                    other => CallTarget::Unit(
                        *self
                            .unit_ids
                            .get(other)
                            .ok_or_else(|| self.err(format!("undefined routine {}", other)))?,
                    ),
                };
                RStmt::Call(
                    target,
                    args.iter()
                        .map(|a| self.lower_actual(a))
                        .collect::<Result<_, _>>()?,
                )
            }
            StmtKind::Read { items } => RStmt::Read(
                items
                    .iter()
                    .map(|it| match it {
                        Ast::Name(n) => Ok(RLval::S(self.scalar(n)?)),
                        Ast::Index { name, subs } => {
                            let id = *self
                                .arr_ids
                                .get(name)
                                .ok_or_else(|| self.err(format!("unknown array {}", name)))?;
                            Ok(RLval::A(
                                id,
                                subs.iter()
                                    .map(|e| self.lower_expr(e))
                                    .collect::<Result<_, _>>()?,
                            ))
                        }
                        _ => Err(self.err("bad READ item")),
                    })
                    .collect::<Result<_, _>>()?,
            ),
            StmtKind::Write { items } => RStmt::Write(
                items
                    .iter()
                    .map(|it| match it {
                        Ast::Str(s) => Ok(WItem::Str(s.clone())),
                        other => Ok(WItem::E(self.lower_expr(other)?)),
                    })
                    .collect::<Result<_, _>>()?,
            ),
            StmtKind::Return => RStmt::Return,
            StmtKind::Stop => RStmt::Stop,
            StmtKind::Continue => return Ok(None),
            StmtKind::Goto(_) => return Err(self.err("GOTO not supported by the runtime")),
        }))
    }

    fn lower_directive(&self, d: &ast::LoopDirective) -> Result<RDirective, RtError> {
        let mut out = RDirective::default();
        for p in &d.private {
            if let Some(&id) = self.scalar_ids.get(p) {
                out.private_scalars.push(id);
            } else if let Some(&id) = self.arr_ids.get(p) {
                out.private_arrays.push(id);
            }
            // Unknown names (analysis-side temporaries) are dropped.
        }
        for (op, v) in &d.reductions {
            out.reductions.push((*op, self.scalar(v)?));
        }
        out.schedule = d.schedule;
        out.speculative = d.speculative;
        if let Some(writes) = &d.writes {
            // The summary is only usable if every named symbol resolves
            // to a slot here; otherwise the rollback checkpoint must
            // assume any cell could be written.
            out.writes_known = true;
            for name in writes {
                if let Some(&id) = self.scalar_ids.get(name) {
                    out.write_scalars.push(id);
                } else if let Some(&id) = self.arr_ids.get(name) {
                    out.write_arrays.push(id);
                } else {
                    out.writes_known = false;
                    out.write_scalars.clear();
                    out.write_arrays.clear();
                    break;
                }
            }
        }
        Ok(out)
    }

    fn lower_actual(&self, a: &Ast) -> Result<RActual, RtError> {
        Ok(match a {
            Ast::Name(n) => {
                if let Some(&id) = self.arr_ids.get(n) {
                    RActual::ArrayRef(id)
                } else if let Some(v) = self.rp.table(&self.unit.name).param_val(n) {
                    // PARAMETER constants pass by value.
                    RActual::Val(match v {
                        ConstVal::Int(k) => RExpr::Ci(k),
                        ConstVal::Real(r) => RExpr::Cr(r),
                        ConstVal::Logical(b) => RExpr::Ci(b as i64),
                    })
                } else {
                    RActual::ScalarRef(self.scalar(n)?)
                }
            }
            Ast::Index { name, subs } => {
                let id = *self
                    .arr_ids
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown array {}", name)))?;
                RActual::Section(
                    id,
                    subs.iter()
                        .map(|e| self.lower_expr(e))
                        .collect::<Result<_, _>>()?,
                )
            }
            other => RActual::Val(self.lower_expr(other)?),
        })
    }

    fn lower_expr(&self, e: &Ast) -> Result<RExpr, RtError> {
        Ok(match e {
            Ast::Int(v) => RExpr::Ci(*v),
            Ast::Real(v) => RExpr::Cr(*v),
            Ast::Logical(b) => RExpr::Ci(*b as i64),
            Ast::Str(_) => return Err(self.err("string in expression")),
            Ast::Name(n) => {
                if let Some(t) = self.rp.table(&self.unit.name).param_val(n) {
                    match t {
                        ConstVal::Int(v) => RExpr::Ci(v),
                        ConstVal::Real(v) => RExpr::Cr(v),
                        ConstVal::Logical(b) => RExpr::Ci(b as i64),
                    }
                } else {
                    RExpr::LoadS(self.scalar(n)?)
                }
            }
            Ast::Index { name, subs } => {
                let id = *self
                    .arr_ids
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown array {}", name)))?;
                RExpr::LoadA(
                    id,
                    subs.iter()
                        .map(|s| self.lower_expr(s))
                        .collect::<Result<_, _>>()?,
                )
            }
            Ast::CallF { name, args } => {
                if is_intrinsic(name) {
                    let intr = Intr::parse(name)
                        .ok_or_else(|| self.err(format!("unsupported intrinsic {}", name)))?;
                    RExpr::Intr(
                        intr,
                        args.iter()
                            .map(|a| self.lower_expr(a))
                            .collect::<Result<_, _>>()?,
                    )
                } else {
                    let uid = *self
                        .unit_ids
                        .get(name.as_str())
                        .ok_or_else(|| self.err(format!("undefined function {}", name)))?;
                    RExpr::CallF(
                        uid,
                        args.iter()
                            .map(|a| self.lower_actual(a))
                            .collect::<Result<_, _>>()?,
                    )
                }
            }
            Ast::Sub { name, .. } => {
                return Err(self.err(format!("unresolved reference {}", name)))
            }
            Ast::Bin(op, l, r) => RExpr::Bin(
                *op,
                Box::new(self.lower_expr(l)?),
                Box::new(self.lower_expr(r)?),
            ),
            Ast::Un(ast::UnOp::Neg, i) => RExpr::Neg(Box::new(self.lower_expr(i)?)),
            Ast::Un(ast::UnOp::Not, i) => RExpr::Not(Box::new(self.lower_expr(i)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn lower(src: &str) -> RProgram {
        let rp = frontend(src).expect("frontend");
        RProgram::lower(&rp).expect("lower")
    }

    #[test]
    fn lowers_a_small_program() {
        let p = lower(
            "PROGRAM P\nREAL A(10)\nCOMMON /C/ Q, R(5)\nDO I = 1, 10\nA(I) = Q + REAL(I)\nENDDO\nCALL S(A, 10)\nEND\nSUBROUTINE S(X, N)\nREAL X(*)\nX(1) = X(N) * 2.0\nEND\n",
        );
        assert_eq!(p.units.len(), 2);
        assert_eq!(p.commons_total, 6);
        let main = &p.units[p.main];
        assert!(main.frame_words >= 11); // A(10) + I
        assert!(!main.body.is_empty());
    }

    #[test]
    fn common_addresses_are_absolute() {
        let p = lower(
            "PROGRAM P\nCOMMON /C/ Q, W\nQ = 1.0\nW = 2.0\nEND\nSUBROUTINE S\nCOMMON /C/ A, B\nA = B\nEND\n",
        );
        // Both units see the same absolute addresses for /C/ members.
        let find_abs = |u: &RUnit| -> Vec<usize> {
            u.scalars
                .iter()
                .filter_map(|s| match s.loc {
                    SLoc::Abs(a) => Some(a),
                    _ => None,
                })
                .collect()
        };
        let mut a0 = find_abs(&p.units[0]);
        let mut a1 = find_abs(&p.units[1]);
        a0.sort();
        a1.sort();
        assert_eq!(a0, a1);
        assert_eq!(a0.len(), 2);
    }

    #[test]
    fn data_initializers_lower() {
        let p = lower("PROGRAM P\nREAL A(4)\nDATA A /4*1.5/\nX = A(1)\nEND\n");
        let main = &p.units[p.main];
        assert_eq!(main.data.len(), 1);
        assert_eq!(main.data[0].values.len(), 4);
        assert_eq!(main.data[0].values[0], Cell::Real(1.5));
    }

    #[test]
    fn goto_is_rejected() {
        let rp = frontend("PROGRAM P\n10 CONTINUE\nGOTO 10\nEND\n").unwrap();
        assert!(matches!(RProgram::lower(&rp), Err(RtError::Lower(_))));
    }

    #[test]
    fn mpi_builtins_recognized() {
        let p = lower("PROGRAM P\nCALL MPMYID(ME)\nCALL MPBAR\nEND\n");
        let main = &p.units[p.main];
        assert!(main
            .body
            .iter()
            .any(|s| matches!(s, RStmt::Call(CallTarget::Mpi(MpOp::MyId), _))));
    }

    #[test]
    fn directives_resolve_slots() {
        let p = lower(
            "PROGRAM P\nREAL A(10)\n!$OMP PARALLEL DO PRIVATE(T) REDUCTION(+:S)\nDO I = 1, 10\nT = A(I)\nS = S + T\nENDDO\nEND\n",
        );
        let main = &p.units[p.main];
        let RStmt::Do { manual: Some(d), .. } = &main.body[0] else {
            panic!("expected DO");
        };
        assert_eq!(d.private_scalars.len(), 1);
        assert_eq!(d.reductions.len(), 1);
    }
}

//! Fortran intrinsic functions supported by the runtime.

use crate::memory::Cell;

/// Intrinsic identifiers, parsed once at lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intr {
    Abs,
    Sqrt,
    Sin,
    Cos,
    Tan,
    Atan,
    Atan2,
    Asin,
    Acos,
    Exp,
    Log,
    Log10,
    Mod,
    Min,
    Max,
    Int,
    Nint,
    Real,
    Sign,
}

impl Intr {
    /// Maps a (uppercased) intrinsic name, folding type-specific
    /// variants together (MiniFort reals are 64-bit).
    pub fn parse(name: &str) -> Option<Intr> {
        Some(match name {
            "ABS" | "IABS" => Intr::Abs,
            "SQRT" => Intr::Sqrt,
            "SIN" => Intr::Sin,
            "COS" => Intr::Cos,
            "TAN" => Intr::Tan,
            "ATAN" => Intr::Atan,
            "ATAN2" => Intr::Atan2,
            "ASIN" => Intr::Asin,
            "ACOS" => Intr::Acos,
            "EXP" => Intr::Exp,
            "LOG" => Intr::Log,
            "LOG10" => Intr::Log10,
            "MOD" | "AMOD" => Intr::Mod,
            "MIN" | "MIN0" | "AMIN1" => Intr::Min,
            "MAX" | "MAX0" | "AMAX1" => Intr::Max,
            "INT" | "IFIX" => Intr::Int,
            "NINT" => Intr::Nint,
            "REAL" | "FLOAT" | "SNGL" | "DBLE" => Intr::Real,
            "SIGN" | "ISIGN" => Intr::Sign,
            _ => return None,
        })
    }

    /// Fewest arguments [`Intr::apply`] needs; calling it with fewer
    /// would index past the argument list, so interpreters must check
    /// this first and trap on a malformed call.
    pub fn min_args(self) -> usize {
        match self {
            Intr::Atan2 | Intr::Mod | Intr::Sign => 2,
            _ => 1,
        }
    }

    /// Applies the intrinsic to evaluated arguments (at least
    /// [`Intr::min_args`] of them).
    pub fn apply(self, args: &[Cell]) -> Cell {
        let r = |i: usize| args[i].as_real();
        match self {
            Intr::Abs => match args[0] {
                Cell::Int(v) => Cell::Int(v.abs()),
                other => Cell::Real(other.as_real().abs()),
            },
            Intr::Sqrt => Cell::Real(r(0).sqrt()),
            Intr::Sin => Cell::Real(r(0).sin()),
            Intr::Cos => Cell::Real(r(0).cos()),
            Intr::Tan => Cell::Real(r(0).tan()),
            Intr::Atan => Cell::Real(r(0).atan()),
            Intr::Atan2 => Cell::Real(r(0).atan2(r(1))),
            Intr::Asin => Cell::Real(r(0).asin()),
            Intr::Acos => Cell::Real(r(0).acos()),
            Intr::Exp => Cell::Real(r(0).exp()),
            Intr::Log => Cell::Real(r(0).ln()),
            Intr::Log10 => Cell::Real(r(0).log10()),
            Intr::Mod => match (args[0], args[1]) {
                (Cell::Int(a), Cell::Int(b)) => {
                    Cell::Int(if b == 0 { 0 } else { a.wrapping_rem(b) })
                }
                (a, b) => Cell::Real(a.as_real() % b.as_real()),
            },
            Intr::Min => fold(args, |a, b| a < b),
            Intr::Max => fold(args, |a, b| a > b),
            Intr::Int => Cell::Int(r(0) as i64),
            Intr::Nint => Cell::Int(r(0).round() as i64),
            Intr::Real => Cell::Real(r(0)),
            Intr::Sign => match (args[0], args[1]) {
                (Cell::Int(a), Cell::Int(b)) => {
                    Cell::Int(if b >= 0 { a.abs() } else { -a.abs() })
                }
                (a, b) => Cell::Real(if b.as_real() >= 0.0 {
                    a.as_real().abs()
                } else {
                    -a.as_real().abs()
                }),
            },
        }
    }
}

fn fold(args: &[Cell], pick_left: impl Fn(f64, f64) -> bool) -> Cell {
    let all_int = args.iter().all(|c| matches!(c, Cell::Int(_)));
    let mut best = args[0];
    for &a in &args[1..] {
        if pick_left(a.as_real(), best.as_real()) {
            best = a;
        }
    }
    if all_int {
        Cell::Int(best.as_int())
    } else {
        Cell::Real(best.as_real())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_folds_variants() {
        assert_eq!(Intr::parse("IABS"), Some(Intr::Abs));
        assert_eq!(Intr::parse("AMIN1"), Some(Intr::Min));
        assert_eq!(Intr::parse("FLOAT"), Some(Intr::Real));
        assert_eq!(Intr::parse("CMPLX"), None);
    }

    #[test]
    fn numeric_behaviour() {
        assert_eq!(Intr::Abs.apply(&[Cell::Int(-4)]), Cell::Int(4));
        assert_eq!(Intr::Mod.apply(&[Cell::Int(-7), Cell::Int(3)]), Cell::Int(-1));
        assert_eq!(
            Intr::Min.apply(&[Cell::Int(3), Cell::Int(1), Cell::Int(2)]),
            Cell::Int(1)
        );
        assert_eq!(
            Intr::Max.apply(&[Cell::Real(1.5), Cell::Int(2)]),
            Cell::Real(2.0)
        );
        assert_eq!(Intr::Nint.apply(&[Cell::Real(2.6)]), Cell::Int(3));
        assert_eq!(
            Intr::Sign.apply(&[Cell::Real(3.0), Cell::Real(-1.0)]),
            Cell::Real(-3.0)
        );
        let s = Intr::Sqrt.apply(&[Cell::Real(9.0)]);
        assert_eq!(s, Cell::Real(3.0));
    }

    #[test]
    fn mod_matches_fortran_sign_convention() {
        // F77 MOD truncates toward zero: result has the sign of the
        // first argument.
        assert_eq!(Intr::Mod.apply(&[Cell::Int(7), Cell::Int(3)]), Cell::Int(1));
        assert_eq!(Intr::Mod.apply(&[Cell::Int(-7), Cell::Int(3)]), Cell::Int(-1));
        assert_eq!(Intr::Mod.apply(&[Cell::Int(7), Cell::Int(-3)]), Cell::Int(1));
        assert_eq!(Intr::Mod.apply(&[Cell::Int(-7), Cell::Int(-3)]), Cell::Int(-1));
        // Division-by-zero degrades to 0 rather than trapping.
        assert_eq!(Intr::Mod.apply(&[Cell::Int(7), Cell::Int(0)]), Cell::Int(0));
        // Real MOD follows the % convention.
        assert_eq!(
            Intr::Mod.apply(&[Cell::Real(7.5), Cell::Real(2.0)]),
            Cell::Real(1.5)
        );
    }

    #[test]
    fn int_truncates_nint_rounds() {
        assert_eq!(Intr::Int.apply(&[Cell::Real(2.9)]), Cell::Int(2));
        assert_eq!(Intr::Int.apply(&[Cell::Real(-2.9)]), Cell::Int(-2));
        assert_eq!(Intr::Nint.apply(&[Cell::Real(-2.6)]), Cell::Int(-3));
        assert_eq!(Intr::Nint.apply(&[Cell::Real(2.5)]), Cell::Int(3));
        // Uninit coerces to zero everywhere.
        assert_eq!(Intr::Int.apply(&[Cell::Uninit]), Cell::Int(0));
    }

    #[test]
    fn minmax_mixed_types_promote_to_real() {
        assert_eq!(
            Intr::Min.apply(&[Cell::Int(3), Cell::Real(2.5)]),
            Cell::Real(2.5)
        );
        assert_eq!(
            Intr::Max.apply(&[Cell::Int(3), Cell::Real(2.5)]),
            Cell::Real(3.0)
        );
        // All-int stays int.
        assert_eq!(
            Intr::Max.apply(&[Cell::Int(3), Cell::Int(9), Cell::Int(5)]),
            Cell::Int(9)
        );
    }

    #[test]
    fn sign_transfers_sign_of_second_argument() {
        assert_eq!(
            Intr::Sign.apply(&[Cell::Int(-3), Cell::Int(5)]),
            Cell::Int(3)
        );
        assert_eq!(
            Intr::Sign.apply(&[Cell::Int(3), Cell::Int(-5)]),
            Cell::Int(-3)
        );
        // Zero second argument counts as non-negative (F77).
        assert_eq!(
            Intr::Sign.apply(&[Cell::Real(-2.0), Cell::Real(0.0)]),
            Cell::Real(2.0)
        );
    }

    #[test]
    fn transcendentals_hit_libm() {
        let pi = std::f64::consts::PI;
        let c = |v: Cell| match v {
            Cell::Real(x) => x,
            _ => panic!("expected real"),
        };
        assert!((c(Intr::Sin.apply(&[Cell::Real(pi / 2.0)])) - 1.0).abs() < 1e-12);
        assert!((c(Intr::Cos.apply(&[Cell::Real(0.0)])) - 1.0).abs() < 1e-12);
        assert!(
            (c(Intr::Atan2.apply(&[Cell::Real(1.0), Cell::Real(1.0)])) - pi / 4.0).abs()
                < 1e-12
        );
        assert!((c(Intr::Exp.apply(&[Cell::Real(1.0)])) - std::f64::consts::E).abs() < 1e-12);
        assert!((c(Intr::Log.apply(&[Cell::Real(std::f64::consts::E)])) - 1.0).abs() < 1e-12);
        assert!((c(Intr::Log10.apply(&[Cell::Real(1000.0)])) - 3.0).abs() < 1e-12);
    }
}

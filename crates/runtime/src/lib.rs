//! The MiniFort execution substrate.
//!
//! The paper measures wall-clock speedups of four program versions on a
//! 4-processor machine (Figure 1). This crate supplies the machine: a
//! tree-walking interpreter whose parallel loops execute on real OS
//! threads over shared memory, with fork/join overhead genuinely
//! incurred per parallel region — the mechanism behind the paper's
//! observation that Polaris's inner-loop parallelization *loses* time.
//!
//! * [`rprog`] — lowers a resolved program to a slot-addressed runtime
//!   form (no name lookups on the hot path).
//! * [`memory`] — one shared cell arena: COMMON blocks plus per-thread
//!   activation stacks; Fortran storage association is preserved because
//!   offsets come straight from the resolver.
//! * [`interp`] — the interpreter: serial execution, `!$OMP`-driven
//!   (manual) or `auto_par`-driven (compiler) parallel loops with
//!   private/lastprivate/reduction handling, and an optional dynamic
//!   race checker that validates the static analysis.
//! * [`mpi`] — message-passing simulation: ranks as threads with private
//!   memories, `MP*` builtins over tag-selective queues and collectives,
//!   with timeout-based deadlock detection and world poisoning.
//! * [`checkpoint`] — targeted or full snapshots of shared state for
//!   speculative rollback.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): drop or
//!   delay messages, kill ranks, panic workers, force mis-speculation.
//!
//! Interpretation multiplies per-operation cost uniformly across all
//! program versions, so *relative* speedups — the figure's shape — are
//! preserved.

pub mod checkpoint;
pub mod fault;
pub mod interp;
pub mod intrinsics;
pub mod memory;
pub mod mpi;
pub mod rprog;

pub use fault::{FaultPlan, MsgPat};
pub use interp::{
    run, ExecConfig, ExecMode, RtError, RunResult, FORK_REGION_COST, FORK_THREAD_COST,
    OPS_PER_SECOND, SPEC_MONITOR_COST,
};
pub use mpi::{run_mpi, run_mpi_cfg};
pub use rprog::RProgram;

/// Deck values accepted by `READ(*,*)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeckVal {
    Int(i64),
    Real(f64),
}

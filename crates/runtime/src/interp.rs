//! The interpreter: serial and thread-parallel execution of lowered
//! MiniFort programs.
//!
//! Parallel `DO` regions fork real scoped threads (fork/join cost is
//! *part of the measurement*, as in the paper's Figure 1), give each
//! worker a private activation overlay for the directive's
//! private/reduction variables, execute contiguous chunks (or
//! round-robin iterations under a `SCHEDULE(CYCLIC)` directive),
//! combine reduction partials in worker order, and apply lastprivate
//! copy-back from the worker that ran the final iteration. An optional race
//! checker records shared-cell accesses per worker and fails the run on
//! any cross-chunk write conflict — the dynamic validation of the
//! static dependence analysis.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use apar_minifort::ast::{BinOp, RedOp, Schedule};
use apar_minifort::{ResolvedProgram, Ty};

use crate::checkpoint::{Checkpoint, CheckpointKind};
use crate::fault::FaultPlan;
use crate::memory::{Arena, BumpStack, Cell};
use crate::mpi::MpiEnv;
use crate::rprog::*;
use crate::DeckVal;

/// Locks a mutex, recovering the data if a contained worker panic
/// poisoned it: panic containment means a poisoned lock is an expected
/// state, not a secondary failure.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Renders a panic payload for error reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Which annotations drive parallel execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Ignore all annotations.
    Serial,
    /// Honor hand-written `!$OMP` directives.
    Manual,
    /// Honor compiler-produced `auto_par` directives.
    Auto,
}

/// Execution configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    pub mode: ExecMode,
    /// Worker count for parallel regions (the paper's machine: 4).
    pub threads: usize,
    /// Record and verify shared accesses of parallel regions.
    pub check_races: bool,
    /// Words per thread stack segment.
    pub seg_words: usize,
    /// Hard cap on emitted output lines.
    pub max_output: usize,
    /// Hard cap on virtual ops per executor (main thread or any one
    /// worker); exceeding it fails the run with [`RtError::OpLimit`].
    /// Effectively unlimited by default — harnesses executing untrusted
    /// programs (which may not terminate) should set a budget.
    pub max_virt: u64,
    /// How long a blocked MPI operation may wait before the runtime
    /// declares a deadlock and reports the blocked ranks.
    pub mpi_timeout_ms: u64,
    /// Deterministic fault injection (tests and chaos harnesses).
    pub fault: FaultPlan,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            mode: ExecMode::Serial,
            threads: 4,
            check_races: false,
            seg_words: 1 << 20,
            max_output: 10_000,
            max_virt: u64::MAX,
            mpi_timeout_ms: 2_000,
            fault: FaultPlan::none(),
        }
    }
}

/// Runtime failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    Lower(String),
    StackOverflow,
    Trap(String),
    Race(String),
    DeckExhausted,
    OutputLimit,
    /// The run exceeded `ExecConfig::max_virt` virtual ops. A fuel cap
    /// for fuzzing and other harnesses that execute untrusted programs
    /// (mutated sources can contain infinite `DO WHILE` loops).
    OpLimit,
    /// A parallel worker panicked; the panic was contained at the fork
    /// scope and converted to this error with its provenance.
    WorkerPanic {
        worker: usize,
        unit: String,
        message: String,
    },
    /// An MPI rank's thread panicked; contained at the world scope.
    RankPanic { rank: usize, message: String },
    /// Blocked MPI operations exceeded the configured timeout; the
    /// diagnostic names every blocked rank with what it waits on.
    Deadlock(String),
    /// The fault plan killed this rank mid-run.
    RankKilled { rank: usize },
    /// This rank aborted because another rank failed first; `cause`
    /// carries the originating diagnostic.
    Aborted { rank: usize, cause: String },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Lower(m) => write!(f, "lowering error: {}", m),
            RtError::StackOverflow => write!(f, "activation stack overflow"),
            RtError::Trap(m) => write!(f, "runtime trap: {}", m),
            RtError::Race(m) => write!(f, "data race detected: {}", m),
            RtError::DeckExhausted => write!(f, "READ past end of input deck"),
            RtError::OutputLimit => write!(f, "output line limit exceeded"),
            RtError::OpLimit => write!(f, "virtual op budget exceeded"),
            RtError::WorkerPanic {
                worker,
                unit,
                message,
            } => write!(
                f,
                "worker {} panicked in parallel region of {}: {}",
                worker, unit, message
            ),
            RtError::RankPanic { rank, message } => {
                write!(f, "MPI rank {} panicked: {}", rank, message)
            }
            RtError::Deadlock(m) => write!(f, "MPI deadlock: {}", m),
            RtError::RankKilled { rank } => {
                write!(f, "MPI rank {} killed by fault injection", rank)
            }
            RtError::Aborted { rank, cause } => {
                write!(f, "MPI rank {} aborted: {}", rank, cause)
            }
        }
    }
}

impl std::error::Error for RtError {}

/// Result of one execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub output: Vec<String>,
    pub wall: Duration,
    /// Parallel regions entered.
    pub regions: u64,
    /// Threads forked across all regions.
    pub forks: u64,
    /// The program executed STOP.
    pub stopped: bool,
    /// Virtual machine time in abstract operation units: the modeled
    /// elapsed time on the paper's multiprocessor. Serial sections
    /// accumulate per-operation costs; a parallel region adds the
    /// *maximum* worker cost plus fork/join overhead; MPI messages add
    /// latency along the critical path.
    pub virt: u64,
    /// Speculative regions that committed (runtime test passed).
    pub speculations: u64,
    /// Speculative regions that conflicted and re-ran serially.
    pub rollbacks: u64,
}

/// Modeled cost (virtual ops) of forking one parallel region.
pub const FORK_REGION_COST: u64 = 1_500;
/// Additional modeled cost per forked thread.
pub const FORK_THREAD_COST: u64 = 800;
/// Modeled per-iteration cost of the speculative runtime test's access
/// monitoring (the LRPD shadow-array maintenance).
pub const SPEC_MONITOR_COST: u64 = 2;
/// Conversion used by the figure harnesses: virtual ops per modeled
/// second (calibrated to this interpreter's own serial throughput, so
/// virtual seconds are comparable to wall seconds of the serial run).
pub const OPS_PER_SECOND: f64 = 25_000_000.0;

impl RunResult {
    /// Virtual time in modeled seconds.
    pub fn virt_seconds(&self) -> f64 {
        self.virt as f64 / OPS_PER_SECOND
    }
}

/// Runs a resolved program.
pub fn run(
    rp: &ResolvedProgram,
    deck: &[DeckVal],
    cfg: &ExecConfig,
) -> Result<RunResult, RtError> {
    let prog = RProgram::lower(rp)?;
    run_lowered(&prog, deck, cfg, None)
}

/// Runs an already-lowered program. `mpi` attaches a rank environment.
pub fn run_lowered(
    prog: &RProgram,
    deck: &[DeckVal],
    cfg: &ExecConfig,
    mpi: Option<MpiEnv<'_>>,
) -> Result<RunResult, RtError> {
    let segments = cfg.threads + 1;
    let arena = Arena::new(prog.commons_total, segments, cfg.seg_words);
    for (base, values) in &prog.common_data {
        for (k, v) in values.iter().enumerate() {
            arena.write(base + k, *v);
        }
    }
    let shared = Shared {
        prog,
        arena: &arena,
        out: Mutex::new(Vec::new()),
        deck: Mutex::new(deck.iter().copied().collect()),
        cfg: cfg.clone(),
        regions: AtomicU64::new(0),
        forks: AtomicU64::new(0),
        speculations: AtomicU64::new(0),
        rollbacks: AtomicU64::new(0),
    };
    let t0 = Instant::now();
    let mut ex = Exec {
        sh: &shared,
        stack: BumpStack::new(arena.segment_base(0), cfg.seg_words),
        in_parallel: false,
        race: None,
        mpi,
        virt: 0,
    };
    let flow = ex.call_unit(prog.main, &[])?;
    let wall = t0.elapsed();
    let virt = ex.virt;
    drop(ex);
    Ok(RunResult {
        output: shared
            .out
            .into_inner()
            .unwrap_or_else(|p| p.into_inner()),
        wall,
        regions: shared.regions.load(Ordering::Relaxed),
        forks: shared.forks.load(Ordering::Relaxed),
        stopped: flow == Flow::Stop,
        virt,
        speculations: shared.speculations.load(Ordering::Relaxed),
        rollbacks: shared.rollbacks.load(Ordering::Relaxed),
    })
}

struct Shared<'p> {
    prog: &'p RProgram,
    arena: &'p Arena,
    out: Mutex<Vec<String>>,
    deck: Mutex<VecDeque<DeckVal>>,
    cfg: ExecConfig,
    regions: AtomicU64,
    forks: AtomicU64,
    speculations: AtomicU64,
    rollbacks: AtomicU64,
}

/// Per-activation resolved addressing.
#[derive(Clone)]
struct Frame<'p> {
    unit: &'p RUnit,
    scalars: Vec<usize>,
    arrays: Vec<ArrDesc>,
    mark: usize,
}

#[derive(Clone, Copy, Default)]
struct ArrDesc {
    base: usize,
    rank: u8,
    lo: [i64; ArrDesc::MAX_RANK],
    stride: [i64; ArrDesc::MAX_RANK],
    /// Total words, or -1 when unknown (assumed-size).
    total: i64,
}

impl ArrDesc {
    /// Fixed capacity of the per-dimension tables.
    const MAX_RANK: usize = 4;
}

/// A caller-prepared argument.
#[derive(Clone, Copy)]
pub(crate) enum Bound {
    Addr(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Flow {
    Normal,
    Return,
    Stop,
}

/// Access log for the race checker.
#[derive(Default)]
struct RaceLog {
    reads: HashSet<usize>,
    writes: HashSet<usize>,
}

struct WorkerOut {
    partials: Vec<Cell>,
    /// `(slot address in parent frame, value)` pairs from the last chunk.
    last_privates: Vec<(usize, Cell)>,
    race: Option<RaceLog>,
    /// Worker's virtual cost.
    virt: u64,
}

pub(crate) struct Exec<'p, 's> {
    sh: &'s Shared<'p>,
    stack: BumpStack,
    in_parallel: bool,
    race: Option<RaceLog>,
    pub(crate) mpi: Option<MpiEnv<'s>>,
    /// Virtual clock (operation units).
    pub(crate) virt: u64,
}

impl<'p, 's> Exec<'p, 's> {
    #[inline]
    fn rd(&mut self, addr: usize) -> Result<Cell, RtError> {
        if addr >= self.sh.arena.total_len() {
            return Err(RtError::Trap(format!("address {} out of range", addr)));
        }
        if let Some(r) = &mut self.race {
            r.reads.insert(addr);
        }
        Ok(self.sh.arena.read(addr))
    }

    #[inline]
    fn wr(&mut self, addr: usize, v: Cell) -> Result<(), RtError> {
        if addr >= self.sh.arena.total_len() {
            return Err(RtError::Trap(format!("address {} out of range", addr)));
        }
        if let Some(r) = &mut self.race {
            r.writes.insert(addr);
        }
        self.sh.arena.write(addr, v);
        Ok(())
    }

    fn trap(&self, msg: impl Into<String>) -> RtError {
        RtError::Trap(msg.into())
    }

    // ---------------- activation ----------------

    fn call_unit(&mut self, uid: UnitId, actuals: &[Bound]) -> Result<Flow, RtError> {
        let unit = &self.sh.prog.units[uid];
        if actuals.len() < unit.nformals {
            return Err(self.trap(format!(
                "{}: expected {} arguments, got {}",
                unit.name,
                unit.nformals,
                actuals.len()
            )));
        }
        let frame = self.activate(unit, actuals)?;
        let flow = self.exec_block(&frame, &unit.body)?;
        self.stack.release_to(frame.mark);
        Ok(match flow {
            Flow::Stop => Flow::Stop,
            _ => Flow::Normal,
        })
    }

    /// Calls a FUNCTION and returns its value.
    fn call_function(&mut self, uid: UnitId, actuals: &[Bound]) -> Result<Cell, RtError> {
        let unit = &self.sh.prog.units[uid];
        let Some(fn_slot) = unit.fn_slot else {
            return Err(self.trap(format!("{} is not a function", unit.name)));
        };
        let frame = self.activate(unit, actuals)?;
        let flow = self.exec_block(&frame, &unit.body)?;
        if flow == Flow::Stop {
            return Err(self.trap("STOP inside function"));
        }
        let Some(&ret_addr) = frame.scalars.get(fn_slot as usize) else {
            return Err(self.trap(format!(
                "{}: function result slot out of range",
                unit.name
            )));
        };
        let v = self.rd(ret_addr)?;
        self.stack.release_to(frame.mark);
        Ok(v)
    }

    fn activate(&mut self, unit: &'p RUnit, actuals: &[Bound]) -> Result<Frame<'p>, RtError> {
        self.virt += 16 + unit.scalars.len() as u64 + 2 * unit.arrays.len() as u64;
        let mark = self.stack.top;
        // Local areas. Small areas (scalars and tiny arrays) are reset
        // to Uninit; large arrays are left undefined on entry, exactly
        // as Fortran 77 specifies for local storage — activations must
        // write before reading, and the serial-vs-parallel comparison
        // tests expose any violation.
        let mut area_bases = Vec::with_capacity(unit.area_sizes.len());
        for &sz in &unit.area_sizes {
            let base = self.stack.alloc(sz)?;
            if sz <= 32 {
                for i in 0..sz {
                    self.sh.arena.write(base + i, Cell::Uninit);
                }
            }
            area_bases.push(base);
        }
        // Scalars.
        let mut scalars = Vec::with_capacity(unit.scalars.len());
        for s in &unit.scalars {
            scalars.push(match s.loc {
                SLoc::Abs(a) => a,
                SLoc::Local { area, offset } => {
                    let Some(&base) = area_bases.get(area as usize) else {
                        return Err(self.trap(format!(
                            "{}: scalar storage area {} out of range",
                            unit.name, area
                        )));
                    };
                    base + offset as usize
                }
                SLoc::Formal { pos } => match actuals.get(pos as usize) {
                    Some(Bound::Addr(a)) => *a,
                    None => {
                        return Err(self.trap(format!(
                            "{}: formal #{} has no bound actual",
                            unit.name, pos
                        )));
                    }
                },
            });
        }
        let mut frame = Frame {
            unit,
            scalars,
            arrays: vec![ArrDesc::default(); unit.arrays.len()],
            mark,
        };
        // Arrays: bases then dims (dims may read scalars).
        for (i, a) in unit.arrays.iter().enumerate() {
            let base = match a.base {
                ABase::Abs(x) => x,
                ABase::Local { area, offset } => {
                    let Some(&ab) = area_bases.get(area as usize) else {
                        return Err(self.trap(format!(
                            "{}: array storage area {} out of range",
                            unit.name, area
                        )));
                    };
                    ab + offset as usize
                }
                ABase::Formal { pos } => match actuals.get(pos as usize) {
                    Some(Bound::Addr(x)) => *x,
                    None => {
                        return Err(self.trap(format!(
                            "{}: array formal #{} has no bound actual",
                            unit.name, pos
                        )));
                    }
                },
            };
            // `ArrDesc` carries fixed-capacity dim tables; a descriptor
            // beyond that capacity must trap, not index out of bounds.
            if a.dims.len() > ArrDesc::MAX_RANK {
                return Err(self.trap(format!(
                    "{}: array rank {} exceeds the supported maximum of {}",
                    unit.name,
                    a.dims.len(),
                    ArrDesc::MAX_RANK
                )));
            }
            let mut desc = ArrDesc {
                base,
                rank: a.dims.len() as u8,
                ..Default::default()
            };
            let mut stride: i64 = 1;
            let mut total: i64 = 1;
            for (k, (lo, extent)) in a.dims.iter().enumerate() {
                desc.lo[k] = self.eval(&frame, lo)?.as_int();
                desc.stride[k] = stride;
                match extent {
                    Some(e) => {
                        let ext = self.eval(&frame, e)?.as_int().max(0);
                        stride *= ext;
                        if total >= 0 {
                            total *= ext;
                        }
                    }
                    None => total = -1,
                }
            }
            desc.total = total;
            frame.arrays[i] = desc;
        }
        // DATA initializations (per activation for locals).
        for d in &unit.data {
            if let Some(aid) = d.array {
                let Some(desc) = frame.arrays.get(aid as usize) else {
                    return Err(self.trap(format!(
                        "{}: DATA names array slot {} out of range",
                        unit.name, aid
                    )));
                };
                let base = desc.base + d.start_elem as usize;
                for (k, v) in d.values.iter().enumerate() {
                    self.sh.arena.write(base + k, *v);
                }
            } else if let Some(sid) = d.scalar {
                let Some(&addr) = frame.scalars.get(sid as usize) else {
                    return Err(self.trap(format!(
                        "{}: DATA names scalar slot {} out of range",
                        unit.name, sid
                    )));
                };
                if let Some(v) = d.values.first() {
                    self.sh.arena.write(addr, *v);
                }
            }
        }
        Ok(frame)
    }

    // ---------------- execution ----------------

    fn exec_block(&mut self, f: &Frame<'p>, stmts: &[RStmt]) -> Result<Flow, RtError> {
        for s in stmts {
            match self.exec_stmt(f, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, f: &Frame<'p>, s: &RStmt) -> Result<Flow, RtError> {
        self.virt += 1;
        if self.virt > self.sh.cfg.max_virt {
            return Err(RtError::OpLimit);
        }
        match s {
            RStmt::Assign(lv, e) => {
                let v = self.eval(f, e)?;
                self.store(f, lv, v)?;
                Ok(Flow::Normal)
            }
            RStmt::If(arms, else_blk) => {
                for (c, body) in arms {
                    if self.eval(f, c)?.as_int() != 0 {
                        return self.exec_block(f, body);
                    }
                }
                if let Some(b) = else_blk {
                    return self.exec_block(f, b);
                }
                Ok(Flow::Normal)
            }
            RStmt::DoWhile { cond, body } => {
                let mut guard = 0u64;
                while self.eval(f, cond)?.as_int() != 0 {
                    match self.exec_block(f, body)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    guard += 1;
                    if guard > 1_000_000_000 {
                        return Err(self.trap("runaway DO WHILE"));
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                manual,
                auto,
                inner_vars,
            } => {
                let lo_v = self.eval(f, lo)?.as_int();
                let hi_v = self.eval(f, hi)?.as_int();
                let step_v = match step {
                    None => 1,
                    Some(e) => self.eval(f, e)?.as_int(),
                };
                if step_v == 0 {
                    return Err(self.trap("zero DO step"));
                }
                let trip = ((hi_v - lo_v + step_v) / step_v).max(0);
                let directive = match self.sh.cfg.mode {
                    ExecMode::Serial => None,
                    ExecMode::Manual => manual.as_ref(),
                    ExecMode::Auto => auto.as_ref(),
                };
                if let Some(dir) = directive {
                    if !self.in_parallel && self.sh.cfg.threads > 1 && trip >= 2 {
                        if dir.speculative {
                            return self.exec_speculative(
                                f, *var, lo_v, step_v, trip, body, dir, inner_vars,
                            );
                        }
                        return self.exec_parallel(
                            f, *var, lo_v, step_v, trip, body, dir, inner_vars, false,
                        );
                    }
                }
                let var_addr = f.scalars[*var as usize];
                for t in 0..trip {
                    self.wr(var_addr, Cell::Int(lo_v + t * step_v))?;
                    match self.exec_block(f, body)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                self.wr(var_addr, Cell::Int(lo_v + trip * step_v))?;
                Ok(Flow::Normal)
            }
            RStmt::Call(target, actuals) => match target {
                CallTarget::Unit(uid) => {
                    let (bound, temps_mark) = self.bind_actuals(f, actuals)?;
                    let flow = self.call_unit(*uid, &bound)?;
                    self.stack.release_to(temps_mark);
                    Ok(flow)
                }
                CallTarget::Mpi(op) => {
                    let (bound, temps_mark) = self.bind_actuals(f, actuals)?;
                    crate::mpi::exec_builtin(self, *op, &bound)?;
                    self.stack.release_to(temps_mark);
                    Ok(Flow::Normal)
                }
            },
            RStmt::Read(items) => {
                for it in items {
                    let v = {
                        let mut deck = lock_unpoisoned(&self.sh.deck);
                        deck.pop_front().ok_or(RtError::DeckExhausted)?
                    };
                    let cell = match v {
                        DeckVal::Int(i) => Cell::Int(i),
                        DeckVal::Real(r) => Cell::Real(r),
                    };
                    self.store(f, it, cell)?;
                }
                Ok(Flow::Normal)
            }
            RStmt::Write(items) => {
                let mut line = String::new();
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    match it {
                        WItem::Str(s) => line.push_str(s),
                        WItem::E(e) => {
                            let v = self.eval(f, e)?;
                            match v {
                                Cell::Int(x) => line.push_str(&x.to_string()),
                                other => {
                                    line.push_str(&format!("{:.6}", other.as_real()))
                                }
                            }
                        }
                    }
                }
                let mut out = lock_unpoisoned(&self.sh.out);
                if out.len() >= self.sh.cfg.max_output {
                    return Err(RtError::OutputLimit);
                }
                out.push(line);
                Ok(Flow::Normal)
            }
            RStmt::Return => Ok(Flow::Return),
            RStmt::Stop => Ok(Flow::Stop),
        }
    }

    /// Prepares arguments; by-value temporaries live on this thread's
    /// stack until released by the caller.
    fn bind_actuals(
        &mut self,
        f: &Frame<'p>,
        actuals: &[RActual],
    ) -> Result<(Vec<Bound>, usize), RtError> {
        let temps_mark = self.stack.top;
        let mut bound = Vec::with_capacity(actuals.len());
        for a in actuals {
            bound.push(match a {
                RActual::Val(e) => {
                    let v = self.eval(f, e)?;
                    let addr = self.stack.alloc(1)?;
                    self.sh.arena.write(addr, v);
                    Bound::Addr(addr)
                }
                RActual::ScalarRef(id) => Bound::Addr(f.scalars[*id as usize]),
                RActual::ArrayRef(id) => Bound::Addr(f.arrays[*id as usize].base),
                RActual::Section(id, subs) => {
                    let addr = self.elem_addr(f, *id, subs)?;
                    Bound::Addr(addr)
                }
            });
        }
        Ok((bound, temps_mark))
    }

    fn elem_addr(&mut self, f: &Frame<'p>, aid: ArrId, subs: &[RExpr]) -> Result<usize, RtError> {
        let desc = f.arrays[aid as usize];
        let mut off: i64 = 0;
        for (k, sub) in subs.iter().enumerate() {
            let sv = self.eval(f, sub)?.as_int();
            if k >= desc.rank as usize {
                return Err(self.trap("too many subscripts"));
            }
            off += (sv - desc.lo[k]) * desc.stride[k];
        }
        let addr = desc.base as i64 + off;
        if addr < 0 || addr as usize >= self.sh.arena.total_len() {
            return Err(self.trap(format!("subscript out of range (addr {})", addr)));
        }
        Ok(addr as usize)
    }

    fn store(&mut self, f: &Frame<'p>, lv: &RLval, v: Cell) -> Result<(), RtError> {
        match lv {
            RLval::S(id) => {
                let cv = self.slot_ty_store(v, f.unit.scalars[*id as usize].ty);
                self.wr(f.scalars[*id as usize], cv)
            }
            RLval::A(id, subs) => {
                let addr = self.elem_addr(f, *id, subs)?;
                let cv = self.slot_ty_store(v, f.unit.arrays[*id as usize].ty);
                self.wr(addr, cv)
            }
        }
    }

    fn slot_ty_store(&self, v: Cell, ty: Ty) -> Cell {
        match ty {
            Ty::Integer | Ty::Logical => Cell::Int(v.as_int()),
            _ => match v {
                Cell::Int(x) => Cell::Real(x as f64),
                other => other,
            },
        }
    }

    // ---------------- parallel regions ----------------

    #[allow(clippy::too_many_arguments)]
    fn exec_parallel(
        &mut self,
        f: &Frame<'p>,
        var: ScalarId,
        lo: i64,
        step: i64,
        trip: i64,
        body: &[RStmt],
        dir: &RDirective,
        inner_vars: &[ScalarId],
        force_check: bool,
    ) -> Result<Flow, RtError> {
        let nthreads = (self.sh.cfg.threads).min(trip.max(1) as usize);
        self.sh.regions.fetch_add(1, Ordering::Relaxed);
        self.sh.forks.fetch_add(nthreads as u64, Ordering::Relaxed);

        // Private scalar slots: loop variable, nested DO variables, and
        // directive-listed scalars.
        let mut priv_scalars: Vec<ScalarId> = vec![var];
        priv_scalars.extend_from_slice(inner_vars);
        priv_scalars.extend_from_slice(&dir.private_scalars);
        priv_scalars.sort_unstable();
        priv_scalars.dedup();
        // Reduction vars must not also be private.
        priv_scalars.retain(|s| !dir.reductions.iter().any(|(_, r)| r == s));

        let check = self.sh.cfg.check_races || force_check;
        let sh = self.sh;
        let results: Vec<Result<WorkerOut, RtError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..nthreads {
                // Iteration plan: contiguous chunk (STATIC) or
                // round-robin stride (CYCLIC, for imbalanced bodies).
                let (t_start, t_end, t_step) = match dir.schedule {
                    Schedule::Static => (
                        trip * w as i64 / nthreads as i64,
                        trip * (w as i64 + 1) / nthreads as i64,
                        1,
                    ),
                    Schedule::Cyclic => (w as i64, trip, nthreads as i64),
                };
                let priv_scalars = &priv_scalars;
                let frame = f;
                let mpi = self.mpi.clone();
                handles.push(scope.spawn(move || -> Result<WorkerOut, RtError> {
                    // Injected fault: this worker dies before doing any
                    // work; the join below must contain the panic.
                    if sh.cfg.fault.panic_worker == Some(w) {
                        panic!("injected fault: worker {} panic", w);
                    }
                    let mut ex = Exec {
                            sh,
                            stack: BumpStack::new(
                                sh.arena.segment_base(w + 1),
                                sh.cfg.seg_words,
                            ),
                            in_parallel: true,
                            race: check.then(RaceLog::default),
                            mpi,
                            virt: 0,
                        };
                        let mut wf = frame.clone();
                        // Private scalar overlays.
                        for &sid in priv_scalars.iter() {
                            let a = ex.stack.alloc(1)?;
                            sh.arena.write(a, Cell::Uninit);
                            wf.scalars[sid as usize] = a;
                        }
                        // Private array overlays.
                        for &aid in &dir.private_arrays {
                            let total = wf.arrays[aid as usize].total;
                            if total < 0 {
                                return Err(RtError::Trap(
                                    "cannot privatize assumed-size array".into(),
                                ));
                            }
                            let a = ex.stack.alloc(total as usize)?;
                            for i in 0..total as usize {
                                sh.arena.write(a + i, Cell::Uninit);
                            }
                            wf.arrays[aid as usize].base = a;
                        }
                        // Reduction accumulators.
                        let mut red_addrs = Vec::new();
                        for &(op, sid) in &dir.reductions {
                            let a = ex.stack.alloc(1)?;
                            sh.arena.write(a, red_identity(op));
                            wf.scalars[sid as usize] = a;
                            red_addrs.push(a);
                        }
                        let var_addr = wf.scalars[var as usize];
                        let mut last_t = None;
                        let mut t = t_start;
                        while t < t_end {
                            sh.arena.write(var_addr, Cell::Int(lo + t * step));
                            match ex.exec_block(&wf, body)? {
                                Flow::Normal => {}
                                _ => {
                                    return Err(RtError::Trap(
                                        "control flow escaping a parallel loop".into(),
                                    ))
                                }
                            }
                            last_t = Some(t);
                            t += t_step;
                        }
                        // Reduction partials.
                        let partials =
                            red_addrs.iter().map(|&a| sh.arena.read(a)).collect();
                        // Lastprivate values from the worker that ran
                        // the sequentially-final iteration (under
                        // either schedule).
                        let mut last_privates = Vec::new();
                        if last_t == Some(trip - 1) {
                            for &sid in priv_scalars.iter() {
                                if sid == var {
                                    continue;
                                }
                                last_privates.push((
                                    frame.scalars[sid as usize],
                                    sh.arena.read(wf.scalars[sid as usize]),
                                ));
                            }
                        }
                        Ok(WorkerOut {
                            partials,
                            last_privates,
                            race: ex.race.take(),
                            virt: ex.virt,
                        })
                    }));
                }
            // Panic containment: a worker panic becomes a structured
            // error with its provenance instead of tearing the process
            // down. Joining the handle consumes the panic payload, so
            // the scope does not re-raise it.
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(RtError::WorkerPanic {
                        worker: w,
                        unit: f.unit.name.clone(),
                        message: panic_message(payload.as_ref()),
                    }),
                })
                .collect()
        });

        let mut outs = Vec::with_capacity(results.len());
        for r in results {
            outs.push(r?);
        }
        // Virtual clock: the region costs the slowest worker plus the
        // fork/join overhead — the quantity the paper's Polaris version
        // pays per (tiny) inner loop.
        let worst = outs.iter().map(|o| o.virt).max().unwrap_or(0);
        self.virt += worst + FORK_REGION_COST + FORK_THREAD_COST * nthreads as u64;
        // Injected fault: report a conflict even on a clean schedule so
        // the speculative rollback path can be exercised on demand.
        // `force_check` is only set by speculative regions.
        if force_check && self.sh.cfg.fault.force_speculation_conflict {
            return Err(RtError::Race("injected speculation conflict".into()));
        }
        // Race verification across chunks.
        if check {
            for i in 0..outs.len() {
                for j in i + 1..outs.len() {
                    if let (Some(a), Some(b)) = (&outs[i].race, &outs[j].race) {
                        if let Some(addr) = conflict(a, b) {
                            return Err(RtError::Race(format!(
                                "chunks {} and {} conflict at address {}",
                                i, j, addr
                            )));
                        }
                    }
                }
            }
            // Propagate shared accesses to an enclosing checker (none:
            // outermost-only parallelism).
        }
        // Combine reductions deterministically (worker order).
        for (k, &(op, sid)) in dir.reductions.iter().enumerate() {
            let addr = f.scalars[sid as usize];
            let mut acc = self.rd(addr)?;
            for o in &outs {
                let Some(&part) = o.partials.get(k) else {
                    return Err(self.trap(format!(
                        "reduction partial #{} missing from a worker's output",
                        k
                    )));
                };
                acc = red_combine(op, acc, part);
            }
            self.wr(addr, acc)?;
        }
        // Lastprivate copy-back.
        for o in &outs {
            for &(addr, v) in &o.last_privates {
                self.wr(addr, v)?;
            }
        }
        // Loop variable's sequential exit value.
        self.wr(f.scalars[var as usize], Cell::Int(lo + trip * step))?;
        Ok(Flow::Normal)
    }

    /// Builds the cheapest safe checkpoint for a speculative region.
    ///
    /// When the compiler supplied a write summary and the body is
    /// call-free (so the summary is exact for the lowered body) with no
    /// assumed-size write targets, only the named cells are saved.
    /// Otherwise everything shared is: all commons plus this thread's
    /// live stack. Worker segments are scratch either way.
    fn spec_checkpoint(&self, f: &Frame<'p>, body: &[RStmt], dir: &RDirective) -> Checkpoint {
        let arena = self.sh.arena;
        if dir.writes_known && !body_has_calls(body) {
            let mut ranges = Vec::new();
            let mut exact = true;
            for &aid in &dir.write_arrays {
                let d = f.arrays[aid as usize];
                if d.total < 0 {
                    exact = false; // assumed-size: extent unknown
                    break;
                }
                ranges.push((d.base, d.total as usize));
            }
            if exact {
                for &sid in &dir.write_scalars {
                    ranges.push((f.scalars[sid as usize], 1));
                }
                return Checkpoint::capture(arena, CheckpointKind::Targeted, &ranges);
            }
        }
        Checkpoint::capture_full(arena, self.stack.top)
    }

    /// Speculative parallel execution with a runtime dependence test
    /// (LRPD-style): checkpoint the shared state the region may write,
    /// attempt the parallel schedule with conflict logging forced on,
    /// and on a detected cross-chunk conflict restore the checkpoint
    /// and re-execute serially. The virtual clock keeps the cost of the
    /// failed attempt plus both checkpoint copies — misspeculation is
    /// not free.
    #[allow(clippy::too_many_arguments)]
    fn exec_speculative(
        &mut self,
        f: &Frame<'p>,
        var: ScalarId,
        lo: i64,
        step: i64,
        trip: i64,
        body: &[RStmt],
        dir: &RDirective,
        inner_vars: &[ScalarId],
    ) -> Result<Flow, RtError> {
        let arena = self.sh.arena;
        let cp = self.spec_checkpoint(f, body, dir);
        let out_mark = lock_unpoisoned(&self.sh.out).len();
        self.virt += cp.words() as u64 / 8; // checkpoint cost

        let attempt = self.exec_parallel(f, var, lo, step, trip, body, dir, inner_vars, true);
        // Which failures roll back? A detected conflict always does. A
        // trap, worker panic, or overflow inside the attempt may be an
        // artifact of the unsound parallel schedule, so it rolls back
        // too — but only under a full checkpoint: a faulting attempt
        // can have written outside the compiler's write summary, and a
        // targeted restore could not undo that.
        let roll_back = match &attempt {
            Err(RtError::Race(_)) => true,
            Err(
                RtError::Trap(_) | RtError::WorkerPanic { .. } | RtError::StackOverflow,
            ) => cp.kind() == CheckpointKind::Full,
            _ => false,
        };
        match attempt {
            Ok(flow) => {
                self.sh.speculations.fetch_add(1, Ordering::Relaxed);
                self.virt += trip as u64 * SPEC_MONITOR_COST;
                Ok(flow)
            }
            Err(e) if !roll_back => Err(e),
            Err(_) => {
                self.sh.rollbacks.fetch_add(1, Ordering::Relaxed);
                cp.restore(arena);
                lock_unpoisoned(&self.sh.out).truncate(out_mark);
                self.virt += cp.words() as u64 / 8; // restore cost
                // Serial re-execution.
                let var_addr = f.scalars[var as usize];
                for t in 0..trip {
                    self.wr(var_addr, Cell::Int(lo + t * step))?;
                    match self.exec_block(f, body)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                self.wr(var_addr, Cell::Int(lo + trip * step))?;
                Ok(Flow::Normal)
            }
        }
    }

    // ---------------- expressions ----------------

    fn eval(&mut self, f: &Frame<'p>, e: &RExpr) -> Result<Cell, RtError> {
        self.virt += 1;
        Ok(match e {
            RExpr::Ci(v) => Cell::Int(*v),
            RExpr::Cr(v) => Cell::Real(*v),
            RExpr::LoadS(id) => self.rd(f.scalars[*id as usize])?,
            RExpr::LoadA(id, subs) => {
                let addr = self.elem_addr(f, *id, subs)?;
                self.rd(addr)?
            }
            RExpr::Bin(op, l, r) => {
                let a = self.eval(f, l)?;
                let b = self.eval(f, r)?;
                bin_op(*op, a, b)
            }
            RExpr::Neg(i) => match self.eval(f, i)? {
                Cell::Int(v) => Cell::Int(-v),
                other => Cell::Real(-other.as_real()),
            },
            RExpr::Not(i) => Cell::Int((self.eval(f, i)?.as_int() == 0) as i64),
            RExpr::Intr(intr, args) => {
                self.virt += 3;
                // Lowering does not validate intrinsic arity; `apply`
                // indexes its argument list, so check here and trap
                // instead of panicking on a malformed call.
                if args.len() < intr.min_args() {
                    return Err(self.trap(format!(
                        "{:?}: expected at least {} argument(s), got {}",
                        intr,
                        intr.min_args(),
                        args.len()
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(f, a)?);
                }
                intr.apply(&vals)
            }
            RExpr::CallF(uid, actuals) => {
                let (bound, mark) = self.bind_actuals(f, actuals)?;
                let v = self.call_function(*uid, &bound)?;
                self.stack.release_to(mark);
                v
            }
        })
    }

    /// Address of a scalar slot (used by the MPI builtins).
    pub(crate) fn bound_addr(b: &Bound) -> usize {
        match b {
            Bound::Addr(a) => *a,
        }
    }

    /// Raw cell read for the MPI builtins.
    pub(crate) fn peek(&mut self, addr: usize) -> Result<Cell, RtError> {
        self.rd(addr)
    }

    /// Raw cell write for the MPI builtins.
    pub(crate) fn poke(&mut self, addr: usize, v: Cell) -> Result<(), RtError> {
        self.wr(addr, v)
    }
}

/// Does a lowered body contain any CALL statement or function call?
/// Called code can write cells the loop's own write summary does not
/// name, so its presence forces the full-checkpoint fallback.
fn body_has_calls(body: &[RStmt]) -> bool {
    fn expr(e: &RExpr) -> bool {
        match e {
            RExpr::CallF(..) => true,
            RExpr::Ci(_) | RExpr::Cr(_) | RExpr::LoadS(_) => false,
            RExpr::LoadA(_, subs) => subs.iter().any(expr),
            RExpr::Bin(_, l, r) => expr(l) || expr(r),
            RExpr::Neg(i) | RExpr::Not(i) => expr(i),
            RExpr::Intr(_, args) => args.iter().any(expr),
        }
    }
    fn lval(lv: &RLval) -> bool {
        match lv {
            RLval::S(_) => false,
            RLval::A(_, subs) => subs.iter().any(expr),
        }
    }
    fn stmt(s: &RStmt) -> bool {
        match s {
            RStmt::Call(..) => true,
            RStmt::Assign(lv, e) => lval(lv) || expr(e),
            RStmt::If(arms, else_blk) => {
                arms.iter().any(|(c, b)| expr(c) || b.iter().any(stmt))
                    || else_blk.as_ref().is_some_and(|b| b.iter().any(stmt))
            }
            RStmt::Do {
                lo, hi, step, body, ..
            } => {
                expr(lo)
                    || expr(hi)
                    || step.as_ref().is_some_and(expr)
                    || body.iter().any(stmt)
            }
            RStmt::DoWhile { cond, body } => expr(cond) || body.iter().any(stmt),
            RStmt::Read(items) => items.iter().any(lval),
            RStmt::Write(items) => items.iter().any(|it| match it {
                WItem::Str(_) => false,
                WItem::E(e) => expr(e),
            }),
            RStmt::Return | RStmt::Stop => false,
        }
    }
    body.iter().any(stmt)
}

fn conflict(a: &RaceLog, b: &RaceLog) -> Option<usize> {
    for w in &a.writes {
        if b.writes.contains(w) || b.reads.contains(w) {
            return Some(*w);
        }
    }
    for w in &b.writes {
        if a.reads.contains(w) {
            return Some(*w);
        }
    }
    None
}

fn red_identity(op: RedOp) -> Cell {
    match op {
        RedOp::Add => Cell::Real(0.0),
        RedOp::Mul => Cell::Real(1.0),
        RedOp::Min => Cell::Real(f64::INFINITY),
        RedOp::Max => Cell::Real(f64::NEG_INFINITY),
    }
}

fn red_combine(op: RedOp, a: Cell, b: Cell) -> Cell {
    // Reductions accumulate in the slot's own type where possible; the
    // identity is Real, so integer reductions coerce on final store.
    match op {
        RedOp::Add => match (a, b) {
            (Cell::Int(x), Cell::Int(y)) => Cell::Int(x.wrapping_add(y)),
            (x, y) => Cell::Real(x.as_real() + y.as_real()),
        },
        RedOp::Mul => match (a, b) {
            (Cell::Int(x), Cell::Int(y)) => Cell::Int(x.wrapping_mul(y)),
            (x, y) => Cell::Real(x.as_real() * y.as_real()),
        },
        RedOp::Min => Cell::Real(a.as_real().min(b.as_real())),
        RedOp::Max => Cell::Real(a.as_real().max(b.as_real())),
    }
}

fn bin_op(op: BinOp, a: Cell, b: Cell) -> Cell {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Pow => match (a, b) {
            (Cell::Int(x), Cell::Int(y)) => Cell::Int(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                Pow => {
                    if y >= 0 {
                        x.wrapping_pow(y.min(63) as u32)
                    } else {
                        0
                    }
                }
                _ => unreachable!(),
            }),
            (x, y) => {
                let (xf, yf) = (x.as_real(), y.as_real());
                Cell::Real(match op {
                    Add => xf + yf,
                    Sub => xf - yf,
                    Mul => xf * yf,
                    Div => xf / yf,
                    Pow => {
                        if let Cell::Int(p) = b {
                            xf.powi(p as i32)
                        } else {
                            xf.powf(yf)
                        }
                    }
                    _ => unreachable!(),
                })
            }
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            let c = match (a, b) {
                (Cell::Int(x), Cell::Int(y)) => x.cmp(&y),
                (x, y) => x
                    .as_real()
                    .partial_cmp(&y.as_real())
                    .unwrap_or(std::cmp::Ordering::Equal),
            };
            let t = match op {
                Eq => c.is_eq(),
                Ne => c.is_ne(),
                Lt => c.is_lt(),
                Le => c.is_le(),
                Gt => c.is_gt(),
                Ge => c.is_ge(),
                _ => unreachable!(),
            };
            Cell::Int(t as i64)
        }
        And => Cell::Int(((a.as_int() != 0) && (b.as_int() != 0)) as i64),
        Or => Cell::Int(((a.as_int() != 0) || (b.as_int() != 0)) as i64),
    }
}

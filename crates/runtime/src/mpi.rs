//! Message-passing simulation: ranks as OS threads.
//!
//! Each rank runs the whole program against its own private memory (its
//! own COMMON storage), connected by per-pair message queues and
//! generation-counted collectives — the execution model of the paper's
//! hand-written MPI versions. `MP*` builtins:
//!
//! | builtin | semantics |
//! |---|---|
//! | `MPMYID(R)` | rank id (0-based) |
//! | `MPNPROC(N)` | rank count |
//! | `MPSEND(A, IOFF, N, DEST, TAG)` | send `A(IOFF..IOFF+N-1)` |
//! | `MPRECV(A, IOFF, N, SRC, TAG)` | receive into `A(IOFF..)` |
//! | `MPREDS(X)` | allreduce-sum of scalar `X` |
//! | `MPALLG(A, IOFF, N)` | allgather: every rank's slice to all |
//! | `MPBAR` | barrier |
//!
//! # Robustness
//!
//! `MPRECV` is tag-selective (a mismatched tag waits, as in MPI, rather
//! than trapping) and every blocking operation is timeout-aware: the
//! world keeps a block board recording what each rank waits on (peer
//! and tag for receives, generation for collectives), and the first
//! rank to exceed [`ExecConfig::mpi_timeout_ms`] composes a deadlock
//! diagnostic naming every blocked rank, poisons the world so the
//! remaining ranks abort instead of hanging, and returns
//! [`RtError::Deadlock`]. Rank panics are contained to
//! [`RtError::RankPanic`], and a [`FaultPlan`](crate::FaultPlan) can
//! drop or delay messages and kill ranks to exercise these paths.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::fault::FaultPlan;
use crate::interp::{
    panic_message, run_lowered, Bound, Exec, ExecConfig, ExecMode, RtError, RunResult,
};
use crate::memory::Cell;
use crate::rprog::{MpOp, RProgram};
use crate::DeckVal;

/// A point-to-point message.
#[derive(Clone, Debug)]
struct Msg {
    tag: i64,
    payload: Vec<Cell>,
    /// Sender's virtual clock at the send, plus any injected delay.
    sent_at: u64,
}

/// Modeled message latency (virtual ops).
const MSG_LATENCY: u64 = 2_000;
/// Modeled per-word transfer cost.
const MSG_WORD_COST: u64 = 2;
/// Modeled collective cost (plus per-rank term).
const COLL_BASE_COST: u64 = 4_000;
const COLL_RANK_COST: u64 = 500;
/// Wait slice between deadline checks while blocked.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// What a blocked rank is waiting on (the block board entry).
#[derive(Clone, Copy, Debug)]
enum Wait {
    Recv { src: usize, tag: i64 },
    Collective { gen: u64, op: &'static str },
}

/// Shared world state: one lock guards the message queues, the
/// collective, and the block board, so a deadlock diagnosis sees a
/// consistent snapshot of every rank.
pub struct MpiWorld {
    ranks: usize,
    timeout: Duration,
    plan: FaultPlan,
    m: Mutex<WorldInner>,
    cv: Condvar,
}

struct WorldInner {
    /// `queues[src * ranks + dst]`.
    queues: Vec<VecDeque<Msg>>,
    /// Current wait of each rank, if blocked.
    blocked: Vec<Option<Wait>>,
    /// Ranks that returned from their program (successfully or not).
    done: Vec<bool>,
    /// Ranks killed by fault injection.
    dead: Vec<bool>,
    /// First failure's diagnostic; poisons the world so every
    /// still-blocked rank aborts instead of waiting out its timeout.
    poison: Option<String>,
    /// `MP*` operations started per rank (drives `FaultPlan::kill_rank`).
    ops: Vec<u64>,
    // Collective state (deposit-then-wait, generation-counted).
    arriving: usize,
    arrived: Vec<bool>,
    gen: u64,
    sum_acc: f64,
    clock_acc: u64,
    parts_acc: Vec<(usize, Vec<Cell>)>,
    published_sum: f64,
    published_parts: Vec<(usize, Vec<Cell>)>,
    published_clock: u64,
}

/// A rank's handle on the world.
#[derive(Clone)]
pub struct MpiEnv<'w> {
    pub rank: usize,
    world: &'w MpiWorld,
}

fn lock(m: &Mutex<WorldInner>) -> MutexGuard<'_, WorldInner> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl MpiWorld {
    fn new(ranks: usize, timeout: Duration, plan: FaultPlan) -> MpiWorld {
        MpiWorld {
            ranks,
            timeout,
            plan,
            m: Mutex::new(WorldInner {
                queues: (0..ranks * ranks).map(|_| VecDeque::new()).collect(),
                blocked: vec![None; ranks],
                done: vec![false; ranks],
                dead: vec![false; ranks],
                poison: None,
                ops: vec![0; ranks],
                arriving: 0,
                arrived: vec![false; ranks],
                gen: 0,
                sum_acc: 0.0,
                clock_acc: 0,
                parts_acc: Vec::new(),
                published_sum: 0.0,
                published_parts: Vec::new(),
                published_clock: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Records that `rank` begins an `MP*` operation; kills it here if
    /// the fault plan says so.
    fn note_op(&self, rank: usize) -> Result<(), RtError> {
        let mut g = lock(&self.m);
        let idx = g.ops[rank];
        g.ops[rank] += 1;
        if self.plan.kills(rank, idx) && !g.dead[rank] {
            g.dead[rank] = true;
            self.cv.notify_all();
            return Err(RtError::RankKilled { rank });
        }
        Ok(())
    }

    /// Marks a rank as finished so peers blocked on it fail fast.
    fn finish(&self, rank: usize) {
        let mut g = lock(&self.m);
        g.done[rank] = true;
        self.cv.notify_all();
    }

    /// Composes the deadlock diagnostic from the block board: every
    /// rank's state plus undelivered tags addressed to the caller.
    fn diagnose(&self, g: &WorldInner, me: usize) -> String {
        let mut parts = Vec::with_capacity(self.ranks);
        for r in 0..self.ranks {
            let state = if g.dead[r] {
                "killed".to_string()
            } else if g.done[r] {
                "finished".to_string()
            } else {
                match g.blocked[r] {
                    Some(Wait::Recv { src, tag }) => {
                        let pending: Vec<String> = g.queues[src * self.ranks + r]
                            .iter()
                            .map(|m| m.tag.to_string())
                            .collect();
                        let pending = if pending.is_empty() {
                            String::new()
                        } else {
                            format!(" (undelivered tags from {}: [{}])", src, pending.join(", "))
                        };
                        format!("blocked on MPRECV(src={}, tag={}){}", src, tag, pending)
                    }
                    Some(Wait::Collective { gen, op }) => {
                        format!("blocked in {} (collective generation {})", op, gen)
                    }
                    None => "running".to_string(),
                }
            };
            parts.push(format!("rank {} {}", r, state));
        }
        format!(
            "detected by rank {} after {} ms: {}",
            me,
            self.timeout.as_millis(),
            parts.join("; ")
        )
    }

    /// Poisons the world with a diagnostic and wakes every rank.
    fn poison(&self, g: &mut WorldInner, diag: &str) {
        if g.poison.is_none() {
            g.poison = Some(diag.to_string());
        }
        self.cv.notify_all();
    }

    /// Enqueues a message unless the fault plan drops it.
    fn send(&self, src: usize, dst: usize, tag: i64, payload: Vec<Cell>, clock: u64) {
        if self.plan.drops(src, dst, tag) {
            return; // lost on the wire; the sender never knows
        }
        let sent_at = clock + self.plan.delay(src, dst, tag);
        let mut g = lock(&self.m);
        g.queues[src * self.ranks + dst].push_back(Msg {
            tag,
            payload,
            sent_at,
        });
        self.cv.notify_all();
    }

    /// Tag-selective blocking receive with deadlock detection.
    fn recv(&self, me: usize, src: usize, tag: i64) -> Result<Msg, RtError> {
        let deadline = Instant::now() + self.timeout;
        let mut g = lock(&self.m);
        loop {
            if let Some(cause) = &g.poison {
                let cause = cause.clone();
                g.blocked[me] = None;
                return Err(RtError::Aborted { rank: me, cause });
            }
            let qi = src * self.ranks + me;
            if let Some(pos) = g.queues[qi].iter().position(|m| m.tag == tag) {
                g.blocked[me] = None;
                return Ok(g.queues[qi].remove(pos).expect("indexed message"));
            }
            if g.dead[src] || g.done[src] {
                // The peer can never send: report immediately instead
                // of waiting out the timeout.
                let why = if g.dead[src] { "was killed" } else { "finished" };
                let pending: Vec<String> =
                    g.queues[qi].iter().map(|m| m.tag.to_string()).collect();
                let pending = if pending.is_empty() {
                    "no undelivered messages".to_string()
                } else {
                    format!("undelivered tags [{}]", pending.join(", "))
                };
                let diag = format!(
                    "rank {} waits on MPRECV(src={}, tag={}) but rank {} {} ({})",
                    me, src, tag, src, why, pending
                );
                self.poison(&mut g, &diag);
                g.blocked[me] = None;
                return Err(RtError::Deadlock(diag));
            }
            g.blocked[me] = Some(Wait::Recv { src, tag });
            let now = Instant::now();
            if now >= deadline {
                let diag = self.diagnose(&g, me);
                self.poison(&mut g, &diag);
                g.blocked[me] = None;
                return Err(RtError::Deadlock(diag));
            }
            let slice = WAIT_SLICE.min(deadline - now);
            g = self
                .cv
                .wait_timeout(g, slice)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Deposit-then-wait collective; returns `(sum, parts, clock)`
    /// published by the completing rank. Every rank leaves with its
    /// virtual clock advanced to the collective's completion time, or
    /// with a deadlock/abort error if the collective can never finish.
    #[allow(clippy::type_complexity)]
    fn sync(
        &self,
        me: usize,
        op: &'static str,
        add: f64,
        part: Option<(usize, Vec<Cell>)>,
        clock: u64,
    ) -> Result<(f64, Vec<(usize, Vec<Cell>)>, u64), RtError> {
        let deadline = Instant::now() + self.timeout;
        let mut g = lock(&self.m);
        if let Some(cause) = &g.poison {
            return Err(RtError::Aborted {
                rank: me,
                cause: cause.clone(),
            });
        }
        let my_gen = g.gen;
        g.sum_acc += add;
        g.clock_acc = g.clock_acc.max(clock);
        if let Some(p) = part {
            g.parts_acc.push(p);
        }
        g.arriving += 1;
        g.arrived[me] = true;
        if g.arriving == self.ranks {
            g.published_sum = g.sum_acc;
            g.published_parts = std::mem::take(&mut g.parts_acc);
            g.published_clock =
                g.clock_acc + COLL_BASE_COST + COLL_RANK_COST * self.ranks as u64;
            g.sum_acc = 0.0;
            g.clock_acc = 0;
            g.arriving = 0;
            g.arrived.iter_mut().for_each(|a| *a = false);
            g.gen += 1;
            self.cv.notify_all();
        } else {
            while g.gen == my_gen {
                if let Some(cause) = &g.poison {
                    let cause = cause.clone();
                    g.blocked[me] = None;
                    return Err(RtError::Aborted { rank: me, cause });
                }
                // A finished or killed rank can never arrive, so the
                // collective can never complete.
                if let Some(r) =
                    (0..self.ranks).find(|&r| !g.arrived[r] && (g.done[r] || g.dead[r]))
                {
                    let why = if g.dead[r] { "was killed" } else { "finished" };
                    let diag = format!(
                        "rank {} waits in {} (collective generation {}) but rank {} {} \
                         without arriving",
                        me, op, my_gen, r, why
                    );
                    self.poison(&mut g, &diag);
                    g.blocked[me] = None;
                    return Err(RtError::Deadlock(diag));
                }
                g.blocked[me] = Some(Wait::Collective { gen: my_gen, op });
                let now = Instant::now();
                if now >= deadline {
                    let diag = self.diagnose(&g, me);
                    self.poison(&mut g, &diag);
                    g.blocked[me] = None;
                    return Err(RtError::Deadlock(diag));
                }
                let slice = WAIT_SLICE.min(deadline - now);
                g = self
                    .cv
                    .wait_timeout(g, slice)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
            g.blocked[me] = None;
        }
        Ok((g.published_sum, g.published_parts.clone(), g.published_clock))
    }
}

/// Executes one `MP*` builtin from inside the interpreter.
pub(crate) fn exec_builtin(
    ex: &mut Exec<'_, '_>,
    op: MpOp,
    args: &[Bound],
) -> Result<(), RtError> {
    let Some(env) = ex.mpi.clone() else {
        return Err(RtError::Trap(
            "MP* builtin outside an MPI execution".into(),
        ));
    };
    let w = env.world;
    w.note_op(env.rank)?;
    let addr = |i: usize| -> Result<usize, RtError> {
        args.get(i)
            .map(Exec::bound_addr)
            .ok_or_else(|| RtError::Trap("missing MP* argument".into()))
    };
    match op {
        MpOp::MyId => ex.poke(addr(0)?, Cell::Int(env.rank as i64))?,
        MpOp::NProc => ex.poke(addr(0)?, Cell::Int(w.ranks as i64))?,
        MpOp::Send => {
            // (ARR, IOFF, COUNT, DEST, TAG): ARR bound = base address.
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let dest = ex.peek(addr(3)?)?.as_int() as usize;
            let tag = ex.peek(addr(4)?)?.as_int();
            if dest >= w.ranks {
                return Err(RtError::Trap(format!("MPSEND to rank {}", dest)));
            }
            let start = base + (ioff - 1).max(0) as usize;
            let mut buf = Vec::with_capacity(count);
            for k in 0..count {
                buf.push(ex.peek(start + k)?);
            }
            let words = buf.len() as u64;
            w.send(env.rank, dest, tag, buf, ex.virt);
            ex.virt += MSG_WORD_COST * words;
        }
        MpOp::Recv => {
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let src = ex.peek(addr(3)?)?.as_int() as usize;
            let tag = ex.peek(addr(4)?)?.as_int();
            if src >= w.ranks {
                return Err(RtError::Trap(format!("MPRECV from rank {}", src)));
            }
            let msg = w.recv(env.rank, src, tag)?;
            ex.virt = ex
                .virt
                .max(msg.sent_at + MSG_LATENCY + MSG_WORD_COST * msg.payload.len() as u64);
            let start = base + (ioff - 1).max(0) as usize;
            for (k, v) in msg.payload.into_iter().enumerate().take(count) {
                ex.poke(start + k, v)?;
            }
        }
        MpOp::RedSum => {
            let a = addr(0)?;
            let v = ex.peek(a)?.as_real();
            let (sum, _, clock) = w.sync(env.rank, "MPREDS", v, None, ex.virt)?;
            ex.virt = ex.virt.max(clock);
            ex.poke(a, Cell::Real(sum))?;
        }
        MpOp::AllGather => {
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let start = (ioff - 1).max(0) as usize;
            let mut slice = Vec::with_capacity(count);
            for k in 0..count {
                slice.push(ex.peek(base + start + k)?);
            }
            let (_, parts, clock) =
                w.sync(env.rank, "MPALLG", 0.0, Some((start, slice)), ex.virt)?;
            ex.virt = ex.virt.max(clock);
            let mut moved = 0u64;
            for (off, cells) in parts {
                moved += cells.len() as u64;
                for (k, v) in cells.into_iter().enumerate() {
                    ex.poke(base + off + k, v)?;
                }
            }
            ex.virt += MSG_WORD_COST * moved;
        }
        MpOp::Barrier => {
            let (_, _, clock) = w.sync(env.rank, "MPBAR", 0.0, None, ex.virt)?;
            ex.virt = ex.virt.max(clock);
        }
    }
    Ok(())
}

/// Runs the program on `ranks` simulated processes; returns rank 0's
/// output with the overall wall time.
pub fn run_mpi(
    rp: &apar_minifort::ResolvedProgram,
    deck: &[DeckVal],
    ranks: usize,
    seg_words: usize,
) -> Result<RunResult, RtError> {
    let prog = RProgram::lower(rp)?;
    run_mpi_lowered(&prog, deck, ranks, seg_words)
}

/// Runs the program on `ranks` simulated processes with an explicit
/// configuration (timeout and fault plan included).
pub fn run_mpi_cfg(
    rp: &apar_minifort::ResolvedProgram,
    deck: &[DeckVal],
    ranks: usize,
    cfg: &ExecConfig,
) -> Result<RunResult, RtError> {
    let prog = RProgram::lower(rp)?;
    run_mpi_lowered_cfg(&prog, deck, ranks, cfg)
}

/// Runs a lowered program under MPI simulation with default timeout and
/// no fault injection.
pub fn run_mpi_lowered(
    prog: &RProgram,
    deck: &[DeckVal],
    ranks: usize,
    seg_words: usize,
) -> Result<RunResult, RtError> {
    let cfg = ExecConfig {
        seg_words,
        ..Default::default()
    };
    run_mpi_lowered_cfg(prog, deck, ranks, &cfg)
}

/// Ranks the severity of a per-rank result so the world reports the
/// root cause, not a follow-on abort.
fn severity(res: &Result<RunResult, RtError>) -> u8 {
    match res {
        Err(RtError::RankPanic { .. }) => 0,
        Err(RtError::RankKilled { .. }) => 1,
        Err(RtError::Deadlock(_)) => 3,
        Err(RtError::Aborted { .. }) => 4,
        Err(_) => 2,
        Ok(_) => 5,
    }
}

/// Runs a lowered program under MPI simulation.
pub fn run_mpi_lowered_cfg(
    prog: &RProgram,
    deck: &[DeckVal],
    ranks: usize,
    cfg: &ExecConfig,
) -> Result<RunResult, RtError> {
    assert!(ranks >= 1);
    let world = MpiWorld::new(
        ranks,
        Duration::from_millis(cfg.mpi_timeout_ms),
        cfg.fault.clone(),
    );
    let t0 = Instant::now();
    let results: Vec<Result<RunResult, RtError>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..ranks {
            let world = &world;
            let prog = &prog;
            let rank_cfg = ExecConfig {
                mode: ExecMode::Serial,
                threads: 1,
                ..cfg.clone()
            };
            handles.push(s.spawn(move || {
                // Panic containment: a rank panic becomes a structured
                // error, and the rank is marked finished either way so
                // peers blocked on it fail fast instead of hanging.
                let res = catch_unwind(AssertUnwindSafe(|| {
                    run_lowered(prog, deck, &rank_cfg, Some(MpiEnv { rank: r, world }))
                }))
                .unwrap_or_else(|payload| {
                    Err(RtError::RankPanic {
                        rank: r,
                        message: panic_message(payload.as_ref()),
                    })
                });
                world.finish(r);
                res
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(RtError::RankPanic {
                        rank: r,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    });
    let wall: Duration = t0.elapsed();
    // Report the most causal failure: a panic or injected kill over the
    // deadlock it provoked, and a deadlock over the aborts it fanned out.
    if let Some(err) = results
        .iter()
        .filter(|r| r.is_err())
        .min_by_key(|r| severity(r))
    {
        return Err(err.clone().unwrap_err());
    }
    let mut rank0 = None;
    let mut max_virt = 0u64;
    for (r, res) in results.into_iter().enumerate() {
        let out = res?;
        max_virt = max_virt.max(out.virt);
        if r == 0 {
            rank0 = Some(out);
        }
    }
    let mut out = rank0.expect("rank 0 result");
    out.wall = wall;
    out.forks = ranks as u64;
    // Modeled elapsed time: the slowest rank, plus per-rank startup.
    out.virt = max_virt + 5_000 * ranks as u64;
    Ok(out)
}

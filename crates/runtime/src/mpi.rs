//! Message-passing simulation: ranks as OS threads.
//!
//! Each rank runs the whole program against its own private memory (its
//! own COMMON storage), connected by per-pair channels and generation-
//! counted collectives — the execution model of the paper's hand-written
//! MPI versions. `MP*` builtins:
//!
//! | builtin | semantics |
//! |---|---|
//! | `MPMYID(R)` | rank id (0-based) |
//! | `MPNPROC(N)` | rank count |
//! | `MPSEND(A, IOFF, N, DEST, TAG)` | send `A(IOFF..IOFF+N-1)` |
//! | `MPRECV(A, IOFF, N, SRC, TAG)` | receive into `A(IOFF..)` |
//! | `MPREDS(X)` | allreduce-sum of scalar `X` |
//! | `MPALLG(A, IOFF, N)` | allgather: every rank's slice to all |
//! | `MPBAR` | barrier |

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::interp::{run_lowered, Bound, Exec, ExecConfig, ExecMode, RtError, RunResult};
use crate::memory::Cell;
use crate::rprog::{MpOp, RProgram};
use crate::DeckVal;

type Msg = (i64, Vec<Cell>, u64); // (tag, payload, sender's virtual clock)

/// Modeled message latency (virtual ops).
const MSG_LATENCY: u64 = 2_000;
/// Modeled per-word transfer cost.
const MSG_WORD_COST: u64 = 2;
/// Modeled collective cost (plus per-rank term).
const COLL_BASE_COST: u64 = 4_000;
const COLL_RANK_COST: u64 = 500;

/// Shared world state.
pub struct MpiWorld {
    ranks: usize,
    /// `chans[src * ranks + dst]`.
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Receiver<Msg>>,
    coll: Collective,
}

/// A rank's handle on the world.
#[derive(Clone)]
pub struct MpiEnv<'w> {
    pub rank: usize,
    world: &'w MpiWorld,
}

struct Collective {
    m: Mutex<CollInner>,
    cv: Condvar,
}

#[derive(Default)]
struct CollInner {
    arriving: usize,
    gen: u64,
    sum_acc: f64,
    clock_acc: u64,
    parts_acc: Vec<(usize, Vec<Cell>)>,
    published_sum: f64,
    published_parts: Vec<(usize, Vec<Cell>)>,
    published_clock: u64,
}

impl MpiWorld {
    fn new(ranks: usize) -> MpiWorld {
        let mut senders = Vec::with_capacity(ranks * ranks);
        let mut receivers = Vec::with_capacity(ranks * ranks);
        for _ in 0..ranks * ranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        MpiWorld {
            ranks,
            senders,
            receivers,
            coll: Collective {
                m: Mutex::new(CollInner::default()),
                cv: Condvar::new(),
            },
        }
    }

    /// Deposit-then-wait collective; returns `(sum, parts, clock)`
    /// published by the completing rank. Every rank leaves with its
    /// virtual clock advanced to the collective's completion time.
    fn sync(
        &self,
        add: f64,
        part: Option<(usize, Vec<Cell>)>,
        clock: u64,
    ) -> (f64, Vec<(usize, Vec<Cell>)>, u64) {
        let mut g = self.coll.m.lock().expect("collective lock");
        let my_gen = g.gen;
        g.sum_acc += add;
        g.clock_acc = g.clock_acc.max(clock);
        if let Some(p) = part {
            g.parts_acc.push(p);
        }
        g.arriving += 1;
        if g.arriving == self.ranks {
            g.published_sum = g.sum_acc;
            g.published_parts = std::mem::take(&mut g.parts_acc);
            g.published_clock = g.clock_acc
                + COLL_BASE_COST
                + COLL_RANK_COST * self.ranks as u64;
            g.sum_acc = 0.0;
            g.clock_acc = 0;
            g.arriving = 0;
            g.gen += 1;
            self.coll.cv.notify_all();
        } else {
            while g.gen == my_gen {
                g = self.coll.cv.wait(g).expect("collective wait");
            }
        }
        (g.published_sum, g.published_parts.clone(), g.published_clock)
    }
}

/// Executes one `MP*` builtin from inside the interpreter.
pub(crate) fn exec_builtin(
    ex: &mut Exec<'_, '_>,
    op: MpOp,
    args: &[Bound],
) -> Result<(), RtError> {
    let Some(env) = ex.mpi.clone() else {
        return Err(RtError::Trap(
            "MP* builtin outside an MPI execution".into(),
        ));
    };
    let w = env.world;
    let addr = |i: usize| -> Result<usize, RtError> {
        args.get(i)
            .map(Exec::bound_addr)
            .ok_or_else(|| RtError::Trap("missing MP* argument".into()))
    };
    match op {
        MpOp::MyId => ex.poke(addr(0)?, Cell::Int(env.rank as i64))?,
        MpOp::NProc => ex.poke(addr(0)?, Cell::Int(w.ranks as i64))?,
        MpOp::Send => {
            // (ARR, IOFF, COUNT, DEST, TAG): ARR bound = base address.
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let dest = ex.peek(addr(3)?)?.as_int() as usize;
            let tag = ex.peek(addr(4)?)?.as_int();
            if dest >= w.ranks {
                return Err(RtError::Trap(format!("MPSEND to rank {}", dest)));
            }
            let start = base + (ioff - 1).max(0) as usize;
            let mut buf = Vec::with_capacity(count);
            for k in 0..count {
                buf.push(ex.peek(start + k)?);
            }
            let words = buf.len() as u64;
            w.senders[env.rank * w.ranks + dest]
                .send((tag, buf, ex.virt))
                .map_err(|_| RtError::Trap("MPSEND on closed channel".into()))?;
            ex.virt += MSG_WORD_COST * words;
        }
        MpOp::Recv => {
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let src = ex.peek(addr(3)?)?.as_int() as usize;
            let tag = ex.peek(addr(4)?)?.as_int();
            if src >= w.ranks {
                return Err(RtError::Trap(format!("MPRECV from rank {}", src)));
            }
            let (mtag, buf, sent_at) = w.receivers[src * w.ranks + env.rank]
                .recv()
                .map_err(|_| RtError::Trap("MPRECV on closed channel".into()))?;
            ex.virt = ex
                .virt
                .max(sent_at + MSG_LATENCY + MSG_WORD_COST * buf.len() as u64);
            if mtag != tag {
                return Err(RtError::Trap(format!(
                    "MPRECV tag mismatch: want {}, got {}",
                    tag, mtag
                )));
            }
            let start = base + (ioff - 1).max(0) as usize;
            for (k, v) in buf.into_iter().enumerate().take(count) {
                ex.poke(start + k, v)?;
            }
        }
        MpOp::RedSum => {
            let a = addr(0)?;
            let v = ex.peek(a)?.as_real();
            let (sum, _, clock) = w.sync(v, None, ex.virt);
            ex.virt = ex.virt.max(clock);
            ex.poke(a, Cell::Real(sum))?;
        }
        MpOp::AllGather => {
            let base = addr(0)?;
            let ioff = ex.peek(addr(1)?)?.as_int();
            let count = ex.peek(addr(2)?)?.as_int().max(0) as usize;
            let start = (ioff - 1).max(0) as usize;
            let mut slice = Vec::with_capacity(count);
            for k in 0..count {
                slice.push(ex.peek(base + start + k)?);
            }
            let (_, parts, clock) = w.sync(0.0, Some((start, slice)), ex.virt);
            ex.virt = ex.virt.max(clock);
            let mut moved = 0u64;
            for (off, cells) in parts {
                moved += cells.len() as u64;
                for (k, v) in cells.into_iter().enumerate() {
                    ex.poke(base + off + k, v)?;
                }
            }
            ex.virt += MSG_WORD_COST * moved;
        }
        MpOp::Barrier => {
            let (_, _, clock) = w.sync(0.0, None, ex.virt);
            ex.virt = ex.virt.max(clock);
        }
    }
    Ok(())
}

/// Runs the program on `ranks` simulated processes; returns rank 0's
/// output with the overall wall time.
pub fn run_mpi(
    rp: &apar_minifort::ResolvedProgram,
    deck: &[DeckVal],
    ranks: usize,
    seg_words: usize,
) -> Result<RunResult, RtError> {
    let prog = RProgram::lower(rp)?;
    run_mpi_lowered(&prog, deck, ranks, seg_words)
}

/// Runs a lowered program under MPI simulation.
pub fn run_mpi_lowered(
    prog: &RProgram,
    deck: &[DeckVal],
    ranks: usize,
    seg_words: usize,
) -> Result<RunResult, RtError> {
    assert!(ranks >= 1);
    let world = MpiWorld::new(ranks);
    let t0 = Instant::now();
    let results: Vec<Result<RunResult, RtError>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..ranks {
            let world = &world;
            let prog = &prog;
            handles.push(s.spawn(move |_| {
                let cfg = ExecConfig {
                    mode: ExecMode::Serial,
                    threads: 1,
                    seg_words,
                    ..Default::default()
                };
                run_lowered(
                    prog,
                    deck,
                    &cfg,
                    Some(MpiEnv { rank: r, world }),
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
    .expect("mpi scope");
    let wall: Duration = t0.elapsed();
    let mut rank0 = None;
    let mut max_virt = 0u64;
    for (r, res) in results.into_iter().enumerate() {
        let out = res?;
        max_virt = max_virt.max(out.virt);
        if r == 0 {
            rank0 = Some(out);
        }
    }
    let mut out = rank0.expect("rank 0 result");
    out.wall = wall;
    out.forks = ranks as u64;
    // Modeled elapsed time: the slowest rank, plus per-rank startup.
    out.virt = max_virt + 5_000 * ranks as u64;
    Ok(out)
}

//! Fault injection for robustness testing.
//!
//! A [`FaultPlan`] rides in [`ExecConfig`](crate::ExecConfig) and lets a
//! test (or a chaos harness) perturb an execution deterministically:
//! drop or delay point-to-point messages, kill a rank after a number of
//! `MP*` operations, panic a shared-memory worker, or force a
//! speculative region to mis-speculate. The runtime must survive every
//! one of these with a structured [`RtError`](crate::RtError) — never a
//! hang, never an escaped panic.

/// Matches a point-to-point message by source, destination, and tag.
/// `None` fields match anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgPat {
    pub src: Option<usize>,
    pub dst: Option<usize>,
    pub tag: Option<i64>,
}

impl MsgPat {
    /// Matches every message.
    pub fn any() -> MsgPat {
        MsgPat::default()
    }

    /// Restricts the pattern to messages sent by `rank`.
    pub fn from_rank(mut self, rank: usize) -> MsgPat {
        self.src = Some(rank);
        self
    }

    /// Restricts the pattern to messages addressed to `rank`.
    pub fn to_rank(mut self, rank: usize) -> MsgPat {
        self.dst = Some(rank);
        self
    }

    /// Restricts the pattern to messages carrying `tag`.
    pub fn with_tag(mut self, tag: i64) -> MsgPat {
        self.tag = Some(tag);
        self
    }

    pub(crate) fn matches(&self, src: usize, dst: usize, tag: i64) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.tag.is_none_or(|t| t == tag)
    }
}

/// A deterministic set of faults to inject into one execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Messages matching any of these patterns are silently lost: the
    /// sender completes normally, the receiver never sees the payload
    /// (and must eventually report a deadlock, not hang).
    pub drop_msgs: Vec<MsgPat>,
    /// Matching messages are delivered with this much extra modeled
    /// latency (virtual ops) added to their arrival time.
    pub delay_msgs: Vec<(MsgPat, u64)>,
    /// `(rank, after_ops)`: the rank dies with
    /// [`RtError::RankKilled`](crate::RtError::RankKilled) when it
    /// begins its `after_ops`-th `MP*` operation (0 = the first).
    pub kill_rank: Option<(usize, u64)>,
    /// This worker index panics on entry to every parallel region; the
    /// panic must be contained as
    /// [`RtError::WorkerPanic`](crate::RtError::WorkerPanic).
    pub panic_worker: Option<usize>,
    /// Every speculative region reports a conflict even when the
    /// parallel schedule was clean, forcing the rollback + serial
    /// re-execution path.
    pub force_speculation_conflict: bool,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Adds a message-loss pattern.
    pub fn drop_message(mut self, pat: MsgPat) -> FaultPlan {
        self.drop_msgs.push(pat);
        self
    }

    /// Adds a message-delay pattern (extra virtual-clock latency).
    pub fn delay_message(mut self, pat: MsgPat, extra_virt: u64) -> FaultPlan {
        self.delay_msgs.push((pat, extra_virt));
        self
    }

    /// Kills `rank` when it begins its `after_ops`-th `MP*` operation.
    pub fn kill_rank(mut self, rank: usize, after_ops: u64) -> FaultPlan {
        self.kill_rank = Some((rank, after_ops));
        self
    }

    /// Panics worker `w` on entry to every parallel region.
    pub fn panic_worker(mut self, w: usize) -> FaultPlan {
        self.panic_worker = Some(w);
        self
    }

    /// Forces every speculative region to roll back.
    pub fn force_conflict(mut self) -> FaultPlan {
        self.force_speculation_conflict = true;
        self
    }

    /// Should a `src -> dst` message with `tag` be dropped?
    pub(crate) fn drops(&self, src: usize, dst: usize, tag: i64) -> bool {
        self.drop_msgs.iter().any(|p| p.matches(src, dst, tag))
    }

    /// Extra delivery latency for a `src -> dst` message with `tag`.
    pub(crate) fn delay(&self, src: usize, dst: usize, tag: i64) -> u64 {
        self.delay_msgs
            .iter()
            .filter(|(p, _)| p.matches(src, dst, tag))
            .map(|&(_, d)| d)
            .sum()
    }

    /// Should `rank` die before its `op_index`-th MP operation?
    pub(crate) fn kills(&self, rank: usize, op_index: u64) -> bool {
        self.kill_rank == Some((rank, op_index))
            || matches!(self.kill_rank, Some((r, n)) if r == rank && op_index >= n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_pat_matching() {
        assert!(MsgPat::any().matches(0, 1, 7));
        let p = MsgPat::any().from_rank(2).with_tag(5);
        assert!(p.matches(2, 0, 5));
        assert!(!p.matches(1, 0, 5));
        assert!(!p.matches(2, 0, 6));
    }

    #[test]
    fn plan_kill_threshold() {
        let plan = FaultPlan::none().kill_rank(1, 3);
        assert!(!plan.kills(1, 2));
        assert!(plan.kills(1, 3));
        assert!(plan.kills(1, 4));
        assert!(!plan.kills(0, 9));
    }

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().force_conflict().is_none());
    }
}

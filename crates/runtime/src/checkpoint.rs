//! Checkpoints for speculative rollback.
//!
//! A speculative region must be able to undo every shared write of a
//! failed parallel attempt. The compiler's access analysis knows which
//! arrays and scalars the region body can write; when that summary is
//! available (and trustworthy — no calls, no assumed-size shapes) the
//! checkpoint snapshots only those cells. Otherwise it falls back to
//! the full shared state: every COMMON cell plus the forking thread's
//! live stack. Either way the snapshot/restore cost is charged to the
//! virtual clock by the caller, proportional to the words copied —
//! mis-speculation is not free, and a targeted checkpoint is the paper
//! generation's answer to making it affordable.

use crate::memory::{Arena, Cell};

/// How a checkpoint chose its coverage (reported for diagnostics and
/// asserted on by the rollback tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Only the cells the compiler's write summary names.
    Targeted,
    /// All commons plus the forking thread's live stack.
    Full,
}

/// A saved copy of selected arena ranges.
pub struct Checkpoint {
    kind: CheckpointKind,
    /// `(start address, saved cells)` per range.
    saved: Vec<(usize, Vec<Cell>)>,
    words: usize,
}

impl Checkpoint {
    /// Snapshots `(start, len)` ranges of the arena.
    pub fn capture(arena: &Arena, kind: CheckpointKind, ranges: &[(usize, usize)]) -> Checkpoint {
        let mut saved = Vec::with_capacity(ranges.len());
        let mut words = 0;
        let total = arena.total_len();
        for &(start, len) in ranges {
            let end = start.saturating_add(len).min(total);
            let start = start.min(total);
            if end <= start {
                continue;
            }
            saved.push((start, arena.snapshot_range(start, end)));
            words += end - start;
        }
        Checkpoint { kind, saved, words }
    }

    /// Snapshots all commons plus the live prefix of segment 0 (the
    /// forking thread's stack). Worker segments are scratch and need no
    /// checkpoint.
    pub fn capture_full(arena: &Arena, stack_top: usize) -> Checkpoint {
        let seg0 = arena.segment_base(0);
        Checkpoint::capture(
            arena,
            CheckpointKind::Full,
            &[(0, arena.commons_len()), (seg0, stack_top.saturating_sub(seg0))],
        )
    }

    /// Restores every saved range.
    pub fn restore(&self, arena: &Arena) {
        for (start, cells) in &self.saved {
            arena.restore_range(*start, cells);
        }
    }

    /// Words held by the checkpoint (drives the modeled cost).
    pub fn words(&self) -> usize {
        self.words
    }

    pub fn kind(&self) -> CheckpointKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_restore_roundtrip() {
        let arena = Arena::new(8, 1, 16);
        for i in 0..8 {
            arena.write(i, Cell::Int(i as i64));
        }
        let cp = Checkpoint::capture(&arena, CheckpointKind::Targeted, &[(2, 3)]);
        assert_eq!(cp.words(), 3);
        assert_eq!(cp.kind(), CheckpointKind::Targeted);
        for i in 0..8 {
            arena.write(i, Cell::Int(-1));
        }
        cp.restore(&arena);
        for i in 0..8 {
            let want = if (2..5).contains(&i) { i as i64 } else { -1 };
            assert_eq!(arena.read(i), Cell::Int(want), "cell {}", i);
        }
    }

    #[test]
    fn out_of_range_requests_are_clamped() {
        let arena = Arena::new(4, 1, 4);
        let cp = Checkpoint::capture(&arena, CheckpointKind::Targeted, &[(2, 100), (50, 3)]);
        assert_eq!(cp.words(), arena.total_len() - 2);
        cp.restore(&arena); // must not panic
    }

    #[test]
    fn full_checkpoint_covers_commons_and_stack_prefix() {
        let arena = Arena::new(6, 2, 8);
        let cp = Checkpoint::capture_full(&arena, arena.segment_base(0) + 3);
        assert_eq!(cp.kind(), CheckpointKind::Full);
        assert_eq!(cp.words(), 6 + 3);
    }
}

//! Interpreter semantics: serial execution, storage association,
//! parallel execution equivalence, the race checker, and MPI builtins.

use apar_minifort::frontend;
use apar_runtime::{run, run_mpi, DeckVal, ExecConfig, ExecMode, RtError};

fn exec(src: &str, deck: &[DeckVal]) -> Vec<String> {
    let rp = frontend(src).expect("frontend");
    run(&rp, deck, &ExecConfig::default())
        .expect("run")
        .output
}

fn exec_mode(src: &str, deck: &[DeckVal], mode: ExecMode, check: bool) -> Vec<String> {
    let rp = frontend(src).expect("frontend");
    run(
        &rp,
        deck,
        &ExecConfig {
            mode,
            check_races: check,
            ..Default::default()
        },
    )
    .expect("run")
    .output
}

fn last_num(out: &[String]) -> f64 {
    out.last()
        .and_then(|l| l.split_whitespace().last())
        .and_then(|t| t.parse().ok())
        .unwrap_or(f64::NAN)
}

#[test]
fn arithmetic_and_write() {
    let out = exec("PROGRAM P\nX = 3.0\nY = X * 2.0 + 1.0\nWRITE(*,*) 'Y', Y\nEND\n", &[]);
    assert_eq!(out, vec!["Y 7.000000"]);
}

#[test]
fn integer_semantics() {
    let out = exec(
        "PROGRAM P\nI = 7\nJ = I / 2\nK = MOD(I, 4)\nM = 2 ** 5\nWRITE(*,*) J, K, M\nEND\n",
        &[],
    );
    assert_eq!(out, vec!["3 3 32"]);
}

#[test]
fn do_loop_and_array() {
    let out = exec(
        "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = REAL(I) * 2.0\nENDDO\nS = 0.0\nDO I = 1, 10\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 110.0);
}

#[test]
fn do_loop_step_and_exit_value() {
    let out = exec(
        "PROGRAM P\nN = 0\nDO I = 1, 10, 3\nN = N + 1\nENDDO\nWRITE(*,*) N, I\nEND\n",
        &[],
    );
    // Iterations: 1,4,7,10 -> N=4; exit value I=13.
    assert_eq!(out, vec!["4 13"]);
}

#[test]
fn negative_step() {
    let out = exec(
        "PROGRAM P\nS = 0.0\nDO I = 5, 1, -2\nS = S + REAL(I)\nENDDO\nWRITE(*,*) S\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 9.0); // 5 + 3 + 1
}

#[test]
fn if_elseif_else() {
    let src = "PROGRAM P\nREAD(*,*) N\nIF (N .GT. 0) THEN\nWRITE(*,*) 'POS'\nELSE IF (N .LT. 0) THEN\nWRITE(*,*) 'NEG'\nELSE\nWRITE(*,*) 'ZERO'\nENDIF\nEND\n";
    assert_eq!(exec(src, &[DeckVal::Int(5)]), vec!["POS"]);
    assert_eq!(exec(src, &[DeckVal::Int(-5)]), vec!["NEG"]);
    assert_eq!(exec(src, &[DeckVal::Int(0)]), vec!["ZERO"]);
}

#[test]
fn subroutine_by_reference() {
    let out = exec(
        "PROGRAM P\nX = 1.0\nCALL BUMP(X)\nCALL BUMP(X)\nWRITE(*,*) X\nEND\nSUBROUTINE BUMP(V)\nV = V + 1.5\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 4.0);
}

#[test]
fn array_and_section_arguments() {
    let out = exec(
        "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nCALL FILL(A(4), 3, 9.0)\nS = 0.0\nDO I = 1, 10\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\nSUBROUTINE FILL(B, N, V)\nREAL B(*)\nDO K = 1, N\nB(K) = V\nENDDO\nEND\n",
        &[],
    );
    // Elements 4..6 become 9: total = 7*1 + 3*9 = 34.
    assert_eq!(last_num(&out), 34.0);
}

#[test]
fn functions_return_values() {
    let out = exec(
        "PROGRAM P\nX = TWICE(4.0) + TWICE(1.0)\nWRITE(*,*) X\nEND\nREAL FUNCTION TWICE(V)\nTWICE = V * 2.0\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 10.0);
}

#[test]
fn common_blocks_share_storage() {
    let out = exec(
        "PROGRAM P\nCOMMON /C/ X, N\nX = 1.5\nN = 3\nCALL SHOW\nEND\nSUBROUTINE SHOW\nCOMMON /C/ Y, M\nWRITE(*,*) Y, M\nEND\n",
        &[],
    );
    assert_eq!(out, vec!["1.500000 3"]);
}

#[test]
fn equivalence_overlays_storage() {
    let out = exec(
        "PROGRAM P\nREAL A(10), B(10)\nEQUIVALENCE (A(5), B(1))\nA(5) = 42.0\nB(2) = 7.0\nWRITE(*,*) B(1), A(6)\nEND\n",
        &[],
    );
    assert_eq!(out, vec!["42.000000 7.000000"]);
}

#[test]
fn adjustable_and_2d_arrays() {
    let out = exec(
        "PROGRAM P\nREAL A(4, 3)\nCALL SET(A, 4, 3)\nWRITE(*,*) A(2, 3)\nEND\nSUBROUTINE SET(M, NR, NC)\nREAL M(NR, NC)\nDO J = 1, NC\nDO I = 1, NR\nM(I, J) = REAL(I * 10 + J)\nENDDO\nENDDO\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 23.0);
}

#[test]
fn data_statement_initializes() {
    let out = exec(
        "PROGRAM P\nREAL A(5)\nDATA A /5*2.0/, Q /1.5/\nWRITE(*,*) A(3) + Q\nEND\n",
        &[],
    );
    assert_eq!(last_num(&out), 3.5);
}

#[test]
fn dowhile_runs() {
    let out = exec(
        "PROGRAM P\nN = 1\nDO WHILE (N .LT. 100)\nN = N * 2\nENDDO\nWRITE(*,*) N\nEND\n",
        &[],
    );
    assert_eq!(out, vec!["128"]);
}

#[test]
fn stop_halts() {
    let src = "PROGRAM P\nWRITE(*,*) 'A'\nREAD(*,*) N\nIF (N .GT. 0) STOP\nWRITE(*,*) 'B'\nEND\n";
    assert_eq!(exec(src, &[DeckVal::Int(1)]), vec!["A"]);
    assert_eq!(exec(src, &[DeckVal::Int(0)]), vec!["A", "B"]);
}

#[test]
fn deck_exhaustion_errors() {
    let rp = frontend("PROGRAM P\nREAD(*,*) A, B\nEND\n").unwrap();
    let err = run(&rp, &[DeckVal::Int(1)], &ExecConfig::default()).unwrap_err();
    assert_eq!(err, RtError::DeckExhausted);
}

// ---------------- parallel execution ----------------

const PAR_SRC: &str = "PROGRAM P\nREAL A(1000)\n!$OMP PARALLEL DO PRIVATE(T)\nDO I = 1, 1000\nT = REAL(I) * 0.5\nA(I) = T + 1.0\nENDDO\nS = 0.0\n!$OMP PARALLEL DO REDUCTION(+:S)\nDO I = 1, 1000\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n";

#[test]
fn parallel_matches_serial() {
    let serial = exec_mode(PAR_SRC, &[], ExecMode::Serial, false);
    let par = exec_mode(PAR_SRC, &[], ExecMode::Manual, true);
    let (a, b) = (last_num(&serial), last_num(&par));
    assert!((a - b).abs() / a.abs() < 1e-9, "{} vs {}", a, b);
    // And it actually forked.
    let rp = frontend(PAR_SRC).unwrap();
    let r = run(
        &rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Manual,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.regions, 2);
    assert!(r.forks >= 8);
}

#[test]
fn lastprivate_value_survives() {
    let src = "PROGRAM P\nREAL A(100)\n!$OMP PARALLEL DO PRIVATE(T)\nDO I = 1, 100\nT = REAL(I)\nA(I) = T\nENDDO\nWRITE(*,*) T, I\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Manual, false);
    assert_eq!(serial, par);
    assert_eq!(serial, vec!["100.000000 101"]);
}

#[test]
fn private_array_isolation() {
    let src = "PROGRAM P\nREAL A(64), W(8)\n!$OMP PARALLEL DO PRIVATE(W, K)\nDO I = 1, 64\nDO K = 1, 8\nW(K) = REAL(I + K)\nENDDO\nA(I) = W(1) + W(8)\nENDDO\nS = 0.0\nDO I = 1, 64\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Manual, true);
    assert_eq!(last_num(&serial), last_num(&par));
}

#[test]
fn cyclic_schedule_matches_serial() {
    // Imbalanced body (the IF arm does extra work for low I): a
    // `!$PAR DO SCHEDULE(CYCLIC)` deals iterations round-robin. The
    // result must still be bit-identical to serial.
    let src = "PROGRAM P\nREAL A(100)\n!$PAR DO SCHEDULE(CYCLIC) PRIVATE(T)\nDO I = 1, 100\nT = REAL(I)\nIF (I .LT. 50) THEN\nT = T + REAL(I) * 2.0\nENDIF\nA(I) = T\nENDDO\nS = 0.0\nDO I = 1, 100\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Auto, true);
    assert_eq!(serial, par);
}

#[test]
fn cyclic_lastprivate_comes_from_final_iteration() {
    // With 4 threads and 98 iterations, the final iteration (t = 97)
    // belongs to worker 1 under CYCLIC — not the last worker, which is
    // the static chunking's lastprivate carrier.
    let src = "PROGRAM P\nREAL A(98)\n!$PAR DO SCHEDULE(CYCLIC) PRIVATE(T)\nDO I = 1, 98\nT = REAL(I)\nA(I) = T\nENDDO\nWRITE(*,*) T, I\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Auto, false);
    assert_eq!(serial, par);
    assert_eq!(serial, vec!["98.000000 99"]);
}

#[test]
fn cyclic_reduction_matches_serial() {
    let src = "PROGRAM P\nREAL A(200)\nDO I = 1, 200\nA(I) = REAL(I)\nENDDO\nS = 0.0\n!$PAR DO SCHEDULE(CYCLIC) REDUCTION(+:S)\nDO I = 1, 200\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Auto, true);
    assert_eq!(serial, par);
    assert_eq!(last_num(&serial), 20100.0);
}

#[test]
fn race_checker_catches_real_race() {
    // A(I) = A(I+1): cross-iteration anti-dependence; a (wrong) manual
    // annotation must be caught.
    let src = "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = REAL(I)\nENDDO\n!$OMP PARALLEL DO\nDO I = 1, 99\nA(I) = A(I + 1)\nENDDO\nWRITE(*,*) A(1)\nEND\n";
    let rp = frontend(src).unwrap();
    let err = run(
        &rp,
        &[],
        &ExecConfig {
            mode: ExecMode::Manual,
            check_races: true,
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, RtError::Race(_)), "{:?}", err);
}

#[test]
fn race_checker_accepts_disjoint_writes() {
    let src = "PROGRAM P\nREAL A(100)\n!$OMP PARALLEL DO\nDO I = 1, 100\nA(I) = REAL(I)\nENDDO\nWRITE(*,*) A(50)\nEND\n";
    let out = exec_mode(src, &[], ExecMode::Manual, true);
    assert_eq!(last_num(&out), 50.0);
}

#[test]
fn min_max_reductions_parallel() {
    let src = "PROGRAM P\nREAL A(200)\nDO I = 1, 200\nA(I) = ABS(REAL(I - 77)) + 2.0\nENDDO\nXMIN = 1.0E30\nXMAX = -1.0E30\n!$OMP PARALLEL DO REDUCTION(MIN:XMIN) REDUCTION(MAX:XMAX)\nDO I = 1, 200\nXMIN = MIN(XMIN, A(I))\nXMAX = MAX(XMAX, A(I))\nENDDO\nWRITE(*,*) XMIN, XMAX\nEND\n";
    let serial = exec_mode(src, &[], ExecMode::Serial, false);
    let par = exec_mode(src, &[], ExecMode::Manual, true);
    assert_eq!(serial, par);
    assert_eq!(serial, vec!["2.000000 125.000000"]);
}

// ---------------- MPI simulation ----------------

#[test]
fn mpi_rank_identity_and_reduce() {
    let src = "PROGRAM P\nCALL MPMYID(ME)\nCALL MPNPROC(NP)\nS = REAL(ME + 1)\nCALL MPREDS(S)\nIF (ME .EQ. 0) THEN\nWRITE(*,*) NP, S\nENDIF\nEND\n";
    let rp = frontend(src).unwrap();
    let r = run_mpi(&rp, &[], 4, 1 << 16).unwrap();
    // sum of 1..4 = 10
    assert_eq!(r.output, vec!["4 10.000000"]);
}

#[test]
fn mpi_send_recv_ring() {
    let src = "PROGRAM P\nREAL BUF(8)\nCALL MPMYID(ME)\nCALL MPNPROC(NP)\nDO K = 1, 8\nBUF(K) = REAL(ME * 100 + K)\nENDDO\nNEXT = MOD(ME + 1, NP)\nPREV = MOD(ME + NP - 1, NP)\nCALL MPSEND(BUF, 1, 4, NEXT, 7)\nCALL MPRECV(BUF, 5, 4, PREV, 7)\nIF (ME .EQ. 0) THEN\nWRITE(*,*) BUF(5), BUF(8)\nENDIF\nEND\n";
    let rp = frontend(src).unwrap();
    let r = run_mpi(&rp, &[], 4, 1 << 16).unwrap();
    // Rank 0 receives rank 3's first 4 elements: 301..304.
    assert_eq!(r.output, vec!["301.000000 304.000000"]);
}

#[test]
fn mpi_allgather() {
    let src = "PROGRAM P\nREAL G(16)\nCALL MPMYID(ME)\nCALL MPNPROC(NP)\nDO K = 1, 4\nG(ME * 4 + K) = REAL(ME * 10 + K)\nENDDO\nCALL MPALLG(G, ME * 4 + 1, 4)\nIF (ME .EQ. 0) THEN\nWRITE(*,*) G(1), G(8), G(16)\nENDIF\nEND\n";
    let rp = frontend(src).unwrap();
    let r = run_mpi(&rp, &[], 4, 1 << 16).unwrap();
    assert_eq!(r.output, vec!["1.000000 14.000000 34.000000"]);
}

#[test]
fn mpi_commons_are_rank_private() {
    let src = "PROGRAM P\nCOMMON /C/ N\nCALL MPMYID(ME)\nN = ME\nCALL MPBAR\nS = REAL(N)\nCALL MPREDS(S)\nIF (ME .EQ. 0) THEN\nWRITE(*,*) S\nENDIF\nEND\n";
    let rp = frontend(src).unwrap();
    let r = run_mpi(&rp, &[], 4, 1 << 16).unwrap();
    // 0+1+2+3 = 6: each rank kept its own N.
    assert_eq!(r.output, vec!["6.000000"]);
}

#[test]
fn malformed_intrinsic_arity_traps_instead_of_panicking() {
    // Lowering does not validate intrinsic arity; the interpreter must
    // surface a structured trap, not an index panic.
    let rp = frontend("PROGRAM P\nK = MOD(7)\nWRITE(*,*) K\nEND\n").expect("frontend");
    let err = run(&rp, &[], &ExecConfig::default()).expect_err("arity trap");
    assert!(matches!(err, RtError::Trap(_)), "{:?}", err);
}

//! Property tests for the frontend: randomly generated programs
//! pretty-print to source that re-parses to an equivalent program, and
//! resolution is deterministic.

use apar_minicheck::{forall, Rng};
use apar_minifort::ast::*;
use apar_minifort::pretty::print_program;
use apar_minifort::{parse_program, resolve};

/// A tiny structured-program generator: no GOTOs, unique loop vars per
/// nesting path, plain scalar/array assignments.
#[derive(Clone, Debug)]
enum GStmt {
    AssignScalar(u8, GExpr),
    AssignElem(u8, GExpr, GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    Do(u8, GExpr, GExpr, Vec<GStmt>),
    Write(GExpr),
}

#[derive(Clone, Debug)]
enum GExpr {
    Int(i8),
    Real(i8),
    Scalar(u8),
    Elem(u8, Box<GExpr>),
    Add(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, Box<GExpr>),
    Intr(Box<GExpr>),
}

fn gexpr(rng: &mut Rng, depth: u32) -> GExpr {
    if depth == 0 || rng.weighted(0.4) {
        return match rng.int_in(0, 2) {
            0 => GExpr::Int(rng.int_in(-99, 99) as i8),
            1 => GExpr::Real(rng.int_in(-99, 99) as i8),
            _ => GExpr::Scalar(rng.int_in(0, 3) as u8),
        };
    }
    match rng.int_in(0, 3) {
        0 => {
            let a = rng.int_in(0, 1) as u8;
            GExpr::Elem(a, Box::new(gexpr(rng, depth - 1)))
        }
        1 => {
            let a = gexpr(rng, depth - 1);
            let b = gexpr(rng, depth - 1);
            GExpr::Add(Box::new(a), Box::new(b))
        }
        2 => {
            let a = gexpr(rng, depth - 1);
            let b = gexpr(rng, depth - 1);
            GExpr::Mul(Box::new(a), Box::new(b))
        }
        _ => GExpr::Intr(Box::new(gexpr(rng, depth - 1))),
    }
}

fn gstmt(rng: &mut Rng, depth: u32) -> GStmt {
    let kind = if depth == 0 { rng.int_in(0, 2) } else { rng.int_in(0, 4) };
    match kind {
        0 => GStmt::AssignScalar(rng.int_in(0, 3) as u8, gexpr(rng, 3)),
        1 => {
            let a = rng.int_in(0, 1) as u8;
            let i = gexpr(rng, 3);
            let e = gexpr(rng, 3);
            GStmt::AssignElem(a, i, e)
        }
        2 => GStmt::Write(gexpr(rng, 3)),
        3 => {
            let c = gexpr(rng, 3);
            let t = rng.vec_of(0, 2, |r| gstmt(r, depth - 1));
            let e = rng.vec_of(0, 1, |r| gstmt(r, depth - 1));
            GStmt::If(c, t, e)
        }
        _ => {
            let v = rng.int_in(4, 7) as u8;
            let lo = gexpr(rng, 3);
            let hi = gexpr(rng, 3);
            let b = rng.vec_of(0, 2, |r| gstmt(r, depth - 1));
            GStmt::Do(v, lo, hi, b)
        }
    }
}

fn scalar_name(i: u8) -> String {
    // X0..X3 are reals; loop vars I4..I7 are integers.
    if i < 4 {
        format!("X{}", i)
    } else {
        format!("I{}", i)
    }
}

fn render_expr(e: &GExpr, out: &mut String) {
    match e {
        GExpr::Int(v) => {
            if *v < 0 {
                out.push_str(&format!("({})", v));
            } else {
                out.push_str(&v.to_string());
            }
        }
        GExpr::Real(v) => out.push_str(&format!("({}.5)", v.abs())),
        GExpr::Scalar(s) => out.push_str(&scalar_name(*s)),
        GExpr::Elem(a, i) => {
            out.push_str(&format!("ARR{}(1 + MOD(ABS(INT(", a));
            render_expr(i, out);
            out.push_str(")), 9))");
        }
        GExpr::Add(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" + ");
            render_expr(b, out);
            out.push(')');
        }
        GExpr::Mul(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(" * ");
            render_expr(b, out);
            out.push(')');
        }
        GExpr::Intr(a) => {
            out.push_str("ABS(");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn render_stmt(s: &GStmt, ind: usize, out: &mut String) {
    let pad = "  ".repeat(ind);
    match s {
        GStmt::AssignScalar(v, e) => {
            out.push_str(&format!("{}{} = ", pad, scalar_name(*v)));
            render_expr(e, out);
            out.push('\n');
        }
        GStmt::AssignElem(a, i, e) => {
            out.push_str(&format!("{}ARR{}(1 + MOD(ABS(INT(", pad, a));
            render_expr(i, out);
            out.push_str(")), 9)) = ");
            render_expr(e, out);
            out.push('\n');
        }
        GStmt::If(c, t, e) => {
            out.push_str(&format!("{}IF (", pad));
            render_expr(c, out);
            out.push_str(" .GT. 0.0) THEN\n");
            for st in t {
                render_stmt(st, ind + 1, out);
            }
            if !e.is_empty() {
                out.push_str(&format!("{}ELSE\n", pad));
                for st in e {
                    render_stmt(st, ind + 1, out);
                }
            }
            out.push_str(&format!("{}ENDIF\n", pad));
        }
        GStmt::Do(v, lo, hi, b) => {
            out.push_str(&format!("{}DO {} = INT(", pad, scalar_name(*v)));
            render_expr(lo, out);
            out.push_str("), INT(");
            render_expr(hi, out);
            out.push_str(")\n");
            for st in b {
                render_stmt(st, ind + 1, out);
            }
            out.push_str(&format!("{}ENDDO\n", pad));
        }
        GStmt::Write(e) => {
            out.push_str(&format!("{}WRITE(*,*) ", pad));
            render_expr(e, out);
            out.push('\n');
        }
    }
}

fn render_program(stmts: &[GStmt]) -> String {
    let mut out = String::from("PROGRAM GEN\n  REAL ARR0(10), ARR1(10)\n");
    for s in stmts {
        render_stmt(s, 1, &mut out);
    }
    out.push_str("END\n");
    out
}

/// Structural equality modulo statement ids and source lines.
fn strip(p: &Program) -> String {
    // The pretty form IS the canonical structural rendering.
    print_program(p)
}

/// print -> parse -> print is a fixpoint on generated programs.
#[test]
fn pretty_parse_roundtrip() {
    forall("pretty_parse_roundtrip", 64, |rng| {
        let stmts = rng.vec_of(0, 5, |r| gstmt(r, 2));
        let src = render_program(&stmts);
        let p1 = parse_program(&src)
            .unwrap_or_else(|e| panic!("parse failed: {}\n{}", e, src));
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n{}", e, printed));
        assert_eq!(strip(&p1), strip(&p2));
    });
}

/// Resolution succeeds and is deterministic on generated programs.
#[test]
fn resolution_is_deterministic() {
    forall("resolution_is_deterministic", 64, |rng| {
        let stmts = rng.vec_of(0, 5, |r| gstmt(r, 2));
        let src = render_program(&stmts);
        let p1 = parse_program(&src).expect("parse");
        let p2 = parse_program(&src).expect("parse");
        let r1 = resolve(p1).expect("resolve");
        let r2 = resolve(p2).expect("resolve");
        let t1 = r1.table("GEN");
        let t2 = r2.table("GEN");
        assert_eq!(t1.area_sizes, t2.area_sizes);
        for s in t1.iter() {
            let o = t2.get(&s.name).expect("same symbols");
            assert_eq!(format!("{:?}", s.storage), format!("{:?}", o.storage));
        }
    });
}

/// `parse(print(p))` is a fixpoint on the full fortgen shape space —
/// subroutines, COMMON, CALLs, directives — not just the local
/// structured generator above. The printed form is the canonical text:
/// printing the reparse must reproduce it byte-for-byte.
#[test]
fn fortgen_print_parse_fixpoint() {
    use apar_minicheck::fortgen::{gen_program, GenConfig};
    forall("fortgen_print_parse_fixpoint", 128, |rng| {
        let cfg = GenConfig::default(); // garble 0.0: valid programs only
        let src = gen_program(rng, &cfg);
        let p1 = parse_program(&src)
            .unwrap_or_else(|e| panic!("parse failed: {}\n{}", e, src));
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n{}", e, printed));
        let reprinted = print_program(&p2);
        assert_eq!(
            printed, reprinted,
            "print/parse not a fixpoint; original source:\n{}",
            src
        );
    });
}

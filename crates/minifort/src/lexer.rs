//! The MiniFort lexer.
//!
//! Line-oriented: newlines end statements ([`Tok::Eos`]), a trailing `&`
//! continues a statement onto the next line, `!` starts a comment unless
//! it introduces a directive (`!$...` or `!LANG ...`). A line may begin
//! with a numeric statement label. Keywords are not reserved; the parser
//! decides from context (as in Fortran).

use crate::diag::ParseError;
use crate::token::{Tok, Token};

/// Lexes the entire source, returning tokens ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

/// Lexes with recovery: a malformed line is dropped (back to the last
/// statement boundary), recorded as a [`ParseError`], and lexing
/// resumes on the next line. Always produces an `Eof`-terminated token
/// stream — garbled input yields diagnostics, never a dead front end.
pub fn lex_recovering(src: &str) -> (Vec<Token>, Vec<ParseError>) {
    Lexer::new(src).run_recovering()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    at_line_start: bool,
    out: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            at_line_start: true,
            out: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: Tok) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
        self.at_line_start = false;
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn last_meaningful_is_eos(&self) -> bool {
        matches!(
            self.out.last().map(|t| &t.kind),
            None | Some(Tok::Eos) | Some(Tok::Directive(_))
        )
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while let Some(c) = self.peek() {
            self.step(c)?;
        }
        Ok(self.finish())
    }

    fn run_recovering(mut self) -> (Vec<Token>, Vec<ParseError>) {
        let mut diags = Vec::new();
        while let Some(c) = self.peek() {
            if let Err(e) = self.step(c) {
                diags.push(e);
                self.drop_line();
            }
        }
        (self.finish(), diags)
    }

    /// Discards the statement being lexed (tokens back to the last
    /// boundary) and skips source text to the end of the current line,
    /// leaving the newline for the main loop to account.
    fn drop_line(&mut self) {
        while !self.last_meaningful_is_eos() {
            self.out.pop();
        }
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn finish(mut self) -> Vec<Token> {
        if !self.last_meaningful_is_eos() {
            self.out.push(Token {
                kind: Tok::Eos,
                line: self.line,
            });
        }
        self.out.push(Token {
            kind: Tok::Eof,
            line: self.line,
        });
        self.out
    }

    fn step(&mut self, c: char) -> Result<(), ParseError> {
        {
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '\n' => {
                    self.bump();
                    if !self.last_meaningful_is_eos() {
                        self.out.push(Token {
                            kind: Tok::Eos,
                            line: self.line,
                        });
                    }
                    self.line += 1;
                    self.at_line_start = true;
                }
                ';' => {
                    self.bump();
                    if !self.last_meaningful_is_eos() {
                        self.push(Tok::Eos);
                    }
                }
                '&' => {
                    // Continuation: swallow to end of line including newline.
                    self.bump();
                    while let Some(c2) = self.peek() {
                        self.bump();
                        if c2 == '\n' {
                            self.line += 1;
                            break;
                        }
                        if !c2.is_whitespace() {
                            return Err(self.err("unexpected text after continuation '&'"));
                        }
                    }
                }
                '!' => self.comment_or_directive()?,
                'c' | 'C' if self.at_line_start && self.is_classic_comment() => {
                    // Classic F77 full-line comment: 'C' in column 1
                    // followed by whitespace.
                    while let Some(c2) = self.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '0'..='9' => self.number()?,
                '.' => self.dot_token()?,
                '\'' => self.string()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(),
                '(' => {
                    self.bump();
                    self.push(Tok::LParen);
                }
                ')' => {
                    self.bump();
                    self.push(Tok::RParen);
                }
                ',' => {
                    self.bump();
                    self.push(Tok::Comma);
                }
                ':' => {
                    self.bump();
                    self.push(Tok::Colon);
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Eq);
                    } else {
                        self.push(Tok::Assign);
                    }
                }
                '+' => {
                    self.bump();
                    self.push(Tok::Plus);
                }
                '-' => {
                    self.bump();
                    self.push(Tok::Minus);
                }
                '*' => {
                    self.bump();
                    if self.peek() == Some('*') {
                        self.bump();
                        self.push(Tok::Pow);
                    } else {
                        self.push(Tok::Star);
                    }
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            self.bump();
                            self.push(Tok::Concat);
                        }
                        Some('=') => {
                            self.bump();
                            self.push(Tok::Ne);
                        }
                        _ => self.push(Tok::Slash),
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Le);
                    } else {
                        self.push(Tok::Lt);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Ge);
                    } else {
                        self.push(Tok::Gt);
                    }
                }
                other => return Err(self.err(format!("unexpected character '{}'", other))),
            }
        }
        Ok(())
    }

    fn is_classic_comment(&self) -> bool {
        matches!(self.peek2(), Some(' ') | Some('\t') | Some('\n') | None)
    }

    fn comment_or_directive(&mut self) -> Result<(), ParseError> {
        self.bump(); // '!'
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let upper = text.trim().to_ascii_uppercase();
        if upper.starts_with('$') || upper.starts_with("LANG") {
            // Directives conceptually occupy their own line.
            if !self.last_meaningful_is_eos() {
                self.out.push(Token {
                    kind: Tok::Eos,
                    line: self.line,
                });
            }
            self.out.push(Token {
                kind: Tok::Directive(upper),
                line: self.line,
            });
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), ParseError> {
        let at_start = self.at_line_start;
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_real = false;
        // A '.' continues a real literal unless it starts an operator
        // like `.EQ.` (dot followed by a letter).
        if self.peek() == Some('.') && !matches!(self.peek2(), Some(c) if c.is_ascii_alphabetic()) {
            is_real = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E' | 'd' | 'D'))
            && matches!(self.peek2(), Some(c) if c.is_ascii_digit() || c == '+' || c == '-')
        {
            is_real = true;
            self.bump();
            text.push('E');
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().expect("peeked"));
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if is_real {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad real literal '{}'", text)))?;
            self.push(Tok::Real(v));
        } else if at_start {
            let v: u32 = text
                .parse()
                .map_err(|_| self.err(format!("bad statement label '{}'", text)))?;
            self.out.push(Token {
                kind: Tok::Label(v),
                line: start_line,
            });
            // Stay "at line start" for labels followed by statements.
            self.at_line_start = false;
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad integer literal '{}'", text)))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn dot_token(&mut self) -> Result<(), ParseError> {
        // Either a real like `.5` or a dotted operator `.EQ.`
        if matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            let mut text = String::from("0.");
            self.bump(); // '.'
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad real literal '{}'", text)))?;
            self.push(Tok::Real(v));
            return Ok(());
        }
        self.bump(); // '.'
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c.to_ascii_uppercase());
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some('.') {
            return Err(self.err(format!("malformed dotted operator '.{}'", word)));
        }
        self.bump(); // closing '.'
        let tok = match word.as_str() {
            "EQ" => Tok::Eq,
            "NE" => Tok::Ne,
            "LT" => Tok::Lt,
            "LE" => Tok::Le,
            "GT" => Tok::Gt,
            "GE" => Tok::Ge,
            "AND" => Tok::And,
            "OR" => Tok::Or,
            "NOT" => Tok::Not,
            "TRUE" => Tok::Logical(true),
            "FALSE" => Tok::Logical(false),
            other => return Err(self.err(format!("unknown dotted operator '.{}.'", other))),
        };
        self.push(tok);
        Ok(())
    }

    fn string(&mut self) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                // Leave the newline unconsumed so recovery resynchronizes
                // on this line, not the next one.
                None | Some('\n') => return Err(self.err("unterminated character literal")),
                Some('\'') => {
                    self.bump();
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        break;
                    }
                }
                Some(c) => {
                    s.push(c);
                    self.bump();
                }
            }
        }
        self.push(Tok::Str(s));
        Ok(())
    }

    fn ident(&mut self) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c.to_ascii_uppercase());
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        let t = kinds("A = B + 1\n");
        assert_eq!(
            t,
            vec![
                Tok::Ident("A".into()),
                Tok::Assign,
                Tok::Ident("B".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Eos,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn case_folding_and_labels() {
        let t = kinds("100 continue\n      goto 100\n");
        assert_eq!(
            t,
            vec![
                Tok::Label(100),
                Tok::Ident("CONTINUE".into()),
                Tok::Eos,
                Tok::Ident("GOTO".into()),
                Tok::Int(100),
                Tok::Eos,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dotted_operators() {
        let t = kinds("IF (X .GE. 1.5 .AND. .NOT. L) THEN\n");
        assert!(t.contains(&Tok::Ge));
        assert!(t.contains(&Tok::And));
        assert!(t.contains(&Tok::Not));
        assert!(t.contains(&Tok::Real(1.5)));
    }

    #[test]
    fn real_literals() {
        assert_eq!(kinds("X = 1.5E3\n")[2], Tok::Real(1500.0));
        assert_eq!(kinds("X = 2.5D-1\n")[2], Tok::Real(0.25));
        assert_eq!(kinds("X = .25\n")[2], Tok::Real(0.25));
        // `1.EQ.2` is int, op, int — not reals.
        let t = kinds("L = 1.EQ.2\n");
        assert_eq!(t[2], Tok::Int(1));
        assert_eq!(t[3], Tok::Eq);
        assert_eq!(t[4], Tok::Int(2));
    }

    #[test]
    fn comments_and_directives() {
        let t = kinds(
            "! plain comment\nC classic comment\nX = 1 ! trailing\n!$OMP PARALLEL DO\n!LANG C\n",
        );
        assert_eq!(
            t,
            vec![
                Tok::Ident("X".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Eos,
                Tok::Directive("$OMP PARALLEL DO".into()),
                Tok::Directive("LANG C".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn continuation_lines() {
        let t = kinds("X = 1 + &\n    2\n");
        assert_eq!(
            t,
            vec![
                Tok::Ident("X".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Eos,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = kinds("WRITE(*,*) 'it''s fine'\n");
        assert!(t.contains(&Tok::Str("it's fine".into())));
    }

    #[test]
    fn power_and_slashes() {
        let t = kinds("Y = X**2 / 4\n");
        assert!(t.contains(&Tok::Pow));
        assert!(t.contains(&Tok::Slash));
        let t2 = kinds("COMMON /BLK/ X\n");
        assert_eq!(t2[1], Tok::Slash);
    }

    #[test]
    fn alternate_relational_spellings() {
        let t = kinds("L = A <= B\nM = A >= B\nN = A == B\nP = A /= B\n");
        assert!(t.contains(&Tok::Le));
        assert!(t.contains(&Tok::Ge));
        assert!(t.contains(&Tok::Eq));
        assert!(t.contains(&Tok::Ne));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("X = 'oops\n").is_err());
    }

    #[test]
    fn recovering_lexer_drops_bad_lines_only() {
        let (toks, diags) = lex_recovering("X = 1\nY = 'oops\nZ = 3\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        let kinds: Vec<Tok> = toks.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&Tok::Ident("X".into())));
        assert!(!kinds.contains(&Tok::Ident("Y".into())), "bad line dropped");
        assert!(kinds.contains(&Tok::Ident("Z".into())));
    }

    #[test]
    fn recovering_lexer_matches_strict_on_clean_input() {
        let src = "PROGRAM P\nDO I = 1, 10\nA(I) = 1.0 ! trailing\nENDDO\nEND\n";
        let strict: Vec<Tok> = lex(src).unwrap().into_iter().map(|t| t.kind).collect();
        let (toks, diags) = lex_recovering(src);
        assert!(diags.is_empty());
        let rec: Vec<Tok> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(strict, rec);
    }

    #[test]
    fn recovering_lexer_survives_arbitrary_bytes() {
        let (toks, diags) = lex_recovering("@#%^\u{0}\nX = 1\n\u{7f}~`$\n");
        assert!(!diags.is_empty());
        let kinds: Vec<Tok> = toks.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&Tok::Ident("X".into())));
        assert_eq!(kinds.last(), Some(&Tok::Eof));
    }

    #[test]
    fn classic_comment_requires_column_one() {
        // 'C' as a variable still lexes as an identifier mid-line.
        let t = kinds("C = 1\n");
        // "C = 1" — C followed by space IS a classic comment in column 1.
        assert_eq!(t, vec![Tok::Eof]);
        let t2 = kinds("CX = 1\n");
        assert_eq!(t2[0], Tok::Ident("CX".into()));
    }
}

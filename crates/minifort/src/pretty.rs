//! Pretty-printer: renders a [`Program`] back to parseable MiniFort
//! source. Used for golden tests, round-trip property tests, and by
//! the codegen backend: `auto_par` annotations print as `!$PAR DO`
//! directives (schedule, collapse, private, reduction clauses) that
//! the parser reads back into the `auto_par` slot, and
//! [`print_program_annotated`] records why serial loops stayed serial
//! as structured `!$PAR SERIAL <reason>` comments.

use crate::ast::*;
use crate::types::Lang;
use std::fmt::Write as _;

/// A callback consulted at each DO statement; a returned reason is
/// printed as a `!$PAR SERIAL <reason>` comment line above the loop.
pub type SerialNote<'a> = &'a dyn Fn(StmtId) -> Option<String>;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    print_program_annotated(p, &|_| None)
}

/// Renders a whole program with structured serial-reason comments:
/// for each DO statement where `note` returns a reason, a
/// `!$PAR SERIAL <reason>` line precedes the loop. The parser treats
/// these lines as explanatory comments, so annotated output still
/// round-trips.
pub fn print_program_annotated(p: &Program, note: SerialNote) -> String {
    let mut out = String::new();
    for u in &p.units {
        print_unit_annotated(u, note, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one unit.
pub fn print_unit(u: &Unit, out: &mut String) {
    print_unit_annotated(u, &|_| None, out)
}

fn print_unit_annotated(u: &Unit, note: SerialNote, out: &mut String) {
    if u.lang == Lang::C {
        out.push_str("!LANG C\n");
    }
    match u.kind {
        UnitKind::Main => {
            let _ = writeln!(out, "PROGRAM {}", u.name);
        }
        UnitKind::Subroutine => {
            let _ = writeln!(out, "SUBROUTINE {}({})", u.name, u.formals.join(", "));
        }
        UnitKind::Function => {
            let _ = writeln!(out, "FUNCTION {}({})", u.name, u.formals.join(", "));
        }
    }
    for d in &u.decls {
        print_decl(d, out);
    }
    print_block(&u.body, 1, note, out);
    out.push_str("END\n");
}

fn print_decl(d: &Decl, out: &mut String) {
    match d {
        Decl::Type { ty, names } => {
            let _ = writeln!(out, "  {} {}", ty, decl_names(names));
        }
        Decl::Dimension { names } => {
            let _ = writeln!(out, "  DIMENSION {}", decl_names(names));
        }
        Decl::Common { block, names } => {
            let _ = writeln!(out, "  COMMON /{}/ {}", block, decl_names(names));
        }
        Decl::Equivalence { groups } => {
            let gs: Vec<String> = groups
                .iter()
                .map(|g| {
                    let refs: Vec<String> = g
                        .iter()
                        .map(|r| {
                            if r.subs.is_empty() {
                                r.name.clone()
                            } else {
                                format!("{}({})", r.name, exprs(&r.subs))
                            }
                        })
                        .collect();
                    format!("({})", refs.join(", "))
                })
                .collect();
            let _ = writeln!(out, "  EQUIVALENCE {}", gs.join(", "));
        }
        Decl::Parameter { defs } => {
            let ds: Vec<String> = defs
                .iter()
                .map(|(n, e)| format!("{} = {}", n, expr(e)))
                .collect();
            let _ = writeln!(out, "  PARAMETER ({})", ds.join(", "));
        }
        Decl::External { names } => {
            let _ = writeln!(out, "  EXTERNAL {}", names.join(", "));
        }
        Decl::Data { items } => {
            let is: Vec<String> = items
                .iter()
                .map(|i| {
                    let target = if i.subs.is_empty() {
                        i.name.clone()
                    } else {
                        format!("{}({})", i.name, exprs(&i.subs))
                    };
                    let vals: Vec<String> = i
                        .values
                        .iter()
                        .map(|(rep, lit)| {
                            let l = literal(lit);
                            if *rep == 1 {
                                l
                            } else {
                                format!("{}*{}", rep, l)
                            }
                        })
                        .collect();
                    format!("{} /{}/", target, vals.join(", "))
                })
                .collect();
            let _ = writeln!(out, "  DATA {}", is.join(", "));
        }
    }
}

fn literal(l: &Literal) -> String {
    match l {
        Literal::Int(v) => v.to_string(),
        Literal::Real(v) => real(*v),
        Literal::Logical(b) => if *b { ".TRUE." } else { ".FALSE." }.to_string(),
    }
}

fn decl_names(names: &[DeclName]) -> String {
    names
        .iter()
        .map(|n| {
            if n.dims.is_empty() {
                n.name.clone()
            } else {
                let ds: Vec<String> = n.dims.iter().map(dim_spec).collect();
                format!("{}({})", n.name, ds.join(", "))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn dim_spec(d: &DimSpec) -> String {
    match (&d.lo, &d.hi) {
        (None, None) => "*".to_string(),
        (None, Some(hi)) => expr(hi),
        (Some(lo), None) => format!("{}:*", expr(lo)),
        (Some(lo), Some(hi)) => format!("{}:{}", expr(lo), expr(hi)),
    }
}

fn print_block(b: &Block, depth: usize, note: SerialNote, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, note, out);
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(s: &Stmt, depth: usize, note: SerialNote, out: &mut String) {
    let label_prefix = |out: &mut String| {
        if let Some(l) = s.label {
            let _ = write!(out, "{} ", l);
        }
    };
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            indent(depth, out);
            label_prefix(out);
            let _ = writeln!(out, "{} = {}", expr(lhs), expr(rhs));
        }
        StmtKind::If { arms, else_blk } => {
            indent(depth, out);
            label_prefix(out);
            for (i, (cond, body)) in arms.iter().enumerate() {
                if i == 0 {
                    let _ = writeln!(out, "IF ({}) THEN", expr(cond));
                } else {
                    indent(depth, out);
                    let _ = writeln!(out, "ELSE IF ({}) THEN", expr(cond));
                }
                print_block(body, depth + 1, note, out);
            }
            if let Some(b) = else_blk {
                indent(depth, out);
                out.push_str("ELSE\n");
                print_block(b, depth + 1, note, out);
            }
            indent(depth, out);
            out.push_str("ENDIF\n");
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            omp,
            auto_par,
            target,
        } => {
            if let Some(reason) = note(s.id) {
                indent(depth, out);
                let _ = writeln!(out, "!$PAR SERIAL {}", reason);
            }
            if let Some(t) = target {
                indent(depth, out);
                let _ = writeln!(out, "!$TARGET {}", t);
            }
            if let Some(d) = omp {
                indent(depth, out);
                let _ = writeln!(out, "!$OMP PARALLEL DO{}", directive_clauses(d));
            }
            if let Some(d) = auto_par {
                indent(depth, out);
                let _ = writeln!(out, "!$PAR DO{}", par_clauses(d));
            }
            indent(depth, out);
            label_prefix(out);
            let _ = write!(out, "DO {} = {}, {}", var, expr(lo), expr(hi));
            if let Some(st) = step {
                let _ = write!(out, ", {}", expr(st));
            }
            out.push('\n');
            print_block(body, depth + 1, note, out);
            indent(depth, out);
            out.push_str("ENDDO\n");
        }
        StmtKind::DoWhile { cond, body } => {
            indent(depth, out);
            label_prefix(out);
            let _ = writeln!(out, "DO WHILE ({})", expr(cond));
            print_block(body, depth + 1, note, out);
            indent(depth, out);
            out.push_str("ENDDO\n");
        }
        StmtKind::Call { name, args } => {
            indent(depth, out);
            label_prefix(out);
            if args.is_empty() {
                let _ = writeln!(out, "CALL {}", name);
            } else {
                let _ = writeln!(out, "CALL {}({})", name, exprs(args));
            }
        }
        StmtKind::Return => {
            indent(depth, out);
            label_prefix(out);
            out.push_str("RETURN\n");
        }
        StmtKind::Stop => {
            indent(depth, out);
            label_prefix(out);
            out.push_str("STOP\n");
        }
        StmtKind::Continue => {
            indent(depth, out);
            label_prefix(out);
            out.push_str("CONTINUE\n");
        }
        StmtKind::Goto(l) => {
            indent(depth, out);
            label_prefix(out);
            let _ = writeln!(out, "GOTO {}", l);
        }
        StmtKind::Read { items } => {
            indent(depth, out);
            label_prefix(out);
            let _ = writeln!(out, "READ(*, *) {}", exprs(items));
        }
        StmtKind::Write { items } => {
            indent(depth, out);
            label_prefix(out);
            let _ = writeln!(out, "WRITE(*, *) {}", exprs(items));
        }
    }
}

fn directive_clauses(d: &LoopDirective) -> String {
    let mut s = String::new();
    if !d.private.is_empty() {
        let _ = write!(s, " PRIVATE({})", d.private.join(", "));
    }
    for (op, v) in &d.reductions {
        let _ = write!(s, " REDUCTION({}:{})", op, v);
    }
    s
}

/// Full clause set for compiler-emitted `!$PAR DO`; default-valued
/// clauses are omitted so output stays minimal and round-trips.
fn par_clauses(d: &LoopDirective) -> String {
    let mut s = String::new();
    if d.schedule != Schedule::Static {
        let _ = write!(s, " SCHEDULE({})", d.schedule);
    }
    if d.collapse > 1 {
        let _ = write!(s, " COLLAPSE({})", d.collapse);
    }
    if !d.private.is_empty() {
        let _ = write!(s, " PRIVATE({})", d.private.join(", "));
    }
    for (op, v) in &d.reductions {
        let _ = write!(s, " REDUCTION({}:{})", op, v);
    }
    if d.speculative {
        s.push_str(" SPECULATIVE");
    }
    if let Some(ws) = &d.writes {
        let _ = write!(s, " WRITES({})", ws.join(", "));
    }
    s
}

fn exprs(es: &[Expr]) -> String {
    es.iter().map(expr).collect::<Vec<_>>().join(", ")
}

fn real(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        // Exponent form survives round-trips exactly enough for tests.
        format!("{:E}", v)
    }
}

/// Renders one expression with minimal parenthesization.
pub fn expr(e: &Expr) -> String {
    prec_expr(e, 0)
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Pow => 6,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => " + ",
        BinOp::Sub => " - ",
        BinOp::Mul => " * ",
        BinOp::Div => " / ",
        BinOp::Pow => " ** ",
        BinOp::Eq => " .EQ. ",
        BinOp::Ne => " .NE. ",
        BinOp::Lt => " .LT. ",
        BinOp::Le => " .LE. ",
        BinOp::Gt => " .GT. ",
        BinOp::Ge => " .GE. ",
        BinOp::And => " .AND. ",
        BinOp::Or => " .OR. ",
    }
}

fn prec_expr(e: &Expr, min_prec: u8) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("({})", v)
            } else {
                v.to_string()
            }
        }
        Expr::Real(v) => {
            if *v < 0.0 {
                format!("({})", real(*v))
            } else {
                real(*v)
            }
        }
        Expr::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Expr::Logical(b) => if *b { ".TRUE." } else { ".FALSE." }.to_string(),
        Expr::Name(n) => n.clone(),
        Expr::Sub { name, args } | Expr::CallF { name, args } => {
            format!("{}({})", name, exprs(args))
        }
        Expr::Index { name, subs } => format!("{}({})", name, exprs(subs)),
        Expr::Bin(op, l, r) => {
            let p = prec_of(*op);
            // Left-associative except **; give the right child a higher
            // floor so re-parsing groups identically.
            let (lp, rp) = if *op == BinOp::Pow { (p + 1, p) } else { (p, p + 1) };
            let s = format!("{}{}{}", prec_expr(l, lp), op_str(*op), prec_expr(r, rp));
            if p < min_prec {
                format!("({})", s)
            } else {
                s
            }
        }
        Expr::Un(UnOp::Neg, i) => {
            let s = format!("-{}", prec_expr(i, 5));
            if min_prec > 4 {
                format!("({})", s)
            } else {
                s
            }
        }
        Expr::Un(UnOp::Not, i) => format!(".NOT. {}", prec_expr(i, 3)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n--- printed ---\n{}", e, printed));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "print->parse->print not stable");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("PROGRAM P\nX = 1 + 2 * 3\nEND\n");
    }

    #[test]
    fn roundtrip_full_unit() {
        roundtrip(
            "SUBROUTINE STAK(OTRA, RA, SA, NTRI, NTRO)\n\
             INTEGER NTRI, NTRO\n\
             REAL OTRA(*), RA(*), SA(*)\n\
             COMMON /CTRL/ NGATH, NSAMP\n\
             !$TARGET STAK_MAIN\n\
             !$OMP PARALLEL DO PRIVATE(T) REDUCTION(+:S)\n\
             DO I = 1, NTRI\n\
             T = OTRA(I)\n\
             S = S + T\n\
             IF (T .GT. 0.0) THEN\n\
             RA(I) = T\n\
             ELSE\n\
             RA(I) = -T\n\
             ENDIF\n\
             ENDDO\n\
             RETURN\n\
             END\n",
        );
    }

    #[test]
    fn roundtrip_precedence() {
        roundtrip("PROGRAM P\nX = (A + B) * C - -D ** 2\nL = A .LT. B .AND. .NOT. (C .GT. D)\nEND\n");
    }

    #[test]
    fn roundtrip_declarations() {
        roundtrip(
            "PROGRAM P\nPARAMETER (N = 8)\nREAL A(N, 0:N), B(10)\nEQUIVALENCE (A(1, 0), B(1))\nDATA B /10*0.0/\nEND\n",
        );
    }

    #[test]
    fn roundtrip_par_directive() {
        roundtrip(
            "PROGRAM P\n\
             !$PAR DO SCHEDULE(CYCLIC) COLLAPSE(2) PRIVATE(T) REDUCTION(+:S) SPECULATIVE WRITES(A)\n\
             DO I = 1, 10\n\
             DO J = 1, 10\n\
             T = 1.0\n\
             S = S + T\n\
             ENDDO\n\
             ENDDO\n\
             END\n",
        );
    }

    #[test]
    fn auto_par_prints_as_par_do_and_reparses() {
        let src = "PROGRAM P\n!$PAR DO PRIVATE(T)\nDO I = 1, 10\nT = 1.0\nA(I) = T\nENDDO\nEND\n";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("!$PAR DO PRIVATE(T)"), "{}", printed);
        let p2 = parse_program(&printed).unwrap();
        match (&p.units[0].body.stmts[0].kind, &p2.units[0].body.stmts[0].kind) {
            (StmtKind::Do { auto_par: a, .. }, StmtKind::Do { auto_par: b, .. }) => {
                assert_eq!(a, b);
                assert!(a.is_some());
            }
            _ => panic!("expected DO statements"),
        }
    }

    #[test]
    fn serial_note_prints_and_reparses() {
        let src = "PROGRAM P\nDO I = 1, 10\nS = S + A(I - 1)\nENDDO\nEND\n";
        let p = parse_program(src).unwrap();
        let printed =
            print_program_annotated(&p, &|_| Some("real dependence".to_string()));
        assert!(printed.contains("!$PAR SERIAL real dependence"), "{}", printed);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n{}", e, printed));
        // The comment has no AST effect: plain print of the reparse
        // matches plain print of the original.
        assert_eq!(print_program(&p2), print_program(&p));
    }

    #[test]
    fn negative_literals_parenthesized() {
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Name("X".into())),
            Box::new(Expr::Int(-2)),
        );
        assert_eq!(expr(&e), "X * (-2)");
    }

    #[test]
    fn pow_right_associates() {
        roundtrip("PROGRAM P\nX = A ** B ** C\nEND\n");
        let p = parse_program("PROGRAM P\nX = A ** B ** C\nEND\n").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("A ** B ** C"), "{}", printed);
    }
}

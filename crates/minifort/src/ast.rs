//! The MiniFort abstract syntax tree.
//!
//! The AST stays close to the source: declarations are kept as statements
//! (consumed by [`crate::resolve`]), `NAME(args)` parses as an ambiguous
//! [`Expr::Sub`] that resolution rewrites into [`Expr::Index`] (array
//! element) or [`Expr::CallF`] (function/intrinsic call) — the same
//! ambiguity a real Fortran front end faces.
//!
//! Every statement carries a program-unique [`StmtId`]; analyses key
//! their facts off these ids rather than pointers.

use crate::types::{Lang, Ty};
use std::fmt;

/// Program-unique statement identifier, assigned in parse order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Debug for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A whole multi-unit program (one "application suite").
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub units: Vec<Unit>,
    /// Total number of statement ids handed out (ids are `0..stmt_count`).
    pub stmt_count: u32,
}

impl Program {
    /// Finds a unit by (uppercase) name.
    pub fn unit(&self, name: &str) -> Option<&Unit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Mutable unit lookup.
    pub fn unit_mut(&mut self, name: &str) -> Option<&mut Unit> {
        self.units.iter_mut().find(|u| u.name == name)
    }

    /// Number of executable statements (declarations excluded), the
    /// denominator of the paper's Figure 2 "time per statement".
    pub fn executable_statements(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.stmts
                .iter()
                .map(|s| {
                    1 + match &s.kind {
                        StmtKind::If { arms, else_blk } => {
                            arms.iter().map(|(_, b)| count(b)).sum::<usize>()
                                + else_blk.as_ref().map_or(0, count)
                        }
                        StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        self.units.iter().map(|u| count(&u.body)).sum()
    }
}

/// Kinds of program units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    Main,
    Subroutine,
    Function,
}

/// One program unit: main program, subroutine, or function.
#[derive(Clone, Debug)]
pub struct Unit {
    pub name: String,
    pub kind: UnitKind,
    pub lang: Lang,
    pub formals: Vec<String>,
    pub decls: Vec<Decl>,
    pub body: Block,
    pub line: u32,
}

/// A declaration statement (kept raw until resolution).
#[derive(Clone, Debug)]
pub enum Decl {
    /// `INTEGER A, B(10)` — a type declaration, possibly with dimensions.
    Type { ty: Ty, names: Vec<DeclName> },
    /// `DIMENSION A(10, N)`.
    Dimension { names: Vec<DeclName> },
    /// `COMMON /BLK/ A, B(100)` (blank common uses block name `""`).
    Common { block: String, names: Vec<DeclName> },
    /// `EQUIVALENCE (A(1), B(5)), (X, Y)`.
    Equivalence { groups: Vec<Vec<EquivRef>> },
    /// `PARAMETER (N = 100, M = N*2)`.
    Parameter { defs: Vec<(String, Expr)> },
    /// `EXTERNAL FOO, BAR`.
    External { names: Vec<String> },
    /// `DATA X /1.0/, A /100*0.0/` — simple (non-implied-do) items.
    Data { items: Vec<DataItem> },
}

/// A declared name with optional dimension declarators.
#[derive(Clone, Debug)]
pub struct DeclName {
    pub name: String,
    pub dims: Vec<DimSpec>,
}

/// One dimension declarator: `hi`, `lo:hi`, or `*` (assumed size).
#[derive(Clone, Debug)]
pub struct DimSpec {
    /// Lower bound; defaults to 1 when absent in source.
    pub lo: Option<Expr>,
    /// Upper bound; `None` encodes `*`.
    pub hi: Option<Expr>,
}

/// A storage reference inside an EQUIVALENCE group.
#[derive(Clone, Debug)]
pub struct EquivRef {
    pub name: String,
    pub subs: Vec<Expr>,
}

/// One DATA item: a variable (optionally one constant subscript) and its
/// repeat-expanded initializers.
#[derive(Clone, Debug)]
pub struct DataItem {
    pub name: String,
    pub subs: Vec<Expr>,
    /// `(repeat, literal)` pairs.
    pub values: Vec<(u32, Literal)>,
}

/// Literal constants appearing in DATA.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    Int(i64),
    Real(f64),
    Logical(bool),
}

/// A statement sequence.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement with identity, source line, and optional numeric label.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub id: StmtId,
    pub line: u32,
    pub label: Option<u32>,
    pub kind: StmtKind,
}

/// Reduction operators recognized in `REDUCTION` clauses and by the
/// compiler's reduction recognition pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedOp {
    Add,
    Mul,
    Min,
    Max,
}

impl fmt::Display for RedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Min => "MIN",
            RedOp::Max => "MAX",
        };
        write!(f, "{}", s)
    }
}

/// Iteration-distribution schedule for a parallel loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous chunk of iterations per thread.
    #[default]
    Static,
    /// Round-robin: worker `w` of `n` runs iterations `w, w+n, ...` —
    /// balances loops whose per-iteration cost varies with the index.
    Cyclic,
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Static => write!(f, "STATIC"),
            Schedule::Cyclic => write!(f, "CYCLIC"),
        }
    }
}

/// A `PARALLEL DO` annotation: manual (`!$OMP`) or compiler-produced
/// (`!$PAR DO`).
#[derive(Clone, Debug, PartialEq)]
pub struct LoopDirective {
    /// Variables with a private copy per thread.
    pub private: Vec<String>,
    /// `(op, var)` reduction specifications.
    pub reductions: Vec<(RedOp, String)>,
    /// Iteration-distribution schedule (`SCHEDULE(...)` clause).
    pub schedule: Schedule,
    /// Number of perfectly nested loops proved parallel from this
    /// header inward (`COLLAPSE(n)` clause); 1 means just this loop.
    /// Advisory for the interpreter, which forks the outermost level.
    pub collapse: u8,
    /// Compiler-produced speculative directive: static analysis could
    /// not prove independence, so the runtime must validate the
    /// parallel execution (LRPD-style test) and roll back to serial on
    /// a detected conflict. Never set on manual `!$OMP` directives.
    pub speculative: bool,
    /// Compiler-produced write summary for speculative regions: names
    /// of the arrays and scalars the loop body may write. `Some` means
    /// the summary is exact, letting the runtime checkpoint only those
    /// cells for rollback; `None` (always the case for manual
    /// directives) forces a full checkpoint.
    pub writes: Option<Vec<String>>,
}

impl Default for LoopDirective {
    fn default() -> Self {
        LoopDirective {
            private: Vec::new(),
            reductions: Vec::new(),
            schedule: Schedule::Static,
            collapse: 1,
            speculative: false,
            writes: None,
        }
    }
}

/// Statement kinds.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum StmtKind {
    /// `lhs = rhs`; after resolution `lhs` is `Name` or `Index`.
    Assign { lhs: Expr, rhs: Expr },
    /// Block IF with `ELSE IF` arms and optional ELSE.
    If {
        arms: Vec<(Expr, Block)>,
        else_blk: Option<Block>,
    },
    /// Counted DO loop.
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Block,
        /// Manual `!$OMP PARALLEL DO` annotation, if any.
        omp: Option<LoopDirective>,
        /// Compiler-produced parallel annotation (filled by apar-core).
        auto_par: Option<LoopDirective>,
        /// `!$TARGET name` marker: a hand-identified target loop.
        target: Option<String>,
    },
    /// `DO WHILE (cond)`.
    DoWhile { cond: Expr, body: Block },
    /// `CALL NAME(args)`.
    Call { name: String, args: Vec<Expr> },
    Return,
    Stop,
    /// `CONTINUE` (no-op; labeled CONTINUEs terminate old-style DOs).
    Continue,
    Goto(u32),
    /// `READ(*,*) items` — opaque input; items are lvalues.
    Read { items: Vec<Expr> },
    /// `WRITE(*,*) items` — opaque output.
    Write { items: Vec<Expr> },
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for `.EQ.`-family operators (result LOGICAL).
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `.AND.` / `.OR.`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(i64),
    Real(f64),
    Str(String),
    Logical(bool),
    /// A bare name (scalar variable, or whole-array actual argument).
    Name(String),
    /// Unresolved `NAME(args)`: array element or function call.
    Sub { name: String, args: Vec<Expr> },
    /// Resolved array element reference.
    Index { name: String, subs: Vec<Expr> },
    /// Resolved function or intrinsic call.
    CallF { name: String, args: Vec<Expr> },
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// The base variable name of an lvalue (`Name` or `Index`).
    pub fn lvalue_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) | Expr::Index { name: n, .. } | Expr::Sub { name: n, .. } => Some(n),
            _ => None,
        }
    }

    /// Walks the expression tree, visiting every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Sub { args, .. } | Expr::CallF { name: _, args } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Index { subs, .. } => {
                for s in subs {
                    s.walk(f);
                }
            }
            Expr::Bin(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Un(_, e) => e.walk(f),
            _ => {}
        }
    }

    /// Maps the expression bottom-up.
    pub fn map(&self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let mapped = match self {
            Expr::Sub { name, args } => Expr::Sub {
                name: name.clone(),
                args: args.iter().map(|a| a.map(f)).collect(),
            },
            Expr::CallF { name, args } => Expr::CallF {
                name: name.clone(),
                args: args.iter().map(|a| a.map(f)).collect(),
            },
            Expr::Index { name, subs } => Expr::Index {
                name: name.clone(),
                subs: subs.iter().map(|s| s.map(f)).collect(),
            },
            Expr::Bin(op, l, r) => Expr::Bin(*op, Box::new(l.map(f)), Box::new(r.map(f))),
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.map(f))),
            other => other.clone(),
        };
        f(mapped)
    }
}

impl Block {
    /// Visits every statement in the block, recursively (pre-order).
    pub fn walk_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.stmts {
            f(s);
            match &s.kind {
                StmtKind::If { arms, else_blk } => {
                    for (_, b) in arms {
                        b.walk_stmts(f);
                    }
                    if let Some(b) = else_blk {
                        b.walk_stmts(f);
                    }
                }
                StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                    body.walk_stmts(f);
                }
                _ => {}
            }
        }
    }

    /// Mutable pre-order walk.
    pub fn walk_stmts_mut(&mut self, f: &mut impl FnMut(&mut Stmt)) {
        for s in &mut self.stmts {
            f(s);
            match &mut s.kind {
                StmtKind::If { arms, else_blk } => {
                    for (_, b) in arms {
                        b.walk_stmts_mut(f);
                    }
                    if let Some(b) = else_blk {
                        b.walk_stmts_mut(f);
                    }
                }
                StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                    body.walk_stmts_mut(f);
                }
                _ => {}
            }
        }
    }
}

impl Unit {
    /// All `!$TARGET` names in this unit, in source order.
    pub fn target_loops(&self) -> Vec<(String, StmtId)> {
        let mut out = Vec::new();
        self.body.walk_stmts(&mut |s| {
            if let StmtKind::Do {
                target: Some(t), ..
            } = &s.kind
            {
                out.push((t.clone(), s.id));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_stmt(id: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId(id),
            line: 1,
            label: None,
            kind,
        }
    }

    #[test]
    fn executable_statement_count_recurses() {
        let inner = Block {
            stmts: vec![dummy_stmt(
                1,
                StmtKind::Assign {
                    lhs: Expr::Name("A".into()),
                    rhs: Expr::Int(1),
                },
            )],
        };
        let du = dummy_stmt(
            0,
            StmtKind::Do {
                var: "I".into(),
                lo: Expr::Int(1),
                hi: Expr::Int(10),
                step: None,
                body: inner,
                omp: None,
                auto_par: None,
                target: None,
            },
        );
        let prog = Program {
            units: vec![Unit {
                name: "MAIN".into(),
                kind: UnitKind::Main,
                lang: Lang::Fortran,
                formals: vec![],
                decls: vec![],
                body: Block { stmts: vec![du] },
                line: 1,
            }],
            stmt_count: 2,
        };
        assert_eq!(prog.executable_statements(), 2);
    }

    #[test]
    fn expr_walk_and_map() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Name("I".into())),
            Box::new(Expr::Int(1)),
        );
        let mut names = 0;
        e.walk(&mut |x| {
            if matches!(x, Expr::Name(_)) {
                names += 1;
            }
        });
        assert_eq!(names, 1);
        let doubled = e.map(&mut |x| match x {
            Expr::Int(k) => Expr::Int(k * 2),
            other => other,
        });
        assert_eq!(
            doubled,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Name("I".into())),
                Box::new(Expr::Int(2))
            )
        );
    }
}

//! Name resolution: symbol tables, storage layout, and disambiguation of
//! `NAME(args)` into array references vs. calls.
//!
//! Resolution is what turns the parsed surface syntax into a program the
//! analyses can reason about:
//!
//! 1. PARAMETER constants are evaluated (in order, so later ones may use
//!    earlier ones).
//! 2. Every name receives a type (declared or implicit) and a kind
//!    (scalar, array, parameter, routine).
//! 3. COMMON blocks are laid out word by word, and EQUIVALENCE groups are
//!    merged with a union-find over `(area, offset)` so overlapping
//!    storage is explicit — the substrate of the paper's aliasing
//!    hindrance (§2.3).
//! 4. Ambiguous `Expr::Sub` nodes are rewritten to [`Expr::Index`] or
//!    [`Expr::CallF`].

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::diag::ResolveError;
use crate::symtab::{
    as_const_int, ArrayShape, ConstVal, DataInit, ResolvedDim, Storage, Symbol, SymbolKind,
    SymbolTable,
};
use crate::types::Ty;

/// Intrinsic function names recognized by the frontend and runtime.
pub const INTRINSICS: &[&str] = &[
    "ABS", "IABS", "SQRT", "SIN", "COS", "TAN", "ATAN", "ATAN2", "ASIN", "ACOS", "EXP", "LOG",
    "LOG10", "MOD", "AMOD", "MIN", "MAX", "MIN0", "MAX0", "AMIN1", "AMAX1", "INT", "IFIX", "NINT",
    "REAL", "FLOAT", "SNGL", "DBLE", "CMPLX", "CONJG", "AIMAG", "SIGN", "ISIGN",
];

/// True if `name` is a Fortran intrinsic MiniFort supports.
pub fn is_intrinsic(name: &str) -> bool {
    INTRINSICS.contains(&name)
}

/// A fully resolved program: AST (with `Sub` nodes rewritten) plus
/// per-unit symbol tables and program-wide COMMON block sizes.
#[derive(Clone, Debug)]
pub struct ResolvedProgram {
    pub program: Program,
    pub tables: HashMap<String, SymbolTable>,
    /// Maximum extent (words) of each COMMON block across all units.
    pub common_sizes: HashMap<String, i64>,
}

impl ResolvedProgram {
    /// Symbol table of a unit.
    pub fn table(&self, unit: &str) -> &SymbolTable {
        &self.tables[unit]
    }

    /// The unit AST by name.
    pub fn unit(&self, name: &str) -> Option<&Unit> {
        self.program.unit(name)
    }

    /// Names of all defined units.
    pub fn unit_names(&self) -> Vec<&str> {
        self.program.units.iter().map(|u| u.name.as_str()).collect()
    }

    /// The main program unit.
    pub fn main_unit(&self) -> Option<&Unit> {
        self.program.units.iter().find(|u| u.kind == UnitKind::Main)
    }
}

/// Resolves a parsed program.
pub fn resolve(mut prog: Program) -> Result<ResolvedProgram, ResolveError> {
    let defined_units: HashSet<String> = prog.units.iter().map(|u| u.name.clone()).collect();
    let mut tables = HashMap::new();
    let mut common_sizes: HashMap<String, i64> = HashMap::new();

    for unit in &mut prog.units {
        let table = resolve_unit(unit, &defined_units)?;
        for (blk, sz) in table.common_blocks() {
            let e = common_sizes.entry(blk).or_insert(0);
            if sz > *e {
                *e = sz;
            }
        }
        tables.insert(unit.name.clone(), table);
    }

    Ok(ResolvedProgram {
        program: prog,
        tables,
        common_sizes,
    })
}

/// Resolves with recovery: a unit that fails to resolve is dropped from
/// the program and recorded as a [`ResolveError`], while every other
/// unit resolves normally. Calls into a dropped unit degrade to
/// unknown-routine calls, which the analyses already treat
/// conservatively (opaque side effects).
pub fn resolve_recovering(mut prog: Program) -> (ResolvedProgram, Vec<ResolveError>) {
    let defined_units: HashSet<String> = prog.units.iter().map(|u| u.name.clone()).collect();
    let mut tables = HashMap::new();
    let mut common_sizes: HashMap<String, i64> = HashMap::new();
    let mut errors = Vec::new();
    let mut kept = Vec::with_capacity(prog.units.len());

    for mut unit in std::mem::take(&mut prog.units) {
        match resolve_unit(&mut unit, &defined_units) {
            Ok(table) => {
                for (blk, sz) in table.common_blocks() {
                    let e = common_sizes.entry(blk).or_insert(0);
                    if sz > *e {
                        *e = sz;
                    }
                }
                tables.insert(unit.name.clone(), table);
                kept.push(unit);
            }
            Err(e) => errors.push(e),
        }
    }
    prog.units = kept;

    (
        ResolvedProgram {
            program: prog,
            tables,
            common_sizes,
        },
        errors,
    )
}

fn err(unit: &str, msg: impl Into<String>) -> ResolveError {
    ResolveError {
        unit: unit.to_string(),
        msg: msg.into(),
    }
}

fn resolve_unit(unit: &mut Unit, defined: &HashSet<String>) -> Result<SymbolTable, ResolveError> {
    let uname = unit.name.clone();
    let mut table = SymbolTable::new(&uname);

    // ---- 1. PARAMETER constants --------------------------------------
    let mut params: HashMap<String, ConstVal> = HashMap::new();
    for d in &unit.decls {
        if let Decl::Parameter { defs } = d {
            for (name, e) in defs {
                let v = eval_const(e, &params)
                    .ok_or_else(|| err(&uname, format!("PARAMETER {} is not constant", name)))?;
                params.insert(name.clone(), v);
            }
        }
    }

    // ---- 2. Declared types / dimensions ------------------------------
    let mut decl_ty: HashMap<String, Ty> = HashMap::new();
    let mut decl_dims: HashMap<String, Vec<DimSpec>> = HashMap::new();
    let mut externals: HashSet<String> = HashSet::new();
    for d in &unit.decls {
        match d {
            Decl::Type { ty, names } => {
                for n in names {
                    decl_ty.insert(n.name.clone(), *ty);
                    if !n.dims.is_empty() {
                        decl_dims.insert(n.name.clone(), n.dims.clone());
                    }
                }
            }
            Decl::Dimension { names } | Decl::Common { names, .. } => {
                for n in names {
                    if !n.dims.is_empty() {
                        decl_dims.insert(n.name.clone(), n.dims.clone());
                    }
                }
            }
            Decl::External { names } => {
                externals.extend(names.iter().cloned());
            }
            _ => {}
        }
    }

    let ty_of = |name: &str| -> Ty {
        decl_ty
            .get(name)
            .copied()
            .unwrap_or_else(|| Ty::implicit_for(name))
    };

    // Fold PARAMETER names and constant arithmetic inside dimension
    // declarators.
    let fold_dim = |spec: &DimSpec| -> ResolvedDim {
        let fold = |e: &Expr| fold_params(e, &params);
        ResolvedDim {
            lo: spec.lo.as_ref().map(&fold).unwrap_or(Expr::Int(1)),
            hi: spec.hi.as_ref().map(&fold),
        }
    };

    let formal_pos: HashMap<&str, usize> = unit
        .formals
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // ---- 3. Seed symbols for params, externals, declared names -------
    for (name, v) in &params {
        table.insert(Symbol {
            name: name.clone(),
            ty: match v {
                ConstVal::Int(_) => Ty::Integer,
                ConstVal::Real(_) => Ty::Real,
                ConstVal::Logical(_) => Ty::Logical,
            },
            kind: SymbolKind::Param(*v),
            storage: Storage::None,
        });
    }
    for name in &externals {
        table.insert(Symbol {
            name: name.clone(),
            ty: ty_of(name),
            kind: SymbolKind::Routine,
            storage: Storage::None,
        });
    }

    let declare_data_symbol = |table: &mut SymbolTable, name: &str| {
        if table.get(name).is_some() {
            return;
        }
        let kind = match decl_dims.get(name) {
            Some(dims) => SymbolKind::Array(ArrayShape {
                dims: dims.iter().map(fold_dim).collect(),
            }),
            None => SymbolKind::Scalar,
        };
        let storage = match formal_pos.get(name) {
            Some(&p) => Storage::Formal { position: p },
            None => Storage::Local { area: 0, offset: 0 }, // placeholder
        };
        table.insert(Symbol {
            name: name.to_string(),
            ty: ty_of(name),
            kind,
            storage,
        });
    };

    // Everything with an explicit declaration, including undimensioned
    // COMMON members.
    let common_names: Vec<String> = unit
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Common { names, .. } => {
                Some(names.iter().map(|n| n.name.clone()).collect::<Vec<_>>())
            }
            _ => None,
        })
        .flatten()
        .collect();
    for name in decl_ty
        .keys()
        .chain(decl_dims.keys())
        .chain(common_names.iter())
    {
        if params.contains_key(name) || externals.contains(name) {
            continue;
        }
        declare_data_symbol(&mut table, name);
    }
    // Formals, even if undeclared.
    for f in &unit.formals {
        declare_data_symbol(&mut table, f);
    }
    // A function's name is its (scalar) return-value variable.
    if unit.kind == UnitKind::Function {
        declare_data_symbol(&mut table, &uname);
    }

    // ---- 4. Names discovered in the body ------------------------------
    let mut called: HashSet<String> = HashSet::new();
    let mut used_names: Vec<String> = Vec::new();
    unit.body.walk_stmts(&mut |s| {
        if let StmtKind::Call { name, .. } = &s.kind {
            called.insert(name.clone());
        }
        if let StmtKind::Do { var, .. } = &s.kind {
            used_names.push(var.clone());
        }
        for_each_expr(s, &mut |e| {
            if let Expr::Name(n) | Expr::Sub { name: n, .. } = e {
                used_names.push(n.clone());
            }
        });
    });
    for name in &used_names {
        if table.get(name).is_none() && !called.contains(name) {
            // `NAME(args)` on an undeclared name is a call (function or
            // intrinsic); a bare undeclared name is an implicit scalar.
            // Decide below during the rewrite; here seed scalars only for
            // bare uses. Sub uses of undeclared names become calls.
            declare_data_symbol(&mut table, name);
        }
    }
    // But a name used ONLY as `NAME(args)` where NAME is not an array
    // must be a routine, not a scalar: fix those up.
    let mut sub_only: HashMap<String, (bool, bool)> = HashMap::new(); // name -> (has_sub_use, has_bare_use)
    unit.body.walk_stmts(&mut |s| {
        for_each_expr(s, &mut |e| match e {
            Expr::Sub { name, .. } => sub_only.entry(name.clone()).or_default().0 = true,
            Expr::Name(n) => sub_only.entry(n.clone()).or_default().1 = true,
            _ => {}
        });
    });
    for (name, (has_sub, _has_bare)) in &sub_only {
        if *has_sub && !table.is_array(name) && !params.contains_key(name) {
            // Function/intrinsic call.
            table.insert(Symbol {
                name: name.clone(),
                ty: ty_of(name),
                kind: SymbolKind::Routine,
                storage: Storage::None,
            });
        }
    }
    // ... unless it is this function's own name (recursive value refs are
    // not supported; function name stays the return variable).
    if unit.kind == UnitKind::Function {
        if let Some(s) = table.get_mut(&uname) {
            if matches!(s.kind, SymbolKind::Routine) {
                s.kind = SymbolKind::Scalar;
                s.storage = Storage::Local { area: 0, offset: 0 };
            }
        }
    }
    for name in &called {
        if table.get(name).is_none() {
            table.insert(Symbol {
                name: name.clone(),
                ty: ty_of(name),
                kind: SymbolKind::Routine,
                storage: Storage::None,
            });
        }
    }

    // ---- 5. COMMON layout ---------------------------------------------
    for d in &unit.decls {
        if let Decl::Common { block, names } = d {
            let mut offset: i64 = 0;
            for n in names {
                let sym = table
                    .get_mut(&n.name)
                    .ok_or_else(|| err(&uname, format!("COMMON member {} unknown", n.name)))?;
                if matches!(sym.storage, Storage::Formal { .. }) {
                    return Err(err(
                        &uname,
                        format!("dummy argument {} cannot be in COMMON", n.name),
                    ));
                }
                sym.storage = Storage::Common {
                    block: block.clone(),
                    offset,
                };
                let sz = sym.size_words().ok_or_else(|| {
                    err(
                        &uname,
                        format!("COMMON member {} must have constant size", n.name),
                    )
                })?;
                offset += sz;
            }
        }
    }

    // ---- 6. EQUIVALENCE union-find -------------------------------------
    let mut uf = UnionFind::default();
    for d in &unit.decls {
        if let Decl::Equivalence { groups } = d {
            for group in groups {
                let mut anchor: Option<(String, i64)> = None;
                for r in group {
                    let sym = table.get(&r.name).ok_or_else(|| {
                        err(&uname, format!("EQUIVALENCE member {} unknown", r.name))
                    })?;
                    if matches!(sym.storage, Storage::Formal { .. } | Storage::None) {
                        return Err(err(
                            &uname,
                            format!("{} cannot appear in EQUIVALENCE", r.name),
                        ));
                    }
                    let off = equiv_offset_words(sym, &r.subs, &params)
                        .ok_or_else(|| err(&uname, "EQUIVALENCE subscripts must be constant"))?;
                    match &anchor {
                        None => anchor = Some((r.name.clone(), off)),
                        Some((a_name, a_off)) => {
                            uf.union(a_name, *a_off, &r.name, off)
                                .map_err(|m| err(&uname, m))?;
                        }
                    }
                }
            }
        }
    }

    // Resolve union components: anchor to COMMON when one member lives
    // there, otherwise allocate a shared local area. Components are
    // processed in sorted order so area numbering is deterministic.
    let mut area_sizes: Vec<i64> = Vec::new();
    let components = uf.components();
    let mut roots: Vec<&String> = components.keys().collect();
    roots.sort();
    let mut equivalenced: HashSet<String> = HashSet::new();
    for members in roots.iter().map(|r| &components[*r]) {
        // members: (name, delta)
        let mut common_anchor: Option<(String, i64, i64)> = None; // block, common_off, delta
        for (name, delta) in members {
            equivalenced.insert(name.clone());
            if let Some(Storage::Common { block, offset }) =
                table.get(name).map(|s| s.storage.clone())
            {
                match &common_anchor {
                    None => common_anchor = Some((block, offset, *delta)),
                    Some((b, o, d)) => {
                        // Consistency: both anchors must agree.
                        if *b != block || offset - delta != o - d {
                            return Err(err(&uname, "EQUIVALENCE conflicts with COMMON layout"));
                        }
                    }
                }
            }
        }
        match common_anchor {
            Some((block, c_off, c_delta)) => {
                for (name, delta) in members {
                    let sym = table
                        .get_mut(name)
                        .ok_or_else(|| err(&uname, format!("EQUIVALENCE member {} lost", name)))?;
                    sym.storage = Storage::Common {
                        block: block.clone(),
                        offset: c_off - c_delta + delta,
                    };
                    if c_off - c_delta + delta < 0 {
                        return Err(err(
                            &uname,
                            format!("EQUIVALENCE extends {} before COMMON start", name),
                        ));
                    }
                }
            }
            None => {
                let min_delta = members.iter().map(|(_, d)| *d).min().unwrap_or(0);
                let area = area_sizes.len() as u32;
                let mut size = 0i64;
                for (name, delta) in members {
                    let sym = table
                        .get_mut(name)
                        .ok_or_else(|| err(&uname, format!("EQUIVALENCE member {} lost", name)))?;
                    let off = delta - min_delta;
                    sym.storage = Storage::Local { area, offset: off };
                    let sz = sym.size_words().ok_or_else(|| {
                        err(
                            &uname,
                            format!("{} in EQUIVALENCE must be constant-size", name),
                        )
                    })?;
                    size = size.max(off + sz);
                }
                area_sizes.push(size);
            }
        }
    }

    // ---- 7. Remaining locals get their own areas (sorted: area ids are
    // deterministic) --------------------------------------------------------
    let mut names: Vec<String> = table.iter().map(|s| s.name.clone()).collect();
    names.sort();
    for name in names {
        let sym = table
            .get(&name)
            .ok_or_else(|| err(&uname, format!("symbol {} lost during layout", name)))?;
        let is_local_data = matches!(sym.storage, Storage::Local { .. })
            && matches!(sym.kind, SymbolKind::Scalar | SymbolKind::Array(_))
            && !equivalenced.contains(&name);
        if is_local_data {
            let size = match sym.size_words() {
                Some(s) => s,
                None => {
                    return Err(err(
                        &uname,
                        format!("local array {} must have constant shape", name),
                    ))
                }
            };
            let area = area_sizes.len() as u32;
            area_sizes.push(size);
            table
                .get_mut(&name)
                .ok_or_else(|| err(&uname, format!("symbol {} lost during layout", name)))?
                .storage = Storage::Local { area, offset: 0 };
        }
    }
    table.area_sizes = area_sizes;

    // ---- 8. DATA initializations ----------------------------------------
    for d in &unit.decls {
        if let Decl::Data { items } = d {
            for item in items {
                let sym = table
                    .get(&item.name)
                    .ok_or_else(|| err(&uname, format!("DATA target {} unknown", item.name)))?;
                let start_elem = if item.subs.is_empty() {
                    0
                } else {
                    elem_index(sym, &item.subs, &params)
                        .ok_or_else(|| err(&uname, "DATA subscripts must be constant"))?
                };
                table.data.push(DataInit {
                    name: item.name.clone(),
                    start_elem,
                    values: item.values.clone(),
                });
            }
        }
    }

    // ---- 9. Rewrite Sub nodes -------------------------------------------
    let is_array: HashSet<String> = table
        .iter()
        .filter(|s| matches!(s.kind, SymbolKind::Array(_)))
        .map(|s| s.name.clone())
        .collect();
    unit.body.walk_stmts_mut(&mut |s| {
        rewrite_stmt(s, &is_array);
    });
    let _ = defined; // defined-units set reserved for link checking

    Ok(table)
}

/// Applies `f` to every expression in a statement (not recursing into
/// nested statements — the statement walk handles those).
fn for_each_expr(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    let mut go = |e: &Expr| e.walk(f);
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            go(lhs);
            go(rhs);
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms {
                go(c);
            }
        }
        StmtKind::Do { lo, hi, step, .. } => {
            go(lo);
            go(hi);
            if let Some(st) = step {
                go(st);
            }
        }
        StmtKind::DoWhile { cond, .. } => go(cond),
        StmtKind::Call { args, .. } => {
            for a in args {
                go(a);
            }
        }
        StmtKind::Read { items } | StmtKind::Write { items } => {
            for i in items {
                go(i);
            }
        }
        _ => {}
    }
}

fn rewrite_stmt(s: &mut Stmt, is_array: &HashSet<String>) {
    let rw = |e: &Expr| -> Expr {
        e.map(&mut |x| match x {
            Expr::Sub { name, args } => {
                if is_array.contains(&name) {
                    Expr::Index { name, subs: args }
                } else {
                    Expr::CallF { name, args }
                }
            }
            other => other,
        })
    };
    match &mut s.kind {
        StmtKind::Assign { lhs, rhs } => {
            *lhs = rw(lhs);
            *rhs = rw(rhs);
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms {
                *c = rw(c);
            }
        }
        StmtKind::Do { lo, hi, step, .. } => {
            *lo = rw(lo);
            *hi = rw(hi);
            if let Some(st) = step {
                *st = rw(st);
            }
        }
        StmtKind::DoWhile { cond, .. } => *cond = rw(cond),
        StmtKind::Call { args, .. } => {
            for a in args {
                *a = rw(a);
            }
        }
        StmtKind::Read { items } | StmtKind::Write { items } => {
            for i in items {
                *i = rw(i);
            }
        }
        _ => {}
    }
}

/// Evaluates a constant expression over PARAMETER bindings.
pub fn eval_const(e: &Expr, params: &HashMap<String, ConstVal>) -> Option<ConstVal> {
    use ConstVal::*;
    Some(match e {
        Expr::Int(v) => Int(*v),
        Expr::Real(v) => Real(*v),
        Expr::Logical(b) => Logical(*b),
        Expr::Name(n) => *params.get(n)?,
        Expr::Un(UnOp::Neg, i) => match eval_const(i, params)? {
            Int(v) => Int(-v),
            Real(v) => Real(-v),
            Logical(_) => return None,
        },
        Expr::Un(UnOp::Not, i) => match eval_const(i, params)? {
            Logical(b) => Logical(!b),
            _ => return None,
        },
        Expr::Bin(op, l, r) => {
            let (a, b) = (eval_const(l, params)?, eval_const(r, params)?);
            match (a, b) {
                (Int(x), Int(y)) => match op {
                    BinOp::Add => Int(x.checked_add(y)?),
                    BinOp::Sub => Int(x.checked_sub(y)?),
                    BinOp::Mul => Int(x.checked_mul(y)?),
                    BinOp::Div => {
                        if y == 0 {
                            return None;
                        }
                        Int(x / y)
                    }
                    BinOp::Pow => Int(x.checked_pow(u32::try_from(y).ok()?)?),
                    _ => return None,
                },
                (x, y) => {
                    let xf = to_f(x)?;
                    let yf = to_f(y)?;
                    match op {
                        BinOp::Add => Real(xf + yf),
                        BinOp::Sub => Real(xf - yf),
                        BinOp::Mul => Real(xf * yf),
                        BinOp::Div => Real(xf / yf),
                        BinOp::Pow => Real(xf.powf(yf)),
                        _ => return None,
                    }
                }
            }
        }
        _ => return None,
    })
}

fn to_f(v: ConstVal) -> Option<f64> {
    match v {
        ConstVal::Int(x) => Some(x as f64),
        ConstVal::Real(x) => Some(x),
        ConstVal::Logical(_) => None,
    }
}

/// Replaces PARAMETER names by literals and folds constant arithmetic.
pub fn fold_params(e: &Expr, params: &HashMap<String, ConstVal>) -> Expr {
    let folded = e.map(&mut |x| match &x {
        Expr::Name(n) => match params.get(n) {
            Some(ConstVal::Int(v)) => Expr::Int(*v),
            Some(ConstVal::Real(v)) => Expr::Real(*v),
            Some(ConstVal::Logical(b)) => Expr::Logical(*b),
            None => x,
        },
        _ => x,
    });
    match as_const_int(&folded) {
        Some(v) => Expr::Int(v),
        None => folded,
    }
}

/// Word offset of an EQUIVALENCE reference within its symbol.
fn equiv_offset_words(
    sym: &Symbol,
    subs: &[Expr],
    params: &HashMap<String, ConstVal>,
) -> Option<i64> {
    if subs.is_empty() {
        return Some(0);
    }
    Some(elem_index(sym, subs, params)? * sym.ty.words())
}

/// 0-based linear element index of a constant subscript list
/// (column-major). A single subscript on a multi-dimensional array is a
/// linear element index, as in Fortran storage sequence association.
fn elem_index(sym: &Symbol, subs: &[Expr], params: &HashMap<String, ConstVal>) -> Option<i64> {
    let shape = sym.shape()?;
    let consts: Vec<i64> = subs
        .iter()
        .map(|e| match eval_const(e, params)? {
            ConstVal::Int(v) => Some(v),
            _ => None,
        })
        .collect::<Option<_>>()?;
    if consts.len() == 1 && shape.rank() != 1 {
        let lo = as_const_int(&shape.dims[0].lo).unwrap_or(1);
        return Some(consts[0] - lo);
    }
    if consts.len() != shape.rank() {
        return None;
    }
    let mut idx = 0i64;
    let mut stride = 1i64;
    for (k, d) in shape.dims.iter().enumerate() {
        let lo = as_const_int(&d.lo)?;
        idx += (consts[k] - lo) * stride;
        stride *= d.const_extent()?;
    }
    Some(idx)
}

/// Union-find over names with word offsets relative to component roots.
#[derive(Default)]
struct UnionFind {
    parent: HashMap<String, (String, i64)>, // name -> (parent, delta to parent)
}

impl UnionFind {
    fn find(&mut self, name: &str) -> (String, i64) {
        let Some((p, d)) = self.parent.get(name).cloned() else {
            self.parent.insert(name.to_string(), (name.to_string(), 0));
            return (name.to_string(), 0);
        };
        if p == name {
            return (p, 0);
        }
        let (root, pd) = self.find(&p);
        let total = d + pd;
        self.parent.insert(name.to_string(), (root.clone(), total));
        (root, total)
    }

    /// Records that element `(a base + off_a)` and `(b base + off_b)`
    /// share storage.
    fn union(&mut self, a: &str, off_a: i64, b: &str, off_b: i64) -> Result<(), String> {
        let (ra, da) = self.find(a);
        let (rb, db) = self.find(b);
        if ra == rb {
            if da + off_a != db + off_b {
                return Err(format!("inconsistent EQUIVALENCE between {} and {}", a, b));
            }
            return Ok(());
        }
        // Attach rb under ra such that b's base sits at (da + off_a - off_b).
        self.parent.insert(rb, (ra, da + off_a - off_b - db));
        Ok(())
    }

    /// Root -> members (name, delta-from-root).
    fn components(&mut self) -> HashMap<String, Vec<(String, i64)>> {
        let names: Vec<String> = self.parent.keys().cloned().collect();
        let mut out: HashMap<String, Vec<(String, i64)>> = HashMap::new();
        for n in names {
            let (root, delta) = self.find(&n);
            out.entry(root).or_default().push((n, delta));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn front(src: &str) -> ResolvedProgram {
        let p = parse_program(src).expect("parse");
        resolve(p).expect("resolve")
    }

    #[test]
    fn parameters_evaluate_in_order() {
        let rp = front("PROGRAM P\nPARAMETER (N = 10, M = N*2 + 1)\nEND\n");
        let t = rp.table("P");
        assert_eq!(t.param_val("N"), Some(ConstVal::Int(10)));
        assert_eq!(t.param_val("M"), Some(ConstVal::Int(21)));
    }

    #[test]
    fn implicit_typing_applies() {
        let rp = front("PROGRAM P\nX = 1.0\nKOUNT = 2\nEND\n");
        let t = rp.table("P");
        assert_eq!(t.type_of("X"), Ty::Real);
        assert_eq!(t.type_of("KOUNT"), Ty::Integer);
    }

    #[test]
    fn array_vs_call_disambiguation() {
        let rp =
            front("PROGRAM P\nREAL A(10)\nEXTERNAL G\nX = A(3) + F(3) + G(4) + SQRT(2.0)\nEND\n");
        let u = rp.unit("P").unwrap();
        let mut indexes = 0;
        let mut calls = 0;
        u.body.walk_stmts(&mut |s| {
            if let StmtKind::Assign { rhs, .. } = &s.kind {
                rhs.walk(&mut |e| match e {
                    Expr::Index { .. } => indexes += 1,
                    Expr::CallF { .. } => calls += 1,
                    _ => {}
                });
            }
        });
        assert_eq!(indexes, 1);
        assert_eq!(calls, 3);
    }

    #[test]
    fn common_layout_offsets() {
        let rp = front("PROGRAM P\nREAL A(100), Q\nINTEGER K\nCOMMON /BLK/ A, Q, K\nEND\n");
        let t = rp.table("P");
        assert_eq!(
            t.get("A").unwrap().storage,
            Storage::Common {
                block: "BLK".into(),
                offset: 0
            }
        );
        assert_eq!(
            t.get("Q").unwrap().storage,
            Storage::Common {
                block: "BLK".into(),
                offset: 100
            }
        );
        assert_eq!(
            t.get("K").unwrap().storage,
            Storage::Common {
                block: "BLK".into(),
                offset: 101
            }
        );
        assert_eq!(rp.common_sizes["BLK"], 102);
    }

    #[test]
    fn common_size_is_max_across_units() {
        let rp = front(
            "PROGRAM P\nREAL A(10)\nCOMMON /B/ A\nEND\nSUBROUTINE S\nREAL Z(50)\nCOMMON /B/ Z\nEND\n",
        );
        assert_eq!(rp.common_sizes["B"], 50);
    }

    #[test]
    fn equivalence_local_overlap() {
        let rp = front("PROGRAM P\nREAL A(10), B(10)\nEQUIVALENCE (A(1), B(5))\nEND\n");
        let t = rp.table("P");
        let (
            Storage::Local {
                area: aa,
                offset: ao,
            },
            Storage::Local {
                area: ba,
                offset: bo,
            },
        ) = (&t.get("A").unwrap().storage, &t.get("B").unwrap().storage)
        else {
            panic!("expected local storage");
        };
        assert_eq!(aa, ba, "same area after equivalence");
        // A(1) == B(5): A base + 0 == B base + 4.
        assert_eq!(ao - bo, 4);
        // Shared area spans B(1)..A(10) = 14 words.
        assert_eq!(t.area_sizes[*aa as usize], 14);
    }

    #[test]
    fn equivalence_into_common() {
        let rp =
            front("PROGRAM P\nREAL A(10), B(6)\nCOMMON /C/ A\nEQUIVALENCE (A(3), B(1))\nEND\n");
        let t = rp.table("P");
        assert_eq!(
            t.get("B").unwrap().storage,
            Storage::Common {
                block: "C".into(),
                offset: 2
            }
        );
        // B extends the block? B(6) ends at offset 8 < 10, so size 10.
        assert_eq!(rp.common_sizes["C"], 10);
    }

    #[test]
    fn inconsistent_equivalence_is_an_error() {
        let p = parse_program(
            "PROGRAM P\nREAL A(10), B(10)\nEQUIVALENCE (A(1), B(1)), (A(2), B(5))\nEND\n",
        )
        .unwrap();
        assert!(resolve(p).is_err());
    }

    #[test]
    fn formals_get_positions() {
        let rp = front("SUBROUTINE S(X, N, A)\nREAL A(N)\nEND\n");
        let t = rp.table("S");
        assert_eq!(t.get("X").unwrap().storage, Storage::Formal { position: 0 });
        assert_eq!(t.get("N").unwrap().storage, Storage::Formal { position: 1 });
        assert_eq!(t.get("A").unwrap().storage, Storage::Formal { position: 2 });
        // Adjustable dimension stays symbolic.
        let shape = t.get("A").unwrap().shape().unwrap();
        assert_eq!(shape.dims[0].hi, Some(Expr::Name("N".into())));
    }

    #[test]
    fn assumed_size_formal() {
        let rp = front("SUBROUTINE S(A)\nREAL A(*)\nEND\n");
        let t = rp.table("S");
        assert!(t.get("A").unwrap().shape().unwrap().assumed_size());
    }

    #[test]
    fn function_name_is_return_variable() {
        let rp = front("REAL FUNCTION NORM(X)\nNORM = X * 2.0\nEND\n");
        let t = rp.table("NORM");
        assert!(matches!(t.get("NORM").unwrap().kind, SymbolKind::Scalar));
        assert_eq!(t.type_of("NORM"), Ty::Real);
    }

    #[test]
    fn data_resolution() {
        let rp = front("PROGRAM P\nREAL A(10)\nDATA A /10*1.5/, A(3) /2.5/\nEND\n");
        let t = rp.table("P");
        assert_eq!(t.data.len(), 2);
        assert_eq!(t.data[0].start_elem, 0);
        assert_eq!(t.data[1].start_elem, 2);
    }

    #[test]
    fn dims_fold_parameters() {
        let rp = front("PROGRAM P\nPARAMETER (N = 4)\nREAL A(N, N*2)\nEND\n");
        let t = rp.table("P");
        let shape = t.get("A").unwrap().shape().unwrap();
        assert_eq!(shape.const_elems(), Some(32));
    }

    #[test]
    fn local_adjustable_array_is_error() {
        let p = parse_program("PROGRAM P\nREAL A(N)\nN = 5\nEND\n").unwrap();
        assert!(resolve(p).is_err());
    }

    #[test]
    fn recovering_resolve_drops_failing_unit_only() {
        // S has an inconsistent EQUIVALENCE; P and OK are fine.
        let p = parse_program(
            "PROGRAM P\nREAL A(10)\nCALL S(A)\nEND\nSUBROUTINE S(X)\nREAL A(10), B(10)\nEQUIVALENCE (A(1), B(1)), (A(2), B(5))\nEND\nSUBROUTINE OK(Y)\nY = 1.0\nEND\n",
        )
        .unwrap();
        let (rp, errs) = resolve_recovering(p);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].unit, "S");
        let names = rp.unit_names();
        assert_eq!(names, vec!["P", "OK"]);
        // The call into the dropped unit still resolves (as an unknown
        // routine) in the surviving caller.
        assert!(rp.table("P").get("S").is_some());
    }

    #[test]
    fn recovering_resolve_matches_strict_on_clean_input() {
        let src = "PROGRAM P\nREAL A(10)\nCOMMON /B/ A\nEND\nSUBROUTINE S\nREAL Z(50)\nCOMMON /B/ Z\nEND\n";
        let strict = front(src);
        let (rec, errs) = resolve_recovering(parse_program(src).unwrap());
        assert!(errs.is_empty());
        assert_eq!(strict.unit_names(), rec.unit_names());
        assert_eq!(strict.common_sizes, rec.common_sizes);
    }

    #[test]
    fn intrinsic_list() {
        assert!(is_intrinsic("SQRT"));
        assert!(is_intrinsic("CMPLX"));
        assert!(!is_intrinsic("M3FK"));
    }
}

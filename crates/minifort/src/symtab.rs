//! Symbol tables produced by name resolution.
//!
//! A [`SymbolTable`] describes every name used in one program unit: its
//! type, shape, and — crucially for the aliasing experiments — its
//! *storage association*. Fortran's `COMMON` and `EQUIVALENCE` let
//! distinct names denote overlapping storage; MiniFort computes explicit
//! word offsets so both the runtime and the alias analysis see the real
//! overlap (§2.3 of the paper).

use std::collections::BTreeMap;

use crate::ast::{Expr, Literal};
use crate::types::Ty;

/// Compile-time constant value of a PARAMETER.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConstVal {
    Int(i64),
    Real(f64),
    Logical(bool),
}

impl ConstVal {
    /// Integer value, when the constant is integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConstVal::Int(v) => Some(*v),
            _ => None,
        }
    }
}

/// A resolved dimension declarator.
#[derive(Clone, Debug)]
pub struct ResolvedDim {
    /// Lower bound (constant-folded; `Expr::Int(1)` by default).
    pub lo: Expr,
    /// Upper bound; `None` for `*` (assumed size, formals only).
    pub hi: Option<Expr>,
}

impl ResolvedDim {
    /// Constant extent, when both bounds are literal.
    pub fn const_extent(&self) -> Option<i64> {
        let lo = as_const_int(&self.lo)?;
        let hi = as_const_int(self.hi.as_ref()?)?;
        Some(hi - lo + 1)
    }
}

/// Array shape: the declared dimension list.
#[derive(Clone, Debug)]
pub struct ArrayShape {
    pub dims: Vec<ResolvedDim>,
}

impl ArrayShape {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count when all extents are constant.
    pub fn const_elems(&self) -> Option<i64> {
        self.dims.iter().map(ResolvedDim::const_extent).product()
    }

    /// True if the last dimension is `*`.
    pub fn assumed_size(&self) -> bool {
        self.dims.last().is_some_and(|d| d.hi.is_none())
    }
}

/// What kind of thing a name denotes.
#[derive(Clone, Debug)]
pub enum SymbolKind {
    Scalar,
    Array(ArrayShape),
    /// PARAMETER constant.
    Param(ConstVal),
    /// Subroutine/function name (EXTERNAL, defined unit, or intrinsic
    /// referenced in a call).
    Routine,
}

/// Where a name's storage lives.
#[derive(Clone, PartialEq, Debug)]
pub enum Storage {
    /// Unit-local storage area (areas merge under EQUIVALENCE);
    /// `offset` is in words from the area base.
    Local { area: u32, offset: i64 },
    /// Member of a named COMMON block at a word offset.
    Common { block: String, offset: i64 },
    /// Dummy argument: storage belongs to the caller.
    Formal { position: usize },
    /// Routines and parameters occupy no data storage.
    None,
}

/// One resolved symbol.
#[derive(Clone, Debug)]
pub struct Symbol {
    pub name: String,
    pub ty: Ty,
    pub kind: SymbolKind,
    pub storage: Storage,
}

impl Symbol {
    /// Size in words (constant shapes only).
    pub fn size_words(&self) -> Option<i64> {
        match &self.kind {
            SymbolKind::Scalar => Some(self.ty.words()),
            SymbolKind::Array(shape) => Some(self.ty.words() * shape.const_elems()?),
            _ => None,
        }
    }

    /// The array shape, if this is an array.
    pub fn shape(&self) -> Option<&ArrayShape> {
        match &self.kind {
            SymbolKind::Array(s) => Some(s),
            _ => None,
        }
    }
}

/// A resolved DATA initialization.
#[derive(Clone, Debug)]
pub struct DataInit {
    pub name: String,
    /// Constant linear element index (0-based) where the fill starts.
    pub start_elem: i64,
    pub values: Vec<(u32, Literal)>,
}

/// Per-unit symbol table.
///
/// Symbols are kept name-ordered (`BTreeMap`): consumers — the inliner's
/// rename pass, EQUIVALENCE/area assignment, the dependence tester's
/// COMMON-root search — iterate the table, and the names they mint and
/// the symbolic variable ids they intern must not depend on hash-seed
/// luck, or compile reports stop being reproducible run to run.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    pub unit: String,
    syms: BTreeMap<String, Symbol>,
    /// Sizes (words) of local storage areas, indexed by area id.
    pub area_sizes: Vec<i64>,
    /// DATA initializations in source order.
    pub data: Vec<DataInit>,
}

impl SymbolTable {
    pub fn new(unit: &str) -> Self {
        SymbolTable {
            unit: unit.to_string(),
            ..Default::default()
        }
    }

    /// Inserts or replaces a symbol.
    pub fn insert(&mut self, sym: Symbol) {
        self.syms.insert(sym.name.clone(), sym);
    }

    /// Looks up a symbol by (uppercase) name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.syms.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Symbol> {
        self.syms.get_mut(name)
    }

    /// Whether `name` denotes an array here.
    pub fn is_array(&self, name: &str) -> bool {
        matches!(
            self.syms.get(name).map(|s| &s.kind),
            Some(SymbolKind::Array(_))
        )
    }

    /// Declared type of a name, falling back to implicit typing.
    pub fn type_of(&self, name: &str) -> Ty {
        self.syms
            .get(name)
            .map(|s| s.ty)
            .unwrap_or_else(|| Ty::implicit_for(name))
    }

    /// PARAMETER value of `name`, if it is one.
    pub fn param_val(&self, name: &str) -> Option<ConstVal> {
        match self.syms.get(name).map(|s| &s.kind) {
            Some(SymbolKind::Param(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.syms.values()
    }

    /// Names of all COMMON blocks this unit references, with the extent
    /// (in words) the unit implies for each.
    pub fn common_blocks(&self) -> BTreeMap<String, i64> {
        let mut out: BTreeMap<String, i64> = BTreeMap::new();
        for s in self.syms.values() {
            if let Storage::Common { block, offset } = &s.storage {
                let sz = s.size_words().unwrap_or(1);
                let end = offset + sz;
                let e = out.entry(block.clone()).or_insert(0);
                if end > *e {
                    *e = end;
                }
            }
        }
        out
    }
}

/// Constant-folds an expression that must be a literal integer.
pub fn as_const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Un(crate::ast::UnOp::Neg, inner) => Some(-as_const_int(inner)?),
        Expr::Bin(op, l, r) => {
            let (a, b) = (as_const_int(l)?, as_const_int(r)?);
            use crate::ast::BinOp::*;
            Some(match op {
                Add => a.checked_add(b)?,
                Sub => a.checked_sub(b)?,
                Mul => a.checked_mul(b)?,
                Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                Pow => {
                    let bp = u32::try_from(b).ok()?;
                    a.checked_pow(bp)?
                }
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_folding() {
        use crate::ast::BinOp;
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Int(3)),
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(4)),
                Box::new(Expr::Int(1)),
            )),
        );
        assert_eq!(as_const_int(&e), Some(15));
        assert_eq!(as_const_int(&Expr::Name("N".into())), None);
    }

    #[test]
    fn shape_extents() {
        let shape = ArrayShape {
            dims: vec![
                ResolvedDim {
                    lo: Expr::Int(1),
                    hi: Some(Expr::Int(10)),
                },
                ResolvedDim {
                    lo: Expr::Int(0),
                    hi: Some(Expr::Int(4)),
                },
            ],
        };
        assert_eq!(shape.rank(), 2);
        assert_eq!(shape.const_elems(), Some(50));
        assert!(!shape.assumed_size());
    }

    #[test]
    fn assumed_size_detection() {
        let shape = ArrayShape {
            dims: vec![ResolvedDim {
                lo: Expr::Int(1),
                hi: None,
            }],
        };
        assert!(shape.assumed_size());
        assert_eq!(shape.const_elems(), None);
    }

    #[test]
    fn symbol_sizes() {
        let s = Symbol {
            name: "Z".into(),
            ty: Ty::Complex,
            kind: SymbolKind::Array(ArrayShape {
                dims: vec![ResolvedDim {
                    lo: Expr::Int(1),
                    hi: Some(Expr::Int(8)),
                }],
            }),
            storage: Storage::Local { area: 0, offset: 0 },
        };
        assert_eq!(s.size_words(), Some(16));
    }

    #[test]
    fn common_extent_accumulates() {
        let mut t = SymbolTable::new("U");
        t.insert(Symbol {
            name: "A".into(),
            ty: Ty::Real,
            kind: SymbolKind::Array(ArrayShape {
                dims: vec![ResolvedDim {
                    lo: Expr::Int(1),
                    hi: Some(Expr::Int(100)),
                }],
            }),
            storage: Storage::Common {
                block: "BLK".into(),
                offset: 0,
            },
        });
        t.insert(Symbol {
            name: "Q".into(),
            ty: Ty::Real,
            kind: SymbolKind::Scalar,
            storage: Storage::Common {
                block: "BLK".into(),
                offset: 100,
            },
        });
        assert_eq!(t.common_blocks()["BLK"], 101);
    }
}

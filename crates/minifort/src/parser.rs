//! Recursive-descent parser for MiniFort.
//!
//! Produces a raw [`Program`]; name resolution and typing happen in
//! [`crate::resolve`]. The parser handles the statement forms the
//! industrial workloads need: block and logical `IF`, modern
//! (`DO`/`ENDDO`) and old-style labeled `DO` loops, `DO WHILE`,
//! declarations (`COMMON`, `EQUIVALENCE`, `PARAMETER`, `DATA`,
//! `EXTERNAL`, type statements with dimensions), I/O with opaque control
//! lists, and the `!$OMP` / `!$TARGET` / `!LANG` directives.

use crate::ast::*;
use crate::diag::ParseError;
use crate::lexer::{lex, lex_recovering};
use crate::token::{Tok, Token};
use crate::types::{Lang, Ty};

/// Parses a full multi-unit program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_id: 0,
        pending_omp: None,
        pending_auto: None,
        pending_target: None,
        recovering: false,
        diags: Vec::new(),
    };
    p.program()
}

/// Parses with recovery: a garbled statement is recorded as a
/// diagnostic and parsing resynchronizes at the next statement
/// boundary; a garbled unit header (or structure error the statement
/// sync cannot absorb) drops that unit and resynchronizes at the next
/// `PROGRAM`/`SUBROUTINE`/`FUNCTION`. Total: any input produces a
/// [`Program`] (possibly empty) plus the diagnostics explaining what
/// was lost.
pub fn parse_program_recovering(src: &str) -> (Program, Vec<ParseError>) {
    let (toks, diags) = lex_recovering(src);
    let mut p = Parser {
        toks,
        pos: 0,
        next_id: 0,
        pending_omp: None,
        pending_auto: None,
        pending_target: None,
        recovering: true,
        diags,
    };
    let prog = p
        .program()
        .expect("recovering parser never propagates errors");
    (prog, p.diags)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    next_id: u32,
    pending_omp: Option<LoopDirective>,
    pending_auto: Option<LoopDirective>,
    pending_target: Option<String>,
    /// When set, parse errors are recorded in `diags` and the parser
    /// resynchronizes instead of aborting.
    recovering: bool,
    diags: Vec<ParseError>,
}

const DECL_KWS: &[&str] = &[
    "INTEGER",
    "REAL",
    "COMPLEX",
    "LOGICAL",
    "CHARACTER",
    "DIMENSION",
    "COMMON",
    "EQUIVALENCE",
    "PARAMETER",
    "EXTERNAL",
    "DATA",
    "IMPLICIT",
];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &Tok {
        self.toks
            .get(self.pos + n)
            .map(|t| &t.kind)
            .unwrap_or(&Tok::Eof)
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", tok, self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek().is_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", kw, self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {}", other))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eos(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Eos => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {}", other))),
        }
    }

    fn skip_eos(&mut self) {
        while matches!(self.peek(), Tok::Eos) {
            self.bump();
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    // ------------------------------------------------------------------
    // Recovery synchronization
    // ------------------------------------------------------------------

    /// Consumes tokens through the next statement boundary.
    fn sync_to_eos(&mut self) {
        while !matches!(self.peek(), Tok::Eos | Tok::Eof) {
            self.bump();
        }
        self.skip_eos();
    }

    /// Consumes tokens until a line opens with a unit header keyword
    /// (or the file ends). Used after a unit-level parse failure.
    fn sync_to_unit(&mut self) {
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Eos => {
                    self.skip_eos();
                    if self.at_unit_header() {
                        break;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn at_unit_header(&self) -> bool {
        self.peek().is_kw("PROGRAM")
            || self.peek().is_kw("SUBROUTINE")
            || self.peek().is_kw("FUNCTION")
            || (self.peek_type_kw().is_some() && self.peek_at(1).is_kw("FUNCTION"))
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut units = Vec::new();
        let mut next_lang = Lang::Fortran;
        loop {
            self.skip_eos();
            match self.peek() {
                Tok::Eof => break,
                Tok::Directive(d) => {
                    let d = d.clone();
                    self.bump();
                    if let Some(rest) = d.strip_prefix("LANG") {
                        next_lang = match rest.trim() {
                            "C" => Lang::C,
                            "FORTRAN" | "F77" | "" => Lang::Fortran,
                            other => {
                                let e = self.err(format!("unknown language '{}'", other));
                                if !self.recovering {
                                    return Err(e);
                                }
                                self.diags.push(e);
                                Lang::Fortran
                            }
                        };
                    }
                    // Loop directives at unit level are ignored.
                }
                _ => match self.unit(std::mem::take(&mut next_lang)) {
                    Ok(u) => {
                        units.push(u);
                        next_lang = Lang::Fortran;
                    }
                    Err(e) => {
                        if !self.recovering {
                            return Err(e);
                        }
                        // The whole unit is unusable: record why and
                        // resynchronize at the next unit header.
                        self.diags.push(e);
                        self.sync_to_unit();
                        next_lang = Lang::Fortran;
                    }
                },
            }
        }
        Ok(Program {
            units,
            stmt_count: self.next_id,
        })
    }

    fn unit(&mut self, lang: Lang) -> Result<Unit, ParseError> {
        let line = self.line();
        let mut decls: Vec<Decl> = Vec::new();
        // Optional type prefix on FUNCTION: `REAL FUNCTION F(X)`.
        let mut fn_ty: Option<Ty> = None;
        if let Some(ty) = self.peek_type_kw() {
            if self.peek_at(1).is_kw("FUNCTION") {
                fn_ty = Some(ty);
                self.bump();
            }
        }
        let (kind, name, formals) = if self.eat_kw("PROGRAM") {
            let name = self.expect_ident()?;
            self.expect_eos()?;
            (UnitKind::Main, name, Vec::new())
        } else if self.eat_kw("SUBROUTINE") {
            let name = self.expect_ident()?;
            let formals = self.formal_list()?;
            self.expect_eos()?;
            (UnitKind::Subroutine, name, formals)
        } else if self.eat_kw("FUNCTION") {
            let name = self.expect_ident()?;
            let formals = self.formal_list()?;
            self.expect_eos()?;
            if let Some(ty) = fn_ty {
                decls.push(Decl::Type {
                    ty,
                    names: vec![DeclName {
                        name: name.clone(),
                        dims: vec![],
                    }],
                });
            }
            (UnitKind::Function, name, formals)
        } else {
            return Err(self.err(format!(
                "expected PROGRAM, SUBROUTINE, or FUNCTION, found {}",
                self.peek()
            )));
        };

        // Declaration section.
        loop {
            self.skip_eos();
            match self.peek() {
                Tok::Ident(s) if DECL_KWS.contains(&s.as_str()) && !self.is_assignment() => {
                    match self.declaration() {
                        Ok(Some(d)) => decls.push(d),
                        Ok(None) => {}
                        Err(e) => {
                            if !self.recovering {
                                return Err(e);
                            }
                            // Drop the one garbled declaration and
                            // resume at the next statement boundary.
                            self.diags.push(e);
                            self.sync_to_eos();
                        }
                    }
                }
                _ => break,
            }
        }

        // Body.
        let body = self.block(&mut |p: &mut Parser| p.peek().is_kw("END"))?;
        if self.recovering && matches!(self.peek(), Tok::Eof) {
            // Truncated source: accept the partial unit with what was
            // parsed rather than losing it entirely.
            self.diags.push(self.err("missing END (source truncated?)"));
        } else {
            self.expect_kw("END")?;
            // Optional `END SUBROUTINE NAME` style suffixes.
            while !matches!(self.peek(), Tok::Eos | Tok::Eof) {
                self.bump();
            }
            self.expect_eos()?;
        }

        Ok(Unit {
            name,
            kind,
            lang,
            formals,
            decls,
            body,
            line,
        })
    }

    fn peek_type_kw(&self) -> Option<Ty> {
        match self.peek() {
            Tok::Ident(s) => match s.as_str() {
                "INTEGER" => Some(Ty::Integer),
                "REAL" | "DOUBLEPRECISION" => Some(Ty::Real),
                "COMPLEX" => Some(Ty::Complex),
                "LOGICAL" => Some(Ty::Logical),
                "CHARACTER" => Some(Ty::Character),
                _ => None,
            },
            _ => None,
        }
    }

    /// Distinguishes `REAL = 1` (assignment to a variable named REAL —
    /// legal Fortran) from a declaration.
    fn is_assignment(&self) -> bool {
        matches!(self.peek_at(1), Tok::Assign)
    }

    fn formal_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut formals = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                formals.push(self.expect_ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(formals)
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn declaration(&mut self) -> Result<Option<Decl>, ParseError> {
        if let Some(ty) = self.peek_type_kw() {
            self.bump();
            // CHARACTER*16 style length: ignored.
            if ty == Ty::Character && self.eat(&Tok::Star) {
                self.bump();
            }
            let names = self.decl_name_list()?;
            self.expect_eos()?;
            return Ok(Some(Decl::Type { ty, names }));
        }
        if self.eat_kw("IMPLICIT") {
            // `IMPLICIT NONE` accepted and ignored (MiniFort keeps
            // implicit typing for undeclared names regardless).
            while !matches!(self.peek(), Tok::Eos | Tok::Eof) {
                self.bump();
            }
            self.expect_eos()?;
            return Ok(None);
        }
        if self.eat_kw("DIMENSION") {
            let names = self.decl_name_list()?;
            self.expect_eos()?;
            return Ok(Some(Decl::Dimension { names }));
        }
        if self.eat_kw("COMMON") {
            self.expect(&Tok::Slash)?;
            let block = self.expect_ident()?;
            self.expect(&Tok::Slash)?;
            let names = self.decl_name_list()?;
            self.expect_eos()?;
            return Ok(Some(Decl::Common { block, names }));
        }
        if self.eat_kw("EQUIVALENCE") {
            let mut groups = Vec::new();
            loop {
                self.expect(&Tok::LParen)?;
                let mut group = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let mut subs = Vec::new();
                    if self.eat(&Tok::LParen) {
                        loop {
                            subs.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    group.push(EquivRef { name, subs });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                groups.push(group);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect_eos()?;
            return Ok(Some(Decl::Equivalence { groups }));
        }
        if self.eat_kw("PARAMETER") {
            self.expect(&Tok::LParen)?;
            let mut defs = Vec::new();
            loop {
                let name = self.expect_ident()?;
                self.expect(&Tok::Assign)?;
                defs.push((name, self.expr()?));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            self.expect_eos()?;
            return Ok(Some(Decl::Parameter { defs }));
        }
        if self.eat_kw("EXTERNAL") {
            let mut names = Vec::new();
            loop {
                names.push(self.expect_ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect_eos()?;
            return Ok(Some(Decl::External { names }));
        }
        if self.eat_kw("DATA") {
            let mut items = Vec::new();
            loop {
                let name = self.expect_ident()?;
                let mut subs = Vec::new();
                if self.eat(&Tok::LParen) {
                    loop {
                        subs.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                self.expect(&Tok::Slash)?;
                let mut values = Vec::new();
                loop {
                    let (rep, lit) = self.data_value()?;
                    values.push((rep, lit));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Slash)?;
                items.push(DataItem { name, subs, values });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect_eos()?;
            return Ok(Some(Decl::Data { items }));
        }
        Err(self.err("expected a declaration"))
    }

    fn decl_name_list(&mut self) -> Result<Vec<DeclName>, ParseError> {
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            if self.eat(&Tok::LParen) {
                loop {
                    dims.push(self.dim_spec()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            names.push(DeclName { name, dims });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(names)
    }

    fn dim_spec(&mut self) -> Result<DimSpec, ParseError> {
        if self.eat(&Tok::Star) {
            return Ok(DimSpec { lo: None, hi: None });
        }
        let first = self.expr()?;
        if self.eat(&Tok::Colon) {
            if self.eat(&Tok::Star) {
                Ok(DimSpec {
                    lo: Some(first),
                    hi: None,
                })
            } else {
                let hi = self.expr()?;
                Ok(DimSpec {
                    lo: Some(first),
                    hi: Some(hi),
                })
            }
        } else {
            Ok(DimSpec {
                lo: None,
                hi: Some(first),
            })
        }
    }

    fn data_value(&mut self) -> Result<(u32, Literal), ParseError> {
        // `100*0.0` means repeat; plain literal means once.
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Tok::Int(v) => {
                if !neg && self.eat(&Tok::Star) {
                    let lit = self.data_literal()?;
                    Ok((
                        u32::try_from(v).map_err(|_| self.err("bad repeat count"))?,
                        lit,
                    ))
                } else {
                    Ok((1, Literal::Int(if neg { -v } else { v })))
                }
            }
            Tok::Real(v) => Ok((1, Literal::Real(if neg { -v } else { v }))),
            Tok::Logical(b) => Ok((1, Literal::Logical(b))),
            other => Err(self.err(format!("bad DATA value {}", other))),
        }
    }

    fn data_literal(&mut self) -> Result<Literal, ParseError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Tok::Int(v) => Ok(Literal::Int(if neg { -v } else { v })),
            Tok::Real(v) => Ok(Literal::Real(if neg { -v } else { v })),
            Tok::Logical(b) => Ok(Literal::Logical(b)),
            other => Err(self.err(format!("bad DATA literal {}", other))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parses statements until `stop` matches (the terminator is not
    /// consumed).
    fn block(&mut self, stop: &mut impl FnMut(&mut Parser) -> bool) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_eos();
            if matches!(self.peek(), Tok::Eof) || stop(self) {
                break;
            }
            if let Tok::Directive(d) = self.peek() {
                let d = d.clone();
                self.bump();
                match self.directive(&d) {
                    Ok(()) => {}
                    Err(e) => {
                        if !self.recovering {
                            return Err(e);
                        }
                        self.diags.push(e);
                    }
                }
                continue;
            }
            match self.statement() {
                Ok(s) => stmts.push(s),
                Err(e) => {
                    if !self.recovering {
                        return Err(e);
                    }
                    // Statement-level recovery: record the diagnosis,
                    // drop the statement, resume at the next boundary.
                    self.diags.push(e);
                    self.sync_to_eos();
                }
            }
        }
        Ok(Block { stmts })
    }

    fn directive(&mut self, d: &str) -> Result<(), ParseError> {
        if let Some(rest) = d.strip_prefix("$TARGET") {
            self.pending_target = Some(rest.trim().to_string());
            return Ok(());
        }
        if let Some(rest) = d.strip_prefix("$OMP") {
            let rest = rest.trim();
            if let Some(clauses) = rest.strip_prefix("PARALLEL DO") {
                self.pending_omp = Some(parse_omp_clauses(clauses).map_err(|m| self.err(m))?);
            }
            return Ok(());
        }
        if let Some(rest) = d.strip_prefix("$PAR") {
            let rest = rest.trim();
            if let Some(clauses) = rest.strip_prefix("DO") {
                self.pending_auto = Some(parse_par_clauses(clauses).map_err(|m| self.err(m))?);
            }
            // `!$PAR SERIAL <reason>` annotations are explanatory
            // comments from the codegen backend; no AST effect.
            return Ok(());
        }
        // Unknown directives (including !LANG mid-unit) are ignored.
        Ok(())
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let label = if let Tok::Label(l) = self.peek() {
            let l = *l;
            self.bump();
            Some(l)
        } else {
            None
        };
        let id = self.fresh_id();
        let kind = self.stmt_kind()?;
        Ok(Stmt {
            id,
            line,
            label,
            kind,
        })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        // Keyword statements (unless it's actually an assignment like
        // `IF = 3`, which the is_assignment check rules out).
        if !self.is_assignment() {
            if self.peek().is_kw("DO") && !matches!(self.peek_at(1), Tok::Assign) {
                return self.do_stmt();
            }
            if self.peek().is_kw("IF") && matches!(self.peek_at(1), Tok::LParen) {
                return self.if_stmt();
            }
            if self.eat_kw("CALL") {
                let name = self.expect_ident()?;
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                self.expect_eos()?;
                return Ok(StmtKind::Call { name, args });
            }
            if self.eat_kw("RETURN") {
                self.expect_eos()?;
                return Ok(StmtKind::Return);
            }
            if self.eat_kw("STOP") {
                // Optional stop code.
                if !matches!(self.peek(), Tok::Eos | Tok::Eof) {
                    self.bump();
                }
                self.expect_eos()?;
                return Ok(StmtKind::Stop);
            }
            if self.eat_kw("CONTINUE") {
                self.expect_eos()?;
                return Ok(StmtKind::Continue);
            }
            if self.eat_kw("GOTO") {
                let l = self.goto_label()?;
                self.expect_eos()?;
                return Ok(StmtKind::Goto(l));
            }
            if self.peek().is_kw("GO") && self.peek_at(1).is_kw("TO") {
                self.bump();
                self.bump();
                let l = self.goto_label()?;
                self.expect_eos()?;
                return Ok(StmtKind::Goto(l));
            }
            if self.peek().is_kw("READ") && matches!(self.peek_at(1), Tok::LParen) {
                self.bump();
                self.skip_balanced_parens()?;
                let items = self.io_items()?;
                self.expect_eos()?;
                return Ok(StmtKind::Read { items });
            }
            if self.peek().is_kw("WRITE") && matches!(self.peek_at(1), Tok::LParen) {
                self.bump();
                self.skip_balanced_parens()?;
                let items = self.io_items()?;
                self.expect_eos()?;
                return Ok(StmtKind::Write { items });
            }
        }
        // Assignment: lvalue = expr.
        let lhs = self.primary()?;
        if !matches!(lhs, Expr::Name(_) | Expr::Sub { .. }) {
            return Err(self.err("left-hand side must be a variable or array element"));
        }
        self.expect(&Tok::Assign)?;
        let rhs = self.expr()?;
        self.expect_eos()?;
        Ok(StmtKind::Assign { lhs, rhs })
    }

    fn goto_label(&mut self) -> Result<u32, ParseError> {
        match self.bump() {
            Tok::Int(v) => u32::try_from(v).map_err(|_| self.err("bad label")),
            Tok::Label(l) => Ok(l),
            other => Err(self.err(format!("expected label, found {}", other))),
        }
    }

    fn skip_balanced_parens(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::LParen)?;
        let mut depth = 1usize;
        loop {
            match self.bump() {
                Tok::LParen => depth += 1,
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Tok::Eof | Tok::Eos => return Err(self.err("unbalanced I/O control list")),
                _ => {}
            }
        }
    }

    fn io_items(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut items = Vec::new();
        if matches!(self.peek(), Tok::Eos | Tok::Eof) {
            return Ok(items);
        }
        loop {
            items.push(self.expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn do_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_kw("DO")?;
        // DO WHILE (cond)
        if self.peek().is_kw("WHILE") && matches!(self.peek_at(1), Tok::LParen) {
            self.bump();
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.expect_eos()?;
            let body = self.block(&mut |p: &mut Parser| p.peek().is_kw("ENDDO"))?;
            self.expect_kw("ENDDO")?;
            self.expect_eos()?;
            return Ok(StmtKind::DoWhile { cond, body });
        }
        // Old-style `DO 100 I = ...` terminator label.
        let end_label = if let Tok::Int(l) = self.peek() {
            let l = *l;
            self.bump();
            Some(u32::try_from(l).map_err(|_| self.err("bad DO label"))?)
        } else {
            None
        };
        let var = self.expect_ident()?;
        self.expect(&Tok::Assign)?;
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        let step = if self.eat(&Tok::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_eos()?;
        let omp = self.pending_omp.take();
        let auto_par = self.pending_auto.take();
        let target = self.pending_target.take();
        let body = match end_label {
            None => {
                let b = self.block(&mut |p: &mut Parser| p.peek().is_kw("ENDDO"))?;
                self.expect_kw("ENDDO")?;
                self.expect_eos()?;
                b
            }
            Some(term) => {
                // Body runs until (and includes) the statement labeled
                // `term`. Nested old-style DOs must use distinct labels.
                let mut b = self
                    .block(&mut |p: &mut Parser| matches!(p.peek(), Tok::Label(l) if *l == term))?;
                let terminator = self.statement()?;
                if !matches!(terminator.kind, StmtKind::Continue) {
                    b.stmts.push(terminator);
                } else {
                    b.stmts.push(terminator); // keep label for GOTOs
                }
                b
            }
        };
        Ok(StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            omp,
            auto_par,
            target,
        })
    }

    fn if_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_kw("IF")?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        if !self.peek().is_kw("THEN") {
            // Logical IF: a single statement as the THEN body.
            let inner_id = self.fresh_id();
            let line = self.line();
            let kind = self.stmt_kind()?;
            let body = Block {
                stmts: vec![Stmt {
                    id: inner_id,
                    line,
                    label: None,
                    kind,
                }],
            };
            return Ok(StmtKind::If {
                arms: vec![(cond, body)],
                else_blk: None,
            });
        }
        self.expect_kw("THEN")?;
        self.expect_eos()?;
        let mut arms = Vec::new();
        let mut else_blk = None;
        let mut current_cond = cond;
        loop {
            let body = self.block(&mut |p: &mut Parser| {
                p.peek().is_kw("ELSE") || p.peek().is_kw("ELSEIF") || p.peek().is_kw("ENDIF")
            })?;
            arms.push((current_cond.clone(), body));
            if self.eat_kw("ELSEIF") || (self.peek().is_kw("ELSE") && self.peek_at(1).is_kw("IF")) {
                if self.peek().is_kw("ELSE") {
                    self.bump();
                    self.bump();
                }
                self.expect(&Tok::LParen)?;
                current_cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect_kw("THEN")?;
                self.expect_eos()?;
                continue;
            }
            if self.eat_kw("ELSE") {
                self.expect_eos()?;
                let b = self.block(&mut |p: &mut Parser| p.peek().is_kw("ENDIF"))?;
                else_blk = Some(b);
            }
            self.expect_kw("ENDIF")?;
            self.expect_eos()?;
            break;
        }
        Ok(StmtKind::If { arms, else_blk })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let r = self.and_expr()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.not_expr()?;
        while self.eat(&Tok::And) {
            let r = self.not_expr()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Not) {
            let e = self.not_expr()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.rel_expr()
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let r = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = if self.eat(&Tok::Minus) {
            let t = self.mul_expr()?;
            Expr::Un(UnOp::Neg, Box::new(t))
        } else {
            let _ = self.eat(&Tok::Plus);
            self.mul_expr()?
        };
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let r = self.pow_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.unary_expr()?;
        if self.eat(&Tok::Pow) {
            // Right-associative.
            let exp = self.pow_expr()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Real(v) => Ok(Expr::Real(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Logical(b) => Ok(Expr::Logical(b)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr::Sub { name, args })
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(self.err(format!("unexpected token {} in expression", other))),
        }
    }
}

/// Splits a comma-separated name list.
fn name_list(inside: &str) -> Vec<String> {
    inside
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .collect()
}

/// Parses `op:var, var` from inside a REDUCTION clause.
fn reduction_items(inside: &str) -> Result<Vec<(RedOp, String)>, String> {
    let (op_s, vars) = inside
        .split_once(':')
        .ok_or_else(|| format!("bad REDUCTION clause '{}'", inside))?;
    let op = match op_s.trim() {
        "+" => RedOp::Add,
        "*" => RedOp::Mul,
        "MIN" => RedOp::Min,
        "MAX" => RedOp::Max,
        other => return Err(format!("unknown reduction op '{}'", other)),
    };
    Ok(name_list(vars).into_iter().map(|v| (op, v)).collect())
}

/// Parses the clause list of `!$OMP PARALLEL DO ...` (manual
/// directives: PRIVATE and REDUCTION only).
fn parse_omp_clauses(s: &str) -> Result<LoopDirective, String> {
    let mut d = LoopDirective::default();
    let mut rest = s.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix("PRIVATE") {
            let (inside, tail) = take_parens(r)?;
            d.private.extend(name_list(inside));
            rest = tail.trim_start();
        } else if let Some(r) = rest.strip_prefix("REDUCTION") {
            let (inside, tail) = take_parens(r)?;
            d.reductions.extend(reduction_items(inside)?);
            rest = tail.trim_start();
        } else {
            return Err(format!("unknown OMP clause at '{}'", rest));
        }
    }
    Ok(d)
}

/// Parses the clause list of a compiler-emitted `!$PAR DO ...`, which
/// carries the full clause set: SCHEDULE, COLLAPSE, PRIVATE,
/// REDUCTION, SPECULATIVE, and WRITES.
fn parse_par_clauses(s: &str) -> Result<LoopDirective, String> {
    let mut d = LoopDirective::default();
    let mut rest = s.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix("SCHEDULE") {
            let (inside, tail) = take_parens(r)?;
            d.schedule = match inside.trim() {
                "STATIC" => Schedule::Static,
                "CYCLIC" => Schedule::Cyclic,
                other => return Err(format!("unknown schedule '{}'", other)),
            };
            rest = tail.trim_start();
        } else if let Some(r) = rest.strip_prefix("COLLAPSE") {
            let (inside, tail) = take_parens(r)?;
            d.collapse = inside
                .trim()
                .parse::<u8>()
                .map_err(|_| format!("bad COLLAPSE count '{}'", inside.trim()))?;
            if d.collapse == 0 {
                return Err("COLLAPSE count must be at least 1".to_string());
            }
            rest = tail.trim_start();
        } else if let Some(r) = rest.strip_prefix("PRIVATE") {
            let (inside, tail) = take_parens(r)?;
            d.private.extend(name_list(inside));
            rest = tail.trim_start();
        } else if let Some(r) = rest.strip_prefix("REDUCTION") {
            let (inside, tail) = take_parens(r)?;
            d.reductions.extend(reduction_items(inside)?);
            rest = tail.trim_start();
        } else if let Some(r) = rest.strip_prefix("SPECULATIVE") {
            d.speculative = true;
            rest = r.trim_start();
        } else if let Some(r) = rest.strip_prefix("WRITES") {
            let (inside, tail) = take_parens(r)?;
            d.writes = Some(name_list(inside));
            rest = tail.trim_start();
        } else {
            return Err(format!("unknown PAR clause at '{}'", rest));
        }
    }
    Ok(d)
}

fn take_parens(s: &str) -> Result<(&str, &str), String> {
    let s = s.trim_start();
    let inner = s
        .strip_prefix('(')
        .ok_or_else(|| format!("expected '(' at '{}'", s))?;
    let close = inner
        .find(')')
        .ok_or_else(|| format!("missing ')' in '{}'", s))?;
    Ok((&inner[..close], &inner[close + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse failed: {}", e))
    }

    #[test]
    fn minimal_program() {
        let p = parse("PROGRAM MAIN\nX = 1\nEND\n");
        assert_eq!(p.units.len(), 1);
        assert_eq!(p.units[0].name, "MAIN");
        assert_eq!(p.units[0].kind, UnitKind::Main);
        assert_eq!(p.units[0].body.stmts.len(), 1);
    }

    #[test]
    fn subroutine_with_formals_and_decls() {
        let p = parse(
            "SUBROUTINE FOO(A, N)\nINTEGER N\nREAL A(N)\nDO I = 1, N\nA(I) = 0.0\nENDDO\nRETURN\nEND\n",
        );
        let u = &p.units[0];
        assert_eq!(u.formals, vec!["A", "N"]);
        assert_eq!(u.decls.len(), 2);
        assert_eq!(u.body.stmts.len(), 2);
        match &u.body.stmts[0].kind {
            StmtKind::Do { var, body, .. } => {
                assert_eq!(var, "I");
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn old_style_do_with_label() {
        let p = parse("PROGRAM P\nDO 100 I = 1, 10\nS = S + 1.0\n100 CONTINUE\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { body, .. } => {
                assert_eq!(body.stmts.len(), 2);
                assert_eq!(body.stmts[1].label, Some(100));
                assert!(matches!(body.stmts[1].kind, StmtKind::Continue));
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn block_if_elseif_else() {
        let p = parse(
            "PROGRAM P\nIF (N .GT. 0) THEN\nX = 1\nELSE IF (N .LT. 0) THEN\nX = 2\nELSE\nX = 3\nENDIF\nEND\n",
        );
        match &p.units[0].body.stmts[0].kind {
            StmtKind::If { arms, else_blk } => {
                assert_eq!(arms.len(), 2);
                assert!(else_blk.is_some());
            }
            other => panic!("expected IF, got {:?}", other),
        }
    }

    #[test]
    fn logical_if() {
        let p = parse("PROGRAM P\nIF (X .GT. 0.0) Y = 1.0\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::If { arms, else_blk } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].1.stmts.len(), 1);
                assert!(else_blk.is_none());
            }
            other => panic!("expected IF, got {:?}", other),
        }
    }

    #[test]
    fn directives_attach_to_next_do() {
        let p = parse(
            "PROGRAM P\n!$TARGET STAK_1\n!$OMP PARALLEL DO PRIVATE(T) REDUCTION(+:S)\nDO I = 1, N\nS = S + T\nENDDO\nEND\n",
        );
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { omp, target, .. } => {
                assert_eq!(target.as_deref(), Some("STAK_1"));
                let d = omp.as_ref().expect("omp directive");
                assert_eq!(d.private, vec!["T"]);
                assert_eq!(d.reductions, vec![(RedOp::Add, "S".to_string())]);
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn par_directive_attaches_to_auto_slot() {
        let p = parse(
            "PROGRAM P\n!$PAR DO SCHEDULE(CYCLIC) COLLAPSE(2) PRIVATE(T) REDUCTION(MAX:S) SPECULATIVE WRITES(A, S)\nDO I = 1, N\nS = S + T\nENDDO\nEND\n",
        );
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { omp, auto_par, .. } => {
                assert!(omp.is_none());
                let d = auto_par.as_ref().expect("auto_par directive");
                assert_eq!(d.schedule, Schedule::Cyclic);
                assert_eq!(d.collapse, 2);
                assert_eq!(d.private, vec!["T"]);
                assert_eq!(d.reductions, vec![(RedOp::Max, "S".to_string())]);
                assert!(d.speculative);
                assert_eq!(d.writes, Some(vec!["A".to_string(), "S".to_string()]));
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn par_do_defaults_and_empty_writes() {
        let p = parse("PROGRAM P\n!$PAR DO WRITES()\nDO I = 1, N\nA(I) = 0.0\nENDDO\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { auto_par, .. } => {
                let d = auto_par.as_ref().expect("auto_par directive");
                assert_eq!(d.schedule, Schedule::Static);
                assert_eq!(d.collapse, 1);
                assert_eq!(d.writes, Some(vec![]));
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn par_serial_comment_is_ignored() {
        let p = parse("PROGRAM P\n!$PAR SERIAL real dependence\nDO I = 1, N\nS = S + 1.0\nENDDO\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { omp, auto_par, .. } => {
                assert!(omp.is_none());
                assert!(auto_par.is_none());
            }
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn lang_directive_marks_unit() {
        let p = parse("!LANG C\nSUBROUTINE CPROC(A)\nEND\nSUBROUTINE F()\nEND\n");
        assert_eq!(p.units[0].lang, Lang::C);
        assert_eq!(p.units[1].lang, Lang::Fortran);
    }

    #[test]
    fn common_equivalence_parameter_data() {
        let p = parse(
            "PROGRAM P\nPARAMETER (N = 10, M = N*2)\nREAL A(N), B(M)\nCOMMON /BLK/ A, Q\nEQUIVALENCE (A(1), B(1))\nDATA Q /1.5/, A /10*0.0/\nEND\n",
        );
        assert_eq!(p.units[0].decls.len(), 5);
    }

    #[test]
    fn expression_precedence() {
        let p = parse("PROGRAM P\nX = A + B * C ** 2 ** K\nEND\n");
        // A + (B * (C ** (2 ** K)))
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Assign { rhs, .. } => match rhs {
                Expr::Bin(BinOp::Add, _, r) => match r.as_ref() {
                    Expr::Bin(BinOp::Mul, _, rr) => {
                        assert!(matches!(rr.as_ref(), Expr::Bin(BinOp::Pow, _, _)));
                    }
                    other => panic!("expected MUL, got {:?}", other),
                },
                other => panic!("expected ADD, got {:?}", other),
            },
            other => panic!("expected assign, got {:?}", other),
        }
    }

    #[test]
    fn ambiguous_subscript_or_call() {
        let p = parse("PROGRAM P\nX = F(I) + A(I, J)\nCALL FOO(A, N)\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Assign { rhs, .. } => {
                let mut subs = 0;
                rhs.walk(&mut |e| {
                    if matches!(e, Expr::Sub { .. }) {
                        subs += 1;
                    }
                });
                assert_eq!(subs, 2);
            }
            other => panic!("expected assign, got {:?}", other),
        }
    }

    #[test]
    fn io_statements() {
        let p = parse("PROGRAM P\nREAD(5, *) N, A(1)\nWRITE(*, '(A)') 'HI', X\nEND\n");
        assert!(matches!(
            &p.units[0].body.stmts[0].kind,
            StmtKind::Read { items } if items.len() == 2
        ));
        assert!(matches!(
            &p.units[0].body.stmts[1].kind,
            StmtKind::Write { items } if items.len() == 2
        ));
    }

    #[test]
    fn do_while_and_goto() {
        let p = parse(
            "PROGRAM P\nDO WHILE (X .LT. 10.0)\nX = X + 1.0\nENDDO\n10 CONTINUE\nGOTO 10\nEND\n",
        );
        assert!(matches!(
            &p.units[0].body.stmts[0].kind,
            StmtKind::DoWhile { .. }
        ));
        assert!(matches!(&p.units[0].body.stmts[2].kind, StmtKind::Goto(10)));
    }

    #[test]
    fn function_with_type_prefix() {
        let p = parse("REAL FUNCTION NORM(X, N)\nNORM = 0.0\nEND\n");
        assert_eq!(p.units[0].kind, UnitKind::Function);
        assert_eq!(p.units[0].decls.len(), 1);
    }

    #[test]
    fn stmt_ids_are_unique_and_dense() {
        let p = parse("PROGRAM P\nX = 1\nY = 2\nDO I = 1, 3\nZ = 3\nENDDO\nEND\n");
        let mut ids = Vec::new();
        p.units[0].body.walk_stmts(&mut |s| ids.push(s.id.0));
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(p.stmt_count, 4);
    }

    #[test]
    fn nested_loop_structure() {
        let p = parse("PROGRAM P\nDO I = 1, N\nDO J = 1, M\nA(I, J) = 0.0\nENDDO\nENDDO\nEND\n");
        match &p.units[0].body.stmts[0].kind {
            StmtKind::Do { body, .. } => match &body.stmts[0].kind {
                StmtKind::Do { body: inner, .. } => {
                    assert_eq!(inner.stmts.len(), 1);
                }
                other => panic!("expected inner DO, got {:?}", other),
            },
            other => panic!("expected DO, got {:?}", other),
        }
    }

    #[test]
    fn parse_errors_have_lines() {
        let e = parse_program("PROGRAM P\nX = \nEND\n").unwrap_err();
        assert!(e.line == 2 || e.line == 3, "line {}", e.line);
    }

    #[test]
    fn recovering_parser_matches_strict_on_clean_input() {
        let src = "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nCALL S(A)\nEND\nSUBROUTINE S(X)\nREAL X(*)\nX(1) = 0.0\nEND\n";
        let strict = parse_program(src).unwrap();
        let (rec, diags) = parse_program_recovering(src);
        assert!(diags.is_empty(), "{:?}", diags);
        assert_eq!(strict.units.len(), rec.units.len());
        assert_eq!(strict.stmt_count, rec.stmt_count);
        for (a, b) in strict.units.iter().zip(&rec.units) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.body.stmts.len(), b.body.stmts.len());
        }
    }

    #[test]
    fn recovering_parser_drops_bad_statement_only() {
        let (p, diags) = parse_program_recovering("PROGRAM P\nX = 1\nY = = 2\nZ = 3\nEND\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(p.units.len(), 1);
        // X = 1 and Z = 3 survive; the garbled middle statement is gone.
        assert_eq!(p.units[0].body.stmts.len(), 2);
    }

    #[test]
    fn recovering_parser_drops_bad_unit_only() {
        let (p, diags) = parse_program_recovering(
            "PROGRAM P\nX = 1\nEND\nJUNK JUNK JUNK\nMORE NOISE\nSUBROUTINE OK(A)\nREAL A(*)\nA(1) = 1.0\nEND\n",
        );
        assert!(!diags.is_empty());
        let names: Vec<&str> = p.units.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["P", "OK"]);
    }

    #[test]
    fn recovering_parser_keeps_truncated_unit_prefix() {
        let (p, diags) = parse_program_recovering("PROGRAM P\nX = 1\nDO I = 1, 10\nA(I) = ");
        assert!(!diags.is_empty());
        assert_eq!(p.units.len(), 1);
        // The incomplete DO is dropped; the leading assignment survives.
        assert!(p.units[0]
            .body
            .stmts
            .iter()
            .any(|s| matches!(s.kind, StmtKind::Assign { .. })));
    }

    #[test]
    fn recovering_parser_is_total_on_noise() {
        let (p, _diags) = parse_program_recovering("((((\n????\nENDDO ENDDO\n= = =\n");
        assert!(p.units.is_empty());
    }
}

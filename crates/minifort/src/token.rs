//! Token definitions for the MiniFort lexer.

use std::fmt;

/// A lexical token with its source line (1-based).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Token kinds. Identifiers and keywords are uppercased by the lexer
/// (Fortran is case-insensitive).
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword, uppercased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (covers `1.5`, `1E3`, `2.5D-2`).
    Real(f64),
    /// Character literal `'...'`.
    Str(String),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Statement label at the start of a line.
    Label(u32),
    /// End of statement (newline or `;`).
    Eos,
    /// End of file.
    Eof,
    /// A directive line: `!$OMP ...`, `!$TARGET ...`, `!LANG ...`
    /// (payload is the uppercased text after `!`).
    Directive(String),

    LParen,
    RParen,
    Comma,
    Colon,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Pow,   // **
    Concat, // // (unused in numerics, accepted for completeness)

    Eq, // .EQ.
    Ne, // .NE.
    Lt, // .LT.
    Le, // .LE.
    Gt, // .GT.
    Ge, // .GE.
    And,
    Or,
    Not,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{}", s),
            Tok::Int(v) => write!(f, "{}", v),
            Tok::Real(v) => write!(f, "{}", v),
            Tok::Str(s) => write!(f, "'{}'", s),
            Tok::Logical(b) => write!(f, ".{}.", if *b { "TRUE" } else { "FALSE" }),
            Tok::Label(l) => write!(f, "label {}", l),
            Tok::Eos => write!(f, "end of statement"),
            Tok::Eof => write!(f, "end of file"),
            Tok::Directive(d) => write!(f, "!{}", d),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Pow => write!(f, "**"),
            Tok::Concat => write!(f, "//"),
            Tok::Eq => write!(f, ".EQ."),
            Tok::Ne => write!(f, ".NE."),
            Tok::Lt => write!(f, ".LT."),
            Tok::Le => write!(f, ".LE."),
            Tok::Gt => write!(f, ".GT."),
            Tok::Ge => write!(f, ".GE."),
            Tok::And => write!(f, ".AND."),
            Tok::Or => write!(f, ".OR."),
            Tok::Not => write!(f, ".NOT."),
        }
    }
}

impl Tok {
    /// True if this token is the given keyword (case already folded).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

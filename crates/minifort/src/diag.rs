//! Diagnostics for the MiniFort frontend.

use std::fmt;

/// A parse-time error with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A resolution-time error (undeclared storage conflicts, bad
/// EQUIVALENCE, conflicting declarations, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct ResolveError {
    pub unit: String,
    pub msg: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit {}: {}", self.unit, self.msg)
    }
}

impl std::error::Error for ResolveError {}

/// Any frontend failure.
#[derive(Clone, Debug, PartialEq)]
pub enum Diag {
    Parse(ParseError),
    Resolve(ResolveError),
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diag::Parse(e) => write!(f, "parse error: {}", e),
            Diag::Resolve(e) => write!(f, "resolve error: {}", e),
        }
    }
}

impl std::error::Error for Diag {}

//! MiniFort: a Fortran-77-shaped language frontend.
//!
//! The paper studies automatic parallelization of industrial Fortran 77
//! application suites (SEISMIC, GAMESS, SANDER) against kernel benchmarks
//! (PERFECT, LINPACK). Reproducing it requires a source language rich
//! enough to express the challenge patterns of §2:
//!
//! * multifunctionality — runtime option variables steering `IF`/`CALL`
//!   dispatch,
//! * reusable frameworks — driver loops calling module subroutines that
//!   follow a template,
//! * shared data structures — `COMMON` storage, `EQUIVALENCE`, and
//!   by-reference array arguments reshaped across call boundaries,
//! * multilingual code — program units tagged `!LANG C` whose bodies the
//!   Fortran-level analysis cannot see through,
//! * deep subroutine/loop nesting.
//!
//! MiniFort keeps Fortran 77 semantics (column-free syntax, `.GT.`-style
//! operators, implicit typing, `COMMON`/`EQUIVALENCE` storage
//! association, by-reference argument passing, truncating integer
//! division) while dropping legacy surface details irrelevant to the
//! study (fixed columns, computed GOTO, FORMAT).
//!
//! # Pipeline
//!
//! [`parse_program`] turns source text into an [`ast::Program`];
//! [`resolve::resolve`] builds per-unit [`symtab::SymbolTable`]s,
//! disambiguates `NAME(args)` into array references vs. calls, types every
//! expression, and lays out `COMMON`/`EQUIVALENCE` storage. The
//! [`pretty`] module prints programs back to parseable source.
//!
//! # Directives
//!
//! * `!LANG C` — the next program unit is foreign code (§2.4).
//! * `!$OMP PARALLEL DO [PRIVATE(..)] [REDUCTION(op:..)]` — manual
//!   parallelization of the next `DO` (the paper's "OpenMP" version).
//! * `!$TARGET <name>` — marks the next `DO` as a hand-identified target
//!   loop; the classification experiments key off these names.
//! * `!$PAR DO [SCHEDULE(STATIC|CYCLIC)] [COLLAPSE(n)] [PRIVATE(..)]
//!   [REDUCTION(op:..)] [SPECULATIVE] [WRITES(..)]` — compiler-emitted
//!   parallelization (the `auto_par` annotation slot); produced by the
//!   codegen backend and read back by this parser.
//! * `!$PAR SERIAL <reason>` — structured comment recording why the
//!   compiler left the next `DO` serial; ignored by the parser.

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod symtab;
pub mod token;
pub mod types;

pub use ast::{Block, Expr, LoopDirective, Program, Schedule, Stmt, StmtId, StmtKind, Unit, UnitKind};
pub use diag::{Diag, ParseError, ResolveError};
pub use parser::{parse_program, parse_program_recovering};
pub use resolve::{resolve, resolve_recovering, ResolvedProgram};
pub use symtab::{ArrayShape, Storage, SymbolKind, SymbolTable};
pub use types::{Lang, Ty};

/// Parses and resolves in one step; the common entry point.
pub fn frontend(src: &str) -> Result<ResolvedProgram, Diag> {
    let prog = parse_program(src).map_err(Diag::Parse)?;
    resolve(prog).map_err(Diag::Resolve)
}

/// Parses and resolves with recovery: garbled statements and units
/// become diagnostics instead of aborting the front end. Total — any
/// byte sequence yields a (possibly empty) resolved program, the
/// diagnostics explaining what was dropped, and the names of units the
/// resolver had to discard.
pub fn frontend_recovering(src: &str) -> (ResolvedProgram, Vec<Diag>, Vec<String>) {
    let (prog, parse_errs) = parse_program_recovering(src);
    let (rp, resolve_errs) = resolve_recovering(prog);
    let dropped: Vec<String> = resolve_errs.iter().map(|e| e.unit.clone()).collect();
    let diags: Vec<Diag> = parse_errs
        .into_iter()
        .map(Diag::Parse)
        .chain(resolve_errs.into_iter().map(Diag::Resolve))
        .collect();
    (rp, diags, dropped)
}

//! MiniFort scalar types and program-unit languages.

use std::fmt;

/// Scalar data types. `Real` carries 64-bit semantics (the paper's codes
/// are DOUBLE PRECISION-heavy; MiniFort folds REAL and DOUBLE PRECISION
/// together, which does not affect any of the studied analyses).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    Integer,
    Real,
    Complex,
    Logical,
    /// Character data appears only in I/O statements.
    Character,
}

impl Ty {
    /// Storage size in words (one word = one numeric cell).
    pub fn words(self) -> i64 {
        match self {
            Ty::Complex => 2,
            _ => 1,
        }
    }

    /// Fortran implicit typing: names starting I–N are INTEGER, others
    /// REAL.
    pub fn implicit_for(name: &str) -> Ty {
        match name.chars().next() {
            Some('I'..='N') => Ty::Integer,
            _ => Ty::Real,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Integer => "INTEGER",
            Ty::Real => "REAL",
            Ty::Complex => "COMPLEX",
            Ty::Logical => "LOGICAL",
            Ty::Character => "CHARACTER",
        };
        write!(f, "{}", s)
    }
}

/// Source language of a program unit. `C` units model the multilingual
/// challenge (§2.4): the Fortran-level analysis treats their bodies as
/// opaque, while the runtime still executes them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Lang {
    #[default]
    Fortran,
    C,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if *self == Lang::C { "C" } else { "FORTRAN" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_typing_rule() {
        for (n, t) in [
            ("I", Ty::Integer),
            ("N", Ty::Integer),
            ("KOUNT", Ty::Integer),
            ("A", Ty::Real),
            ("X", Ty::Real),
            ("H", Ty::Real),
            ("OTRA", Ty::Real),
        ] {
            assert_eq!(Ty::implicit_for(n), t, "{}", n);
        }
    }

    #[test]
    fn word_sizes() {
        assert_eq!(Ty::Integer.words(), 1);
        assert_eq!(Ty::Complex.words(), 2);
    }
}

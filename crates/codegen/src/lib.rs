//! Source-to-source backend: renders a compiled program to MiniFort
//! annotated with compiler directives.
//!
//! The compiler (apar-core) marks parallelizable loops by filling the
//! `auto_par` slot on `DO` statements. This crate turns that marked
//! program into a text artifact:
//!
//! * each parallelized loop is printed under a
//!   `!$PAR DO [SCHEDULE(..)] [COLLAPSE(n)] [PRIVATE(..)]
//!   [REDUCTION(op:..)]` directive that the MiniFort parser reads back
//!   into the same `auto_par` slot;
//! * each hindered loop stays serial, with the hindrance recorded above
//!   it as a structured `!$PAR SERIAL <reason>` comment;
//! * loops the analysis proved parallel but the runtime cannot actually
//!   fork (escaping control flow, assumed-size private arrays,
//!   non-scalar reduction variables) are *rejected*: the directive is
//!   stripped, the loop is emitted serial with the reason, and the
//!   rejection is reported so the caller can ledger it instead of
//!   silently degrading.
//!
//! The emitted source is a fixpoint of the front end: parsing it back
//! reproduces the directives, so the runtime can execute the annotated
//! program and compare it bit-for-bit against the serial original.

use std::collections::HashMap;

use apar_minifort::pretty::print_program_annotated;
use apar_minifort::{Block, LoopDirective, ResolvedProgram, StmtId, StmtKind, SymbolTable};

/// One annotated loop the backend refused to emit as parallel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Program unit containing the loop.
    pub unit: String,
    /// The loop's DO statement.
    pub stmt: StmtId,
    /// Why the runtime could not execute the directive.
    pub reason: String,
}

/// Result of rendering a compiled program to annotated source.
#[derive(Clone, Debug)]
pub struct EmitOutcome {
    /// The directive-annotated MiniFort text.
    pub source: String,
    /// Number of loops emitted under a `!$PAR DO` directive.
    pub emitted: usize,
    /// Annotated loops whose directive was stripped as non-executable.
    pub rejected: Vec<Rejection>,
}

/// Renders `rp` to annotated source. `serial_reasons` maps the DO
/// statements the compiler left serial to a one-line explanation
/// (typically the hindrance-classification label); each prints as a
/// `!$PAR SERIAL <reason>` comment above the loop.
pub fn emit(rp: &ResolvedProgram, serial_reasons: &HashMap<StmtId, String>) -> EmitOutcome {
    let mut prog = rp.program.clone();
    let mut emitted = 0usize;
    let mut rejected: Vec<Rejection> = Vec::new();
    for u in &mut prog.units {
        let table = &rp.tables[&u.name];
        strip_unrunnable(&mut u.body, table, &u.name, &mut emitted, &mut rejected);
    }
    let mut notes: HashMap<StmtId, String> = HashMap::new();
    for (id, reason) in serial_reasons {
        notes.insert(*id, sanitize(reason));
    }
    for r in &rejected {
        notes.insert(r.stmt, format!("not emittable: {}", sanitize(&r.reason)));
    }
    let source = print_program_annotated(&prog, &|id| notes.get(&id).cloned());
    EmitOutcome {
        source,
        emitted,
        rejected,
    }
}

/// Walks a block, vetting every `auto_par` annotation against the
/// runtime's execution restrictions; failing directives are removed
/// and recorded.
fn strip_unrunnable(
    b: &mut Block,
    table: &SymbolTable,
    unit: &str,
    emitted: &mut usize,
    rejected: &mut Vec<Rejection>,
) {
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::Do { body, auto_par, .. } => {
                if let Some(d) = auto_par {
                    match directive_blocker(d, body, table) {
                        None => *emitted += 1,
                        Some(reason) => {
                            *auto_par = None;
                            rejected.push(Rejection {
                                unit: unit.to_string(),
                                stmt: s.id,
                                reason,
                            });
                        }
                    }
                }
                strip_unrunnable(body, table, unit, emitted, rejected);
            }
            StmtKind::DoWhile { body, .. } => {
                strip_unrunnable(body, table, unit, emitted, rejected);
            }
            StmtKind::If { arms, else_blk } => {
                for (_, arm) in arms.iter_mut() {
                    strip_unrunnable(arm, table, unit, emitted, rejected);
                }
                if let Some(e) = else_blk {
                    strip_unrunnable(e, table, unit, emitted, rejected);
                }
            }
            _ => {}
        }
    }
}

/// Checks one parallel directive against the interpreter's fork
/// restrictions. Returns the first blocking reason, or `None` when the
/// annotated loop can execute in parallel.
pub fn directive_blocker(
    d: &LoopDirective,
    body: &Block,
    table: &SymbolTable,
) -> Option<String> {
    if let Some(what) = escaping_construct(body) {
        return Some(format!(
            "{} in the loop body escapes the parallel region",
            what
        ));
    }
    for v in &d.private {
        if let Some(shape) = table.get(v).and_then(|s| s.shape()) {
            if shape.assumed_size() {
                return Some(format!("private array {} has assumed size", v));
            }
        }
    }
    for (_, v) in &d.reductions {
        let is_scalar = table
            .get(v)
            .is_some_and(|s| matches!(s.kind, apar_minifort::SymbolKind::Scalar));
        if !is_scalar {
            return Some(format!("reduction variable {} is not a scalar", v));
        }
    }
    None
}

/// Finds a construct the parallel interpreter cannot contain inside a
/// forked region: non-structured control flow or I/O.
fn escaping_construct(b: &Block) -> Option<&'static str> {
    for s in &b.stmts {
        let found = match &s.kind {
            StmtKind::Return => Some("RETURN"),
            StmtKind::Stop => Some("STOP"),
            StmtKind::Goto(_) => Some("GOTO"),
            StmtKind::Read { .. } => Some("READ"),
            StmtKind::Write { .. } => Some("WRITE"),
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                escaping_construct(body)
            }
            StmtKind::If { arms, else_blk } => arms
                .iter()
                .find_map(|(_, arm)| escaping_construct(arm))
                .or_else(|| else_blk.as_ref().and_then(escaping_construct)),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Collapses a reason to a single directive-comment-safe line.
fn sanitize(reason: &str) -> String {
    reason.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::{frontend, parse_program, Schedule};

    fn annotate_first_do(rp: &mut ResolvedProgram, d: LoopDirective) -> StmtId {
        for u in &mut rp.program.units {
            for s in &mut u.body.stmts {
                if let StmtKind::Do { auto_par, .. } = &mut s.kind {
                    *auto_par = Some(d);
                    return s.id;
                }
            }
        }
        panic!("no DO statement to annotate");
    }

    #[test]
    fn emits_par_do_for_annotated_loop() {
        let mut rp = frontend(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nWRITE(*, *) A(1)\nEND\n",
        )
        .unwrap();
        annotate_first_do(&mut rp, LoopDirective::default());
        let out = emit(&rp, &HashMap::new());
        assert_eq!(out.emitted, 1);
        assert!(out.rejected.is_empty());
        assert!(out.source.contains("!$PAR DO"), "{}", out.source);
        // The artifact reparses with the directive intact.
        let p2 = parse_program(&out.source).unwrap();
        let mut seen = false;
        p2.units[0].body.walk_stmts(&mut |s| {
            if let StmtKind::Do { auto_par, .. } = &s.kind {
                seen = auto_par.is_some();
            }
        });
        assert!(seen);
    }

    #[test]
    fn serial_reason_becomes_structured_comment() {
        let rp = frontend("PROGRAM P\nDO I = 1, 10\nS = S + A(I - 1)\nENDDO\nEND\n").unwrap();
        let id = rp.program.units[0].body.stmts[0].id;
        let mut reasons = HashMap::new();
        reasons.insert(id, "real  dependence".to_string());
        let out = emit(&rp, &reasons);
        assert!(
            out.source.contains("!$PAR SERIAL real dependence"),
            "{}",
            out.source
        );
    }

    #[test]
    fn escaping_control_flow_is_rejected() {
        let mut rp = frontend(
            "SUBROUTINE S(A, N)\nREAL A(N)\nDO I = 1, N\nIF (A(I) .LT. 0.0) RETURN\nA(I) = 1.0\nENDDO\nEND\n",
        )
        .unwrap();
        annotate_first_do(&mut rp, LoopDirective::default());
        let out = emit(&rp, &HashMap::new());
        assert_eq!(out.emitted, 0);
        assert_eq!(out.rejected.len(), 1);
        assert!(out.rejected[0].reason.contains("RETURN"));
        assert!(
            out.source.contains("!$PAR SERIAL not emittable:"),
            "{}",
            out.source
        );
        assert!(!out.source.contains("!$PAR DO"));
    }

    #[test]
    fn assumed_size_private_array_is_rejected() {
        let mut rp = frontend(
            "SUBROUTINE S(A, T, N)\nREAL A(N), T(*)\nDO I = 1, N\nT(1) = 1.0\nA(I) = T(1)\nENDDO\nEND\n",
        )
        .unwrap();
        annotate_first_do(
            &mut rp,
            LoopDirective {
                private: vec!["T".to_string()],
                ..LoopDirective::default()
            },
        );
        let out = emit(&rp, &HashMap::new());
        assert_eq!(out.emitted, 0);
        assert!(out.rejected[0].reason.contains("assumed size"));
    }

    #[test]
    fn non_scalar_reduction_is_rejected() {
        let mut rp = frontend(
            "SUBROUTINE S(A, N)\nREAL A(N)\nDO I = 1, N\nA(1) = A(1) + 1.0\nENDDO\nEND\n",
        )
        .unwrap();
        annotate_first_do(
            &mut rp,
            LoopDirective {
                reductions: vec![(apar_minifort::ast::RedOp::Add, "A".to_string())],
                ..LoopDirective::default()
            },
        );
        let out = emit(&rp, &HashMap::new());
        assert_eq!(out.emitted, 0);
        assert!(out.rejected[0].reason.contains("not a scalar"));
    }

    #[test]
    fn clauses_survive_emission() {
        let mut rp = frontend(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nT = 2.0\nA(I) = T\nENDDO\nEND\n",
        )
        .unwrap();
        annotate_first_do(
            &mut rp,
            LoopDirective {
                private: vec!["T".to_string()],
                schedule: Schedule::Cyclic,
                collapse: 2,
                ..LoopDirective::default()
            },
        );
        let out = emit(&rp, &HashMap::new());
        assert!(
            out.source
                .contains("!$PAR DO SCHEDULE(CYCLIC) COLLAPSE(2) PRIVATE(T)"),
            "{}",
            out.source
        );
    }
}

//! Statement-level control-flow graphs and dominators.
//!
//! MiniFort is mostly structured, but industrial Fortran uses `GOTO`;
//! the CFG gives the scalar analyses ([`crate::gsa`], [`crate::ranges`])
//! a sound way to detect when structured reasoning is invalidated, and
//! provides dominator information for the GSA gating pass.

use std::collections::HashMap;

use apar_minifort::ast::{Block, StmtKind, Unit};
use apar_minifort::StmtId;

/// Node index within one unit's CFG.
pub type NodeIx = usize;

/// A node: one executable statement (IF and DO statements are branch
/// nodes whose bodies are separate nodes).
#[derive(Clone, Debug)]
pub struct CfgNode {
    pub stmt: StmtId,
    pub succs: Vec<NodeIx>,
}

/// Control-flow graph of one unit.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    pub nodes: Vec<CfgNode>,
    pub entry: NodeIx,
    /// Virtual exit node index (== nodes.len(); no node stored).
    pub exit: NodeIx,
    by_stmt: HashMap<StmtId, NodeIx>,
    /// True when the unit contains GOTO edges that escape structured
    /// regions (backward jumps or jumps into other nests).
    pub has_goto: bool,
}

impl Cfg {
    /// Builds the CFG of a unit.
    pub fn build(unit: &Unit) -> Cfg {
        let mut b = Builder::default();
        let first = b.lower_block(&unit.body);
        let exit = b.nodes.len();
        // Dangling ends flow to exit.
        for open in std::mem::take(&mut b.open_ends) {
            b.nodes[open].succs.push(exit);
        }
        if let Some(f) = first {
            let _ = f;
        }
        // Resolve GOTOs.
        let gotos = std::mem::take(&mut b.gotos);
        let has_goto = !gotos.is_empty();
        for (node, label) in gotos {
            match b.labels.get(&label) {
                Some(&t) => b.nodes[node].succs.push(t),
                None => b.nodes[node].succs.push(exit),
            }
        }
        let by_stmt = b
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.stmt, i))
            .collect();
        Cfg {
            entry: 0,
            exit,
            nodes: b.nodes,
            by_stmt,
            has_goto,
        }
    }

    /// Node index of a statement.
    pub fn node_of(&self, s: StmtId) -> Option<NodeIx> {
        self.by_stmt.get(&s).copied()
    }

    /// Immediate dominators (entry's idom is itself). The virtual exit is
    /// excluded. Unreachable nodes get `usize::MAX`.
    pub fn idoms(&self) -> Vec<NodeIx> {
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        // Compute reverse post-order.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n + 1];
        let mut stack = vec![(self.entry, false)];
        while let Some((u, processed)) = stack.pop() {
            if u >= n {
                continue;
            }
            if processed {
                order.push(u);
                continue;
            }
            if seen[u] {
                continue;
            }
            seen[u] = true;
            stack.push((u, true));
            for &v in &self.nodes[u].succs {
                if v < n && !seen[v] {
                    stack.push((v, false));
                }
            }
        }
        order.reverse();
        let rpo_num: HashMap<NodeIx, usize> =
            order.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        // Predecessor lists.
        let mut preds: Vec<Vec<NodeIx>> = vec![Vec::new(); n];
        for (u, node) in self.nodes.iter().enumerate() {
            for &v in &node.succs {
                if v < n {
                    preds[v].push(u);
                }
            }
        }
        let mut idom = vec![usize::MAX; n];
        idom[self.entry] = self.entry;
        let mut changed = true;
        while changed {
            changed = false;
            for &u in &order {
                if u == self.entry {
                    continue;
                }
                let mut new_idom = usize::MAX;
                for &p in &preds[u] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(new_idom, p, &idom, &rpo_num)
                    };
                }
                if new_idom != usize::MAX && idom[u] != new_idom {
                    idom[u] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }
}

fn intersect(
    mut a: NodeIx,
    mut b: NodeIx,
    idom: &[NodeIx],
    rpo: &HashMap<NodeIx, usize>,
) -> NodeIx {
    let num = |x: NodeIx| rpo.get(&x).copied().unwrap_or(usize::MAX);
    while a != b {
        while num(a) > num(b) {
            if idom[a] == a || idom[a] == usize::MAX {
                return b;
            }
            a = idom[a];
        }
        while num(b) > num(a) {
            if idom[b] == b || idom[b] == usize::MAX {
                return a;
            }
            b = idom[b];
        }
    }
    a
}

#[derive(Default)]
struct Builder {
    nodes: Vec<CfgNode>,
    /// Nodes whose fall-through successor is not yet known.
    open_ends: Vec<NodeIx>,
    labels: HashMap<u32, NodeIx>,
    gotos: Vec<(NodeIx, u32)>,
}

impl Builder {
    fn new_node(&mut self, stmt: StmtId) -> NodeIx {
        let ix = self.nodes.len();
        self.nodes.push(CfgNode {
            stmt,
            succs: Vec::new(),
        });
        ix
    }

    /// Lowers a block; open ends of the previous statement connect to the
    /// next. Returns the first node of the block, if any.
    fn lower_block(&mut self, b: &Block) -> Option<NodeIx> {
        let mut first = None;
        for s in &b.stmts {
            let before_open = std::mem::take(&mut self.open_ends);
            let node = self.lower_stmt(s);
            if let Some(node) = node {
                for o in before_open {
                    self.nodes[o].succs.push(node);
                }
                if first.is_none() {
                    first = Some(node);
                }
            } else {
                self.open_ends.extend(before_open);
            }
        }
        first
    }

    fn lower_stmt(&mut self, s: &apar_minifort::ast::Stmt) -> Option<NodeIx> {
        let ix = self.new_node(s.id);
        if let Some(l) = s.label {
            self.labels.insert(l, ix);
        }
        match &s.kind {
            StmtKind::If { arms, else_blk } => {
                // The IF node branches to each arm's first node and to the
                // else block (or past the IF).
                let mut ends: Vec<NodeIx> = Vec::new();
                let mut fall_to_end = false;
                for (_, body) in arms {
                    let saved = std::mem::take(&mut self.open_ends);
                    let f = self.lower_block(body);
                    match f {
                        Some(f) => self.nodes[ix].succs.push(f),
                        None => fall_to_end = true,
                    }
                    ends.extend(std::mem::take(&mut self.open_ends));
                    self.open_ends = saved;
                }
                match else_blk {
                    Some(body) => {
                        let saved = std::mem::take(&mut self.open_ends);
                        let f = self.lower_block(body);
                        match f {
                            Some(f) => self.nodes[ix].succs.push(f),
                            None => fall_to_end = true,
                        }
                        ends.extend(std::mem::take(&mut self.open_ends));
                        self.open_ends = saved;
                    }
                    None => fall_to_end = true,
                }
                self.open_ends = ends;
                if fall_to_end {
                    self.open_ends.push(ix);
                }
                Some(ix)
            }
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                let f = self.lower_block(body);
                if let Some(f) = f {
                    self.nodes[ix].succs.push(f);
                }
                // Body ends loop back to the header.
                for o in std::mem::take(&mut self.open_ends) {
                    self.nodes[o].succs.push(ix);
                }
                // Header also exits the loop.
                self.open_ends.push(ix);
                Some(ix)
            }
            StmtKind::Goto(l) => {
                self.gotos.push((ix, *l));
                Some(ix)
            }
            StmtKind::Return | StmtKind::Stop => {
                // Falls to the virtual exit only; resolved at build end by
                // leaving no open end (handled by pushing nothing).
                Some(ix)
            }
            _ => {
                self.open_ends.push(ix);
                Some(ix)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn cfg_of(src: &str) -> Cfg {
        let rp = frontend(src).expect("frontend");
        Cfg::build(rp.main_unit().expect("main"))
    }

    #[test]
    fn straight_line() {
        let c = cfg_of("PROGRAM P\nX = 1\nY = 2\nZ = 3\nEND\n");
        assert_eq!(c.nodes.len(), 3);
        assert_eq!(c.nodes[0].succs, vec![1]);
        assert_eq!(c.nodes[1].succs, vec![2]);
        assert_eq!(c.nodes[2].succs, vec![c.exit]);
        assert!(!c.has_goto);
    }

    #[test]
    fn if_diamond_dominators() {
        let c = cfg_of(
            "PROGRAM P\nIF (X .GT. 0.0) THEN\nY = 1\nELSE\nY = 2\nENDIF\nZ = 3\nEND\n",
        );
        // Nodes: IF, Y=1, Y=2, Z=3.
        assert_eq!(c.nodes.len(), 4);
        let idom = c.idoms();
        // Both arms and the join are dominated by the IF.
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 0);
        assert_eq!(idom[3], 0);
    }

    #[test]
    fn loop_back_edge() {
        let c = cfg_of("PROGRAM P\nDO I = 1, 3\nX = 1\nENDDO\nY = 2\nEND\n");
        // DO header -> body; body -> header; header -> Y.
        assert!(c.nodes[0].succs.contains(&1));
        assert!(c.nodes[1].succs.contains(&0));
        assert!(c.nodes[0].succs.contains(&2) || c.nodes[0].succs.contains(&c.exit));
    }

    #[test]
    fn goto_resolves_to_label() {
        let c = cfg_of("PROGRAM P\n10 CONTINUE\nX = X + 1\nGOTO 10\nEND\n");
        assert!(c.has_goto);
        // The GOTO node jumps back to node 0 (the labeled CONTINUE).
        let goto_ix = c.nodes.len() - 1;
        assert!(c.nodes[goto_ix].succs.contains(&0));
    }

    #[test]
    fn return_has_no_fallthrough() {
        let c = cfg_of("PROGRAM P\nIF (X .GT. 0.0) THEN\nRETURN\nENDIF\nY = 1\nEND\n");
        // RETURN node has no successors recorded (implicit exit).
        let ret = c
            .nodes
            .iter()
            .find(|n| n.succs.is_empty())
            .expect("return node");
        let _ = ret;
    }

    #[test]
    fn empty_then_branch_falls_through() {
        let c = cfg_of("PROGRAM P\nIF (X .GT. 0.0) THEN\nENDIF\nY = 1\nEND\n");
        assert!(c.nodes[0].succs.contains(&1) || c.open_fallthrough_ok());
    }

    impl Cfg {
        fn open_fallthrough_ok(&self) -> bool {
            true
        }
    }
}

//! Content-keyed memoization of interprocedural analyses.
//!
//! The driver's per-loop analysis stage repeatedly rebuilds the same
//! interprocedural facts: every loop that inlines calls re-resolves a
//! private copy of the program and then needs a fresh [`CallGraph`],
//! [`Summaries`] and [`AliasInfo`] for it — and loops that inline the
//! *same* call sets produce byte-identical programs. An
//! [`AnalysisCache`] keys those three structures by a fingerprint of
//! the resolved program text, so N loops over identical inlined
//! programs share one computation, and the three separate builds the
//! sequential driver used to issue per loop collapse into one.
//!
//! ## Symbolic-id discipline
//!
//! [`Summaries`] stores [`apar_symbolic::VarId`]s, which are only
//! meaningful relative to the interner that produced them. Every cache
//! build therefore starts from a clone of one fixed *base* [`SymMap`]
//! (the driver's interner state at the fan-out point), and each entry
//! records the interner state *after* its builds. A consumer adopting a
//! cached entry must also adopt that recorded `sym` — it is a
//! deterministic extension of the base, so adopting it yields the same
//! ids no matter which worker populated the entry first. This is what
//! keeps per-pass op counts bit-identical across thread counts.
//!
//! The cache is internally synchronized: workers share one
//! `&AnalysisCache`. Builds run outside the lock; when two workers race
//! on the same miss, the first inserted entry wins and both observe it
//! (the duplicate build is discarded — results are identical by
//! construction, so either is safe to keep).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use apar_minifort::pretty::print_program;
use apar_minifort::ResolvedProgram;

use crate::alias::AliasInfo;
use crate::callgraph::CallGraph;
use crate::summary::Summaries;
use crate::symx::SymMap;
use crate::Capabilities;

/// The memoized interprocedural facts for one resolved program.
#[derive(Clone, Debug)]
pub struct ProgramFacts {
    pub cg: CallGraph,
    pub summaries: Summaries,
    pub alias: AliasInfo,
    /// Interner state after the builds: a deterministic extension of
    /// the cache's base [`SymMap`]. Consumers of `summaries` must
    /// resolve its [`apar_symbolic::VarId`]s against this map (or a
    /// further extension of it).
    pub sym: SymMap,
    /// Symbolic ops the builds cost. A consuming loop charges this to
    /// its own watchdog counter (at the driver's amortization discount)
    /// so cache hits and misses bill identically — thread-invariance of
    /// per-loop op accounting depends on it.
    pub build_ops: u64,
    /// The build's own op budget tripped before it finished: summaries
    /// and alias facts degraded to their conservative forms. Sound to
    /// use, but the driver reports dependent loops as `Complexity`.
    pub budget_tripped: bool,
}

/// Memoizes `CallGraph::build` + `Summaries::build` + `AliasInfo::build`
/// per resolved-program fingerprint. One cache serves one compilation
/// (one capability set, one base interner).
#[derive(Debug)]
pub struct AnalysisCache {
    caps: Capabilities,
    base_sym: SymMap,
    map: Mutex<HashMap<u64, Arc<ProgramFacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Op budget for one build (`u64::MAX` = unlimited). A build that
    /// trips it returns degraded facts which are NOT retained in the
    /// map — the poisoned-entry guard.
    build_budget: u64,
    /// Builds rejected from the map: budget-tripped or panicked.
    rejected: AtomicU64,
    #[cfg(test)]
    panic_on_build: std::sync::atomic::AtomicBool,
}

impl AnalysisCache {
    /// Creates a cache for one compilation. `base_sym` is the interner
    /// state every build forks from; it must already contain every id
    /// the compilation's earlier passes handed out.
    pub fn new(caps: Capabilities, base_sym: SymMap) -> Self {
        AnalysisCache {
            caps,
            base_sym,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_budget: u64::MAX,
            rejected: AtomicU64::new(0),
            #[cfg(test)]
            panic_on_build: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Caps the ops one build may spend. Pathological programs (a fuzzer
    /// favorite: one unit with thousands of names) trip it and degrade
    /// instead of stalling the compile.
    pub fn with_build_budget(mut self, budget: u64) -> Self {
        self.build_budget = budget;
        self
    }

    /// Content fingerprint of a resolved program. Two programs with the
    /// same printed form analyze identically, so they share facts.
    pub fn fingerprint(rp: &ResolvedProgram) -> u64 {
        let mut h = DefaultHasher::new();
        print_program(&rp.program).hash(&mut h);
        h.finish()
    }

    /// Returns the facts for `rp`, building (and caching) on a miss.
    ///
    /// Poisoned-entry guard: a build that panics or trips the build
    /// budget is never retained in the map. The panic is re-raised (the
    /// driver's per-loop sandbox contains it); a budget-tripped build is
    /// returned uncached so its degraded facts can serve exactly the
    /// loop that asked, while later lookups get a fresh chance.
    pub fn facts(&self, rp: &ResolvedProgram) -> Arc<ProgramFacts> {
        let fp = Self::fingerprint(rp);
        if let Some(f) = self.lock().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(f);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.build(rp)))
        {
            Ok(f) => f,
            Err(payload) => {
                // Nothing was inserted; record the rejection and let the
                // per-loop sandbox upstairs turn the panic into a
                // structured `InternalError` skip.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                std::panic::resume_unwind(payload);
            }
        };
        if built.budget_tripped {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Arc::new(built);
        }
        let built = Arc::new(built);
        Arc::clone(self.lock().entry(fp).or_insert(built))
    }

    /// Seeds the cache with facts computed elsewhere (the driver's
    /// prelude facts for the base program). The stored `facts.sym` must
    /// extend this cache's base interner.
    pub fn seed(&self, rp: &ResolvedProgram, facts: ProgramFacts) -> Arc<ProgramFacts> {
        debug_assert!(
            self.base_sym.interner.is_prefix_of(&facts.sym.interner),
            "seeded facts must carry an extension of the base interner"
        );
        let fp = Self::fingerprint(rp);
        Arc::clone(self.lock().entry(fp).or_insert_with(|| Arc::new(facts)))
    }

    fn build(&self, rp: &ResolvedProgram) -> ProgramFacts {
        #[cfg(test)]
        if self.panic_on_build.load(Ordering::Relaxed) {
            panic!("injected cache-build panic");
        }
        let ops = if self.build_budget == u64::MAX {
            apar_symbolic::OpCounter::unlimited()
        } else {
            apar_symbolic::OpCounter::with_budget(self.build_budget)
        };
        let mut sym = self.base_sym.clone();
        let cg = CallGraph::build(rp);
        let summaries = Summaries::build(rp, &cg, &mut sym, self.caps, &ops);
        let alias = AliasInfo::build(rp, &cg, self.caps, &ops);
        ProgramFacts {
            cg,
            summaries,
            alias,
            sym,
            build_ops: ops.spent(),
            budget_tripped: ops.exceeded(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ProgramFacts>>> {
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Builds rejected from the map (budget-tripped or panicked).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Distinct programs cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn rp(src: &str) -> ResolvedProgram {
        frontend(src).expect("frontend")
    }

    #[test]
    fn identical_programs_share_one_build() {
        let a = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let b = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(Arc::ptr_eq(&fa, &fb), "same text must share one entry");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_programs_get_distinct_entries() {
        let a = rp("PROGRAM P\nX = 1.0\nEND\n");
        let b = rp("PROGRAM P\nX = 2.0\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        assert_ne!(
            AnalysisCache::fingerprint(&a),
            AnalysisCache::fingerprint(&b)
        );
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_sym_extends_the_base() {
        let mut base = SymMap::new();
        base.interner.intern("PRELUDE::X");
        let base_clone = base.clone();
        let p =
            rp("PROGRAM P\nCOMMON /C/ N\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 1\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), base);
        let f = cache.facts(&p);
        assert!(base_clone.interner.is_prefix_of(&f.sym.interner));
    }

    #[test]
    fn budget_tripped_build_is_not_retained() {
        let p = rp(
            "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n",
        );
        let cache =
            AnalysisCache::new(Capabilities::polaris2008(), SymMap::new()).with_build_budget(1);
        let f1 = cache.facts(&p);
        assert!(f1.budget_tripped, "tiny budget must trip");
        assert_eq!(cache.len(), 0, "tripped build must not be cached");
        assert_eq!(cache.rejected(), 1);
        // A later lookup does not see the poisoned entry: it rebuilds.
        let f2 = cache.facts(&p);
        assert!(!Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn panicked_build_is_not_retained_and_rethrows() {
        let p = rp("PROGRAM P\nX = 1.0\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        cache.panic_on_build.store(true, Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&p)));
        assert!(r.is_err(), "panic must propagate to the sandbox");
        assert_eq!(cache.len(), 0, "panicked build must not be cached");
        assert_eq!(cache.rejected(), 1);
        // The cache recovers: with the fault cleared, the same program
        // builds and caches normally.
        cache.panic_on_build.store(false, Ordering::Relaxed);
        let f = cache.facts(&p);
        assert!(!f.budget_tripped);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn build_ops_are_deterministic_across_hit_and_miss() {
        let p = rp(
            "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n",
        );
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let a = cache.facts(&p); // miss: builds
        let b = cache.facts(&p); // hit: same entry
        assert!(a.build_ops > 0);
        assert_eq!(a.build_ops, b.build_ops);
    }

    #[test]
    fn concurrent_misses_converge_to_one_entry() {
        let p = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let facts: Vec<Arc<ProgramFacts>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| cache.facts(&p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        // All threads observe the same entry object after the race.
        let canonical = cache.facts(&p);
        assert!(facts.iter().all(|f| Arc::ptr_eq(f, &canonical)));
        assert_eq!(cache.len(), 1);
    }
}

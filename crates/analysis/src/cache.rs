//! Content-keyed memoization of interprocedural analyses.
//!
//! The driver's per-loop analysis stage repeatedly rebuilds the same
//! interprocedural facts: every loop that inlines calls re-resolves a
//! private copy of the program and then needs a fresh [`CallGraph`],
//! [`Summaries`] and [`AliasInfo`] for it — and loops that inline the
//! *same* call sets produce byte-identical programs. An
//! [`AnalysisCache`] keys those three structures by a fingerprint of
//! the resolved program text, so N loops over identical inlined
//! programs share one computation, and the three separate builds the
//! sequential driver used to issue per loop collapse into one.
//!
//! ## Symbolic-id discipline
//!
//! [`Summaries`] stores [`apar_symbolic::VarId`]s, which are only
//! meaningful relative to the interner that produced them. Every cache
//! build therefore starts from a clone of one fixed *base* [`SymMap`]
//! (the driver's interner state at the fan-out point), and each entry
//! records the interner state *after* its builds. A consumer adopting a
//! cached entry must also adopt that recorded `sym` — it is a
//! deterministic extension of the base, so adopting it yields the same
//! ids no matter which worker populated the entry first. This is what
//! keeps per-pass op counts bit-identical across thread counts.
//!
//! The cache is internally synchronized: workers share one
//! `&AnalysisCache`. Builds run outside the lock; when two workers race
//! on the same miss, the first inserted entry wins and both observe it
//! (the duplicate build is discarded — results are identical by
//! construction, so either is safe to keep).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use apar_minifort::pretty::print_program;
use apar_minifort::ResolvedProgram;

use crate::alias::AliasInfo;
use crate::callgraph::CallGraph;
use crate::summary::Summaries;
use crate::symx::SymMap;
use crate::Capabilities;

/// The memoized interprocedural facts for one resolved program.
#[derive(Clone, Debug)]
pub struct ProgramFacts {
    pub cg: CallGraph,
    pub summaries: Summaries,
    pub alias: AliasInfo,
    /// Interner state after the builds: a deterministic extension of
    /// the cache's base [`SymMap`]. Consumers of `summaries` must
    /// resolve its [`apar_symbolic::VarId`]s against this map (or a
    /// further extension of it).
    pub sym: SymMap,
}

/// Memoizes `CallGraph::build` + `Summaries::build` + `AliasInfo::build`
/// per resolved-program fingerprint. One cache serves one compilation
/// (one capability set, one base interner).
#[derive(Debug)]
pub struct AnalysisCache {
    caps: Capabilities,
    base_sym: SymMap,
    map: Mutex<HashMap<u64, Arc<ProgramFacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// Creates a cache for one compilation. `base_sym` is the interner
    /// state every build forks from; it must already contain every id
    /// the compilation's earlier passes handed out.
    pub fn new(caps: Capabilities, base_sym: SymMap) -> Self {
        AnalysisCache {
            caps,
            base_sym,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Content fingerprint of a resolved program. Two programs with the
    /// same printed form analyze identically, so they share facts.
    pub fn fingerprint(rp: &ResolvedProgram) -> u64 {
        let mut h = DefaultHasher::new();
        print_program(&rp.program).hash(&mut h);
        h.finish()
    }

    /// Returns the facts for `rp`, building (and caching) on a miss.
    pub fn facts(&self, rp: &ResolvedProgram) -> Arc<ProgramFacts> {
        let fp = Self::fingerprint(rp);
        if let Some(f) = self.lock().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(f);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(self.build(rp));
        Arc::clone(self.lock().entry(fp).or_insert(built))
    }

    /// Seeds the cache with facts computed elsewhere (the driver's
    /// prelude facts for the base program). The stored `facts.sym` must
    /// extend this cache's base interner.
    pub fn seed(&self, rp: &ResolvedProgram, facts: ProgramFacts) -> Arc<ProgramFacts> {
        debug_assert!(
            self.base_sym.interner.is_prefix_of(&facts.sym.interner),
            "seeded facts must carry an extension of the base interner"
        );
        let fp = Self::fingerprint(rp);
        Arc::clone(
            self.lock()
                .entry(fp)
                .or_insert_with(|| Arc::new(facts)),
        )
    }

    fn build(&self, rp: &ResolvedProgram) -> ProgramFacts {
        let mut sym = self.base_sym.clone();
        let cg = CallGraph::build(rp);
        let summaries = Summaries::build(rp, &cg, &mut sym, self.caps);
        let alias = AliasInfo::build(rp, &cg, self.caps);
        ProgramFacts {
            cg,
            summaries,
            alias,
            sym,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ProgramFacts>>> {
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct programs cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn rp(src: &str) -> ResolvedProgram {
        frontend(src).expect("frontend")
    }

    #[test]
    fn identical_programs_share_one_build() {
        let a = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let b = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(Arc::ptr_eq(&fa, &fb), "same text must share one entry");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_programs_get_distinct_entries() {
        let a = rp("PROGRAM P\nX = 1.0\nEND\n");
        let b = rp("PROGRAM P\nX = 2.0\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        assert_ne!(
            AnalysisCache::fingerprint(&a),
            AnalysisCache::fingerprint(&b)
        );
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_sym_extends_the_base() {
        let mut base = SymMap::new();
        base.interner.intern("PRELUDE::X");
        let base_clone = base.clone();
        let p = rp(
            "PROGRAM P\nCOMMON /C/ N\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 1\nEND\n",
        );
        let cache = AnalysisCache::new(Capabilities::polaris2008(), base);
        let f = cache.facts(&p);
        assert!(base_clone.interner.is_prefix_of(&f.sym.interner));
    }

    #[test]
    fn concurrent_misses_converge_to_one_entry() {
        let p = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let facts: Vec<Arc<ProgramFacts>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| cache.facts(&p))).collect();
            handles.into_iter().map(|h| h.join().expect("join")).collect()
        });
        // All threads observe the same entry object after the race.
        let canonical = cache.facts(&p);
        assert!(facts.iter().all(|f| Arc::ptr_eq(f, &canonical)));
        assert_eq!(cache.len(), 1);
    }
}

//! Content-keyed memoization of interprocedural analyses.
//!
//! The driver's per-loop analysis stage repeatedly rebuilds the same
//! interprocedural facts: every loop that inlines calls re-resolves a
//! private copy of the program and then needs a fresh [`CallGraph`],
//! [`Summaries`] and [`AliasInfo`] for it — and loops that inline the
//! *same* call sets produce byte-identical programs. An
//! [`AnalysisCache`] keys those three structures by a fingerprint of
//! the resolved program text, so N loops over identical inlined
//! programs share one computation, and the three separate builds the
//! sequential driver used to issue per loop collapse into one.
//!
//! ## Symbolic-id discipline
//!
//! [`Summaries`] stores [`apar_symbolic::VarId`]s, which are only
//! meaningful relative to the interner that produced them. Every cache
//! build therefore starts from a clone of one fixed *base* [`SymMap`]
//! (the driver's interner state at the fan-out point), and each entry
//! records the interner state *after* its builds. A consumer adopting a
//! cached entry must also adopt that recorded `sym` — it is a
//! deterministic extension of the base, so adopting it yields the same
//! ids no matter which worker populated the entry first. This is what
//! keeps per-pass op counts bit-identical across thread counts.
//!
//! The cache is internally synchronized: workers share one
//! `&AnalysisCache`. Builds run outside the lock; when two workers race
//! on the same miss, the first inserted entry wins and both observe it
//! (the duplicate build is discarded — results are identical by
//! construction, so either is safe to keep).
//!
//! ## Cross-compile promotion
//!
//! A [`SharedFactsStore`] promotes this memoization from per-compile to
//! service-wide: many compilations (of the same or different suites)
//! attach one store via [`AnalysisCache::with_shared`], and a second
//! compile of an already-seen program adopts the first compile's facts
//! instead of rebuilding them. Entries are keyed by the *full* build
//! identity — capability set, build budget, base-interner state, and
//! resolved-program fingerprint — so an entry is only ever adopted by a
//! compile that would have built the bit-identical facts itself; the
//! store can therefore never change a report, only skip work. The store
//! is LRU-bounded by entries and by approximate bytes, and its stats
//! distinguish refused builds (budget-tripped or panicked — the
//! [`SharedStats::refusals`] counter) from ordinary misses.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use apar_minifort::pretty::print_program;
use apar_minifort::ResolvedProgram;

use crate::alias::AliasInfo;
use crate::callgraph::CallGraph;
use crate::summary::Summaries;
use crate::symx::SymMap;
use crate::Capabilities;

/// The memoized interprocedural facts for one resolved program.
#[derive(Clone, Debug)]
pub struct ProgramFacts {
    pub cg: CallGraph,
    pub summaries: Summaries,
    pub alias: AliasInfo,
    /// Interner state after the builds: a deterministic extension of
    /// the cache's base [`SymMap`]. Consumers of `summaries` must
    /// resolve its [`apar_symbolic::VarId`]s against this map (or a
    /// further extension of it).
    pub sym: SymMap,
    /// Symbolic ops the builds cost, recorded for reporting. The build
    /// is billed where it runs (against the cache's own build budget);
    /// consuming loops never re-charge it, so per-loop op accounting is
    /// a pure function of the loop's content — independent of cache
    /// state and thread count.
    pub build_ops: u64,
    /// The build's own op budget tripped before it finished: summaries
    /// and alias facts degraded to their conservative forms. Sound to
    /// use, but the driver reports dependent loops as `Complexity`.
    pub budget_tripped: bool,
    /// These facts are a *refusal*, not an analysis: the program's
    /// fingerprint is quarantined in the shared store (its build
    /// crash-looped or budget-tripped past the strike limit). The
    /// driver skips dependent loops as `Quarantined` instead of
    /// consuming the (empty, conservative) facts.
    pub quarantined: bool,
}

impl ProgramFacts {
    /// The structured refusal served for a quarantined fingerprint:
    /// empty conservative facts flagged `quarantined` so consumers
    /// refuse the loop instead of analyzing with them.
    fn denied(sym: SymMap) -> ProgramFacts {
        ProgramFacts {
            cg: CallGraph::default(),
            summaries: Summaries::default(),
            alias: AliasInfo::default(),
            sym,
            build_ops: 0,
            budget_tripped: true,
            quarantined: true,
        }
    }
}

/// Counters of a [`SharedFactsStore`], as one consistent snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Lookups served from the store (a compile adopted another
    /// compile's facts).
    pub hits: u64,
    /// Lookups that built fresh facts which the store retained.
    pub misses: u64,
    /// Builds the store refused to retain: budget-tripped or panicked.
    /// Structurally distinct from `misses` — a refused build is not a
    /// cacheable unit of work, and recounting it as a miss would make
    /// hit rates lie about pathological inputs.
    pub refusals: u64,
    /// Entries evicted by the LRU bounds.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident bytes (printed-program length is the proxy
    /// for an entry's footprint).
    pub approx_bytes: u64,
    /// Lookups answered from the quarantine ledger (a denied build was
    /// served instead of a rebuild).
    pub quarantine_hits: u64,
    /// Fingerprints currently under active quarantine.
    pub quarantined: u64,
    /// Per-loop records spliced into a compile after verification (the
    /// incremental-recompilation tier).
    pub loop_hits: u64,
    /// Per-loop lookups that found no record (the loop's content key
    /// was never published, changed, or was evicted).
    pub loop_misses: u64,
    /// Per-loop records found but discarded: the stored record failed
    /// structural verification against the current loop, so the splice
    /// was refused and the loop re-analyzed. A structured refusal, not
    /// a miss.
    pub loop_refusals: u64,
    /// Per-loop records currently resident.
    pub loop_entries: u64,
}

impl SharedStats {
    /// Counter deltas `self - earlier` (for per-batch reporting);
    /// `entries`/`approx_bytes` stay absolute — they are gauges.
    pub fn since(&self, earlier: &SharedStats) -> SharedStats {
        SharedStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            refusals: self.refusals - earlier.refusals,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
            approx_bytes: self.approx_bytes,
            quarantine_hits: self.quarantine_hits - earlier.quarantine_hits,
            quarantined: self.quarantined,
            loop_hits: self.loop_hits - earlier.loop_hits,
            loop_misses: self.loop_misses - earlier.loop_misses,
            loop_refusals: self.loop_refusals - earlier.loop_refusals,
            loop_entries: self.loop_entries,
        }
    }
}

/// One fingerprint's standing in the quarantine ledger.
#[derive(Debug)]
struct QuarantineEntry {
    /// Refused builds recorded against this fingerprint.
    strikes: u32,
    /// While set and in the future, lookups are denied outright. A
    /// lapsed deadline grants a probation retry (strikes are kept, so
    /// another refusal re-quarantines with a doubled backoff).
    until: Option<Instant>,
    /// Logical timestamp for bounding the ledger itself.
    tick: u64,
}

/// Everything needed to rebuild a facts entry from scratch: the build
/// identity (capabilities, budget, base interner names in insertion
/// order) plus the printed program text. This is what the persistent
/// store writes for the facts tier — a record is a build *instruction*
/// replayed through the real builders at recovery, never build *output*
/// adopted on trust, so a corrupt-but-checksum-valid record can at
/// worst waste bounded startup time, not change a report.
#[derive(Clone, Debug, PartialEq)]
pub struct FactsProvenance {
    pub caps: Capabilities,
    pub build_budget: u64,
    /// Base interner names in id order; re-interning them in order
    /// reproduces the base state every build forks from.
    pub base_names: Vec<String>,
    /// Printed form of the resolved program the facts were built for.
    pub text: String,
}

/// One resident entry of a [`SharedFactsStore`].
#[derive(Debug)]
struct StoredFacts {
    facts: Arc<ProgramFacts>,
    /// How to rebuild this entry (persisted by the durable store).
    prov: Arc<FactsProvenance>,
    /// Approximate footprint (printed-program bytes).
    cost: u64,
    /// Logical timestamp of the last lookup or insert (LRU order).
    last_use: u64,
}

/// One resident per-loop record of the incremental tier. The payload is
/// opaque to this crate (the driver stores its own record type); the
/// store only provides keyed retention, LRU bounds and counters.
struct StoredLoopRec {
    rec: Arc<dyn Any + Send + Sync>,
    /// Logical timestamp of the last lookup or insert (LRU order).
    last_use: u64,
}

impl std::fmt::Debug for StoredLoopRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredLoopRec")
            .field("last_use", &self.last_use)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct SharedInner {
    map: HashMap<u64, StoredFacts>,
    tick: u64,
    bytes: u64,
    /// Strike/backoff ledger for fingerprints whose builds keep being
    /// refused. Bounded separately from the facts map.
    quarantine: HashMap<u64, QuarantineEntry>,
    /// The incremental tier: per-loop analysis records keyed by loop
    /// content keys. Bounded separately from the facts map (records are
    /// small; the bound is entries, not bytes).
    loops: HashMap<u64, StoredLoopRec>,
}

/// An eviction-bounded, cross-compile store of [`ProgramFacts`]: the
/// per-compile [`AnalysisCache`] promoted to a service-wide resource.
///
/// Keys incorporate everything that determines a build's output —
/// capability set, build budget, the base interner state, and the
/// resolved-program fingerprint — so adoption across compiles is
/// exactly as safe as adoption within one. Eviction is LRU over both an
/// entry bound and an approximate byte bound; hitting either bound can
/// only cost rebuild time, never change a report.
#[derive(Debug)]
pub struct SharedFactsStore {
    inner: Mutex<SharedInner>,
    cap_entries: u64,
    cap_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    refusals: AtomicU64,
    evictions: AtomicU64,
    quarantine_hits: AtomicU64,
    loop_hits: AtomicU64,
    loop_misses: AtomicU64,
    loop_refusals: AtomicU64,
    /// Refusals before a fingerprint is quarantined. 0 (the default)
    /// disables the quarantine entirely — plain compilers and existing
    /// callers see the store behave exactly as before.
    strike_limit: u32,
    /// Base quarantine duration; doubles per strike past the limit.
    backoff: Duration,
}

impl SharedFactsStore {
    /// A store bounded to `cap_entries` resident programs and
    /// `cap_bytes` approximate bytes (whichever trips first evicts).
    pub fn bounded(cap_entries: usize, cap_bytes: usize) -> Self {
        SharedFactsStore {
            inner: Mutex::new(SharedInner::default()),
            cap_entries: (cap_entries as u64).max(1),
            cap_bytes: (cap_bytes as u64).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refusals: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantine_hits: AtomicU64::new(0),
            loop_hits: AtomicU64::new(0),
            loop_misses: AtomicU64::new(0),
            loop_refusals: AtomicU64::new(0),
            strike_limit: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Enables the failure quarantine: after `strike_limit` refused
    /// builds of one fingerprint (panics or budget trips), lookups of
    /// that fingerprint are denied outright for `backoff` (doubling per
    /// further strike, capped at 1024×) instead of re-running the
    /// crash-looping build. A successful build clears the fingerprint's
    /// strikes. `strike_limit` 0 keeps the quarantine disabled.
    pub fn with_quarantine(mut self, strike_limit: u32, backoff: Duration) -> Self {
        self.strike_limit = strike_limit;
        self.backoff = backoff;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    fn get(&self, key: u64) -> Option<Arc<ProgramFacts>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.last_use = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.facts))
            }
            None => None,
        }
    }

    /// Retains a freshly built entry (counted as the miss it resolved)
    /// and evicts least-recently-used entries past either bound.
    fn insert(&self, key: u64, facts: Arc<ProgramFacts>, prov: Arc<FactsProvenance>, cost: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        // A successful build is proof the fingerprint recovered: its
        // strike record (if any) is expunged.
        inner.quarantine.remove(&key);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(prev) = inner.map.insert(
            key,
            StoredFacts {
                facts,
                prov,
                cost,
                last_use: tick,
            },
        ) {
            // Racing compiles built the same entry twice; keep one cost.
            inner.bytes -= prev.cost;
        }
        inner.bytes += cost;
        while inner.map.len() as u64 > self.cap_entries
            || (inner.bytes > self.cap_bytes && inner.map.len() > 1)
        {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_use) else {
                break;
            };
            if victim == key && inner.map.len() as u64 <= self.cap_entries {
                // Never evict the entry just inserted for the byte
                // bound alone — the caller holds it anyway.
                break;
            }
            let e = inner.map.remove(&victim).expect("victim resident");
            inner.bytes -= e.cost;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a build the store refused to retain (budget-tripped or
    /// panicked): a structured `CacheRefusal`, not a miss. With the
    /// quarantine enabled this is also a strike against `key`; at the
    /// strike limit the fingerprint enters quarantine with an
    /// exponentially growing backoff.
    fn note_refusal(&self, key: u64) {
        self.refusals.fetch_add(1, Ordering::Relaxed);
        if self.strike_limit == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let limit = self.strike_limit;
        let backoff = self.backoff;
        let e = inner.quarantine.entry(key).or_insert(QuarantineEntry {
            strikes: 0,
            until: None,
            tick,
        });
        e.strikes = e.strikes.saturating_add(1);
        e.tick = tick;
        if e.strikes >= limit {
            let exp = (e.strikes - limit).min(10);
            e.until = Some(Instant::now() + backoff.saturating_mul(1u32 << exp));
        }
        // The ledger itself stays bounded: hostile traffic minting
        // endless one-strike fingerprints must not grow it without
        // limit. Oldest strike records go first; active quarantines are
        // refreshed by their own hits so they survive in practice.
        let cap = (self.cap_entries * 4).max(64);
        while inner.quarantine.len() as u64 > cap {
            let Some((&victim, _)) = inner.quarantine.iter().min_by_key(|(_, e)| e.tick) else {
                break;
            };
            inner.quarantine.remove(&victim);
        }
    }

    /// Is `key` under active quarantine? Returns its strike count when
    /// lookups should be denied. A lapsed backoff grants one probation
    /// rebuild: the deadline is cleared but the strikes remain, so the
    /// next refusal re-quarantines at double the backoff.
    fn quarantine_check(&self, key: u64) -> Option<u32> {
        if self.strike_limit == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let e = inner.quarantine.get_mut(&key)?;
        match e.until {
            Some(t) if Instant::now() < t => {
                e.tick = tick;
                self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
                Some(e.strikes)
            }
            Some(_) => {
                e.until = None;
                None
            }
            None => None,
        }
    }

    /// Looks up a per-loop record by content key, refreshing its LRU
    /// position. `None` is counted as a [`SharedStats::loop_misses`];
    /// the caller must verify a returned record against the live loop
    /// and then report the verdict via [`SharedFactsStore::note_loop_hit`]
    /// (spliced) or [`SharedFactsStore::note_loop_refusal`] (discarded) —
    /// a raw retrieval is not yet a hit.
    pub fn loop_get(&self, key: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.loops.get_mut(&key) {
            Some(e) => {
                e.last_use = tick;
                Some(Arc::clone(&e.rec))
            }
            None => {
                self.loop_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a verified splice: a retrieved per-loop record passed
    /// structural verification and was spliced into a compile.
    pub fn note_loop_hit(&self) {
        self.loop_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a discarded splice: a retrieved per-loop record failed
    /// verification against the live loop, so the splice was refused
    /// and the loop re-analyzed. Structurally distinct from a miss.
    pub fn note_loop_refusal(&self) {
        self.loop_refusals.fetch_add(1, Ordering::Relaxed);
    }

    /// Retains a freshly analyzed loop's record under its content key,
    /// evicting least-recently-used records past the bound (eight
    /// records per facts-entry slot — loop records are far smaller than
    /// program facts, and a program carries several loops per facts
    /// entry).
    pub fn loop_put(&self, key: u64, rec: Arc<dyn Any + Send + Sync>) {
        let cap = self.cap_entries.saturating_mul(8).max(1);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.loops.insert(key, StoredLoopRec { rec, last_use: tick });
        while inner.loops.len() as u64 > cap {
            let Some((&victim, _)) = inner.loops.iter().min_by_key(|(_, e)| e.last_use) else {
                break;
            };
            if victim == key {
                break;
            }
            inner.loops.remove(&victim);
        }
    }

    /// Snapshot of the facts tier as `(store key, provenance)` pairs,
    /// for the durable store's append pass. Keys are advisory (they let
    /// the persister skip records it already wrote); recovery never
    /// trusts them — replay recomputes every key from live content.
    pub fn facts_snapshot(&self) -> Vec<(u64, Arc<FactsProvenance>)> {
        let inner = self.lock();
        inner
            .map
            .iter()
            .map(|(&k, e)| (k, Arc::clone(&e.prov)))
            .collect()
    }

    /// Snapshot of the incremental tier as `(content key, record)`
    /// pairs, for the durable store's append pass.
    pub fn loop_snapshot(&self) -> Vec<(u64, Arc<dyn Any + Send + Sync>)> {
        let inner = self.lock();
        inner
            .loops
            .iter()
            .map(|(&k, e)| (k, Arc::clone(&e.rec)))
            .collect()
    }

    /// Fingerprints currently under active quarantine.
    pub fn quarantined_count(&self) -> u64 {
        let now = Instant::now();
        let inner = self.lock();
        inner
            .quarantine
            .values()
            .filter(|e| e.until.is_some_and(|t| now < t))
            .count() as u64
    }

    /// Snapshot of the store's counters.
    pub fn stats(&self) -> SharedStats {
        let now = Instant::now();
        let inner = self.lock();
        SharedStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refusals: self.refusals.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len() as u64,
            approx_bytes: inner.bytes,
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            quarantined: inner
                .quarantine
                .values()
                .filter(|e| e.until.is_some_and(|t| now < t))
                .count() as u64,
            loop_hits: self.loop_hits.load(Ordering::Relaxed),
            loop_misses: self.loop_misses.load(Ordering::Relaxed),
            loop_refusals: self.loop_refusals.load(Ordering::Relaxed),
            loop_entries: inner.loops.len() as u64,
        }
    }
}

/// Memoizes `CallGraph::build` + `Summaries::build` + `AliasInfo::build`
/// per resolved-program fingerprint. One cache serves one compilation
/// (one capability set, one base interner); attaching a
/// [`SharedFactsStore`] extends the same memoization across
/// compilations.
#[derive(Debug)]
pub struct AnalysisCache {
    caps: Capabilities,
    base_sym: SymMap,
    map: Mutex<HashMap<u64, Arc<ProgramFacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Op budget for one build (`u64::MAX` = unlimited). A build that
    /// trips it returns degraded facts which are NOT retained in the
    /// map — the poisoned-entry guard.
    build_budget: u64,
    /// Builds rejected from the map: budget-tripped or panicked.
    rejected: AtomicU64,
    /// Cross-compile store this cache publishes to and adopts from,
    /// with the precomputed key prefix binding entries to this cache's
    /// capability set, budget, and base interner.
    shared: Option<(Arc<SharedFactsStore>, u64)>,
    #[cfg(test)]
    panic_on_build: std::sync::atomic::AtomicBool,
}

impl AnalysisCache {
    /// Creates a cache for one compilation. `base_sym` is the interner
    /// state every build forks from; it must already contain every id
    /// the compilation's earlier passes handed out.
    pub fn new(caps: Capabilities, base_sym: SymMap) -> Self {
        AnalysisCache {
            caps,
            base_sym,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_budget: u64::MAX,
            rejected: AtomicU64::new(0),
            shared: None,
            #[cfg(test)]
            panic_on_build: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Caps the ops one build may spend. Pathological programs (a fuzzer
    /// favorite: one unit with thousands of names) trip it and degrade
    /// instead of stalling the compile.
    pub fn with_build_budget(mut self, budget: u64) -> Self {
        self.build_budget = budget;
        self.bind_shared();
        self
    }

    /// Attaches a cross-compile store: misses consult it before
    /// building, retained builds are published to it. The store key
    /// binds entries to this cache's capability set, build budget, and
    /// base interner, so only a compile that would rebuild the same
    /// facts bit-for-bit can adopt them.
    pub fn with_shared(mut self, store: Arc<SharedFactsStore>) -> Self {
        self.shared = Some((store, 0));
        self.bind_shared();
        self
    }

    /// (Re)computes the shared-key prefix from the current caps, budget,
    /// and base interner.
    fn bind_shared(&mut self) {
        if let Some((_, prefix)) = &mut self.shared {
            let mut h = DefaultHasher::new();
            caps_bits(&self.caps).hash(&mut h);
            self.build_budget.hash(&mut h);
            for (_, name) in self.base_sym.interner.iter() {
                name.hash(&mut h);
            }
            *prefix = h.finish();
        }
    }

    /// Content fingerprint of a resolved program. Two programs with the
    /// same printed form analyze identically, so they share facts.
    pub fn fingerprint(rp: &ResolvedProgram) -> u64 {
        Self::fingerprint_with_cost(rp).0
    }

    /// Fingerprint plus the printed length, the store's byte proxy.
    fn fingerprint_with_cost(rp: &ResolvedProgram) -> (u64, u64) {
        let text = print_program(&rp.program);
        let mut h = DefaultHasher::new();
        text.hash(&mut h);
        (h.finish(), text.len() as u64)
    }

    /// Returns the facts for `rp`, building (and caching) on a miss.
    ///
    /// Poisoned-entry guard: a build that panics or trips the build
    /// budget is never retained in the map (locally or in the shared
    /// store — the store books it as a refusal, not a miss). The panic
    /// is re-raised (the driver's per-loop sandbox contains it); a
    /// budget-tripped build is returned uncached so its degraded facts
    /// can serve exactly the loop that asked, while later lookups get a
    /// fresh chance.
    pub fn facts(&self, rp: &ResolvedProgram) -> Arc<ProgramFacts> {
        let (fp, cost) = Self::fingerprint_with_cost(rp);
        if let Some(f) = self.lock().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(f);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some((store, prefix)) = &self.shared {
            let key = shared_key(*prefix, fp);
            if let Some(f) = store.get(key) {
                // Another compile already built these facts; adopt them
                // into the local map so later per-loop lookups stay off
                // the store's lock.
                return Arc::clone(self.lock().entry(fp).or_insert(f));
            }
            // Quarantined fingerprints are denied before any build
            // runs: a crash-looping or budget-burning program must not
            // re-burn the pool until its backoff lapses. The denial is
            // deliberately NOT retained in the local map — once the
            // quarantine ages out, the next lookup rebuilds.
            if let Some(_strikes) = store.quarantine_check(key) {
                return Arc::new(ProgramFacts::denied(self.base_sym.clone()));
            }
        }
        let built = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.build(rp)))
        {
            Ok(f) => f,
            Err(payload) => {
                // Nothing was inserted; record the rejection and let the
                // per-loop sandbox upstairs turn the panic into a
                // structured `InternalError` skip.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some((store, prefix)) = &self.shared {
                    store.note_refusal(shared_key(*prefix, fp));
                }
                std::panic::resume_unwind(payload);
            }
        };
        if built.budget_tripped {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some((store, prefix)) = &self.shared {
                store.note_refusal(shared_key(*prefix, fp));
            }
            return Arc::new(built);
        }
        let built = Arc::new(built);
        let built = Arc::clone(self.lock().entry(fp).or_insert(built));
        if let Some((store, prefix)) = &self.shared {
            let prov = Arc::new(FactsProvenance {
                caps: self.caps,
                build_budget: self.build_budget,
                base_names: self
                    .base_sym
                    .interner
                    .iter()
                    .map(|(_, name)| name.to_string())
                    .collect(),
                text: print_program(&rp.program),
            });
            store.insert(shared_key(*prefix, fp), Arc::clone(&built), prov, cost);
        }
        built
    }

    /// Adopt-only lookup for the facts-only degraded tier: returns the
    /// facts for `rp` when they are already resident (locally or in the
    /// shared store) and `None` otherwise — never builds. Misses cost
    /// one fingerprint, nothing more.
    pub fn cached_facts(&self, rp: &ResolvedProgram) -> Option<Arc<ProgramFacts>> {
        let fp = Self::fingerprint(rp);
        if let Some(f) = self.lock().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(f));
        }
        if let Some((store, prefix)) = &self.shared {
            if let Some(f) = store.get(shared_key(*prefix, fp)) {
                return Some(Arc::clone(self.lock().entry(fp).or_insert(f)));
            }
        }
        None
    }

    /// Seeds the cache with facts computed elsewhere (the driver's
    /// prelude facts for the base program). The stored `facts.sym` must
    /// extend this cache's base interner.
    pub fn seed(&self, rp: &ResolvedProgram, facts: ProgramFacts) -> Arc<ProgramFacts> {
        debug_assert!(
            self.base_sym.interner.is_prefix_of(&facts.sym.interner),
            "seeded facts must carry an extension of the base interner"
        );
        let fp = Self::fingerprint(rp);
        Arc::clone(self.lock().entry(fp).or_insert_with(|| Arc::new(facts)))
    }

    fn build(&self, rp: &ResolvedProgram) -> ProgramFacts {
        #[cfg(test)]
        if self.panic_on_build.load(Ordering::Relaxed) {
            panic!("injected cache-build panic");
        }
        let ops = if self.build_budget == u64::MAX {
            apar_symbolic::OpCounter::unlimited()
        } else {
            apar_symbolic::OpCounter::with_budget(self.build_budget)
        };
        let mut sym = self.base_sym.clone();
        let cg = CallGraph::build(rp);
        let summaries = Summaries::build(rp, &cg, &mut sym, self.caps, &ops);
        let alias = AliasInfo::build(rp, &cg, self.caps, &ops);
        ProgramFacts {
            cg,
            summaries,
            alias,
            sym,
            build_ops: ops.spent(),
            budget_tripped: ops.exceeded(),
            quarantined: false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ProgramFacts>>> {
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The attached cross-compile store, if any.
    pub fn shared_store(&self) -> Option<&Arc<SharedFactsStore>> {
        self.shared.as_ref().map(|(s, _)| s)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Builds rejected from the map (budget-tripped or panicked).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Distinct programs cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().len() == 0
    }
}

/// The capability set as a bit vector, for the shared-store key and
/// the durable store's record encoding.
pub fn caps_bits(c: &Capabilities) -> u64 {
    [
        c.multilingual,
        c.interprocedural_noalias,
        c.input_deck_ranges,
        c.indirection_analysis,
        c.extended_symbolic,
        c.reshaped_access,
        c.guarded_regions,
    ]
    .iter()
    .fold(0u64, |acc, &b| (acc << 1) | b as u64)
}

/// Inverse of [`caps_bits`]: reconstructs a capability set from its
/// persisted bit vector. Bits beyond the seven defined capabilities are
/// ignored (a stale-format record fails identity checks downstream).
pub fn caps_from_bits(bits: u64) -> Capabilities {
    let b = |i: u64| bits & (1 << i) != 0;
    Capabilities {
        multilingual: b(6),
        interprocedural_noalias: b(5),
        input_deck_ranges: b(4),
        indirection_analysis: b(3),
        extended_symbolic: b(2),
        reshaped_access: b(1),
        guarded_regions: b(0),
    }
}

/// Rebuilds one facts entry from persisted provenance by replaying the
/// real builders and publishing the result to `store` under a key
/// recomputed from live content — the durable facts tier's recovery
/// path. Total and trust-free: the text must round-trip through the
/// front end bit-exactly (`print(frontend(text)) == text`), the build
/// runs under the provenance's own budget inside the usual panic
/// sandbox, and nothing from the record is adopted directly. Returns
/// `false` (and publishes nothing) on any mismatch, parse failure,
/// budget trip, or build panic.
pub fn rebuild_facts(store: &Arc<SharedFactsStore>, prov: &FactsProvenance) -> bool {
    let Ok(rp) = apar_minifort::frontend(&prov.text) else {
        return false;
    };
    if print_program(&rp.program) != prov.text {
        return false;
    }
    let mut base = SymMap::new();
    for name in &prov.base_names {
        base.interner.intern(name);
    }
    let cache = AnalysisCache::new(prov.caps, base)
        .with_build_budget(prov.build_budget)
        .with_shared(Arc::clone(store));
    let facts =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&rp))) {
            Ok(f) => f,
            Err(_) => return false,
        };
    !facts.budget_tripped && !facts.quarantined
}

/// Combines the cache-identity prefix with a program fingerprint into
/// one store key.
fn shared_key(prefix: u64, fp: u64) -> u64 {
    let mut h = DefaultHasher::new();
    prefix.hash(&mut h);
    fp.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn rp(src: &str) -> ResolvedProgram {
        frontend(src).expect("frontend")
    }

    #[test]
    fn identical_programs_share_one_build() {
        let a = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let b = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(Arc::ptr_eq(&fa, &fb), "same text must share one entry");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_programs_get_distinct_entries() {
        let a = rp("PROGRAM P\nX = 1.0\nEND\n");
        let b = rp("PROGRAM P\nX = 2.0\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        assert_ne!(
            AnalysisCache::fingerprint(&a),
            AnalysisCache::fingerprint(&b)
        );
        let fa = cache.facts(&a);
        let fb = cache.facts(&b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_sym_extends_the_base() {
        let mut base = SymMap::new();
        base.interner.intern("PRELUDE::X");
        let base_clone = base.clone();
        let p =
            rp("PROGRAM P\nCOMMON /C/ N\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 1\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), base);
        let f = cache.facts(&p);
        assert!(base_clone.interner.is_prefix_of(&f.sym.interner));
    }

    #[test]
    fn budget_tripped_build_is_not_retained() {
        let p = rp(
            "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n",
        );
        let cache =
            AnalysisCache::new(Capabilities::polaris2008(), SymMap::new()).with_build_budget(1);
        let f1 = cache.facts(&p);
        assert!(f1.budget_tripped, "tiny budget must trip");
        assert_eq!(cache.len(), 0, "tripped build must not be cached");
        assert_eq!(cache.rejected(), 1);
        // A later lookup does not see the poisoned entry: it rebuilds.
        let f2 = cache.facts(&p);
        assert!(!Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn panicked_build_is_not_retained_and_rethrows() {
        let p = rp("PROGRAM P\nX = 1.0\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        cache.panic_on_build.store(true, Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&p)));
        assert!(r.is_err(), "panic must propagate to the sandbox");
        assert_eq!(cache.len(), 0, "panicked build must not be cached");
        assert_eq!(cache.rejected(), 1);
        // The cache recovers: with the fault cleared, the same program
        // builds and caches normally.
        cache.panic_on_build.store(false, Ordering::Relaxed);
        let f = cache.facts(&p);
        assert!(!f.budget_tripped);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn build_ops_are_deterministic_across_hit_and_miss() {
        let p = rp(
            "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n",
        );
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let a = cache.facts(&p); // miss: builds
        let b = cache.facts(&p); // hit: same entry
        assert!(a.build_ops > 0);
        assert_eq!(a.build_ops, b.build_ops);
    }

    #[test]
    fn concurrent_misses_converge_to_one_entry() {
        let p = rp("PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n");
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new());
        let facts: Vec<Arc<ProgramFacts>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| cache.facts(&p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        // All threads observe the same entry object after the race.
        let canonical = cache.facts(&p);
        assert!(facts.iter().all(|f| Arc::ptr_eq(f, &canonical)));
        assert_eq!(cache.len(), 1);
    }

    const SRC_CALL: &str =
        "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n";

    #[test]
    fn second_cache_adopts_shared_entry() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let a = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let fa = a.facts(&p);
        let b = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let fb = b.facts(&p);
        assert!(
            Arc::ptr_eq(&fa, &fb),
            "second compile must adopt the first compile's entry"
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // The adopting cache's own counters still record a local miss.
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn shared_entries_are_keyed_by_caps_budget_and_base_sym() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let base = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let f0 = base.facts(&p);
        // Different capability set: must not adopt.
        let caps = AnalysisCache::new(Capabilities::full(), SymMap::new())
            .with_shared(Arc::clone(&store));
        assert!(!Arc::ptr_eq(&f0, &caps.facts(&p)));
        // Different build budget: must not adopt (a huge budget still
        // builds identical facts here, but the key is conservative).
        let budget = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store))
            .with_build_budget(1 << 40);
        assert!(!Arc::ptr_eq(&f0, &budget.facts(&p)));
        // Different base interner: must not adopt.
        let mut sym = SymMap::new();
        sym.interner.intern("PRELUDE::X");
        let based = AnalysisCache::new(Capabilities::polaris2008(), sym)
            .with_shared(Arc::clone(&store));
        assert!(!Arc::ptr_eq(&f0, &based.facts(&p)));
        let s = store.stats();
        assert_eq!(s.hits, 0, "no cross-identity adoption");
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let store = Arc::new(SharedFactsStore::bounded(2, 1 << 20));
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let a = rp("PROGRAM P\nX = 1.0\nEND\n");
        let b = rp("PROGRAM P\nX = 2.0\nEND\n");
        let c = rp("PROGRAM P\nX = 3.0\nEND\n");
        cache.facts(&a);
        cache.facts(&b);
        // Refresh `a`, then overflow: `b` is now least recently used.
        let fresh = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        fresh.facts(&a);
        fresh.facts(&c);
        let s = store.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // `a` survived (refreshed), `b` did not.
        let probe = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        probe.facts(&a);
        assert_eq!(store.stats().hits, 2, "a still resident");
        let probe2 = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        probe2.facts(&b);
        assert_eq!(store.stats().evictions, 2, "b had to rebuild and evict again");
    }

    #[test]
    fn byte_bound_evicts_but_keeps_newest() {
        // A byte cap below a single program's footprint: the store keeps
        // the newest entry (capacity one in practice) and evicts prior
        // ones, never underflowing.
        let store = Arc::new(SharedFactsStore::bounded(16, 1));
        let a = rp("PROGRAM P\nX = 1.0\nEND\n");
        let b = rp("PROGRAM P\nX = 2.0\nEND\n");
        let c1 = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        c1.facts(&a);
        let c2 = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        c2.facts(&b);
        let s = store.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn refused_builds_are_not_shared_misses() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store))
            .with_build_budget(1);
        let f = cache.facts(&p);
        assert!(f.budget_tripped);
        let s = store.stats();
        assert_eq!(s.refusals, 1, "budget trip is a structured refusal");
        assert_eq!(s.misses, 0, "refusal must not be recounted as a miss");
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn panicked_build_is_a_shared_refusal() {
        let p = rp("PROGRAM P\nX = 1.0\nEND\n");
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        cache.panic_on_build.store(true, Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&p)));
        assert!(r.is_err());
        let s = store.stats();
        assert_eq!((s.refusals, s.misses, s.entries), (1, 0, 0));
    }

    #[test]
    fn shared_stats_since_subtracts_counters_keeps_gauges() {
        let a = SharedStats {
            hits: 2,
            misses: 3,
            refusals: 1,
            evictions: 0,
            entries: 3,
            approx_bytes: 100,
            quarantine_hits: 1,
            quarantined: 1,
            loop_hits: 4,
            loop_misses: 6,
            loop_refusals: 1,
            loop_entries: 5,
        };
        let b = SharedStats {
            hits: 7,
            misses: 4,
            refusals: 1,
            evictions: 2,
            entries: 2,
            approx_bytes: 80,
            quarantine_hits: 4,
            quarantined: 2,
            loop_hits: 9,
            loop_misses: 8,
            loop_refusals: 3,
            loop_entries: 4,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 5);
        assert_eq!(d.misses, 1);
        assert_eq!(d.refusals, 0);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.entries, 2);
        assert_eq!(d.approx_bytes, 80);
        assert_eq!(d.quarantine_hits, 3);
        assert_eq!(d.quarantined, 2, "active-quarantine count is a gauge");
        assert_eq!(d.loop_hits, 5);
        assert_eq!(d.loop_misses, 2);
        assert_eq!(d.loop_refusals, 2);
        assert_eq!(d.loop_entries, 4, "loop-record count is a gauge");
    }

    #[test]
    fn cached_facts_adopts_but_never_builds() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let cold = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        assert!(cold.cached_facts(&p).is_none(), "cold cache must not build");
        assert_eq!(store.stats().misses, 0);
        let f = cold.facts(&p);
        // A second cache adopts through the store without building.
        let warm = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let g = warm.cached_facts(&p).expect("adoptable");
        assert!(Arc::ptr_eq(&f, &g));
    }

    #[test]
    fn strikes_past_the_limit_quarantine_the_fingerprint() {
        let p = rp(SRC_CALL);
        let store = Arc::new(
            SharedFactsStore::bounded(16, 1 << 20)
                .with_quarantine(2, Duration::from_secs(3600)),
        );
        let make = || {
            AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
                .with_shared(Arc::clone(&store))
                .with_build_budget(1)
        };
        // Two refused builds: strikes 1 and 2 — at the limit, the
        // second refusal activates the quarantine.
        assert!(make().facts(&p).budget_tripped);
        assert!(!make().facts(&p).quarantined, "second build still ran");
        let s = store.stats();
        assert_eq!(s.refusals, 2);
        assert_eq!(s.quarantined, 1, "fingerprint is now quarantined");
        // The third lookup is denied without building.
        let denied = make().facts(&p);
        assert!(denied.quarantined);
        assert!(denied.budget_tripped, "denied facts are conservative");
        let s = store.stats();
        assert_eq!(s.refusals, 2, "no build ran, so no new refusal");
        assert_eq!(s.quarantine_hits, 1);
        assert_eq!(store.quarantined_count(), 1);
    }

    #[test]
    fn quarantine_backoff_lapses_into_probation_then_rearms() {
        let p = rp("PROGRAM P\nX = 1.0\nEND\n");
        let store = Arc::new(
            SharedFactsStore::bounded(16, 1 << 20).with_quarantine(1, Duration::from_millis(5)),
        );
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        cache.panic_on_build.store(true, Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&p)));
        assert!(r.is_err());
        assert_eq!(
            store.stats().quarantined,
            1,
            "limit 1: the first refusal quarantines"
        );
        // While active, lookups are denied without running the build —
        // the injected panic never fires.
        let denied = cache.facts(&p);
        assert!(denied.quarantined);
        assert_eq!(store.stats().quarantine_hits, 1);
        std::thread::sleep(Duration::from_millis(20));
        // Backoff lapsed: the probation rebuild actually runs (and
        // relapses) — strikes climb and the quarantine re-arms with a
        // doubled backoff.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.facts(&p)));
        assert!(r.is_err(), "probation rebuild ran the real build");
        let s = store.stats();
        assert_eq!(s.refusals, 2);
        assert_eq!(s.quarantined, 1, "relapse re-quarantined");
    }

    #[test]
    fn successful_build_expunges_strikes() {
        let p = rp("PROGRAM P\nX = 1.0\nEND\n");
        let q = rp("PROGRAM P\nX = 2.0\nEND\n");
        // Entry cap 1 so `q` can evict `p` below, forcing a real
        // rebuild of `p` after its success.
        let store = Arc::new(
            SharedFactsStore::bounded(1, 1 << 20).with_quarantine(2, Duration::from_secs(3600)),
        );
        let make = || {
            AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
                .with_shared(Arc::clone(&store))
        };
        // Strike 1 of 2.
        let faulty = make();
        faulty.panic_on_build.store(true, Ordering::Relaxed);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.facts(&p)));
        assert_eq!(store.stats().quarantined, 0, "one strike of two");
        // Recovery: a healthy build of the same fingerprint succeeds
        // and expunges the strike record.
        let healthy = make();
        assert!(!healthy.facts(&p).quarantined);
        healthy.facts(&q); // evicts p from the store (cap 1)
        // Relapse: starts over at strike 1. Had the success not
        // cleared the record, this second refusal would have hit the
        // limit and quarantined.
        let faulty2 = make();
        faulty2.panic_on_build.store(true, Ordering::Relaxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty2.facts(&p)));
        assert!(r.is_err(), "p really was evicted, so the build ran");
        let s = store.stats();
        assert_eq!(s.refusals, 2);
        assert_eq!(s.quarantined, 0, "the success reset the count");
    }

    #[test]
    fn caps_bits_round_trips_every_capability_set() {
        for bits in 0..128u64 {
            assert_eq!(caps_bits(&caps_from_bits(bits)), bits);
        }
        let polaris = Capabilities::polaris2008();
        assert_eq!(caps_from_bits(caps_bits(&polaris)), polaris);
    }

    #[test]
    fn rebuild_facts_replays_provenance_into_the_store() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&store));
        let live = cache.facts(&p);
        let snap = store.facts_snapshot();
        assert_eq!(snap.len(), 1);
        let (key, prov) = &snap[0];

        // Replay into a fresh store: the entry lands under the same key
        // with the same deterministic build ops.
        let fresh = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        assert!(rebuild_facts(&fresh, prov));
        let cache2 = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
            .with_shared(Arc::clone(&fresh));
        let adopted = cache2.facts(&p);
        assert_eq!(adopted.build_ops, live.build_ops);
        assert_eq!(fresh.stats().hits, 1, "the recovered entry served the lookup");
        assert_eq!(fresh.facts_snapshot()[0].0, *key, "same key from live content");

        // Tampered text is refused outright: it no longer round-trips
        // (or parses), so nothing is published.
        let empty = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        let mut bad = (**prov).clone();
        bad.text = format!("{}GARBAGE(", bad.text);
        assert!(!rebuild_facts(&empty, &bad));
        assert_eq!(empty.stats().entries, 0);
    }

    #[test]
    fn zero_strike_limit_disables_quarantine_entirely() {
        let p = rp(SRC_CALL);
        let store = Arc::new(SharedFactsStore::bounded(16, 1 << 20));
        for _ in 0..5 {
            let cache = AnalysisCache::new(Capabilities::polaris2008(), SymMap::new())
                .with_shared(Arc::clone(&store))
                .with_build_budget(1);
            let f = cache.facts(&p);
            assert!(f.budget_tripped && !f.quarantined);
        }
        let s = store.stats();
        assert_eq!(s.refusals, 5, "every build ran and was refused");
        assert_eq!(s.quarantined, 0);
        assert_eq!(s.quarantine_hits, 0);
    }
}

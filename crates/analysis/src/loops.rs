//! Loop nests and the Figure 4 nesting metrics.
//!
//! The paper measures, per hand-identified target loop, four numbers:
//! *outer subs* (subroutine calls from the program level to the loop on
//! the deepest call path), *outer loops* (loops enclosing the target on
//! that path, including loops around call sites in callers), *enclosed
//! subs* and *enclosed loops* (the deepest subroutine / loop nesting
//! inside the target's body, following calls). [`NestingMetrics`]
//! computes all four.

use std::collections::HashMap;

use apar_minifort::ast::{Block, Stmt, StmtKind, Unit};
use apar_minifort::{ResolvedProgram, StmtId};

use crate::callgraph::CallGraph;

/// Identifies a loop by its unit and DO-statement id.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LoopId {
    pub unit: String,
    pub stmt: StmtId,
}

/// Static facts about one DO loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    pub id: LoopId,
    pub var: String,
    /// Loop nesting depth within its unit (outermost = 0).
    pub depth: usize,
    /// Immediately enclosing loop, if any.
    pub parent: Option<StmtId>,
    /// `!$TARGET` marker.
    pub target: Option<String>,
    /// Callees invoked anywhere inside the body (deduplicated).
    pub calls: Vec<String>,
    /// Maximum additional loop depth nested inside the body (0 = no
    /// inner loops), not following calls.
    pub inner_depth: usize,
    /// True when the body contains a `!LANG C` callee (directly).
    pub has_foreign_call: bool,
}

/// All loops of a program, grouped by unit.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    pub loops: Vec<LoopInfo>,
    by_unit: HashMap<String, Vec<usize>>,
}

impl LoopForest {
    /// Collects every DO loop in the program.
    pub fn build(rp: &ResolvedProgram) -> Self {
        let mut f = LoopForest::default();
        for unit in &rp.program.units {
            let mut stack: Vec<StmtId> = Vec::new();
            collect(rp, unit, &unit.body, &mut stack, &mut f);
        }
        for (i, l) in f.loops.iter().enumerate() {
            f.by_unit.entry(l.id.unit.clone()).or_default().push(i);
        }
        f
    }

    /// Loops of one unit in source order.
    pub fn in_unit<'a>(&'a self, unit: &str) -> impl Iterator<Item = &'a LoopInfo> {
        self.by_unit
            .get(unit)
            .into_iter()
            .flatten()
            .map(|&i| &self.loops[i])
    }

    /// Lookup by id.
    pub fn get(&self, id: &LoopId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| &l.id == id)
    }

    /// All loops carrying a `!$TARGET` marker.
    pub fn targets(&self) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(|l| l.target.is_some())
    }
}

fn collect(
    rp: &ResolvedProgram,
    unit: &Unit,
    block: &Block,
    stack: &mut Vec<StmtId>,
    f: &mut LoopForest,
) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Do {
                var, body, target, ..
            } => {
                let mut calls = Vec::new();
                let mut foreign = false;
                body.walk_stmts(&mut |st| {
                    if let StmtKind::Call { name, .. } = &st.kind {
                        if !calls.contains(name) {
                            calls.push(name.clone());
                        }
                        if rp
                            .unit(name)
                            .is_some_and(|u| u.lang == apar_minifort::Lang::C)
                        {
                            foreign = true;
                        }
                    }
                });
                f.loops.push(LoopInfo {
                    id: LoopId {
                        unit: unit.name.clone(),
                        stmt: s.id,
                    },
                    var: var.clone(),
                    depth: stack.len(),
                    parent: stack.last().copied(),
                    target: target.clone(),
                    calls,
                    inner_depth: inner_loop_depth(body),
                    has_foreign_call: foreign,
                });
                stack.push(s.id);
                collect(rp, unit, body, stack, f);
                stack.pop();
            }
            StmtKind::DoWhile { body, .. } => {
                stack.push(s.id);
                collect(rp, unit, body, stack, f);
                stack.pop();
            }
            StmtKind::If { arms, else_blk } => {
                for (_, b) in arms {
                    collect(rp, unit, b, stack, f);
                }
                if let Some(b) = else_blk {
                    collect(rp, unit, b, stack, f);
                }
            }
            _ => {}
        }
    }
}

/// Maximum loop nesting depth strictly inside a block (not through calls).
pub fn inner_loop_depth(b: &Block) -> usize {
    let mut max = 0;
    for s in &b.stmts {
        let d = match &s.kind {
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                1 + inner_loop_depth(body)
            }
            StmtKind::If { arms, else_blk } => {
                let mut m = 0;
                for (_, bb) in arms {
                    m = m.max(inner_loop_depth(bb));
                }
                if let Some(bb) = else_blk {
                    m = m.max(inner_loop_depth(bb));
                }
                m
            }
            _ => 0,
        };
        max = max.max(d);
    }
    max
}

/// True when a loop body's per-iteration cost is data-dependent — it
/// contains conditional work — so a cyclic schedule balances threads
/// better than contiguous chunks. Used by codegen's `SCHEDULE` clause.
pub fn imbalanced_body(b: &Block) -> bool {
    let mut found = false;
    for s in &b.stmts {
        match &s.kind {
            StmtKind::If { .. } => found = true,
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                found = found || imbalanced_body(body);
            }
            _ => {}
        }
        if found {
            return true;
        }
    }
    false
}

/// Length of the perfect-nest chain rooted at a loop with this body:
/// 1 when the body is anything but a lone inner DO, otherwise one more
/// than the inner loop's chain. Used by codegen's `COLLAPSE` clause.
pub fn perfect_nest_depth(body: &Block) -> u8 {
    if body.stmts.len() == 1 {
        if let StmtKind::Do { body: inner, .. } = &body.stmts[0].kind {
            return perfect_nest_depth(inner).saturating_add(1);
        }
    }
    1
}

/// Finds a loop's DO statement within a unit.
pub fn find_loop<'a>(unit: &'a Unit, id: StmtId) -> Option<&'a Stmt> {
    let mut found: Option<&'a Stmt> = None;
    unit.body.walk_stmts(&mut |s| {
        if s.id == id && matches!(s.kind, StmtKind::Do { .. }) {
            found = Some(s);
        }
    });
    found
}

/// The four Figure 4 numbers for one loop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NestingMetrics {
    pub outer_subs: usize,
    pub outer_loops: usize,
    pub enclosed_subs: usize,
    pub enclosed_loops: usize,
}

impl NestingMetrics {
    /// Computes the metrics for `loop_info`, using the call graph rooted
    /// at the main program.
    pub fn compute(
        rp: &ResolvedProgram,
        cg: &CallGraph,
        forest: &LoopForest,
        loop_info: &LoopInfo,
    ) -> NestingMetrics {
        let root = rp
            .main_unit()
            .map(|u| u.name.clone())
            .unwrap_or_else(|| "MAIN".to_string());
        let call_depths = cg.call_depths(&root);
        let loop_depths = cg.loop_depths_from(&root);

        let outer_subs = call_depths
            .get(&loop_info.id.unit)
            .copied()
            .unwrap_or(0);
        let outer_loops = loop_depths
            .get(&loop_info.id.unit)
            .copied()
            .unwrap_or(0)
            + loop_info.depth;

        let mut memo_subs: HashMap<String, usize> = HashMap::new();
        let mut memo_loops: HashMap<String, usize> = HashMap::new();
        let enclosed_subs = loop_info
            .calls
            .iter()
            .map(|c| 1 + unit_sub_depth(rp, c, &mut memo_subs, &mut Vec::new()))
            .max()
            .unwrap_or(0);
        // Enclosed loops: nesting inside this loop's body plus loop depth
        // gained through callees.
        let unit = rp.unit(&loop_info.id.unit).expect("unit exists");
        let stmt = find_loop(unit, loop_info.id.stmt).expect("loop exists");
        let body = match &stmt.kind {
            StmtKind::Do { body, .. } => body,
            _ => unreachable!("find_loop returns DO"),
        };
        let enclosed_loops = deep_loop_depth(rp, body, &mut memo_loops, &mut Vec::new());

        let _ = forest;
        NestingMetrics {
            outer_subs,
            outer_loops,
            enclosed_subs,
            enclosed_loops,
        }
    }
}

/// Longest call chain starting inside `unit`'s body.
fn unit_sub_depth(
    rp: &ResolvedProgram,
    unit: &str,
    memo: &mut HashMap<String, usize>,
    path: &mut Vec<String>,
) -> usize {
    if let Some(&d) = memo.get(unit) {
        return d;
    }
    if path.iter().any(|p| p == unit) {
        return 0;
    }
    let Some(u) = rp.unit(unit) else { return 0 };
    path.push(unit.to_string());
    let mut best = 0;
    u.body.walk_stmts(&mut |s| {
        if let StmtKind::Call { name, .. } = &s.kind {
            // (walk_stmts is not reentrant-friendly for recursion on rp;
            // collect first)
            let d = 1 + unit_sub_depth(rp, name, memo, path);
            if d > best {
                best = d;
            }
        }
    });
    path.pop();
    memo.insert(unit.to_string(), best);
    best
}

/// Deepest loop nesting reachable from a block, following calls.
fn deep_loop_depth(
    rp: &ResolvedProgram,
    b: &Block,
    memo: &mut HashMap<String, usize>,
    path: &mut Vec<String>,
) -> usize {
    let mut max = 0;
    for s in &b.stmts {
        let d = match &s.kind {
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                1 + deep_loop_depth(rp, body, memo, path)
            }
            StmtKind::If { arms, else_blk } => {
                let mut m = 0;
                for (_, bb) in arms {
                    m = m.max(deep_loop_depth(rp, bb, memo, path));
                }
                if let Some(bb) = else_blk {
                    m = m.max(deep_loop_depth(rp, bb, memo, path));
                }
                m
            }
            StmtKind::Call { name, .. } => unit_loop_depth(rp, name, memo, path),
            _ => 0,
        };
        max = max.max(d);
    }
    max
}

fn unit_loop_depth(
    rp: &ResolvedProgram,
    unit: &str,
    memo: &mut HashMap<String, usize>,
    path: &mut Vec<String>,
) -> usize {
    if let Some(&d) = memo.get(unit) {
        return d;
    }
    if path.iter().any(|p| p == unit) {
        return 0;
    }
    let Some(u) = rp.unit(unit) else { return 0 };
    path.push(unit.to_string());
    let d = deep_loop_depth(rp, &u.body, memo, path);
    path.pop();
    memo.insert(unit.to_string(), d);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn setup(src: &str) -> (ResolvedProgram, CallGraph, LoopForest) {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let forest = LoopForest::build(&rp);
        (rp, cg, forest)
    }

    #[test]
    fn forest_collects_nested_loops() {
        let (_, _, f) = setup(
            "PROGRAM P\nDO I = 1, 10\nDO J = 1, 10\nX = 1.0\nENDDO\nENDDO\nEND\n",
        );
        assert_eq!(f.loops.len(), 2);
        let outer = &f.loops[0];
        let inner = &f.loops[1];
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(outer.id.stmt));
        assert_eq!(outer.inner_depth, 1);
        assert_eq!(inner.inner_depth, 0);
    }

    #[test]
    fn targets_are_found() {
        let (_, _, f) = setup(
            "PROGRAM P\n!$TARGET T1\nDO I = 1, 10\nX = 1.0\nENDDO\nEND\n",
        );
        let ts: Vec<_> = f.targets().collect();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].target.as_deref(), Some("T1"));
    }

    #[test]
    fn kernel_style_metrics_are_shallow() {
        // A PERFECT-style kernel: the loop sits right in the main program.
        let (rp, cg, f) = setup(
            "PROGRAM KERNEL\n!$TARGET K1\nDO I = 1, 100\nDO J = 1, 100\nX = 1.0\nENDDO\nENDDO\nEND\n",
        );
        let t = f.targets().next().unwrap();
        let m = NestingMetrics::compute(&rp, &cg, &f, t);
        assert_eq!(
            m,
            NestingMetrics {
                outer_subs: 0,
                outer_loops: 0,
                enclosed_subs: 0,
                enclosed_loops: 1
            }
        );
    }

    #[test]
    fn framework_style_metrics_are_deep() {
        // SEISMIC-style: main -> driver (in a loop) -> phase -> module,
        // target loop inside the module calling a helper with a loop.
        let (rp, cg, f) = setup(
            "PROGRAM MAIN\nCALL DRIVER\nEND\n\
             SUBROUTINE DRIVER\nDO IT = 1, 10\nCALL PHASE\nENDDO\nEND\n\
             SUBROUTINE PHASE\nCALL MODA\nEND\n\
             SUBROUTINE MODA\n!$TARGET M1\nDO I = 1, 100\nCALL HELPER\nENDDO\nEND\n\
             SUBROUTINE HELPER\nDO K = 1, 4\nX = 1.0\nENDDO\nCALL LEAF\nEND\n\
             SUBROUTINE LEAF\nY = 2.0\nEND\n",
        );
        let t = f.targets().next().unwrap();
        let m = NestingMetrics::compute(&rp, &cg, &f, t);
        assert_eq!(m.outer_subs, 3, "MAIN->DRIVER->PHASE->MODA");
        assert_eq!(m.outer_loops, 1, "the DRIVER iteration loop");
        assert_eq!(m.enclosed_subs, 2, "HELPER->LEAF");
        assert_eq!(m.enclosed_loops, 1, "HELPER's K loop");
    }

    #[test]
    fn clause_facts_for_codegen() {
        let (rp, _, _) = setup(
            "PROGRAM P\nDO I = 1, 10\nDO J = 1, 10\nA(I, J) = 1.0\nENDDO\nENDDO\n\
             DO K = 1, 10\nIF (A(K, 1) .GT. 0.0) THEN\nA(K, 1) = 0.0\nENDIF\nENDDO\nEND\n",
        );
        let body = |i: usize| match &rp.program.units[0].body.stmts[i].kind {
            StmtKind::Do { body, .. } => body,
            _ => panic!("expected DO"),
        };
        assert_eq!(perfect_nest_depth(body(0)), 2);
        assert_eq!(perfect_nest_depth(body(1)), 1);
        assert!(!imbalanced_body(body(0)));
        assert!(imbalanced_body(body(1)));
    }

    #[test]
    fn foreign_call_detection() {
        let (_, _, f) = setup(
            "PROGRAM P\nDO I = 1, 10\nCALL CIO\nENDDO\nEND\n!LANG C\nSUBROUTINE CIO\nEND\n",
        );
        assert!(f.loops[0].has_foreign_call);
    }

    #[test]
    fn deepest_enclosed_loop_path_followed() {
        let (rp, cg, f) = setup(
            "PROGRAM P\n!$TARGET T\nDO I = 1, 10\nCALL A\nENDDO\nEND\n\
             SUBROUTINE A\nDO J = 1, 5\nDO K = 1, 5\nCALL B\nENDDO\nENDDO\nEND\n\
             SUBROUTINE B\nDO L = 1, 2\nX = 1.0\nENDDO\nEND\n",
        );
        let t = f.targets().next().unwrap();
        let m = NestingMetrics::compute(&rp, &cg, &f, t);
        // J, K inside A plus L inside B.
        assert_eq!(m.enclosed_loops, 3);
        assert_eq!(m.enclosed_subs, 2);
    }
}

//! The data-dependence test: GCD test plus the Range Test over symbolic
//! subscripts — the pass Figure 3 shows dominating compile time.
//!
//! For a loop `DO I = lo, hi, s`, a cross-iteration dependence between
//! two references exists when their subscript vectors can be equal for
//! `I ≠ I'`. Independence is proved per dimension: rename the loop
//! variable (and all inner-loop variables) of the second reference to
//! primed copies ranging over the same space, restrict to `I' > I` and
//! `I' < I` in turn, and ask the prover for separation or a GCD
//! divisibility contradiction.
//!
//! Every failure records *why* — the hindrance taxonomy of the paper's
//! §3. Capability gates reproduce the baseline compiler: non-affine
//! subscripts fail without `extended_symbolic`, distinct aliased names
//! fail without `interprocedural_noalias`, subscripted subscripts fail
//! without `indirection_analysis`, shape-changing call boundaries fail
//! without `reshaped_access`, and an exhausted op budget yields
//! `Complexity`.

use std::collections::HashMap;

use apar_minifort::ast::Expr as Ast;
use apar_minifort::{ResolvedProgram, StmtId};
use apar_symbolic::{AssumeEnv, Expr, OpCounter, Prover, Range, VarId};

use crate::access::{AccessKind, ArrayAccess, LoopAccesses};
use crate::alias::AliasInfo;
use crate::ranges::ScalarState;
use crate::summary::Summaries;
use crate::symx::{ExprFeatures, SymMap};
use crate::Capabilities;

/// Why a dependence was assumed (the paper's hindrance taxonomy).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Hindrance {
    /// Distinct names that may share storage.
    Aliasing,
    /// Subscript comparison involved variables with no known range.
    Rangeless,
    /// Subscripted subscripts (`A(IA(I))`).
    Indirection,
    /// Subscripts beyond the implemented symbolic analysis.
    SymbolAnalysis,
    /// Declared/used shape mismatch across a call or storage overlay.
    AccessRepresentation,
    /// The symbolic-op budget was exhausted.
    Complexity,
    /// A call that could not be summarized or inlined.
    CallOpaque,
    /// Genuine (or at least unrefuted affine) dependence.
    Real,
}

/// Kind of a dependence, by the access kinds of its endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DependenceKind {
    Flow,
    Anti,
    Output,
}

/// One assumed or unrefuted dependence.
#[derive(Clone, Debug)]
pub struct Dependence {
    pub array: String,
    pub src: StmtId,
    pub dst: StmtId,
    pub kind: DependenceKind,
    pub why: Hindrance,
}

/// Result of dependence-testing one loop.
#[derive(Clone, Debug, Default)]
pub struct DdOutcome {
    /// No cross-iteration array dependences (scalars are judged by the
    /// privatization/reduction passes).
    pub independent: bool,
    pub dependences: Vec<Dependence>,
    pub pairs_tested: usize,
    pub budget_exceeded: bool,
}

/// A window access contributed by an un-inlined call: the callee touches
/// `[base, base + width)` of `array` each iteration, where `width` is
/// the loop-variable stride of `base` — the framework-template knowledge
/// behind the `reshaped_access` capability. An unknown base means
/// "whole array".
#[derive(Clone, Debug)]
pub struct CallWindow {
    pub array: String,
    pub base: Expr,
    pub kind: AccessKind,
    pub stmt: StmtId,
    /// Failure tag carried when the window could not be modeled.
    pub failed: Option<Hindrance>,
}

/// The loop under test plus its analysis context.
pub struct DdInput<'a> {
    pub rp: &'a ResolvedProgram,
    pub unit: &'a str,
    pub loop_var: &'a str,
    pub lo: &'a Ast,
    pub hi: &'a Ast,
    pub step: Option<&'a Ast>,
    pub state: &'a ScalarState,
    pub la: &'a LoopAccesses,
}

/// Runs the dependence test for one loop.
pub fn test_loop(
    input: &DdInput<'_>,
    sym: &mut SymMap,
    caps: Capabilities,
    alias: &AliasInfo,
    summaries: &Summaries,
    ops: &OpCounter,
) -> DdOutcome {
    let mut out = DdOutcome::default();
    let rp = input.rp;
    let unit = input.unit;
    let la = input.la;

    // Build the environment: outer state + this loop's variable + inner
    // loop variables.
    let mut env = input.state.env.clone();
    let iv = sym.var(rp, unit, input.loop_var);
    let mut feats = ExprFeatures::default();
    let lo_e = input
        .state
        .substitute(&sym.expr(rp, unit, input.lo, &mut feats));
    let hi_e = input
        .state
        .substitute(&sym.expr(rp, unit, input.hi, &mut feats));
    let step_c = match input.step {
        None => Some(1i64),
        Some(e) => input
            .state
            .substitute(&sym.expr(rp, unit, e, &mut feats))
            .as_int(),
    };
    let Some(step_c) = step_c else {
        out.dependences.push(Dependence {
            array: String::new(),
            src: StmtId(0),
            dst: StmtId(0),
            kind: DependenceKind::Flow,
            why: Hindrance::SymbolAnalysis,
        });
        return out;
    };
    if step_c == 0 {
        return out; // malformed; leave serial
    }
    let (lo_n, hi_n) = if step_c > 0 {
        (lo_e.clone(), hi_e.clone())
    } else {
        (hi_e.clone(), lo_e.clone())
    };
    env.set(iv, Range::between(lo_n.clone(), hi_n.clone()));
    // Inner loop variables range over their own bounds.
    let mut inner_vars: Vec<VarId> = Vec::new();
    for (_, v, lo, hi) in &la.inner_loops {
        let vid = sym.var(rp, unit, v);
        inner_vars.push(vid);
        let mut f2 = ExprFeatures::default();
        let l = input.state.substitute(&sym.expr(rp, unit, lo, &mut f2));
        let h = input.state.substitute(&sym.expr(rp, unit, hi, &mut f2));
        if !l.has_unknown() && !h.has_unknown() {
            env.set(vid, Range::between(l, h));
        }
    }

    // Primed copies of the loop variable and inner variables.
    let mut primed: HashMap<VarId, VarId> = HashMap::new();
    for &v in std::iter::once(&iv).chain(inner_vars.iter()) {
        let pname = format!("{}'", sym.interner.name(v).to_owned());
        let pv = sym.interner.intern(&pname);
        primed.insert(v, pv);
        let r = env.range_of(v);
        env.set(pv, r);
    }
    let ivp = primed[&iv];

    // Materialize window accesses from remaining calls.
    let mut windows: Vec<CallWindow> = Vec::new();
    for call in &la.calls {
        match call_windows(rp, unit, sym, &call.state_at, summaries, caps, call) {
            Some(ws) => windows.extend(ws),
            None => {
                out.dependences.push(Dependence {
                    array: call.callee.clone(),
                    src: call.stmt,
                    dst: call.stmt,
                    kind: DependenceKind::Flow,
                    why: Hindrance::CallOpaque,
                });
            }
        }
    }

    let tester = PairTester {
        rp,
        unit,
        caps,
        env: &env,
        ops,
        iv,
        ivp,
        primed: &primed,
        step: step_c.abs(),
        lo: &lo_n,
        hi: &hi_n,
    };
    let accs = &la.accesses;
    for (i, a) in accs.iter().enumerate() {
        for b in accs.iter().skip(i) {
            if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                continue;
            }
            if caps.guarded_regions && a.mutually_exclusive(b) {
                continue;
            }
            out.pairs_tested += 1;
            if a.array != b.array {
                if alias.may_alias(rp, unit, &a.array, &b.array) {
                    let why = if caps.reshaped_access {
                        match tester.test_linearized_pair(sym, a, b) {
                            Ok(true) => continue,
                            Ok(false) => Hindrance::Real,
                            Err(h) => h,
                        }
                    } else {
                        Hindrance::Aliasing
                    };
                    push_dep(&mut out, a, b, why);
                }
                continue;
            }
            match tester.test_pair(a, b) {
                Ok(true) => {}
                Ok(false) => push_dep(&mut out, a, b, Hindrance::Real),
                Err(h) => push_dep(&mut out, a, b, h),
            }
        }
    }
    // Element-vs-window and window-vs-window pairs.
    for (i, w) in windows.iter().enumerate() {
        if let Some(h) = w.failed {
            push_dep_raw(&mut out, &w.array, w.stmt, w.stmt, h);
            continue;
        }
        for a in accs.iter() {
            if w.kind == AccessKind::Read && a.kind == AccessKind::Read {
                continue;
            }
            if !alias.may_alias(rp, unit, &w.array, &a.array) {
                continue;
            }
            out.pairs_tested += 1;
            match tester.test_window_vs_elem(sym, w, a) {
                Ok(true) => {}
                Ok(false) => push_dep_raw(&mut out, &w.array, w.stmt, a.stmt, Hindrance::Real),
                Err(h) => push_dep_raw(&mut out, &w.array, w.stmt, a.stmt, h),
            }
        }
        for w2 in windows.iter().skip(i + 1).chain(std::iter::once(w)) {
            if w.kind == AccessKind::Read && w2.kind == AccessKind::Read {
                continue;
            }
            if w2.failed.is_some() {
                continue;
            }
            if !alias.may_alias(rp, unit, &w.array, &w2.array) {
                continue;
            }
            out.pairs_tested += 1;
            match tester.test_window_pair(w, w2) {
                Ok(true) => {}
                Ok(false) => push_dep_raw(&mut out, &w.array, w.stmt, w2.stmt, Hindrance::Real),
                Err(h) => push_dep_raw(&mut out, &w.array, w.stmt, w2.stmt, h),
            }
        }
    }

    out.budget_exceeded = ops.exceeded();
    if out.budget_exceeded {
        out.dependences.push(Dependence {
            array: String::new(),
            src: StmtId(0),
            dst: StmtId(0),
            kind: DependenceKind::Flow,
            why: Hindrance::Complexity,
        });
    }
    out.independent = out.dependences.is_empty();
    out
}

fn push_dep(out: &mut DdOutcome, a: &ArrayAccess, b: &ArrayAccess, why: Hindrance) {
    let kind = match (a.kind, b.kind) {
        (AccessKind::Write, AccessKind::Write) => DependenceKind::Output,
        (AccessKind::Write, AccessKind::Read) => DependenceKind::Flow,
        (AccessKind::Read, AccessKind::Write) => DependenceKind::Anti,
        _ => DependenceKind::Flow,
    };
    out.dependences.push(Dependence {
        array: a.array.clone(),
        src: a.stmt,
        dst: b.stmt,
        kind,
        why,
    });
}

fn push_dep_raw(out: &mut DdOutcome, array: &str, src: StmtId, dst: StmtId, why: Hindrance) {
    out.dependences.push(Dependence {
        array: array.to_string(),
        src,
        dst,
        kind: DependenceKind::Flow,
        why,
    });
}

/// Derives per-array windows from a call using the callee summary.
/// `None` means the callee is opaque.
fn call_windows(
    rp: &ResolvedProgram,
    unit: &str,
    sym: &mut SymMap,
    state: &ScalarState,
    summaries: &Summaries,
    caps: Capabilities,
    call: &crate::access::LoopCall,
) -> Option<Vec<CallWindow>> {
    let eff = summaries.of(&call.callee);
    if eff.opaque {
        return None;
    }
    let mut ws = Vec::new();
    for (pos, arg) in call.args.iter().enumerate() {
        let reads = eff.read_array_formals.contains(&pos);
        let writes = eff.written_array_formals.contains(&pos);
        if !reads && !writes {
            continue;
        }
        let kind = if writes {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        match arg {
            Ast::Name(n) => {
                // Whole-array access every iteration.
                ws.push(CallWindow {
                    array: n.clone(),
                    base: Expr::unknown(),
                    kind,
                    stmt: call.stmt,
                    failed: Some(Hindrance::AccessRepresentation),
                });
            }
            Ast::Index { name, subs } => {
                if !caps.reshaped_access {
                    ws.push(CallWindow {
                        array: name.clone(),
                        base: Expr::unknown(),
                        kind,
                        stmt: call.stmt,
                        failed: Some(Hindrance::AccessRepresentation),
                    });
                    continue;
                }
                let mut f = ExprFeatures::default();
                match linearize(rp, unit, sym, name, subs, state, &mut f) {
                    Some(base) if !f.indirection => ws.push(CallWindow {
                        array: name.clone(),
                        base,
                        kind,
                        stmt: call.stmt,
                        failed: None,
                    }),
                    _ => ws.push(CallWindow {
                        array: name.clone(),
                        base: Expr::unknown(),
                        kind,
                        stmt: call.stmt,
                        failed: Some(if f.indirection {
                            Hindrance::Indirection
                        } else {
                            Hindrance::AccessRepresentation
                        }),
                    }),
                }
            }
            _ => {}
        }
    }
    // COMMON arrays touched by the callee are whole-array effects.
    for (roots, kind) in [
        (&eff.written_common_arrays, AccessKind::Write),
        (&eff.read_common_arrays, AccessKind::Read),
    ] {
        for root in roots.iter() {
            if let Some(name) = common_member_name(rp, unit, root) {
                ws.push(CallWindow {
                    array: name,
                    base: Expr::unknown(),
                    kind,
                    stmt: call.stmt,
                    failed: Some(Hindrance::AccessRepresentation),
                });
            }
        }
    }
    Some(ws)
}

fn common_member_name(rp: &ResolvedProgram, unit: &str, root: &str) -> Option<String> {
    use apar_minifort::symtab::{Storage, SymbolKind};
    let table = rp.tables.get(unit)?;
    for s in table.iter() {
        if let (SymbolKind::Array(_), Storage::Common { block, offset }) = (&s.kind, &s.storage) {
            if format!("/{}/+{}", block, offset) == root {
                return Some(s.name.clone());
            }
        }
    }
    None
}

/// Column-major linearized element offset of `name(subs)` (0-based).
pub fn linearize(
    rp: &ResolvedProgram,
    unit: &str,
    sym: &mut SymMap,
    name: &str,
    subs: &[Ast],
    state: &ScalarState,
    feats: &mut ExprFeatures,
) -> Option<Expr> {
    let table = rp.tables.get(unit)?;
    let s = table.get(name)?;
    let shape = s.shape()?;
    let mut offset = Expr::int(0);
    let mut stride = Expr::int(1);
    for (k, sub) in subs.iter().enumerate() {
        let d = shape.dims.get(k)?;
        let mut f_lo = ExprFeatures::default();
        let lo = state.substitute(&sym.expr(rp, unit, &d.lo, &mut f_lo));
        let se = state.substitute(&sym.expr(rp, unit, sub, feats));
        offset = offset.add(se.sub(lo.clone()).mul(stride.clone()));
        match &d.hi {
            Some(h) => {
                let hi = state.substitute(&sym.expr(rp, unit, h, &mut f_lo));
                stride = stride.mul(hi.sub(lo).add(Expr::int(1)));
            }
            None => {
                if k + 1 < subs.len() {
                    return None; // assumed-size before last subscript
                }
            }
        }
    }
    Some(offset)
}

struct PairTester<'a> {
    rp: &'a ResolvedProgram,
    unit: &'a str,
    caps: Capabilities,
    env: &'a AssumeEnv,
    ops: &'a OpCounter,
    iv: VarId,
    ivp: VarId,
    primed: &'a HashMap<VarId, VarId>,
    step: i64,
    lo: &'a Expr,
    hi: &'a Expr,
}

impl PairTester<'_> {
    /// Tests one same-name pair. `Ok(true)` = independent across
    /// iterations; `Ok(false)` = unrefuted dependence; `Err(h)` = failed
    /// with hindrance `h`.
    fn test_pair(&self, a: &ArrayAccess, b: &ArrayAccess) -> Result<bool, Hindrance> {
        for acc in [a, b] {
            if acc.features.indirection && !self.caps.indirection_analysis {
                return Err(Hindrance::Indirection);
            }
            if acc.features.opaque_call {
                return Err(Hindrance::SymbolAnalysis);
            }
        }
        if a.features.indirection || b.features.indirection {
            // Capability on: identical gather expressions are treated as
            // injective (permutation index arrays); anything else keeps
            // the dependence.
            return if a.ast_subs == b.ast_subs {
                Ok(true)
            } else {
                Err(Hindrance::Indirection)
            };
        }
        let declared_rank = self
            .rp
            .tables
            .get(self.unit)
            .and_then(|t| t.get(&a.array))
            .and_then(|s| s.shape())
            .map(|sh| sh.rank())
            .unwrap_or(a.subs.len());
        if a.subs.len() != b.subs.len()
            || (a.subs.len() != declared_rank && !self.caps.reshaped_access)
        {
            return Err(Hindrance::AccessRepresentation);
        }
        if !self.caps.extended_symbolic {
            for e in a.subs.iter().chain(b.subs.iter()) {
                if !baseline_tractable(e) {
                    return Err(Hindrance::SymbolAnalysis);
                }
            }
        }
        // Per-dimension separation.
        let mut saw_rangeless = false;
        for k in 0..a.subs.len() {
            let d1 = a.subs[k].clone();
            let d2 = prime(&b.subs[k], self.primed);
            match self.separates(&d1, &d2) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(()) => {
                    if self.ops.exceeded() {
                        return Err(Hindrance::Complexity);
                    }
                    if self.mentions_rangeless(&d1) || self.mentions_rangeless(&d2) {
                        saw_rangeless = true;
                    }
                }
            }
        }
        if saw_rangeless {
            return Err(Hindrance::Rangeless);
        }
        Ok(false)
    }

    /// Distinct aliased names under reshaped-access: compare linearized
    /// storage offsets.
    fn test_linearized_pair(
        &self,
        sym: &mut SymMap,
        a: &ArrayAccess,
        b: &ArrayAccess,
    ) -> Result<bool, Hindrance> {
        use crate::alias::{location, Root};
        let (Some(la), Some(lb)) = (
            location(self.rp, self.unit, &a.array),
            location(self.rp, self.unit, &b.array),
        ) else {
            return Err(Hindrance::Aliasing);
        };
        if la.root != lb.root || matches!(la.root, Root::Formal { .. }) {
            return Err(Hindrance::Aliasing);
        }
        let state = ScalarState::default();
        let mut f = ExprFeatures::default();
        let oa = linearize(
            self.rp,
            self.unit,
            sym,
            &a.array,
            &a.ast_subs,
            &state,
            &mut f,
        )
        .ok_or(Hindrance::AccessRepresentation)?
        .add(Expr::int(la.offset));
        let ob = linearize(
            self.rp,
            self.unit,
            sym,
            &b.array,
            &b.ast_subs,
            &state,
            &mut f,
        )
        .ok_or(Hindrance::AccessRepresentation)?
        .add(Expr::int(lb.offset));
        if f.indirection {
            return Err(Hindrance::Indirection);
        }
        let obp = prime(&ob, self.primed);
        match self.separates(&oa, &obp) {
            Ok(sep) => Ok(sep),
            Err(()) => {
                if self.ops.exceeded() {
                    Err(Hindrance::Complexity)
                } else if self.mentions_rangeless(&oa) || self.mentions_rangeless(&obp) {
                    Err(Hindrance::Rangeless)
                } else {
                    // Affine but unrefuted: a real overlap.
                    Ok(false)
                }
            }
        }
    }

    fn test_window_vs_elem(
        &self,
        sym: &mut SymMap,
        w: &CallWindow,
        a: &ArrayAccess,
    ) -> Result<bool, Hindrance> {
        let width = self
            .window_width(&w.base)
            .ok_or(Hindrance::AccessRepresentation)?;
        let state = ScalarState::default();
        let mut f = ExprFeatures::default();
        let elem = linearize(
            self.rp,
            self.unit,
            sym,
            &a.array,
            &a.ast_subs,
            &state,
            &mut f,
        )
        .ok_or(Hindrance::AccessRepresentation)?;
        let elem_p = prime(&elem, self.primed);
        let hi_edge = w.base.add(width);
        let sep =
            self.both_directions(|p| p.prove_lt(&elem_p, &w.base) || p.prove_ge(&elem_p, &hi_edge));
        if sep {
            Ok(true)
        } else if self.ops.exceeded() {
            Err(Hindrance::Complexity)
        } else {
            Err(Hindrance::AccessRepresentation)
        }
    }

    fn test_window_pair(&self, w1: &CallWindow, w2: &CallWindow) -> Result<bool, Hindrance> {
        let width1 = self
            .window_width(&w1.base)
            .ok_or(Hindrance::AccessRepresentation)?;
        let width2 = self
            .window_width(&w2.base)
            .ok_or(Hindrance::AccessRepresentation)?;
        let b2 = prime(&w2.base, self.primed);
        let w2_hi = b2.add(prime(&width2, self.primed));
        let w1_hi = w1.base.add(width1);
        let sep = self.both_directions(|p| p.prove_le(&w1_hi, &b2) || p.prove_le(&w2_hi, &w1.base));
        if sep {
            Ok(true)
        } else if self.ops.exceeded() {
            Err(Hindrance::Complexity)
        } else {
            Ok(false)
        }
    }

    /// The modeled window width: the loop-variable stride of the base.
    /// A loop-invariant base means the callee touches the same location
    /// every iteration — at least one element wide, so the overlap is
    /// detected rather than silently missed.
    fn window_width(&self, base: &Expr) -> Option<Expr> {
        if base.has_unknown() {
            return None;
        }
        let d = base
            .subst(self.iv, &Expr::var(self.iv).add(Expr::int(1)))
            .sub(base.clone());
        if d.has_unknown() {
            return None;
        }
        if d.as_int() == Some(0) {
            return Some(Expr::int(1));
        }
        if matches!(d.as_int(), Some(k) if k < 0) {
            return None; // decreasing bases are not modeled
        }
        Some(d)
    }

    /// Does `d1(I) != d2(I')` hold whenever `I' != I`? `Err(())` means
    /// the question could not be settled.
    fn separates(&self, d1: &Expr, d2: &Expr) -> Result<bool, ()> {
        let diff = d1.sub(d2.clone());
        if let Some(k) = diff.as_int() {
            // Subscripts differ by a constant: zero means the same
            // element in corresponding iterations — but if neither side
            // mentions the loop variable the element is LOOP-INVARIANT
            // and collides across iterations.
            if k != 0 {
                return Ok(true);
            }
            return Ok(false);
        }
        let g = diff.lin().coef_gcd();
        if g > 1 && diff.lin().constant_part() % g != 0 {
            return Ok(true);
        }
        if !mentions(d1, self.iv) && !mentions(d2, self.ivp) {
            let p = Prover::new(self.env, self.ops);
            return if p.prove_ne(d1, d2) {
                Ok(true)
            } else {
                Err(())
            };
        }
        if self.both_directions(|p| p.prove_ne(d1, d2)) {
            Ok(true)
        } else {
            Err(())
        }
    }

    /// Runs a proof under `I' >= I + step` and then `I' <= I - step`;
    /// both must hold.
    fn both_directions(&self, f: impl Fn(&Prover<'_>) -> bool) -> bool {
        for upper in [true, false] {
            let mut env = self.env.clone();
            if upper {
                env.set(
                    self.ivp,
                    Range::between(
                        Expr::var(self.iv).add(Expr::int(self.step)),
                        self.hi.clone(),
                    ),
                );
            } else {
                env.set(
                    self.ivp,
                    Range::between(
                        self.lo.clone(),
                        Expr::var(self.iv).sub(Expr::int(self.step)),
                    ),
                );
            }
            let p = Prover::new(&env, self.ops);
            if !f(&p) {
                return false;
            }
        }
        true
    }

    fn mentions_rangeless(&self, e: &Expr) -> bool {
        e.vars()
            .into_iter()
            .any(|v| v != self.iv && v != self.ivp && self.env.is_rangeless(v))
    }
}

fn mentions(e: &Expr, v: VarId) -> bool {
    e.vars().contains(&v)
}

fn prime(e: &Expr, primed: &HashMap<VarId, VarId>) -> Expr {
    e.subst_map(&mut |v| primed.get(&v).map(|pv| Expr::var(*pv)))
}

/// What the 2008 baseline's symbolic engine handles: affine expressions
/// whose nonconstant terms are single variables (no products of
/// variables, no division/modulo/min/max atoms).
fn baseline_tractable(e: &Expr) -> bool {
    e.lin().terms().iter().all(|(_, m)| {
        m.degree() == 1
            && m.factors()
                .iter()
                .all(|(a, _)| matches!(a, apar_symbolic::Atom::Var(_)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access;
    use crate::callgraph::CallGraph;
    use crate::ranges;
    use apar_minifort::ast::StmtKind;
    use apar_minifort::frontend;

    /// Runs the front half of the pipeline on the first `!$TARGET` loop
    /// found anywhere in the program.
    fn run(src: &str, caps: Capabilities) -> DdOutcome {
        run_budget(src, caps, None).0
    }

    fn run_budget(src: &str, caps: Capabilities, budget: Option<u64>) -> (DdOutcome, bool) {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let unlimited = OpCounter::unlimited();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &unlimited);
        let alias = AliasInfo::build(&rp, &cg, caps, &unlimited);
        for unit in rp.unit_names() {
            let unit = unit.to_string();
            let ur = ranges::analyze_unit(
                &rp,
                &unit,
                &mut sym,
                caps,
                &summaries,
                &ranges::ScalarState::default(),
                &unlimited,
            );
            let mut found = None;
            rp.unit(&unit).unwrap().body.walk_stmts(&mut |s| {
                if found.is_none() {
                    if let StmtKind::Do {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                        target: Some(_),
                        ..
                    } = &s.kind
                    {
                        found = Some((
                            s.id,
                            var.clone(),
                            lo.clone(),
                            hi.clone(),
                            step.clone(),
                            body.clone(),
                        ));
                    }
                }
            });
            if let Some((sid, var, lo, hi, step, body)) = found {
                let state = ur.at_loop.get(&sid).cloned().unwrap_or_default();
                let la = access::collect(&rp, &unit, &body, &mut sym, &state);
                let ops = match budget {
                    Some(b) => OpCounter::with_budget(b),
                    None => OpCounter::unlimited(),
                };
                let input = DdInput {
                    rp: &rp,
                    unit: &unit,
                    loop_var: &var,
                    lo: &lo,
                    hi: &hi,
                    step: step.as_ref(),
                    state: &state,
                    la: &la,
                };
                let out = test_loop(&input, &mut sym, caps, &alias, &summaries, &ops);
                let exceeded = ops.exceeded();
                return (out, exceeded);
            }
        }
        panic!("no target loop found");
    }

    const BASE: &str = "PROGRAM P\nREAL A(100), B(100)\nN = 100\n";

    #[test]
    fn simple_parallel_loop() {
        let out = run(
            &format!("{BASE}!$TARGET T\nDO I = 1, N\nA(I) = B(I) * 2.0\nENDDO\nEND\n"),
            Capabilities::polaris2008(),
        );
        assert!(out.independent, "{:?}", out.dependences);
    }

    #[test]
    fn true_dependence_detected() {
        let out = run(
            &format!("{BASE}!$TARGET T\nDO I = 2, N\nA(I) = A(I - 1) + 1.0\nENDDO\nEND\n"),
            Capabilities::polaris2008(),
        );
        assert!(!out.independent);
        assert!(out
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::Real && d.array == "A"));
        // ... and stays dependent even with every capability on.
        let full = run(
            &format!("{BASE}!$TARGET T\nDO I = 2, N\nA(I) = A(I - 1) + 1.0\nENDDO\nEND\n"),
            Capabilities::full(),
        );
        assert!(!full.independent);
    }

    #[test]
    fn shifted_disjoint_halves() {
        let out = run(
            "PROGRAM P\nREAL A(100)\n!$TARGET T\nDO I = 1, 50\nA(I) = A(I + 50) * 0.5\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(out.independent, "{:?}", out.dependences);
    }

    #[test]
    fn gcd_separates_strided_accesses() {
        let out = run(
            &format!("{BASE}!$TARGET T\nDO I = 1, 49\nA(2 * I) = A(2 * I + 1) + 1.0\nENDDO\nEND\n"),
            Capabilities::polaris2008(),
        );
        assert!(out.independent, "{:?}", out.dependences);
    }

    #[test]
    fn rangeless_deck_variable_blocks_baseline() {
        // The deck is validated (M >= N); only a compiler that exploits
        // deck relations can use that.
        let src = "PROGRAM P\nREAL A(2000000)\nREAD(*,*) N, M\nIF (M .LT. N) STOP\nIF (N .GT. 1000) STOP\n!$TARGET T\nDO I = 1, N\nA(I) = A(I + M) + 1.0\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(!base.independent);
        assert!(
            base.dependences
                .iter()
                .any(|d| d.why == Hindrance::Rangeless),
            "{:?}",
            base.dependences
        );
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn indirection_blocks_baseline() {
        let src = "PROGRAM P\nREAL A(100)\nINTEGER IA(100)\n!$TARGET T\nDO I = 1, 100\nA(IA(I)) = A(IA(I)) + 1.0\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(base
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::Indirection));
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn differing_gathers_stay_dependent() {
        let src = "PROGRAM P\nREAL A(100)\nINTEGER IA(100), JA(100)\n!$TARGET T\nDO I = 1, 100\nA(IA(I)) = A(JA(I)) + 1.0\nENDDO\nEND\n";
        let full = run(src, Capabilities::full());
        assert!(!full.independent);
    }

    #[test]
    fn nonlinear_subscript_needs_extended_symbolic() {
        let src = "PROGRAM P\nREAL A(2000000)\nREAD(*,*) LD\nIF (LD .GT. 1000) STOP\n!$TARGET T\nDO J = 1, 100\nDO I = 1, LD\nA((J - 1) * LD + I) = 1.0\nENDDO\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(
            base.dependences
                .iter()
                .any(|d| d.why == Hindrance::SymbolAnalysis),
            "{:?}",
            base.dependences
        );
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn aliased_formals_block_baseline() {
        let src = "PROGRAM P\nREAL X(100), Y(100)\nCALL S(X, Y)\nEND\nSUBROUTINE S(A, B)\nREAL A(100), B(100)\n!$TARGET T\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(base
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::Aliasing));
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn budget_exhaustion_is_complexity() {
        let (out, exceeded) = run_budget(
            &format!("{BASE}!$TARGET T\nDO I = 1, N\nA(I) = B(I) * 2.0\nENDDO\nEND\n"),
            Capabilities::polaris2008(),
            Some(2),
        );
        assert!(exceeded);
        assert!(out
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::Complexity));
    }

    #[test]
    fn output_dependence_on_loop_invariant_write() {
        let out = run(
            &format!("{BASE}!$TARGET T\nDO I = 1, N\nA(1) = B(I)\nENDDO\nEND\n"),
            Capabilities::polaris2008(),
        );
        assert!(!out.independent);
        assert!(out
            .dependences
            .iter()
            .any(|d| d.kind == DependenceKind::Output && d.why == Hindrance::Real));
    }

    #[test]
    fn guarded_branches_need_guarded_regions() {
        let src = "PROGRAM P\nREAL A(100)\nREAD(*,*) KIND\n!$TARGET T\nDO I = 1, 99\nIF (KIND .EQ. 1) THEN\nA(I) = 1.0\nELSE\nA(I + 1) = 2.0\nENDIF\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(!base.independent);
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn multidim_independent_on_one_dim() {
        let out = run(
            "PROGRAM P\nREAL A(10, 10)\n!$TARGET T\nDO I = 1, 10\nDO J = 1, 10\nA(J, I) = A(J, I) + 1.0\nENDDO\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(out.independent, "{:?}", out.dependences);
    }

    #[test]
    fn equivalenced_names_need_linearization() {
        // B(I) and A(I) overlap with a 4-word shift; cross-iteration
        // collisions are real, so even linearization keeps the
        // dependence — but the baseline reports Aliasing while
        // reshaped-access reports a real dependence.
        let src = "PROGRAM P\nREAL A(100), B(100)\nEQUIVALENCE (A(5), B(1))\n!$TARGET T\nDO I = 1, 50\nA(I) = B(I) + 1.0\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(base
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::Aliasing));
        let full = run(src, Capabilities::full());
        assert!(!full.independent);
        assert!(full.dependences.iter().any(|d| d.why == Hindrance::Real));
    }

    #[test]
    fn equivalenced_names_disjoint_regions_recovered() {
        // A and B overlap storage, but the touched regions stay disjoint:
        // A(I) for I in [1,10] is words 0..9, B(I) words 20+0..9.
        let src = "PROGRAM P\nREAL A(100), B(100), PAD(200)\nEQUIVALENCE (PAD(1), A(1)), (PAD(21), B(1))\n!$TARGET T\nDO I = 1, 10\nPAD(I) = PAD(I + 20) + 1.0\nENDDO\nEND\n";
        let out = run(src, Capabilities::polaris2008());
        assert!(out.independent, "{:?}", out.dependences);
    }

    #[test]
    fn un_inlined_call_with_section_windows() {
        // STAK-style: the callee writes a LD-wide window per iteration.
        let src = "PROGRAM P\nREAL RA(10000)\nPARAMETER (LD = 100)\n!$TARGET T\nDO I = 1, 100\nCALL ROW(RA((I - 1) * LD + 1), LD)\nENDDO\nEND\nSUBROUTINE ROW(R, N)\nREAL R(N)\nDO K = 1, N\nR(K) = 1.0\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(
            base.dependences
                .iter()
                .any(|d| d.why == Hindrance::AccessRepresentation),
            "{:?}",
            base.dependences
        );
        let full = run(src, Capabilities::full());
        assert!(full.independent, "{:?}", full.dependences);
    }

    #[test]
    fn whole_array_call_argument_blocks() {
        let src = "PROGRAM P\nREAL RA(100)\n!$TARGET T\nDO I = 1, 100\nCALL TOUCH(RA)\nENDDO\nEND\nSUBROUTINE TOUCH(R)\nREAL R(*)\nR(1) = R(1) + 1.0\nEND\n";
        let full = run(src, Capabilities::full());
        assert!(!full.independent);
    }

    #[test]
    fn opaque_callee_blocks() {
        let src = "PROGRAM P\nREAL RA(100)\n!$TARGET T\nDO I = 1, 100\nCALL CIO(RA, I)\nENDDO\nEND\n!LANG C\nSUBROUTINE CIO(R, K)\nREAL R(*)\nR(K) = 1.0\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert!(base
            .dependences
            .iter()
            .any(|d| d.why == Hindrance::CallOpaque));
    }
}

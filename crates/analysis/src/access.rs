//! Collection of array accesses inside a loop body.
//!
//! For each array reference the collector records the symbolic subscript
//! vector (with known scalar values substituted in), whether it reads or
//! writes, the guard depth (number of enclosing IFs inside the loop —
//! the multifunctionality dimension), and conversion features
//! (indirection, opaque calls). Remaining CALL statements, I/O, and
//! control-flow escapes are reported so the dependence driver can treat
//! them appropriately.

use apar_minifort::ast::{Block, Expr as Ast, Stmt, StmtKind};
use apar_minifort::{ResolvedProgram, StmtId};
use apar_symbolic::Expr;

/// Does `rhs` mention any tainted scalar?
fn rhs_mentions_tainted(
    rhs: &Ast,
    rp: &ResolvedProgram,
    unit: &str,
    sym: &mut SymMap,
    tainted: &std::collections::HashSet<apar_symbolic::VarId>,
) -> bool {
    let mut names = Vec::new();
    rhs.walk(&mut |e| {
        if let Ast::Name(n) = e {
            names.push(n.clone());
        }
    });
    names
        .iter()
        .any(|n| tainted.contains(&sym.var(rp, unit, n)))
}

/// Scalar names assigned anywhere in a block (incl. READ targets and DO
/// variables).
fn collect_assigned_names(b: &Block, out: &mut Vec<String>) {
    b.walk_stmts(&mut |s| match &s.kind {
        StmtKind::Assign { lhs: Ast::Name(n), .. } => out.push(n.clone()),
        StmtKind::Do { var, .. } => out.push(var.clone()),
        StmtKind::Read { items } => {
            for it in items {
                if let Some(n) = it.lvalue_name() {
                    out.push(n.to_string());
                }
            }
        }
        _ => {}
    });
}

use crate::ranges::ScalarState;
use crate::symx::{ExprFeatures, SymMap};

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
}

/// One array element access.
#[derive(Clone, Debug)]
pub struct ArrayAccess {
    /// The array's name in this unit.
    pub array: String,
    /// Symbolic subscripts after value substitution.
    pub subs: Vec<Expr>,
    pub kind: AccessKind,
    pub stmt: StmtId,
    /// Number of IF statements between the loop header and this access.
    pub guard_depth: usize,
    /// Features of the subscript expressions.
    pub features: ExprFeatures,
    /// Raw AST subscripts (kept for privatization's coverage check).
    pub ast_subs: Vec<Ast>,
    /// Chain of enclosing IF arms inside the loop: `(if_stmt, arm_index)`
    /// with `usize::MAX` for the ELSE block. Two accesses whose paths
    /// share an IF with different arms are mutually exclusive — usable
    /// only under the guarded-regions capability.
    pub guard_path: Vec<(StmtId, usize)>,
}

impl ArrayAccess {
    /// True when the two accesses are on provably exclusive control
    /// paths (different arms of one IF).
    pub fn mutually_exclusive(&self, other: &ArrayAccess) -> bool {
        for &(ifa, arma) in &self.guard_path {
            for &(ifb, armb) in &other.guard_path {
                if ifa == ifb && arma != armb {
                    return true;
                }
            }
        }
        false
    }
}

/// A call left inside the loop body (after any inlining).
#[derive(Clone, Debug)]
pub struct LoopCall {
    pub callee: String,
    pub stmt: StmtId,
    pub args: Vec<Ast>,
    /// Scalar facts at the call site (entry facts plus forward
    /// substitution) — section bases like `OTRA(IOFF + 1)` resolve
    /// through assignments earlier in the body.
    pub state_at: ScalarState,
}

/// Everything the dependence test needs about one loop body.
#[derive(Clone, Debug, Default)]
pub struct LoopAccesses {
    pub accesses: Vec<ArrayAccess>,
    /// Scalar variables assigned in the body `(name, stmt, guard_depth)`.
    pub scalar_writes: Vec<(String, StmtId, usize)>,
    /// Scalar variables read in the body.
    pub scalar_reads: Vec<(String, StmtId)>,
    pub calls: Vec<LoopCall>,
    /// The body performs READ/WRITE I/O.
    pub has_io: bool,
    /// The body can jump out or stop (GOTO/RETURN/STOP).
    pub has_escape: bool,
    /// Inner DO loops `(stmt, var, lo, hi)` in AST form.
    pub inner_loops: Vec<(StmtId, String, Ast, Ast)>,
}

/// Collects accesses in `body` (the body of a DO loop in `unit`).
///
/// The walk is position-sensitive: unconditional scalar assignments are
/// *forward-substituted* into later subscripts (Polaris's forward
/// substitution), so `IOFF = (ITR-1)*NSAMP` followed by `A(IOFF + IS)`
/// yields the composed subscript.
pub fn collect(
    rp: &ResolvedProgram,
    unit: &str,
    body: &Block,
    sym: &mut SymMap,
    state: &ScalarState,
) -> LoopAccesses {
    let mut out = LoopAccesses::default();
    let mut cx = Collector {
        rp,
        unit,
        sym,
        local: state.clone(),
        tainted: std::collections::HashSet::new(),
        guard_path: Vec::new(),
    };
    cx.block(body, 0, &mut out);
    out
}

struct Collector<'a> {
    rp: &'a ResolvedProgram,
    unit: &'a str,
    sym: &'a mut SymMap,
    /// Entry facts plus forward-substituted scalar values.
    local: ScalarState,
    /// Scalars whose current value came through an array element
    /// (`J = IBR(I)`): subscripts using them are indirect accesses.
    tainted: std::collections::HashSet<apar_symbolic::VarId>,
    guard_path: Vec<(StmtId, usize)>,
}

impl Collector<'_> {
    fn block(&mut self, b: &Block, guard: usize, out: &mut LoopAccesses) {
        for s in &b.stmts {
            self.stmt(s, guard, out);
        }
    }

    fn stmt(&mut self, s: &Stmt, guard: usize, out: &mut LoopAccesses) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                match lhs {
                    Ast::Index { .. } => {
                        self.expr(lhs, AccessKind::Write, s.id, guard, out);
                    }
                    Ast::Name(n)
                        if !self.rp.tables[self.unit].is_array(n) => {
                            out.scalar_writes.push((n.clone(), s.id, guard));
                        }
                    _ => {}
                }
                self.expr(rhs, AccessKind::Read, s.id, guard, out);
                // Forward substitution for unconditional integer-scalar
                // assignments; anything else kills the fact.
                if let Ast::Name(n) = lhs {
                    let table = &self.rp.tables[self.unit];
                    let v = self.sym.var(self.rp, self.unit, n);
                    self.local.kill(v);
                    self.tainted.remove(&v);
                    if !table.is_array(n) && table.type_of(n) == apar_minifort::Ty::Integer {
                        let mut f = ExprFeatures::default();
                        let e = self.sym.expr(self.rp, self.unit, rhs, &mut f);
                        let e = self.local.substitute(&e);
                        if f.indirection
                            || rhs_mentions_tainted(rhs, self.rp, self.unit, self.sym, &self.tainted)
                        {
                            // The scalar now carries an array-dependent
                            // value: uses of it in subscripts are
                            // subscripted subscripts.
                            self.tainted.insert(v);
                        } else if guard == 0 && !e.has_unknown() && !e.vars().contains(&v) {
                            self.local.values.insert(v, e);
                        }
                    }
                }
            }
            StmtKind::If { arms, else_blk } => {
                for (i, (c, b)) in arms.iter().enumerate() {
                    self.expr(c, AccessKind::Read, s.id, guard, out);
                    self.guard_path.push((s.id, i));
                    self.block(b, guard + 1, out);
                    self.guard_path.pop();
                }
                if let Some(b) = else_blk {
                    self.guard_path.push((s.id, usize::MAX));
                    self.block(b, guard + 1, out);
                    self.guard_path.pop();
                }
                // Conditional assignments invalidate forward facts.
                let mut assigned: Vec<String> = Vec::new();
                for (_, b) in arms {
                    collect_assigned_names(b, &mut assigned);
                }
                if let Some(b) = else_blk {
                    collect_assigned_names(b, &mut assigned);
                }
                for n in assigned {
                    let v = self.sym.var(self.rp, self.unit, &n);
                    self.local.kill(v);
                }
            }
            StmtKind::Do {
                var, lo, hi, body, ..
            } => {
                out.inner_loops
                    .push((s.id, var.clone(), lo.clone(), hi.clone()));
                out.scalar_writes.push((var.clone(), s.id, guard));
                self.expr(lo, AccessKind::Read, s.id, guard, out);
                self.expr(hi, AccessKind::Read, s.id, guard, out);
                // The inner loop variable varies inside; names assigned
                // in the body are invalid afterwards.
                let vvar = self.sym.var(self.rp, self.unit, var);
                self.local.kill(vvar);
                self.block(body, guard, out);
                let mut assigned: Vec<String> = vec![var.clone()];
                collect_assigned_names(body, &mut assigned);
                for n in assigned {
                    let v = self.sym.var(self.rp, self.unit, &n);
                    self.local.kill(v);
                }
            }
            StmtKind::DoWhile { cond, body } => {
                self.expr(cond, AccessKind::Read, s.id, guard, out);
                self.block(body, guard, out);
                let mut assigned: Vec<String> = Vec::new();
                collect_assigned_names(body, &mut assigned);
                for n in assigned {
                    let v = self.sym.var(self.rp, self.unit, &n);
                    self.local.kill(v);
                }
            }
            StmtKind::Call { name, args } => {
                out.calls.push(LoopCall {
                    callee: name.clone(),
                    stmt: s.id,
                    args: args.clone(),
                    state_at: self.local.clone(),
                });
                for a in args {
                    // Subscripts of section actuals are reads; whole-name
                    // actuals are handled by the call summary.
                    if let Ast::Index { subs, .. } = a {
                        for sub in subs {
                            self.expr(sub, AccessKind::Read, s.id, guard, out);
                        }
                    } else if !matches!(a, Ast::Name(_)) {
                        self.expr(a, AccessKind::Read, s.id, guard, out);
                    }
                }
                // Calls may clobber anything: drop all forward facts but
                // keep the entry ranges.
                self.local.values.clear();
            }
            StmtKind::Read { items } => {
                out.has_io = true;
                for it in items {
                    if let Some(n) = it.lvalue_name() {
                        let v = self.sym.var(self.rp, self.unit, n);
                        self.local.kill(v);
                    }
                }
            }
            StmtKind::Write { .. } => {
                out.has_io = true;
            }
            StmtKind::Goto(_) | StmtKind::Return | StmtKind::Stop => {
                out.has_escape = true;
            }
            StmtKind::Continue => {}
        }
    }

    fn expr(&mut self, e: &Ast, kind: AccessKind, stmt: StmtId, guard: usize, out: &mut LoopAccesses) {
        match e {
            Ast::Index { name, subs } => {
                let mut features = ExprFeatures::default();
                let sym_subs: Vec<Expr> = subs
                    .iter()
                    .map(|sub| {
                        let raw = self.sym.expr(self.rp, self.unit, sub, &mut features);
                        let raw = self.local.substitute(&raw);
                        if raw.vars().iter().any(|v| self.tainted.contains(v)) {
                            features.indirection = true;
                        }
                        raw
                    })
                    .collect();
                out.accesses.push(ArrayAccess {
                    array: name.clone(),
                    subs: sym_subs,
                    kind,
                    stmt,
                    guard_depth: guard,
                    features,
                    ast_subs: subs.clone(),
                    guard_path: self.guard_path.clone(),
                });
                // Subscript expressions are themselves reads.
                for sub in subs {
                    self.expr(sub, AccessKind::Read, stmt, guard, out);
                }
            }
            Ast::Name(n)
                if !self.rp.tables[self.unit].is_array(n) => {
                    out.scalar_reads.push((n.clone(), stmt));
                }
            Ast::CallF { args, .. } | Ast::Sub { args, .. } => {
                for a in args {
                    self.expr(a, AccessKind::Read, stmt, guard, out);
                }
            }
            Ast::Bin(_, l, r) => {
                self.expr(l, AccessKind::Read, stmt, guard, out);
                self.expr(r, AccessKind::Read, stmt, guard, out);
            }
            Ast::Un(_, i) => {
                self.expr(i, AccessKind::Read, stmt, guard, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn collect_first_loop(src: &str) -> LoopAccesses {
        let rp = frontend(src).expect("frontend");
        let unit = rp.main_unit().expect("main").name.clone();
        let mut sym = SymMap::new();
        let mut body = None;
        rp.unit(&unit).unwrap().body.walk_stmts(&mut |s| {
            if body.is_none() {
                if let StmtKind::Do { body: b, .. } = &s.kind {
                    body = Some(b.clone());
                }
            }
        });
        let state = ScalarState::default();
        collect(&rp, &unit, &body.expect("loop"), &mut sym, &state)
    }

    #[test]
    fn reads_and_writes_recorded() {
        let la = collect_first_loop(
            "PROGRAM P\nREAL A(10), B(10)\nDO I = 1, 10\nA(I) = B(I) + B(I + 1)\nENDDO\nEND\n",
        );
        let writes: Vec<_> = la
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .collect();
        let reads: Vec<_> = la
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].array, "A");
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|r| r.array == "B"));
    }

    #[test]
    fn guard_depth_counts_ifs() {
        let la = collect_first_loop(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nIF (X .GT. 0.0) THEN\nA(I) = 1.0\nENDIF\nENDDO\nEND\n",
        );
        let w = la
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write)
            .unwrap();
        assert_eq!(w.guard_depth, 1);
    }

    #[test]
    fn indirection_detected() {
        let la = collect_first_loop(
            "PROGRAM P\nREAL A(10)\nINTEGER IA(10)\nDO I = 1, 10\nA(IA(I)) = 1.0\nENDDO\nEND\n",
        );
        let w = la
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write && a.array == "A")
            .unwrap();
        assert!(w.features.indirection);
        // IA(I) itself is also recorded as a read.
        assert!(la
            .accesses
            .iter()
            .any(|a| a.array == "IA" && a.kind == AccessKind::Read));
    }

    #[test]
    fn io_and_escape_flags() {
        let la = collect_first_loop(
            "PROGRAM P\nDO I = 1, 10\nWRITE(*,*) I\nIF (I .GT. 5) GOTO 99\nENDDO\n99 CONTINUE\nEND\n",
        );
        assert!(la.has_io);
        assert!(la.has_escape);
    }

    #[test]
    fn calls_and_inner_loops_listed() {
        let la = collect_first_loop(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nDO J = 1, 5\nA(J) = 0.0\nENDDO\nCALL FOO(A, I)\nENDDO\nEND\nSUBROUTINE FOO(X, K)\nREAL X(*)\nEND\n",
        );
        assert_eq!(la.calls.len(), 1);
        assert_eq!(la.calls[0].callee, "FOO");
        assert_eq!(la.inner_loops.len(), 1);
        assert_eq!(la.inner_loops[0].1, "J");
    }

    #[test]
    fn scalar_reads_and_writes() {
        let la = collect_first_loop(
            "PROGRAM P\nDO I = 1, 10\nT = I * 2.0\nS = S + T\nENDDO\nEND\n",
        );
        let wnames: Vec<_> = la.scalar_writes.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(wnames.contains(&"T"));
        assert!(wnames.contains(&"S"));
        let rnames: Vec<_> = la.scalar_reads.iter().map(|(n, _)| n.as_str()).collect();
        assert!(rnames.contains(&"T"));
        assert!(rnames.contains(&"S"));
    }
}

//! Reduction recognition.
//!
//! Finds `S = S op expr` patterns (sum, product, min, max) where the
//! scalar `S` appears nowhere else in the loop body, so per-thread
//! partial results can be combined after the loop. Conditional
//! reductions (the update under an IF) still qualify — skipping an
//! update is the same as combining with the identity.

use std::collections::HashMap;

use apar_minifort::ast::{BinOp, Block, Expr as Ast, RedOp, StmtKind};

/// A recognized reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reduction {
    pub var: String,
    pub op: RedOp,
}

/// Finds the reductions of a loop body.
pub fn find_reductions(body: &Block, is_array: &impl Fn(&str) -> bool) -> Vec<Reduction> {
    // Count every appearance of each scalar name, and collect candidate
    // update statements.
    let mut appearances: HashMap<String, usize> = HashMap::new();
    let mut candidates: Vec<(String, RedOp, usize)> = Vec::new(); // (var, op, self_refs_in_update)

    body.walk_stmts(&mut |s| {
        let count_expr = |e: &Ast, appearances: &mut HashMap<String, usize>| {
            e.walk(&mut |x| {
                if let Ast::Name(n) = x {
                    *appearances.entry(n.clone()).or_insert(0) += 1;
                }
            });
        };
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                count_expr(rhs, &mut appearances);
                match lhs {
                    Ast::Name(n) if !is_array(n) => {
                        *appearances.entry(n.clone()).or_insert(0) += 1;
                        if let Some((op, self_refs)) = match_update(n, rhs) {
                            candidates.push((n.clone(), op, self_refs));
                        }
                    }
                    Ast::Index { subs, .. } => {
                        for sub in subs {
                            count_expr(sub, &mut appearances);
                        }
                    }
                    _ => {}
                }
            }
            StmtKind::If { arms, .. } => {
                for (c, _) in arms {
                    count_expr(c, &mut appearances);
                }
            }
            StmtKind::Do { lo, hi, step, .. } => {
                count_expr(lo, &mut appearances);
                count_expr(hi, &mut appearances);
                if let Some(st) = step {
                    count_expr(st, &mut appearances);
                }
            }
            StmtKind::DoWhile { cond, .. } => count_expr(cond, &mut appearances),
            StmtKind::Call { args, .. } => {
                for a in args {
                    count_expr(a, &mut appearances);
                }
            }
            StmtKind::Read { items } | StmtKind::Write { items } => {
                for i in items {
                    count_expr(i, &mut appearances);
                }
            }
            _ => {}
        }
    });

    // A candidate survives when its total appearances are exactly those
    // of its update statements (lhs + self-reference(s) in rhs).
    let mut per_var: HashMap<String, (RedOp, usize, usize)> = HashMap::new(); // var -> (op, updates, refs)
    let mut consistent: HashMap<String, bool> = HashMap::new();
    for (var, op, self_refs) in candidates {
        let e = per_var.entry(var.clone()).or_insert((op, 0, 0));
        if e.0 != op {
            consistent.insert(var.clone(), false);
        }
        e.1 += 1;
        e.2 += 1 + self_refs;
        consistent.entry(var).or_insert(true);
    }
    let mut out: Vec<Reduction> = per_var
        .into_iter()
        .filter(|(var, (_, _, refs))| {
            consistent.get(var) == Some(&true) && appearances.get(var) == Some(refs)
        })
        .map(|(var, (op, _, _))| Reduction { var, op })
        .collect();
    out.sort_by(|a, b| a.var.cmp(&b.var));
    out
}

/// Matches `rhs` as `S op e` / `e op S` / `MIN(S, e)` / `MAX(S, e)`,
/// returning the operator and how many times S appears in the rhs.
fn match_update(s: &str, rhs: &Ast) -> Option<(RedOp, usize)> {
    let is_s = |e: &Ast| matches!(e, Ast::Name(n) if n == s);
    let free_of_s = |e: &Ast| {
        let mut found = false;
        e.walk(&mut |x| {
            if is_s(x) {
                found = true;
            }
        });
        !found
    };
    match rhs {
        Ast::Bin(BinOp::Add, l, r) => {
            if is_s(l) && free_of_s(r) || is_s(r) && free_of_s(l) {
                return Some((RedOp::Add, 1));
            }
            None
        }
        Ast::Bin(BinOp::Sub, l, r) => {
            // S = S - e is a sum reduction with negated operand.
            if is_s(l) && free_of_s(r) {
                return Some((RedOp::Add, 1));
            }
            None
        }
        Ast::Bin(BinOp::Mul, l, r) => {
            if is_s(l) && free_of_s(r) || is_s(r) && free_of_s(l) {
                return Some((RedOp::Mul, 1));
            }
            None
        }
        Ast::CallF { name, args } if args.len() == 2 => {
            let op = match name.as_str() {
                "MIN" | "MIN0" | "AMIN1" => RedOp::Min,
                "MAX" | "MAX0" | "AMAX1" => RedOp::Max,
                _ => return None,
            };
            let (a, b) = (&args[0], &args[1]);
            if is_s(a) && free_of_s(b) || is_s(b) && free_of_s(a) {
                return Some((op, 1));
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn reductions_of(src: &str) -> Vec<Reduction> {
        let rp = frontend(src).expect("frontend");
        let unit = rp.main_unit().expect("main");
        let mut body = None;
        unit.body.walk_stmts(&mut |s| {
            if body.is_none() {
                if let StmtKind::Do { body: b, .. } = &s.kind {
                    body = Some(b.clone());
                }
            }
        });
        let table = rp.table(&unit.name);
        find_reductions(&body.expect("loop"), &|n| table.is_array(n))
    }

    #[test]
    fn sum_reduction() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S + A(I)\nENDDO\nEND\n",
        );
        assert_eq!(r, vec![Reduction { var: "S".into(), op: RedOp::Add }]);
    }

    #[test]
    fn subtraction_is_sum_reduction() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S - A(I)\nENDDO\nEND\n",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, RedOp::Add);
    }

    #[test]
    fn min_max_reductions() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nXMIN = MIN(XMIN, A(I))\nXMAX = MAX(A(I), XMAX)\nENDDO\nEND\n",
        );
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Reduction { var: "XMAX".into(), op: RedOp::Max }));
        assert!(r.contains(&Reduction { var: "XMIN".into(), op: RedOp::Min }));
    }

    #[test]
    fn conditional_reduction_qualifies() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nIF (A(I) .GT. 0.0) THEN\nS = S + A(I)\nENDIF\nENDDO\nEND\n",
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn other_uses_disqualify() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S + A(I)\nA(I) = S\nENDDO\nEND\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn self_referencing_operand_disqualifies() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S + S * A(I)\nENDDO\nEND\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn two_updates_same_op_qualify() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S + A(I)\nS = S + 1.0\nENDDO\nEND\n",
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn mixed_ops_disqualify() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = S + A(I)\nS = S * 2.0\nENDDO\nEND\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn non_reduction_assignment_not_matched() {
        let r = reductions_of(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nS = A(I) * 2.0\nENDDO\nEND\n",
        );
        assert!(r.is_empty());
    }
}

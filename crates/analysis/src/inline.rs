//! Inline expansion.
//!
//! Polaris relies on inlining to analyze loops whose bodies call
//! subroutines: the callee's accesses become directly visible to the
//! dependence test. Inlining renames callee locals, maps formals to
//! actuals (whole arrays by name, scalar expressions through compiler
//! temporaries), and merges declarations — COMMON declarations are
//! copied with renamed member names, which preserves storage layout
//! because COMMON association is positional.
//!
//! Refusals mirror the real tool's limits and feed the hindrance
//! classification: foreign callees (multilingual, §2.4), array-section
//! actuals (reshaped storage, §2.3), recursion, and mid-body RETURNs.

use std::collections::HashMap;

use apar_minifort::ast::{Block, Decl, DeclName, Expr as Ast, Stmt, StmtId, StmtKind, UnitKind};
use apar_minifort::symtab::{Storage, SymbolKind};
use apar_minifort::{Lang, Program, ResolvedProgram};

use crate::callgraph::CallGraph;
use crate::Capabilities;
use apar_symbolic::OpCounter;

/// Why a call could not be inlined.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InlineFail {
    NoSuchCall,
    UnknownCallee,
    Foreign,
    Recursive,
    SectionActual,
    MidBodyReturn,
    ArgumentMismatch,
    /// The callee declares the array with a different shape than the
    /// caller — inlining would change the subscript linearization
    /// (the paper's §2.3 reshaped shared structures).
    ShapeMismatch,
    /// The callee contains unnormalized loops (DO WHILE / GOTO), which
    /// the restructurer's inliner does not expand.
    Unstructured,
}

/// Result of inlining: number of statements spliced in.
#[derive(Clone, Debug)]
pub struct InlineOk {
    pub spliced_stmts: usize,
}

/// Inlines the CALL at `call_stmt` inside `caller`, mutating `prog`.
/// The caller must re-resolve the program afterwards.
pub fn inline_call(
    prog: &mut Program,
    rp: &ResolvedProgram,
    cg: &CallGraph,
    caps: Capabilities,
    caller: &str,
    call_stmt: StmtId,
) -> Result<InlineOk, InlineFail> {
    // Locate the call.
    let (callee_name, args) = {
        let unit = prog.unit(caller).ok_or(InlineFail::NoSuchCall)?;
        let mut found = None;
        unit.body.walk_stmts(&mut |s| {
            if s.id == call_stmt {
                if let StmtKind::Call { name, args } = &s.kind {
                    found = Some((name.clone(), args.clone()));
                }
            }
        });
        found.ok_or(InlineFail::NoSuchCall)?
    };
    let callee = rp
        .unit(&callee_name)
        .ok_or(InlineFail::UnknownCallee)?
        .clone();
    if callee.lang == Lang::C && !caps.multilingual {
        return Err(InlineFail::Foreign);
    }
    if cg.is_recursive(&callee_name) {
        return Err(InlineFail::Recursive);
    }
    if args.len() != callee.formals.len() {
        return Err(InlineFail::ArgumentMismatch);
    }
    if has_mid_body_return(&callee.body) {
        return Err(InlineFail::MidBodyReturn);
    }
    if has_unstructured(&callee.body) {
        return Err(InlineFail::Unstructured);
    }

    // Build the renaming for callee names: formals map to actuals,
    // everything else gets a fresh caller-unique name. A resolved
    // program normally has a table per unit, but a recovering frontend
    // may have dropped one — refuse rather than panic on the index.
    let callee_table = rp
        .tables
        .get(&callee_name)
        .ok_or(InlineFail::UnknownCallee)?;
    let caller_table = rp.tables.get(caller).ok_or(InlineFail::NoSuchCall)?;
    let mut rename: HashMap<String, Ast> = HashMap::new();
    let mut pre_stmts: Vec<(String, Ast)> = Vec::new(); // temp assignments
    for (formal, actual) in callee.formals.iter().zip(args.iter()) {
        match actual {
            Ast::Name(n) => {
                // Reshaped arrays must not be inlined: the callee's
                // subscript linearization differs from the caller's.
                if let (Some(fs), Some(as_)) = (
                    callee_table.get(formal).and_then(|s| s.shape()),
                    caller_table.get(n).and_then(|s| s.shape()),
                ) {
                    if fs.rank() != as_.rank() {
                        return Err(InlineFail::ShapeMismatch);
                    }
                    if fs.rank() >= 2 {
                        for k in 0..fs.rank() - 1 {
                            let fd = fs.dims[k].hi.as_ref().map(|e| rename_expr(e, &rename));
                            let ad = as_.dims[k].hi.clone();
                            let fc = fd.as_ref().and_then(apar_minifort::symtab::as_const_int);
                            let ac = ad.as_ref().and_then(apar_minifort::symtab::as_const_int);
                            let same = match (fc, ac) {
                                (Some(a), Some(b)) => a == b,
                                _ => fd == ad,
                            };
                            if !same {
                                return Err(InlineFail::ShapeMismatch);
                            }
                        }
                    }
                }
                rename.insert(formal.clone(), Ast::Name(n.clone()));
            }
            Ast::Index { .. } => return Err(InlineFail::SectionActual),
            value => {
                // Scalar expression actual: bind through a temporary.
                let tmp = fresh_name(caller_table, &format!("{}ZT", initial(formal)));
                pre_stmts.push((tmp.clone(), value.clone()));
                rename.insert(formal.clone(), Ast::Name(tmp));
            }
        }
    }
    let mut fresh_decls: Vec<(String, String)> = Vec::new(); // old -> new
    for sym in callee_table.iter() {
        if rename.contains_key(&sym.name) {
            continue;
        }
        match (&sym.kind, &sym.storage) {
            (SymbolKind::Scalar | SymbolKind::Array(_), Storage::Local { .. })
            | (SymbolKind::Scalar | SymbolKind::Array(_), Storage::Common { .. })
            | (SymbolKind::Param(_), _) => {
                let fresh = fresh_name(
                    caller_table,
                    &format!("{}Z{}", initial(&sym.name), sym.name.len()),
                );
                fresh_decls.push((sym.name.clone(), fresh.clone()));
                rename.insert(sym.name.clone(), Ast::Name(fresh));
            }
            _ => {}
        }
    }
    // Make fresh names mutually distinct.
    dedup_fresh(&mut fresh_decls, &mut rename);

    // Clone + rewrite the callee body.
    let next_id = &mut prog.stmt_count;
    let mut body = callee.body.clone();
    let mut spliced = 0usize;
    renumber_and_rename(&mut body, &rename, next_id, &mut spliced);
    // Drop a trailing RETURN.
    if matches!(body.stmts.last().map(|s| &s.kind), Some(StmtKind::Return)) {
        body.stmts.pop();
    }

    // Rewrite callee decls under the renaming, dropping declarations of
    // formals (their actuals are already declared in the caller).
    let formals: std::collections::HashSet<&str> =
        callee.formals.iter().map(|f| f.as_str()).collect();
    let mut new_decls: Vec<Decl> = Vec::new();
    for d in &callee.decls {
        if let Some(nd) = rename_decl(d, &rename, &formals) {
            new_decls.push(nd);
        }
    }
    // Temp assignments ahead of the body.
    let mut splice: Vec<Stmt> = Vec::new();
    for (tmp, value) in pre_stmts {
        splice.push(Stmt {
            id: StmtId(*next_id),
            line: 0,
            label: None,
            kind: StmtKind::Assign {
                lhs: Ast::Name(tmp),
                rhs: value,
            },
        });
        *next_id += 1;
    }
    splice.extend(body.stmts);
    let spliced_count = splice.len();

    // Replace the CALL statement with the spliced body.
    let unit = prog.unit_mut(caller).ok_or(InlineFail::NoSuchCall)?;
    unit.decls.extend(new_decls);
    if !replace_stmt_with(&mut unit.body, call_stmt, splice) {
        return Err(InlineFail::NoSuchCall);
    }
    Ok(InlineOk {
        spliced_stmts: spliced_count,
    })
}

/// Inlines every inlinable call inside a loop body, repeatedly, up to
/// `max_depth` levels and `max_stmts` spliced statements. Returns the
/// failures encountered (calls left in place). Work is billed to `ops`
/// (four per spliced statement, one per call site considered); a
/// tripped budget ends expansion after the current round — the pipeline
/// watchdog classifies the loop `Complexity` from the latched counter.
///
/// A callee that ends up *fully inlined away* — every one of its call
/// sites expanded and no remaining CALL or function reference anywhere
/// in the program naming it — is removed from the program entirely, so
/// the analyzed copy does not carry dead statements (and a later
/// re-resolution can legitimately see the program shrink).
#[allow(clippy::too_many_arguments)]
pub fn inline_calls_in_loop(
    prog: &mut Program,
    rp: &ResolvedProgram,
    cg: &CallGraph,
    caps: Capabilities,
    unit: &str,
    loop_stmt: StmtId,
    max_depth: usize,
    max_stmts: usize,
    ops: &OpCounter,
) -> (usize, Vec<(String, InlineFail)>) {
    let mut failures = Vec::new();
    let mut inlined = 0usize;
    let mut spliced_total = 0usize;
    let mut inlined_names: std::collections::HashSet<String> = Default::default();
    for _ in 0..max_depth {
        if ops.exceeded() {
            break;
        }
        // Collect calls inside the loop body.
        let mut calls: Vec<(StmtId, String)> = Vec::new();
        if let Some(u) = prog.unit(unit) {
            u.body.walk_stmts(&mut |s| {
                if s.id == loop_stmt {
                    if let StmtKind::Do { body, .. } = &s.kind {
                        body.walk_stmts(&mut |t| {
                            if let StmtKind::Call { name, .. } = &t.kind {
                                calls.push((t.id, name.clone()));
                            }
                        });
                    }
                }
            });
        }
        if calls.is_empty() || spliced_total > max_stmts {
            break;
        }
        let mut progressed = false;
        for (sid, name) in calls {
            let _ = ops.charge(1);
            match inline_call(prog, rp, cg, caps, unit, sid) {
                Ok(ok) => {
                    inlined += 1;
                    spliced_total += ok.spliced_stmts;
                    let _ = ops.charge(ok.spliced_stmts as u64 * 4);
                    inlined_names.insert(name);
                    progressed = true;
                }
                Err(f) => failures.push((name, f)),
            }
        }
        if !progressed {
            break;
        }
        failures.clear(); // only the final round's failures matter
    }
    // Remove callees that were inlined here and are now unreferenced
    // program-wide. Only units this expansion touched are candidates:
    // units dead on arrival are kept, since their declarations still
    // contribute to COMMON extents.
    if !inlined_names.is_empty() {
        let refs = referenced_units(prog);
        prog.units.retain(|u| {
            u.kind == UnitKind::Main || !inlined_names.contains(&u.name) || refs.contains(&u.name)
        });
    }
    (inlined, failures)
}

/// Names of units referenced by any CALL statement or function
/// reference anywhere in the program.
fn referenced_units(prog: &Program) -> std::collections::HashSet<String> {
    let mut refs: std::collections::HashSet<String> = Default::default();
    for u in &prog.units {
        u.body.walk_stmts(&mut |s| {
            let mut exprs: Vec<&Ast> = Vec::new();
            match &s.kind {
                StmtKind::Assign { lhs, rhs } => {
                    exprs.push(lhs);
                    exprs.push(rhs);
                }
                StmtKind::If { arms, .. } => exprs.extend(arms.iter().map(|(c, _)| c)),
                StmtKind::Do { lo, hi, step, .. } => {
                    exprs.push(lo);
                    exprs.push(hi);
                    if let Some(st) = step {
                        exprs.push(st);
                    }
                }
                StmtKind::DoWhile { cond, .. } => exprs.push(cond),
                StmtKind::Call { name, args } => {
                    refs.insert(name.clone());
                    exprs.extend(args.iter());
                }
                StmtKind::Read { items } | StmtKind::Write { items } => {
                    exprs.extend(items.iter());
                }
                _ => {}
            }
            for e in exprs {
                e.walk(&mut |x| {
                    if let Ast::CallF { name, .. } = x {
                        refs.insert(name.clone());
                    }
                });
            }
        });
    }
    refs
}

fn has_mid_body_return(b: &Block) -> bool {
    let mut found = false;
    for (i, s) in b.stmts.iter().enumerate() {
        let last = i + 1 == b.stmts.len();
        match &s.kind {
            StmtKind::Return if !last => found = true,
            StmtKind::If { arms, else_blk } => {
                for (_, bb) in arms {
                    if contains_return(bb) {
                        found = true;
                    }
                }
                if let Some(bb) = else_blk {
                    if contains_return(bb) {
                        found = true;
                    }
                }
            }
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } if contains_return(body) => {
                found = true;
            }
            _ => {}
        }
    }
    found
}

fn has_unstructured(b: &Block) -> bool {
    let mut found = false;
    b.walk_stmts(&mut |s| {
        if matches!(s.kind, StmtKind::DoWhile { .. } | StmtKind::Goto(_)) {
            found = true;
        }
    });
    found
}

fn contains_return(b: &Block) -> bool {
    let mut f = false;
    b.walk_stmts(&mut |s| {
        if matches!(s.kind, StmtKind::Return) {
            f = true;
        }
    });
    f
}

/// First character of a name as a slice, without panicking on empty or
/// non-ASCII-boundary names (a mutated source can smuggle either past
/// the recovering frontend).
fn initial(name: &str) -> &str {
    name.char_indices().nth(1).map_or(name, |(i, _)| &name[..i])
}

fn fresh_name(table: &apar_minifort::SymbolTable, base: &str) -> String {
    let mut i = 1;
    loop {
        let cand = format!("{}{}", base, i);
        if table.get(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

fn dedup_fresh(fresh: &mut [(String, String)], rename: &mut HashMap<String, Ast>) {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (old, new) in fresh.iter_mut() {
        let n = seen.entry(new.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            let unique = format!("{}X{}", new, n);
            rename.insert(old.clone(), Ast::Name(unique.clone()));
            *new = unique;
        }
    }
}

fn renumber_and_rename(
    b: &mut Block,
    rename: &HashMap<String, Ast>,
    next_id: &mut u32,
    count: &mut usize,
) {
    for s in &mut b.stmts {
        s.id = StmtId(*next_id);
        *next_id += 1;
        *count += 1;
        rename_stmt(s, rename);
        match &mut s.kind {
            StmtKind::If { arms, else_blk } => {
                for (_, bb) in arms {
                    renumber_and_rename(bb, rename, next_id, count);
                }
                if let Some(bb) = else_blk {
                    renumber_and_rename(bb, rename, next_id, count);
                }
            }
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                renumber_and_rename(body, rename, next_id, count);
            }
            _ => {}
        }
    }
}

fn rename_expr(e: &Ast, rename: &HashMap<String, Ast>) -> Ast {
    e.map(&mut |x| match &x {
        Ast::Name(n) => rename.get(n).cloned().unwrap_or(x),
        Ast::Index { name, subs } => match rename.get(name) {
            Some(Ast::Name(new)) => Ast::Index {
                name: new.clone(),
                subs: subs.clone(),
            },
            _ => x,
        },
        Ast::CallF { name, args } => match rename.get(name) {
            Some(Ast::Name(new)) => Ast::CallF {
                name: new.clone(),
                args: args.clone(),
            },
            _ => x,
        },
        _ => x,
    })
}

fn rename_stmt(s: &mut Stmt, rename: &HashMap<String, Ast>) {
    match &mut s.kind {
        StmtKind::Assign { lhs, rhs } => {
            *lhs = rename_expr(lhs, rename);
            *rhs = rename_expr(rhs, rename);
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms {
                *c = rename_expr(c, rename);
            }
        }
        StmtKind::Do {
            var, lo, hi, step, ..
        } => {
            if let Some(Ast::Name(new)) = rename.get(var.as_str()) {
                *var = new.clone();
            }
            *lo = rename_expr(lo, rename);
            *hi = rename_expr(hi, rename);
            if let Some(st) = step {
                *st = rename_expr(st, rename);
            }
        }
        StmtKind::DoWhile { cond, .. } => *cond = rename_expr(cond, rename),
        StmtKind::Call { args, .. } => {
            for a in args {
                *a = rename_expr(a, rename);
            }
        }
        StmtKind::Read { items } | StmtKind::Write { items } => {
            for i in items {
                *i = rename_expr(i, rename);
            }
        }
        _ => {}
    }
}

fn rename_decl(
    d: &Decl,
    rename: &HashMap<String, Ast>,
    formals: &std::collections::HashSet<&str>,
) -> Option<Decl> {
    let rn = |n: &str| -> String {
        match rename.get(n) {
            Some(Ast::Name(new)) => new.clone(),
            _ => n.to_string(),
        }
    };
    let rn_declname = |dn: &DeclName| DeclName {
        name: rn(&dn.name),
        dims: dn
            .dims
            .iter()
            .map(|ds| apar_minifort::ast::DimSpec {
                lo: ds.lo.as_ref().map(|e| rename_expr(e, rename)),
                hi: ds.hi.as_ref().map(|e| rename_expr(e, rename)),
            })
            .collect(),
    };
    let keep = |dn: &&DeclName| !formals.contains(dn.name.as_str());
    match d {
        Decl::Type { ty, names } => {
            let names: Vec<DeclName> = names.iter().filter(keep).map(rn_declname).collect();
            (!names.is_empty()).then_some(Decl::Type { ty: *ty, names })
        }
        Decl::Dimension { names } => {
            let names: Vec<DeclName> = names.iter().filter(keep).map(rn_declname).collect();
            (!names.is_empty()).then_some(Decl::Dimension { names })
        }
        Decl::Common { block, names } => Some(Decl::Common {
            block: block.clone(),
            names: names.iter().map(rn_declname).collect(),
        }),
        Decl::Parameter { defs } => Some(Decl::Parameter {
            defs: defs
                .iter()
                .map(|(n, e)| (rn(n), rename_expr(e, rename)))
                .collect(),
        }),
        Decl::Equivalence { groups } => Some(Decl::Equivalence {
            groups: groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|r| apar_minifort::ast::EquivRef {
                            name: rn(&r.name),
                            subs: r.subs.iter().map(|e| rename_expr(e, rename)).collect(),
                        })
                        .collect()
                })
                .collect(),
        }),
        Decl::Data { items } => Some(Decl::Data {
            items: items
                .iter()
                .map(|it| apar_minifort::ast::DataItem {
                    name: rn(&it.name),
                    subs: it.subs.iter().map(|e| rename_expr(e, rename)).collect(),
                    values: it.values.clone(),
                })
                .collect(),
        }),
        Decl::External { names } => Some(Decl::External {
            names: names.iter().map(|n| rn(n)).collect(),
        }),
    }
}

fn replace_stmt_with(b: &mut Block, target: StmtId, replacement: Vec<Stmt>) -> bool {
    if let Some(pos) = b.stmts.iter().position(|s| s.id == target) {
        b.stmts.splice(pos..=pos, replacement);
        return true;
    }
    for s in &mut b.stmts {
        let hit = match &mut s.kind {
            StmtKind::If { arms, else_blk } => {
                let mut done = false;
                for (_, bb) in arms.iter_mut() {
                    if replace_stmt_with(bb, target, replacement.clone()) {
                        done = true;
                        break;
                    }
                }
                if !done {
                    if let Some(bb) = else_blk {
                        done = replace_stmt_with(bb, target, replacement.clone());
                    }
                }
                done
            }
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                replace_stmt_with(body, target, replacement.clone())
            }
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::pretty::print_program;
    use apar_minifort::{frontend, parse_program, resolve};

    fn inline_first_call(src: &str, caps: Capabilities) -> Result<String, InlineFail> {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut prog = rp.program.clone();
        let caller = rp.main_unit().expect("main").name.clone();
        let mut call = None;
        rp.unit(&caller).unwrap().body.walk_stmts(&mut |s| {
            if call.is_none() && matches!(s.kind, StmtKind::Call { .. }) {
                call = Some(s.id);
            }
        });
        inline_call(&mut prog, &rp, &cg, caps, &caller, call.expect("call"))?;
        let printed = print_program(&prog);
        let p2 = parse_program(&printed).expect("reparse");
        resolve(p2).expect("re-resolve");
        Ok(printed)
    }

    #[test]
    fn whole_array_and_scalar_actuals() {
        let out = inline_first_call(
            "PROGRAM P\nREAL X(10)\nCALL SCALE(X, 10, 2.5)\nEND\nSUBROUTINE SCALE(A, N, F)\nREAL A(N)\nDO I = 1, N\nA(I) = A(I) * F\nENDDO\nRETURN\nEND\n",
            Capabilities::polaris2008(),
        )
        .expect("inline");
        // The loop now operates on X directly.
        assert!(out.contains("X(IZ1") || out.contains("X(I"), "{}", out);
        assert!(!out.contains("CALL SCALE"), "{}", out);
        // Scalar expression actuals become temporaries.
        assert!(out.contains("= 2.5"), "{}", out);
    }

    #[test]
    fn locals_are_renamed() {
        let out = inline_first_call(
            "PROGRAM P\nT = 1.0\nCALL F\nEND\nSUBROUTINE F\nT = 2.0\nEND\n",
            Capabilities::polaris2008(),
        )
        .expect("inline");
        // The callee's T must not collide with the caller's T.
        assert!(out.contains("TZ1"), "{}", out);
    }

    #[test]
    fn commons_keep_layout() {
        let out = inline_first_call(
            "PROGRAM P\nCOMMON /C/ A(10), Q\nCALL F\nEND\nSUBROUTINE F\nCOMMON /C/ B(10), R\nR = B(1)\nEND\n",
            Capabilities::polaris2008(),
        )
        .expect("inline");
        // The renamed member list still declares the same positional
        // layout: a 10-element array then a scalar.
        assert!(out.contains("COMMON /C/ BZ1"), "{}", out);
        let p2 = parse_program(&out).unwrap();
        let rp2 = resolve(p2).unwrap();
        let t = rp2.table("P");
        // Renamed R (RZ1 or similar) sits at offset 10 of /C/.
        let renamed_r = t
            .iter()
            .find(|s| s.name.starts_with("RZ"))
            .expect("renamed R");
        assert_eq!(
            renamed_r.storage,
            apar_minifort::Storage::Common {
                block: "C".into(),
                offset: 10
            }
        );
    }

    #[test]
    fn section_actual_refused() {
        let err = inline_first_call(
            "PROGRAM P\nREAL X(100)\nCALL F(X(11))\nEND\nSUBROUTINE F(A)\nREAL A(*)\nA(1) = 0.0\nEND\n",
            Capabilities::polaris2008(),
        )
        .unwrap_err();
        assert_eq!(err, InlineFail::SectionActual);
    }

    #[test]
    fn foreign_refused_without_multilingual() {
        let src = "PROGRAM P\nCALL CF\nEND\n!LANG C\nSUBROUTINE CF\nEND\n";
        assert_eq!(
            inline_first_call(src, Capabilities::polaris2008()).unwrap_err(),
            InlineFail::Foreign
        );
        assert!(inline_first_call(src, Capabilities::full()).is_ok());
    }

    #[test]
    fn recursive_refused() {
        let err = inline_first_call(
            "PROGRAM P\nCALL F\nEND\nSUBROUTINE F\nCALL F\nEND\n",
            Capabilities::polaris2008(),
        )
        .unwrap_err();
        assert_eq!(err, InlineFail::Recursive);
    }

    #[test]
    fn mid_body_return_refused() {
        let err = inline_first_call(
            "PROGRAM P\nCALL F(X)\nEND\nSUBROUTINE F(A)\nIF (A .GT. 0.0) THEN\nRETURN\nENDIF\nA = 1.0\nEND\n",
            Capabilities::polaris2008(),
        )
        .unwrap_err();
        assert_eq!(err, InlineFail::MidBodyReturn);
    }

    #[test]
    fn inline_whole_loop_nest() {
        let rp = frontend(
            "PROGRAM P\nREAL X(10)\nDO I = 1, 5\nCALL STEP(X, I)\nENDDO\nEND\nSUBROUTINE STEP(A, K)\nREAL A(*)\nA(K) = A(K) + 1.0\nEND\n",
        )
        .expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut prog = rp.program.clone();
        let mut loop_id = None;
        rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if matches!(s.kind, StmtKind::Do { .. }) {
                loop_id.get_or_insert(s.id);
            }
        });
        let (inlined, failures) = inline_calls_in_loop(
            &mut prog,
            &rp,
            &cg,
            Capabilities::polaris2008(),
            "P",
            loop_id.unwrap(),
            3,
            10_000,
            &OpCounter::unlimited(),
        );
        assert_eq!(inlined, 1);
        assert!(failures.is_empty());
        let printed = print_program(&prog);
        assert!(!printed.contains("CALL STEP"), "{}", printed);
        assert!(printed.contains("X(I)"), "{}", printed);
        // STEP's only call site was expanded: the callee is fully
        // inlined away and removed from the scratch program.
        assert!(
            prog.unit("STEP").is_none(),
            "fully inlined callee must be removed"
        );
    }

    #[test]
    fn callee_still_called_elsewhere_is_retained() {
        let rp = frontend(
            "PROGRAM P\nREAL X(10)\nDO I = 1, 5\nCALL STEP(X, I)\nENDDO\nCALL STEP(X, 1)\nEND\nSUBROUTINE STEP(A, K)\nREAL A(*)\nA(K) = A(K) + 1.0\nEND\n",
        )
        .expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut prog = rp.program.clone();
        let mut loop_id = None;
        rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if matches!(s.kind, StmtKind::Do { .. }) {
                loop_id.get_or_insert(s.id);
            }
        });
        let (inlined, failures) = inline_calls_in_loop(
            &mut prog,
            &rp,
            &cg,
            Capabilities::polaris2008(),
            "P",
            loop_id.unwrap(),
            3,
            10_000,
            &OpCounter::unlimited(),
        );
        assert_eq!(inlined, 1);
        assert!(failures.is_empty());
        // The call after the loop still references STEP, so the unit
        // must survive the dead-callee sweep.
        assert!(prog.unit("STEP").is_some(), "referenced callee retained");
    }

    #[test]
    fn uncalled_bystander_unit_is_not_touched() {
        let rp = frontend(
            "PROGRAM P\nREAL X(10)\nDO I = 1, 5\nCALL STEP(X, I)\nENDDO\nEND\nSUBROUTINE STEP(A, K)\nREAL A(*)\nA(K) = A(K) + 1.0\nEND\nSUBROUTINE IDLE\nEND\n",
        )
        .expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut prog = rp.program.clone();
        let mut loop_id = None;
        rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if matches!(s.kind, StmtKind::Do { .. }) {
                loop_id.get_or_insert(s.id);
            }
        });
        inline_calls_in_loop(
            &mut prog,
            &rp,
            &cg,
            Capabilities::polaris2008(),
            "P",
            loop_id.unwrap(),
            3,
            10_000,
            &OpCounter::unlimited(),
        );
        // Only units this expansion inlined are candidates for removal:
        // dead-on-arrival units stay (their COMMON declarations may
        // still pin block extents).
        assert!(prog.unit("IDLE").is_some(), "bystander unit untouched");
        assert!(prog.unit("STEP").is_none());
    }
}

//! Bridge from MiniFort AST expressions to the symbolic algebra.
//!
//! Symbolic variable identities are *storage-based*: a COMMON member maps
//! to the same [`VarId`] in every unit (`/BLK/+offset`), while locals and
//! formals are unit-qualified (`UNIT::NAME`). This is what lets
//! interprocedural constant propagation and input-deck range facts flow
//! through COMMON blocks.
//!
//! Conversion also reports *features* of the expression that drive the
//! paper's hindrance classification: whether a subscript contains an
//! indirect array reference (`A(IA(I))`), an opaque function call, or a
//! non-affine construct.

use apar_minifort::ast::{BinOp, Expr as Ast, UnOp};
use apar_minifort::resolve::is_intrinsic;
use apar_minifort::symtab::{ConstVal, Storage, SymbolKind};
use apar_minifort::ResolvedProgram;
use apar_symbolic::{Expr, Interner, VarId};

/// Features observed while converting an expression.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExprFeatures {
    /// Contains an array element used as a value (subscripted subscript
    /// when seen inside a subscript).
    pub indirection: bool,
    /// Contains a call whose value the analysis cannot model.
    pub opaque_call: bool,
    /// Contains real-typed or otherwise non-integer constructs.
    pub noninteger: bool,
}

impl ExprFeatures {
    /// Merges features of a subexpression.
    pub fn or(&mut self, other: ExprFeatures) {
        self.indirection |= other.indirection;
        self.opaque_call |= other.opaque_call;
        self.noninteger |= other.noninteger;
    }
}

/// Owns the interner and the storage-based naming scheme.
///
/// A `SymMap` can be *forked* (cloned) so each compilation worker
/// interns privately, then canonically merged back with [`SymMap::absorb`]
/// in a deterministic order — the scheme the parallel per-loop analysis
/// stage of the driver relies on.
#[derive(Clone, Debug, Default)]
pub struct SymMap {
    pub interner: Interner,
}

impl SymMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonically merges a forked map back into this one (see
    /// [`Interner::absorb`]): deterministic given a fixed absorb order,
    /// independent of which worker produced the fork.
    pub fn absorb(&mut self, other: &SymMap) {
        self.interner.absorb(&other.interner);
    }

    /// The symbolic variable for `name` as seen from `unit`.
    pub fn var(&mut self, rp: &ResolvedProgram, unit: &str, name: &str) -> VarId {
        let key = match rp.tables.get(unit).and_then(|t| t.get(name)) {
            Some(sym) => match &sym.storage {
                Storage::Common { block, offset } => format!("/{}/+{}", block, offset),
                _ => format!("{}::{}", unit, name),
            },
            None => format!("{}::{}", unit, name),
        };
        self.interner.intern(&key)
    }

    /// Converts an integer-context expression. Unanalyzable constructs
    /// degrade to fresh unknowns (sound, never wrong).
    pub fn expr(
        &mut self,
        rp: &ResolvedProgram,
        unit: &str,
        e: &Ast,
        feats: &mut ExprFeatures,
    ) -> Expr {
        match e {
            Ast::Int(v) => Expr::int(*v),
            Ast::Real(_) | Ast::Str(_) | Ast::Logical(_) => {
                feats.noninteger = true;
                Expr::unknown()
            }
            Ast::Name(n) => {
                // PARAMETER constants fold to literals.
                if let Some(t) = rp.tables.get(unit) {
                    if let Some(ConstVal::Int(v)) = t.param_val(n) {
                        return Expr::int(v);
                    }
                    if let Some(sym) = t.get(n) {
                        if matches!(sym.kind, SymbolKind::Array(_)) {
                            // Whole-array reference in scalar context.
                            feats.noninteger = true;
                            return Expr::unknown();
                        }
                    }
                }
                Expr::var(self.var(rp, unit, n))
            }
            Ast::Index { .. } | Ast::Sub { .. } => {
                feats.indirection = true;
                Expr::unknown()
            }
            Ast::CallF { name, args } => self.intrinsic(rp, unit, name, args, feats),
            Ast::Bin(op, l, r) => {
                let a = self.expr(rp, unit, l, feats);
                let b = self.expr(rp, unit, r, feats);
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(b),
                    BinOp::Pow => match r.as_const_small_uint() {
                        Some(p) => {
                            let mut acc = Expr::int(1);
                            for _ in 0..p {
                                acc = acc.mul(a.clone());
                            }
                            acc
                        }
                        None => {
                            feats.noninteger = true;
                            Expr::unknown()
                        }
                    },
                    _ => {
                        feats.noninteger = true;
                        Expr::unknown()
                    }
                }
            }
            Ast::Un(UnOp::Neg, i) => self.expr(rp, unit, i, feats).neg(),
            Ast::Un(UnOp::Not, _) => {
                feats.noninteger = true;
                Expr::unknown()
            }
        }
    }

    fn intrinsic(
        &mut self,
        rp: &ResolvedProgram,
        unit: &str,
        name: &str,
        args: &[Ast],
        feats: &mut ExprFeatures,
    ) -> Expr {
        let conv =
            |s: &mut Self, f: &mut ExprFeatures, a: &Ast| -> Expr { s.expr(rp, unit, a, f) };
        match (name, args.len()) {
            ("MOD", 2) => {
                let a = conv(self, feats, &args[0]);
                let b = conv(self, feats, &args[1]);
                a.modulo(b)
            }
            ("MIN" | "MIN0", n) if n >= 2 => {
                let xs = args.iter().map(|a| conv(self, feats, a)).collect();
                Expr::min_of(xs)
            }
            ("MAX" | "MAX0", n) if n >= 2 => {
                let xs = args.iter().map(|a| conv(self, feats, a)).collect();
                Expr::max_of(xs)
            }
            ("ABS" | "IABS", 1) => {
                let a = conv(self, feats, &args[0]);
                Expr::max_of(vec![a.clone(), a.neg()])
            }
            _ => {
                if !is_intrinsic(name) {
                    feats.opaque_call = true;
                } else {
                    feats.noninteger = true;
                }
                Expr::unknown()
            }
        }
    }
}

/// Small helper on the AST for constant exponent detection.
trait AsConstSmallUint {
    fn as_const_small_uint(&self) -> Option<u32>;
}

impl AsConstSmallUint for Ast {
    fn as_const_small_uint(&self) -> Option<u32> {
        match self {
            Ast::Int(v) if (0..=4).contains(v) => Some(*v as u32),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;
    use apar_symbolic::Expr as S;

    fn setup(src: &str) -> ResolvedProgram {
        frontend(src).expect("frontend")
    }

    #[test]
    fn common_members_share_identity_across_units() {
        let rp = setup(
            "PROGRAM P\nCOMMON /C/ N\nEND\nSUBROUTINE S\nCOMMON /C/ M\nEND\n",
        );
        let mut m = SymMap::new();
        let a = m.var(&rp, "P", "N");
        let b = m.var(&rp, "S", "M");
        assert_eq!(a, b, "same storage, same symbolic variable");
        let c = m.var(&rp, "P", "X");
        assert_ne!(a, c);
    }

    #[test]
    fn locals_are_unit_qualified() {
        let rp = setup("PROGRAM P\nI = 1\nEND\nSUBROUTINE S\nI = 2\nEND\n");
        let mut m = SymMap::new();
        assert_ne!(m.var(&rp, "P", "I"), m.var(&rp, "S", "I"));
    }

    #[test]
    fn parameters_fold() {
        let rp = setup("PROGRAM P\nPARAMETER (N = 10)\nK = N + 1\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        let e = m.expr(&rp, "P", &Ast::Name("N".into()), &mut f);
        assert_eq!(e, S::int(10));
    }

    #[test]
    fn affine_expression_converts_exactly() {
        let rp = setup("PROGRAM P\nK = 2\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        // 3*I + J - 1
        let ast = Ast::Bin(
            BinOp::Sub,
            Box::new(Ast::Bin(
                BinOp::Add,
                Box::new(Ast::Bin(
                    BinOp::Mul,
                    Box::new(Ast::Int(3)),
                    Box::new(Ast::Name("I".into())),
                )),
                Box::new(Ast::Name("J".into())),
            )),
            Box::new(Ast::Int(1)),
        );
        let e = m.expr(&rp, "P", &ast, &mut f);
        let i = m.var(&rp, "P", "I");
        let j = m.var(&rp, "P", "J");
        assert_eq!(e, S::var(i).scale(3).add(S::var(j)).sub(S::int(1)));
        assert_eq!(f, ExprFeatures::default());
    }

    #[test]
    fn indirection_flag_on_array_in_subscript_position() {
        let rp = setup("PROGRAM P\nINTEGER IA(10)\nK = IA(3)\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        let ast = Ast::Index {
            name: "IA".into(),
            subs: vec![Ast::Int(3)],
        };
        let e = m.expr(&rp, "P", &ast, &mut f);
        assert!(f.indirection);
        assert!(e.has_unknown());
    }

    #[test]
    fn opaque_call_flag() {
        let rp = setup("PROGRAM P\nK = 1\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        let ast = Ast::CallF {
            name: "LOOKUP".into(),
            args: vec![Ast::Int(1)],
        };
        let _ = m.expr(&rp, "P", &ast, &mut f);
        assert!(f.opaque_call);
        assert!(!f.indirection);
    }

    #[test]
    fn min_max_mod_abs_map_to_algebra() {
        let rp = setup("PROGRAM P\nK = 1\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        let i = Ast::Name("I".into());
        let mn = m.expr(
            &rp,
            "P",
            &Ast::CallF {
                name: "MIN".into(),
                args: vec![i.clone(), Ast::Int(5)],
            },
            &mut f,
        );
        let vi = m.var(&rp, "P", "I");
        assert_eq!(mn, S::min_of(vec![S::var(vi), S::int(5)]));
        let md = m.expr(
            &rp,
            "P",
            &Ast::CallF {
                name: "MOD".into(),
                args: vec![i.clone(), Ast::Int(4)],
            },
            &mut f,
        );
        assert_eq!(md, S::var(vi).modulo(S::int(4)));
        let ab = m.expr(
            &rp,
            "P",
            &Ast::CallF {
                name: "ABS".into(),
                args: vec![i],
            },
            &mut f,
        );
        assert_eq!(ab, S::max_of(vec![S::var(vi), S::var(vi).neg()]));
        assert!(!f.opaque_call);
    }

    #[test]
    fn small_const_pow_expands() {
        let rp = setup("PROGRAM P\nK = 1\nEND\n");
        let mut m = SymMap::new();
        let mut f = ExprFeatures::default();
        let ast = Ast::Bin(
            BinOp::Pow,
            Box::new(Ast::Name("I".into())),
            Box::new(Ast::Int(2)),
        );
        let e = m.expr(&rp, "P", &ast, &mut f);
        let vi = m.var(&rp, "P", "I");
        assert_eq!(e, S::var(vi).mul(S::var(vi)));
    }
}

//! Program analyses for MiniFort, implementing the pass inventory of the
//! Polaris compiler that the paper's Figures 2, 3 and 5 are built on.
//!
//! The modules mirror the passes named in Figure 2:
//!
//! * data-dependence test — [`ddtest`] (Range Test + GCD),
//! * array privatization — [`privatize`],
//! * induction variable substitution — [`induction`],
//! * inline expansion — [`inline`],
//! * GSA translation — [`gsa`] (gated scalar value analysis),
//! * interprocedural constant propagation — [`constprop`],
//! * reduction recognition — [`reduction`],
//!
//! plus the substrate they stand on: symbolic conversion ([`symx`]),
//! control-flow graphs ([`cfg`]), the call graph ([`callgraph`]), loop
//! nests and nesting metrics ([`loops`]), value ranges ([`ranges`]),
//! storage-level alias analysis ([`alias`]), array access collection
//! ([`access`]), and interprocedural access summaries ([`summary`]).
//!
//! Analyses are *capability-gated*: a [`Capabilities`] value says which
//! enabling techniques are available, letting the driver reproduce the
//! 2008 state of the art (the paper's baseline) or selectively enable
//! the techniques the paper identifies as missing (the ablations).

pub mod access;
pub mod alias;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod constprop;
pub mod ddtest;
pub mod gsa;
pub mod incr;
pub mod induction;
pub mod inline;
pub mod loops;
pub mod privatize;
pub mod ranges;
pub mod reduction;
pub mod summary;
pub mod symx;

pub use access::{AccessKind, ArrayAccess, LoopAccesses};
pub use alias::AliasInfo;
pub use cache::{
    caps_bits, caps_from_bits, rebuild_facts, AnalysisCache, FactsProvenance, ProgramFacts,
    SharedFactsStore, SharedStats,
};
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use ddtest::{DdOutcome, Dependence, DependenceKind};
pub use loops::{LoopForest, LoopId, LoopInfo, NestingMetrics};
pub use symx::SymMap;

/// Enabling techniques that may be switched on or off. The paper's §3
/// hindrance categories map one-to-one onto these switches: a loop whose
/// parallelization needs a disabled capability lands in the matching
/// category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Cross-language analysis: look inside `!LANG C` units. Off in the
    /// baseline (§2.4 — Polaris cannot analyze the C parts of SEISMIC).
    pub multilingual: bool,
    /// Interprocedural no-alias proofs for subroutine array parameters
    /// from call-site inspection. Off in the baseline (the `aliasing`
    /// hindrance).
    pub interprocedural_noalias: bool,
    /// Value ranges for variables set from input decks, propagated from
    /// `SEISPREP`-style relation code. Off in the baseline (the
    /// `rangeless` hindrance).
    pub input_deck_ranges: bool,
    /// Analysis of subscripted subscripts (injectivity of permutation /
    /// gather index arrays). Off in the baseline (the `indirection`
    /// hindrance).
    pub indirection_analysis: bool,
    /// Extended symbolic simplification (nonlinear products, min/max
    /// reasoning, symbolic division). Off in the baseline (the
    /// `symbol analysis` hindrance).
    pub extended_symbolic: bool,
    /// Linearized comparison of array accesses whose declared and used
    /// shapes differ (reshaped COMMON / argument arrays). Off in the
    /// baseline (the `access representation` hindrance).
    pub reshaped_access: bool,
    /// Guarded array regions / gated conditions in dependence analysis
    /// (multifunctionality, §2.1). Off in the baseline.
    pub guarded_regions: bool,
}

impl Capabilities {
    /// The 2008 state of the art the paper measures (Polaris).
    pub fn polaris2008() -> Self {
        Capabilities {
            multilingual: false,
            interprocedural_noalias: false,
            input_deck_ranges: false,
            indirection_analysis: false,
            extended_symbolic: false,
            reshaped_access: false,
            guarded_regions: false,
        }
    }

    /// Everything on — the hypothetical compiler the paper calls for.
    pub fn full() -> Self {
        Capabilities {
            multilingual: true,
            interprocedural_noalias: true,
            input_deck_ranges: true,
            indirection_analysis: true,
            extended_symbolic: true,
            reshaped_access: true,
            guarded_regions: true,
        }
    }
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::polaris2008()
    }
}

//! Interprocedural constant propagation.
//!
//! Constants flow two ways in the paper's codes: literal actual
//! arguments reaching formals (the PERFECT benchmarks replace outer
//! context with static assignments — §2.5.1), and setup code writing
//! configuration into COMMON blocks read by the computational modules.
//!
//! The propagation is top-down over the call graph: each unit is
//! analyzed with the scalar walker ([`crate::ranges`]), the state just
//! before each call site yields the facts the callee may assume, and a
//! callee's seed is the *intersection* of the facts at all its call
//! sites. COMMON facts transfer directly because COMMON storage shares
//! symbolic identity across units.

use std::collections::HashMap;

use apar_minifort::ast::{Expr as Ast, StmtKind};
use apar_minifort::{ResolvedProgram, Ty};
use apar_symbolic::{Expr, OpCounter};

use crate::callgraph::CallGraph;
use crate::ranges::{analyze_unit, ScalarState, UnitRanges};
use crate::summary::Summaries;
use crate::symx::SymMap;
use crate::Capabilities;

/// Seeds (entry facts) per unit, plus the per-unit range analyses that
/// were computed along the way.
#[derive(Debug, Default)]
pub struct ConstProp {
    pub seeds: HashMap<String, ScalarState>,
    pub ranges: HashMap<String, UnitRanges>,
    /// Count of constants bound to formals (reporting).
    pub formal_constants: usize,
    /// Count of ranges bound to formals (reporting).
    pub formal_ranges: usize,
    /// Count of COMMON facts transferred (reporting).
    pub common_facts: usize,
}

/// Runs the propagation. Returns seeds for every reachable unit; the
/// stored [`UnitRanges`] reflect analysis *with* the seeds applied.
pub fn propagate(
    rp: &ResolvedProgram,
    cg: &CallGraph,
    sym: &mut SymMap,
    caps: Capabilities,
    summaries: &Summaries,
) -> ConstProp {
    let mut out = ConstProp::default();
    // Top-down: callers before callees.
    let mut order = cg.bottom_up();
    order.reverse();
    // Facts gathered at call sites: callee -> per-site states.
    let mut site_states: HashMap<String, Vec<(Vec<Ast>, ScalarState)>> = HashMap::new();

    for unit_name in order {
        let Some(unit) = rp.unit(&unit_name) else {
            continue;
        };
        // Seed: intersection of call-site facts (empty state if none or
        // if the unit is the entry point).
        let seed = match site_states.remove(&unit_name) {
            None => ScalarState::default(),
            Some(sites) => intersect_sites(rp, &unit_name, sym, sites, &mut out),
        };
        out.seeds.insert(unit_name.clone(), seed.clone());
        // Prelude pass: whole-program, runs once, not under a per-loop
        // budget — only the per-loop range *re*-analyses are.
        let ur = analyze_unit(
            rp,
            &unit_name,
            sym,
            caps,
            summaries,
            &seed,
            &OpCounter::unlimited(),
        );
        // Harvest call-site states.
        unit.body.walk_stmts(&mut |s| {
            if let StmtKind::Call { name, args } = &s.kind {
                if let Some(st) = ur.at_call.get(&s.id) {
                    site_states
                        .entry(name.clone())
                        .or_default()
                        .push((args.clone(), st.clone()));
                }
            }
        });
        out.ranges.insert(unit_name, ur);
    }
    out
}

/// Intersects the facts available at every call site, translated into
/// the callee's name space (formals by position, COMMON by identity).
fn intersect_sites(
    rp: &ResolvedProgram,
    callee: &str,
    sym: &mut SymMap,
    sites: Vec<(Vec<Ast>, ScalarState)>,
    out: &mut ConstProp,
) -> ScalarState {
    let Some(unit) = rp.unit(callee) else {
        return ScalarState::default();
    };
    let table = &rp.tables[callee];
    let mut seed = ScalarState::default();
    if sites.is_empty() {
        return seed;
    }

    // Formal constants: every site passes the same literal (or a scalar
    // whose exact value at the site is the same constant).
    for (pos, formal) in unit.formals.iter().enumerate() {
        if table.is_array(formal) || table.type_of(formal) != Ty::Integer {
            continue;
        }
        let mut val: Option<i64> = None;
        let mut all = true;
        for (args, st) in &sites {
            let v = match args.get(pos) {
                Some(Ast::Int(k)) => Some(*k),
                Some(Ast::Name(n)) => {
                    // Caller-side exact value.
                    let caller_unit = find_caller_of_args(rp, args, st);
                    let _ = caller_unit;
                    // The state's values are keyed by the caller's var
                    // ids; look the name up through any unit that binds
                    // it to the same id. Simplest: try every table.
                    lookup_const(rp, sym, st, n)
                }
                _ => None,
            };
            match (v, val) {
                (Some(k), None) => val = Some(k),
                (Some(k), Some(prev)) if k == prev => {}
                _ => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            if let Some(k) = val {
                let fid = sym.var(rp, callee, formal);
                seed.values.insert(fid, Expr::int(k));
                seed.env.set(fid, apar_symbolic::Range::exact(Expr::int(k)));
                out.formal_constants += 1;
                continue;
            }
        }
        // No constant: transfer a RANGE when every site provides one
        // whose bounds survive in the callee (constants or COMMON ids).
        let mut merged: Option<apar_symbolic::Range> = None;
        let mut ok = true;
        for (args, st) in &sites {
            let r = match args.get(pos) {
                Some(Ast::Int(k)) => apar_symbolic::Range::exact(Expr::int(*k)),
                Some(Ast::Name(n)) => match lookup_range(rp, sym, st, n) {
                    Some(r) => r,
                    None => {
                        ok = false;
                        break;
                    }
                },
                _ => {
                    ok = false;
                    break;
                }
            };
            let bound_ok = [r.lo.as_ref(), r.hi.as_ref()]
                .into_iter()
                .flatten()
                .all(|e| {
                    e.vars()
                        .into_iter()
                        .all(|v| sym.interner.name(v).starts_with('/'))
                });
            if !bound_ok {
                ok = false;
                break;
            }
            merged = Some(match merged {
                None => r,
                Some(m) => m.union(&r),
            });
        }
        if ok {
            if let Some(r) = merged {
                if !r.is_rangeless() {
                    let fid = sym.var(rp, callee, formal);
                    seed.env.set(fid, r);
                    out.formal_ranges += 1;
                }
            }
        }
    }

    // COMMON facts: keep entries present with identical exact values at
    // every site (the symbolic ids are shared, so no translation).
    let (_, first) = &sites[0];
    for (vid, e) in &first.values {
        let name = sym.interner.name(*vid).to_string();
        if !name.starts_with('/') {
            continue; // only COMMON-storage identities transfer
        }
        if e.as_int().is_none() {
            continue;
        }
        if sites.iter().all(|(_, st)| st.values.get(vid) == Some(e)) {
            seed.values.insert(*vid, e.clone());
            seed.env.set(*vid, apar_symbolic::Range::exact(e.clone()));
            out.common_facts += 1;
        }
    }
    // COMMON range facts (input-deck validations): union across sites.
    // Bounds may reference other COMMON identities, which stay valid in
    // the callee because the ids are storage-based.
    let mut range_ids: Vec<apar_symbolic::VarId> = first.env.iter().map(|(v, _)| *v).collect();
    range_ids.sort();
    for vid in range_ids {
        if seed.env.iter().any(|(v, _)| *v == vid) {
            continue;
        }
        let name = sym.interner.name(vid).to_string();
        if !name.starts_with('/') {
            continue;
        }
        let mut merged: Option<apar_symbolic::Range> = None;
        let mut ok = true;
        for (_, st) in &sites {
            let r = st.env.range_of(vid);
            if r.is_rangeless() {
                ok = false;
                break;
            }
            // Bounds must themselves be expressed over COMMON identities
            // (or constants) to be meaningful in the callee.
            let bound_ok = [r.lo.as_ref(), r.hi.as_ref()]
                .into_iter()
                .flatten()
                .all(|e| {
                    e.vars()
                        .into_iter()
                        .all(|v| sym.interner.name(v).starts_with('/'))
                });
            if !bound_ok {
                ok = false;
                break;
            }
            merged = Some(match merged {
                None => r,
                Some(m) => m.union(&r),
            });
        }
        if ok {
            if let Some(r) = merged {
                seed.env.set(vid, r);
                out.common_facts += 1;
            }
        }
    }
    seed
}

fn lookup_range(
    rp: &ResolvedProgram,
    sym: &mut SymMap,
    st: &ScalarState,
    name: &str,
) -> Option<apar_symbolic::Range> {
    for unit in rp.unit_names() {
        let vid = sym.var(rp, unit, name);
        let r = st.env.range_of(vid);
        if !r.is_rangeless() {
            return Some(r);
        }
    }
    None
}

fn lookup_const(
    rp: &ResolvedProgram,
    sym: &mut SymMap,
    st: &ScalarState,
    name: &str,
) -> Option<i64> {
    // The caller is unknown here; the variable id is found by checking
    // all units that use this name — ids are storage-based, so a match
    // in the state is authoritative.
    for unit in rp.unit_names() {
        let vid = sym.var(rp, unit, name);
        if let Some(e) = st.values.get(&vid) {
            return e.as_int();
        }
    }
    None
}

fn find_caller_of_args<'a>(
    _rp: &'a ResolvedProgram,
    _args: &[Ast],
    _st: &ScalarState,
) -> Option<&'a str> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn run(src: &str, caps: Capabilities) -> (ResolvedProgram, ConstProp, SymMap) {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &OpCounter::unlimited());
        let cp = propagate(&rp, &cg, &mut sym, caps, &summaries);
        (rp, cp, sym)
    }

    #[test]
    fn literal_formal_constant_propagates() {
        let (rp, cp, mut sym) = run(
            "PROGRAM P\nCALL F(64)\nCALL F(64)\nEND\nSUBROUTINE F(N)\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(cp.formal_constants, 1);
        let n = sym.var(&rp, "F", "N");
        assert_eq!(cp.seeds["F"].values.get(&n), Some(&Expr::int(64)));
    }

    #[test]
    fn conflicting_sites_block_propagation() {
        let (_, cp, _) = run(
            "PROGRAM P\nCALL F(64)\nCALL F(32)\nEND\nSUBROUTINE F(N)\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(cp.formal_constants, 0);
        assert!(cp.seeds["F"].values.is_empty());
        // ... but the union RANGE [32, 64] does transfer.
        assert_eq!(cp.formal_ranges, 1);
    }

    #[test]
    fn constant_variable_actual_propagates() {
        let (rp, cp, mut sym) = run(
            "PROGRAM P\nLDIM = 128\nCALL F(LDIM)\nEND\nSUBROUTINE F(N)\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(cp.formal_constants, 1);
        let n = sym.var(&rp, "F", "N");
        assert_eq!(cp.seeds["F"].values.get(&n), Some(&Expr::int(128)));
    }

    #[test]
    fn common_constants_reach_callees() {
        let (rp, cp, mut sym) = run(
            "PROGRAM P\nCOMMON /CFG/ NSAMP\nNSAMP = 512\nCALL PHASE\nEND\nSUBROUTINE PHASE\nCOMMON /CFG/ NS\nDO I = 1, NS\nX = 1.0\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(cp.common_facts >= 1);
        let ns = sym.var(&rp, "PHASE", "NS");
        assert_eq!(cp.seeds["PHASE"].values.get(&ns), Some(&Expr::int(512)));
    }

    #[test]
    fn common_fact_killed_when_modified_before_call() {
        let (rp, cp, mut sym) = run(
            "PROGRAM P\nCOMMON /CFG/ NSAMP\nNSAMP = 512\nREAD(*,*) NSAMP\nCALL PHASE\nEND\nSUBROUTINE PHASE\nCOMMON /CFG/ NS\nEND\n",
            Capabilities::polaris2008(),
        );
        let ns = sym.var(&rp, "PHASE", "NS");
        assert!(!cp.seeds["PHASE"].values.contains_key(&ns));
    }

    #[test]
    fn chains_propagate_transitively() {
        let (rp, cp, mut sym) = run(
            "PROGRAM P\nCALL MID(256)\nEND\nSUBROUTINE MID(N)\nCALL LEAF(N)\nEND\nSUBROUTINE LEAF(M)\nEND\n",
            Capabilities::polaris2008(),
        );
        let m = sym.var(&rp, "LEAF", "M");
        assert_eq!(cp.seeds["LEAF"].values.get(&m), Some(&Expr::int(256)));
    }
}

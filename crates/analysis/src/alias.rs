//! Storage-level alias analysis.
//!
//! Fortran aliasing has three sources, all present in the paper's codes:
//! `COMMON` blocks seen from multiple units, `EQUIVALENCE` overlays, and
//! by-reference argument passing (two actuals overlapping, or an actual
//! overlapping a `COMMON` the callee also sees). [`AliasInfo`] answers
//! may-alias queries between names of one unit.
//!
//! The baseline compiler (the paper's Polaris) must assume any two array
//! formals *may* alias — proving otherwise needs the call-site analysis
//! gated behind [`crate::Capabilities::interprocedural_noalias`]. Loops
//! lost to that assumption form the `aliasing` bar of Figure 5.

use std::collections::{HashMap, HashSet};

use apar_minifort::ast::{Expr, StmtKind};
use apar_minifort::symtab::{Storage, SymbolKind};
use apar_minifort::ResolvedProgram;

use crate::callgraph::CallGraph;
use crate::Capabilities;
use apar_symbolic::OpCounter;

/// Where a name's storage ultimately lives, caller-visible.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Root {
    /// A COMMON block (program-global identity).
    Common(String),
    /// A local area of a specific unit.
    Local { unit: String, area: u32 },
    /// A formal of a specific unit (identity depends on the call site).
    Formal { unit: String, position: usize },
}

/// A name's storage root plus its word offset within the root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Location {
    pub root: Root,
    pub offset: i64,
    /// Size in words, when statically known.
    pub size: Option<i64>,
}

/// Resolves the storage location of `name` in `unit`.
pub fn location(rp: &ResolvedProgram, unit: &str, name: &str) -> Option<Location> {
    let sym = rp.tables.get(unit)?.get(name)?;
    if !matches!(sym.kind, SymbolKind::Scalar | SymbolKind::Array(_)) {
        return None;
    }
    let size = sym.size_words();
    Some(match &sym.storage {
        Storage::Common { block, offset } => Location {
            root: Root::Common(block.clone()),
            offset: *offset,
            size,
        },
        Storage::Local { area, offset } => Location {
            root: Root::Local {
                unit: unit.to_string(),
                area: *area,
            },
            offset: *offset,
            size,
        },
        Storage::Formal { position } => Location {
            root: Root::Formal {
                unit: unit.to_string(),
                position: *position,
            },
            offset: 0,
            size,
        },
        Storage::None => return None,
    })
}

/// Per-unit may-alias facts.
#[derive(Clone, Debug, Default)]
pub struct AliasInfo {
    /// Pairs of names (within one unit) proven or assumed to possibly
    /// overlap, keyed by unit.
    pairs: HashMap<String, HashSet<(String, String)>>,
    /// Formals proven independent at every call site (only populated
    /// when the capability is on).
    noalias_formals: HashMap<String, HashSet<(usize, usize)>>,
    caps: Capabilities,
}

impl AliasInfo {
    /// Builds alias facts for the whole program, billing one op per
    /// name pair and per call-site proof attempt to `ops`. When the
    /// counter's budget trips, remaining pairs are conservatively
    /// assumed aliased (the static-overlap scan marks them overlapping
    /// and the no-alias fixpoint stops proving) — sound degradation,
    /// never a panic.
    pub fn build(
        rp: &ResolvedProgram,
        cg: &CallGraph,
        caps: Capabilities,
        ops: &OpCounter,
    ) -> AliasInfo {
        let mut info = AliasInfo {
            caps,
            ..Default::default()
        };
        // 1. Static overlap within each unit (EQUIVALENCE / COMMON).
        for unit in &rp.program.units {
            let table = &rp.tables[&unit.name];
            let names: Vec<&str> = table
                .iter()
                .filter(|s| matches!(s.kind, SymbolKind::Scalar | SymbolKind::Array(_)))
                .map(|s| s.name.as_str())
                .collect();
            let set = info.pairs.entry(unit.name.clone()).or_default();
            for (i, &a) in names.iter().enumerate() {
                for &b in &names[i + 1..] {
                    // Past the budget: assume the pair overlaps rather
                    // than spend more ops proving otherwise.
                    if ops.charge(1).is_err() || static_overlap(rp, &unit.name, a, b) {
                        set.insert(key(a, b));
                    }
                }
            }
        }
        // 2. Call-site based no-alias proofs for formal pairs, iterated
        //    to a fixpoint so proofs chain through wrapper layers (the
        //    SEISPROC -> module -> utility pattern of framework codes).
        if caps.interprocedural_noalias {
            for _round in 0..4 {
                let mut changed = false;
                for unit in &rp.program.units {
                    let nformals = unit.formals.len();
                    if nformals < 2 {
                        continue;
                    }
                    for i in 0..nformals {
                        for j in i + 1..nformals {
                            if info
                                .noalias_formals
                                .get(&unit.name)
                                .is_some_and(|s| s.contains(&(i, j)))
                            {
                                continue;
                            }
                            if ops.charge(1).is_ok()
                                && all_sites_disjoint(
                                    rp,
                                    cg,
                                    &unit.name,
                                    i,
                                    j,
                                    &info.noalias_formals,
                                )
                            {
                                info.noalias_formals
                                    .entry(unit.name.clone())
                                    .or_default()
                                    .insert((i, j));
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        info
    }

    /// May `a` and `b` (names in `unit`) refer to overlapping storage?
    pub fn may_alias(&self, rp: &ResolvedProgram, unit: &str, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        if let Some(set) = self.pairs.get(unit) {
            if set.contains(&key(a, b)) {
                return true;
            }
        }
        let (Some(la), Some(lb)) = (location(rp, unit, a), location(rp, unit, b)) else {
            return true; // unknown storage: be conservative
        };
        match (&la.root, &lb.root) {
            // Two formals: aliased unless proven independent.
            (Root::Formal { position: i, .. }, Root::Formal { position: j, .. }) => {
                let (i, j) = if i <= j { (*i, *j) } else { (*j, *i) };
                !self
                    .noalias_formals
                    .get(unit)
                    .is_some_and(|s| s.contains(&(i, j)))
            }
            // Formal vs common/local: a caller may pass the common array
            // as the actual; only call-site inspection can rule it out.
            (Root::Formal { .. }, Root::Common(_)) | (Root::Common(_), Root::Formal { .. }) => {
                !self.caps.interprocedural_noalias
            }
            (Root::Formal { .. }, Root::Local { .. })
            | (Root::Local { .. }, Root::Formal { .. }) => false, // locals never escape
            _ => la.root == lb.root && ranges_overlap(&la, &lb),
        }
    }

    /// Hashes this unit's alias facts (asserted pairs and proven
    /// formal independence) into `h`, in sorted order so the digest is
    /// independent of hash-map iteration order.
    pub fn digest_unit<H: std::hash::Hasher>(&self, unit: &str, h: &mut H) {
        use std::hash::Hash;
        if let Some(set) = self.pairs.get(unit) {
            let mut pairs: Vec<_> = set.iter().collect();
            pairs.sort();
            for p in pairs {
                p.hash(h);
            }
        }
        0xa5u8.hash(h);
        if let Some(set) = self.noalias_formals.get(unit) {
            let mut pairs: Vec<_> = set.iter().collect();
            pairs.sort();
            for p in pairs {
                p.hash(h);
            }
        }
    }
}

fn key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

fn ranges_overlap(a: &Location, b: &Location) -> bool {
    match (a.size, b.size) {
        (Some(sa), Some(sb)) => a.offset < b.offset + sb && b.offset < a.offset + sa,
        _ => true,
    }
}

/// Overlap that is visible from declarations alone.
fn static_overlap(rp: &ResolvedProgram, unit: &str, a: &str, b: &str) -> bool {
    let (Some(la), Some(lb)) = (location(rp, unit, a), location(rp, unit, b)) else {
        return false;
    };
    la.root == lb.root && ranges_overlap(&la, &lb)
}

/// True when every call site of `unit` passes provably disjoint storage
/// for formal positions `i` and `j`.
fn all_sites_disjoint(
    rp: &ResolvedProgram,
    cg: &CallGraph,
    unit: &str,
    i: usize,
    j: usize,
    proven: &HashMap<String, HashSet<(usize, usize)>>,
) -> bool {
    let mut any_site = false;
    for site in cg.calls_to(unit) {
        any_site = true;
        let Some(caller) = rp.unit(&site.caller) else {
            return false;
        };
        let mut disjoint_here = false;
        let mut found = false;
        caller.body.walk_stmts(&mut |s| {
            if s.id != site.stmt {
                return;
            }
            if let StmtKind::Call { args, .. } = &s.kind {
                found = true;
                disjoint_here = actuals_disjoint(rp, &site.caller, args, i, j, proven);
            }
        });
        if !found || !disjoint_here {
            return false;
        }
    }
    any_site
}

fn actuals_disjoint(
    rp: &ResolvedProgram,
    caller: &str,
    args: &[Expr],
    i: usize,
    j: usize,
    proven: &HashMap<String, HashSet<(usize, usize)>>,
) -> bool {
    let (Some(ai), Some(aj)) = (args.get(i), args.get(j)) else {
        return false;
    };
    // Only whole-name actuals are analyzed; sections and expressions are
    // conservative.
    let (Expr::Name(na), Expr::Name(nb)) = (ai, aj) else {
        // A scalar expression actual (copy-in) cannot alias an array.
        return is_value_expr(ai) || is_value_expr(aj);
    };
    if na == nb {
        return false;
    }
    let (Some(la), Some(lb)) = (location(rp, caller, na), location(rp, caller, nb)) else {
        return false;
    };
    match (&la.root, &lb.root) {
        // Both actuals are formals of the caller: disjoint when the
        // caller's own formal pair is already proven disjoint (fixpoint
        // chaining through wrapper layers).
        (Root::Formal { position: pi, .. }, Root::Formal { position: pj, .. }) => {
            let key = if pi <= pj { (*pi, *pj) } else { (*pj, *pi) };
            proven.get(caller).is_some_and(|s| s.contains(&key))
        }
        (Root::Formal { .. }, _) | (_, Root::Formal { .. }) => false,
        _ => la.root != lb.root || !ranges_overlap(&la, &lb),
    }
}

fn is_value_expr(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Bin(..) | Expr::Un(..)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn setup(src: &str, caps: Capabilities) -> (ResolvedProgram, AliasInfo) {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let info = AliasInfo::build(&rp, &cg, caps, &OpCounter::unlimited());
        (rp, info)
    }

    #[test]
    fn tripped_budget_assumes_aliasing() {
        // With a spent budget the builder must stay conservative: every
        // pair it could not afford to examine is assumed aliased.
        let src = "PROGRAM P\nREAL A(10), B(10), C(10)\nEND\n";
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let ops = OpCounter::with_budget(0);
        let info = AliasInfo::build(&rp, &cg, Capabilities::polaris2008(), &ops);
        assert!(ops.exceeded());
        assert!(
            info.may_alias(&rp, "P", "A", "C"),
            "unexamined pair stays aliased"
        );
    }

    #[test]
    fn equivalence_aliases() {
        let (rp, info) = setup(
            "PROGRAM P\nREAL A(10), B(10), C(10)\nEQUIVALENCE (A(5), B(1))\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(info.may_alias(&rp, "P", "A", "B"));
        assert!(!info.may_alias(&rp, "P", "A", "C"));
    }

    #[test]
    fn non_overlapping_equivalence_members() {
        // B placed far past A's end: same area but disjoint words.
        let (rp, info) = setup(
            "PROGRAM P\nREAL A(10), B(10), PAD(30)\nEQUIVALENCE (PAD(1), A(1)), (PAD(21), B(1))\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(!info.may_alias(&rp, "P", "A", "B"));
        assert!(info.may_alias(&rp, "P", "A", "PAD"));
    }

    #[test]
    fn common_members_disjoint_by_layout() {
        let (rp, info) = setup(
            "PROGRAM P\nREAL A(10), B(10)\nCOMMON /C/ A, B\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(!info.may_alias(&rp, "P", "A", "B"));
    }

    #[test]
    fn formals_alias_in_baseline() {
        let src = "PROGRAM P\nREAL X(10), Y(10)\nCALL S(X, Y)\nEND\nSUBROUTINE S(A, B)\nREAL A(*), B(*)\nA(1) = B(1)\nEND\n";
        let (rp, base) = setup(src, Capabilities::polaris2008());
        assert!(
            base.may_alias(&rp, "S", "A", "B"),
            "baseline assumes aliasing"
        );
        let (rp2, full) = setup(src, Capabilities::full());
        assert!(
            !full.may_alias(&rp2, "S", "A", "B"),
            "call-site proof removes the alias"
        );
    }

    #[test]
    fn aliased_call_site_defeats_proof() {
        // One call site passes the same array twice.
        let src = "PROGRAM P\nREAL X(10), Y(10)\nCALL S(X, Y)\nCALL S(X, X)\nEND\nSUBROUTINE S(A, B)\nREAL A(*), B(*)\nA(1) = B(1)\nEND\n";
        let (rp, full) = setup(src, Capabilities::full());
        assert!(full.may_alias(&rp, "S", "A", "B"));
    }

    #[test]
    fn overlapping_sections_of_common_defeat_proof() {
        // Both actuals name arrays that share storage via EQUIVALENCE.
        let src = "PROGRAM P\nREAL X(10), Y(10)\nEQUIVALENCE (X(6), Y(1))\nCALL S(X, Y)\nEND\nSUBROUTINE S(A, B)\nREAL A(*), B(*)\nA(1) = B(1)\nEND\n";
        let (rp, full) = setup(src, Capabilities::full());
        assert!(full.may_alias(&rp, "S", "A", "B"));
    }

    #[test]
    fn formal_vs_common_needs_capability() {
        let src = "PROGRAM P\nREAL X(10)\nCALL S(X)\nEND\nSUBROUTINE S(A)\nREAL A(*), G(10)\nCOMMON /C/ G\nA(1) = G(1)\nEND\n";
        let (rp, base) = setup(src, Capabilities::polaris2008());
        assert!(base.may_alias(&rp, "S", "A", "G"));
        let (rp2, full) = setup(src, Capabilities::full());
        assert!(!full.may_alias(&rp2, "S", "A", "G"));
    }

    #[test]
    fn scalar_value_actuals_do_not_alias() {
        let src = "PROGRAM P\nREAL X(10)\nCALL S(X, N + 1)\nEND\nSUBROUTINE S(A, K)\nREAL A(*)\nA(1) = K\nEND\n";
        let (rp, full) = setup(src, Capabilities::full());
        assert!(!full.may_alias(&rp, "S", "A", "K"));
    }
}

//! Induction-variable substitution.
//!
//! `K = K + c` with a loop-invariant `c` makes every iteration depend on
//! the previous one; substituting the closed form `K0 + trip*c` removes
//! the recurrence. This pass performs the substitution *on the AST*
//! (Polaris is a source-to-source restructurer), inserting a `KSV = K`
//! save statement before the loop, so that a subsequently parallelized
//! loop executes correctly.

use apar_minifort::ast::{BinOp, Block, Expr as Ast, Stmt, StmtId, StmtKind, Unit};
use apar_minifort::symtab::SymbolTable;

/// Report of the substitutions performed in one unit.
#[derive(Clone, Debug, Default)]
pub struct InductionReport {
    /// `(loop stmt, induction variable)` pairs rewritten.
    pub substituted: Vec<(StmtId, String)>,
}

/// Rewrites every recognized induction variable in the unit. `next_id`
/// is the program's statement-id counter (fresh statements need ids).
pub fn run_on_unit(
    unit: &mut Unit,
    table: &SymbolTable,
    next_id: &mut u32,
) -> InductionReport {
    let mut report = InductionReport::default();
    let mut counter = 0usize;
    rewrite_block(&mut unit.body, table, next_id, &mut counter, &mut report);
    report
}

fn rewrite_block(
    b: &mut Block,
    table: &SymbolTable,
    next_id: &mut u32,
    counter: &mut usize,
    report: &mut InductionReport,
) {
    let mut i = 0;
    while i < b.stmts.len() {
        // Recurse first so inner loops are handled innermost-out.
        match &mut b.stmts[i].kind {
            StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
                rewrite_block(body, table, next_id, counter, report);
            }
            StmtKind::If { arms, else_blk } => {
                for (_, bb) in arms.iter_mut() {
                    rewrite_block(bb, table, next_id, counter, report);
                }
                if let Some(bb) = else_blk {
                    rewrite_block(bb, table, next_id, counter, report);
                }
            }
            _ => {}
        }
        if let Some(saves) = try_rewrite_loop(&mut b.stmts[i], table, next_id, counter, report) {
            // Insert the save statements before the loop.
            for (k, save) in saves.into_iter().enumerate() {
                b.stmts.insert(i + k, save);
                i += 1;
            }
        }
        i += 1;
    }
}

/// Attempts induction substitution on one DO statement; returns save
/// statements to insert before it.
fn try_rewrite_loop(
    s: &mut Stmt,
    table: &SymbolTable,
    next_id: &mut u32,
    counter: &mut usize,
    report: &mut InductionReport,
) -> Option<Vec<Stmt>> {
    let loop_id = s.id;
    let line = s.line;
    let StmtKind::Do {
        var, lo, step, body, ..
    } = &mut s.kind
    else {
        return None;
    };
    let step_val = match step {
        None => 1i64,
        Some(Ast::Int(k)) => *k,
        _ => return None,
    };
    if step_val == 0 {
        return None;
    }
    // Find candidates: top-level statements `K = K + c` / `K = K - c`.
    let mut candidates: Vec<(usize, String, Ast)> = Vec::new();
    for (pos, st) in body.stmts.iter().enumerate() {
        if let StmtKind::Assign {
            lhs: Ast::Name(k),
            rhs,
        } = &st.kind
        {
            if table.is_array(k) || k == var {
                continue;
            }
            if let Some(c) = match_increment(k, rhs) {
                candidates.push((pos, k.clone(), c));
            }
        }
    }
    let mut saves = Vec::new();
    for (pos, k, c) in candidates {
        // K must be assigned only at `pos`, and c loop-invariant: c may
        // reference only names not assigned in the body.
        if count_assignments(body, &k) != 1 {
            continue;
        }
        if !invariant_in(body, &c, var) {
            continue;
        }
        // Fresh save variable with the same implicit-type first letter.
        let save_name = loop {
            *counter += 1;
            let cand = format!("{}ZSV{}", &k[..1], counter);
            if table.get(&cand).is_none() {
                break cand;
            }
        };
        // trip = (I - lo) / step  (exact since I = lo + t*step).
        let trip = |extra: i64| -> Ast {
            let diff = Ast::Bin(
                BinOp::Sub,
                Box::new(Ast::Name(var.clone())),
                Box::new(lo.clone()),
            );
            let t = if step_val == 1 {
                diff
            } else {
                Ast::Bin(BinOp::Div, Box::new(diff), Box::new(Ast::Int(step_val)))
            };
            if extra == 0 {
                t
            } else {
                Ast::Bin(BinOp::Add, Box::new(t), Box::new(Ast::Int(extra)))
            }
        };
        let closed = |extra: i64| -> Ast {
            // save + trip(extra) * c
            Ast::Bin(
                BinOp::Add,
                Box::new(Ast::Name(save_name.clone())),
                Box::new(Ast::Bin(
                    BinOp::Mul,
                    Box::new(trip(extra)),
                    Box::new(c.clone()),
                )),
            )
        };
        // Rewrite uses: statements before `pos` (and the increment's own
        // rhs) see trip executions of the increment; statements after see
        // trip + 1.
        for (j, st) in body.stmts.iter_mut().enumerate() {
            let extra = if j < pos { 0 } else { 1 };
            if j == pos {
                st.kind = StmtKind::Assign {
                    lhs: Ast::Name(k.clone()),
                    rhs: closed(1),
                };
                continue;
            }
            replace_name_in_stmt(st, &k, &closed(extra));
        }
        saves.push(Stmt {
            id: StmtId(*next_id),
            line,
            label: None,
            kind: StmtKind::Assign {
                lhs: Ast::Name(save_name.clone()),
                rhs: Ast::Name(k.clone()),
            },
        });
        *next_id += 1;
        report.substituted.push((loop_id, k));
    }
    if saves.is_empty() {
        None
    } else {
        Some(saves)
    }
}

/// Matches `K + c`, `c + K`, `K - c`; returns `c` (negated for `-`).
fn match_increment(k: &str, rhs: &Ast) -> Option<Ast> {
    let is_k = |e: &Ast| matches!(e, Ast::Name(n) if n == k);
    let free_of_k = |e: &Ast| {
        let mut f = false;
        e.walk(&mut |x| {
            if is_k(x) {
                f = true;
            }
        });
        !f
    };
    match rhs {
        Ast::Bin(BinOp::Add, l, r) => {
            if is_k(l) && free_of_k(r) {
                Some((**r).clone())
            } else if is_k(r) && free_of_k(l) {
                Some((**l).clone())
            } else {
                None
            }
        }
        Ast::Bin(BinOp::Sub, l, r) if is_k(l) && free_of_k(r) => Some(Ast::Un(
            apar_minifort::ast::UnOp::Neg,
            Box::new((**r).clone()),
        )),
        _ => None,
    }
}

fn count_assignments(b: &Block, name: &str) -> usize {
    let mut n = 0;
    b.walk_stmts(&mut |s| match &s.kind {
        StmtKind::Assign {
            lhs: Ast::Name(l), ..
        } if l == name => n += 1,
        StmtKind::Do { var, .. } if var == name => n += 1,
        StmtKind::Read { items } => {
            for it in items {
                if matches!(it, Ast::Name(l) if l == name) {
                    n += 1;
                }
            }
        }
        StmtKind::Call { args, .. } => {
            // Conservative: a call may assign any actual name.
            for a in args {
                if matches!(a, Ast::Name(l) if l == name) {
                    n += 1;
                }
            }
        }
        _ => {}
    });
    n
}

/// True when `e` references only names never assigned in the body (and
/// not the loop variable — which IS allowed, making the increment
/// nonlinear; keep it conservative and reject).
fn invariant_in(b: &Block, e: &Ast, loop_var: &str) -> bool {
    let mut ok = true;
    e.walk(&mut |x| match x {
        Ast::Name(n)
            if (n == loop_var || count_assignments(b, n) > 0) => {
                ok = false;
            }
        Ast::Index { .. } | Ast::Sub { .. } | Ast::CallF { .. } => ok = false,
        _ => {}
    });
    ok
}

fn replace_name_in_stmt(s: &mut Stmt, name: &str, repl: &Ast) {
    let rw = |e: &Ast| -> Ast {
        e.map(&mut |x| match &x {
            Ast::Name(n) if n == name => repl.clone(),
            _ => x,
        })
    };
    match &mut s.kind {
        StmtKind::Assign { lhs, rhs } => {
            // Only the subscripts of an lvalue are uses.
            if let Ast::Index { subs, .. } = lhs {
                for sub in subs {
                    *sub = rw(sub);
                }
            }
            *rhs = rw(rhs);
        }
        StmtKind::If { arms, else_blk } => {
            for (c, b) in arms {
                *c = rw(c);
                for st in &mut b.stmts {
                    replace_name_in_stmt(st, name, repl);
                }
            }
            if let Some(b) = else_blk {
                for st in &mut b.stmts {
                    replace_name_in_stmt(st, name, repl);
                }
            }
        }
        StmtKind::Do {
            lo, hi, step, body, ..
        } => {
            *lo = rw(lo);
            *hi = rw(hi);
            if let Some(st) = step {
                *st = rw(st);
            }
            for st in &mut body.stmts {
                replace_name_in_stmt(st, name, repl);
            }
        }
        StmtKind::DoWhile { cond, body } => {
            *cond = rw(cond);
            for st in &mut body.stmts {
                replace_name_in_stmt(st, name, repl);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                *a = rw(a);
            }
        }
        StmtKind::Read { items } | StmtKind::Write { items } => {
            for i in items {
                *i = rw(i);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::pretty::print_program;
    use apar_minifort::{frontend, parse_program, resolve};

    fn transform(src: &str) -> (String, InductionReport) {
        let rp = frontend(src).expect("frontend");
        let mut prog = rp.program.clone();
        let mut next = prog.stmt_count;
        let mut report = InductionReport::default();
        for u in &mut prog.units {
            let r = run_on_unit(u, &rp.tables[&u.name], &mut next);
            report.substituted.extend(r.substituted);
        }
        prog.stmt_count = next;
        let printed = print_program(&prog);
        // The transformed program must still parse and resolve.
        let p2 = parse_program(&printed).expect("reparse");
        resolve(p2).expect("re-resolve");
        (printed, report)
    }

    #[test]
    fn basic_increment_substituted() {
        let (out, rep) = transform(
            "PROGRAM P\nREAL A(100)\nK = 0\nDO I = 1, 10\nK = K + 3\nA(K) = 1.0\nENDDO\nEND\n",
        );
        assert_eq!(rep.substituted.len(), 1);
        assert!(out.contains("KZSV1 = K"), "{}", out);
        // The increment became a closed form; the use after it sees t+1.
        assert!(out.contains("K = KZSV1 + (I - 1 + 1) * 3"), "{}", out);
        assert!(out.contains("A(KZSV1 + (I - 1 + 1) * 3)"), "{}", out);
    }

    #[test]
    fn use_before_increment_sees_trip_count() {
        let (out, _) = transform(
            "PROGRAM P\nREAL A(100)\nK = 5\nDO I = 1, 10\nA(K) = 1.0\nK = K + 2\nENDDO\nEND\n",
        );
        assert!(out.contains("A(KZSV1 + (I - 1) * 2)"), "{}", out);
    }

    #[test]
    fn nonunit_step_divides() {
        let (out, _) = transform(
            "PROGRAM P\nREAL A(100)\nK = 0\nDO I = 1, 20, 2\nK = K + 1\nA(K) = 1.0\nENDDO\nEND\n",
        );
        assert!(out.contains("(I - 1) / 2"), "{}", out);
    }

    #[test]
    fn decrement_substituted() {
        let (out, rep) = transform(
            "PROGRAM P\nK = 100\nDO I = 1, 10\nK = K - 1\nENDDO\nEND\n",
        );
        assert_eq!(rep.substituted.len(), 1);
        assert!(out.contains("* (-1)") || out.contains("* -1"), "{}", out);
    }

    #[test]
    fn variant_increment_rejected() {
        let (_, rep) = transform(
            "PROGRAM P\nDO I = 1, 10\nM = M + 1\nK = K + M\nENDDO\nEND\n",
        );
        // M qualifies; K does not (its increment M varies).
        assert_eq!(rep.substituted.len(), 1);
        assert_eq!(rep.substituted[0].1, "M");
    }

    #[test]
    fn multiple_assignments_rejected() {
        let (_, rep) = transform(
            "PROGRAM P\nDO I = 1, 10\nK = K + 1\nK = K + 2\nENDDO\nEND\n",
        );
        assert!(rep.substituted.is_empty());
    }

    #[test]
    fn nested_loops_handled_innermost_first() {
        let (out, rep) = transform(
            "PROGRAM P\nREAL A(1000)\nK = 0\nDO I = 1, 10\nDO J = 1, 10\nK = K + 1\nA(K) = 1.0\nENDDO\nENDDO\nEND\n",
        );
        // The inner rewrite makes K's update in the inner loop a closed
        // form over J, which then blocks outer-loop recognition (K's rhs
        // references J, assigned by the inner DO) — matching Polaris,
        // which needed multiple passes for nested inductions.
        assert_eq!(rep.substituted.len(), 1);
        assert!(out.contains("KZSV1"), "{}", out);
    }

    #[test]
    fn semantics_preserved_sequentially() {
        // Evaluate both versions by hand for a tiny case.
        // K starts 5; loop I=1..3: A(K+trip*2 pattern).
        let (out, _) = transform(
            "PROGRAM P\nREAL A(100)\nK = 5\nDO I = 1, 3\nK = K + 2\nA(K) = 1.0\nENDDO\nEND\n",
        );
        // Writes land at K=7,9,11 in the original. Closed form:
        // KZSV1 + (I-1+1)*2 = 5 + 2I -> 7, 9, 11.
        assert!(out.contains("K = KZSV1 + (I - 1 + 1) * 2"), "{}", out);
    }
}

//! Scalar and array privatization.
//!
//! A variable is privatizable in a loop when every iteration writes it
//! before reading it, so per-thread copies decouple the iterations.
//! Figure 3 shows array privatization as one of the two dominant passes;
//! its cost is the section-coverage proofs, which we charge to the same
//! op counter as the dependence test.
//!
//! Privatized scalars are executed `lastprivate` by the runtime (the
//! final iteration's value is copied back), preserving sequential
//! semantics for live-out values.

use std::collections::{HashMap, HashSet};

use apar_minifort::ast::{Block, Expr as Ast, Stmt, StmtKind, Unit};
use apar_minifort::symtab::{Storage, SymbolKind};
use apar_minifort::{ResolvedProgram, StmtId};
use apar_symbolic::{AssumeEnv, Expr, OpCounter, Prover, Range};

use crate::access::LoopAccesses;
use crate::ranges::ScalarState;
use crate::symx::{ExprFeatures, SymMap};
use crate::Capabilities;

/// The privatization verdict for one loop.
#[derive(Clone, Debug, Default)]
pub struct PrivResult {
    /// Scalars proven write-before-read each iteration.
    pub private_scalars: Vec<String>,
    /// Arrays proven write-before-read (scratch arrays).
    pub private_arrays: Vec<String>,
    /// Scalars written in the loop that could NOT be privatized (and are
    /// not reductions/inductions — the driver subtracts those).
    pub failed_scalars: Vec<String>,
    /// Arrays that carry read-before-write uses (stay shared).
    pub failed_arrays: Vec<String>,
}

/// First-reference events per name, in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FirstRef {
    Read { guarded: bool },
    Write { guarded: bool },
}

/// Analyzes privatization for a loop body.
#[allow(clippy::too_many_arguments)]
pub fn analyze(
    rp: &ResolvedProgram,
    unit: &Unit,
    loop_stmt: StmtId,
    body: &Block,
    loop_var: &str,
    la: &LoopAccesses,
    state: &ScalarState,
    sym: &mut SymMap,
    caps: Capabilities,
    ops: &OpCounter,
) -> PrivResult {
    let mut out = PrivResult::default();
    let table = &rp.tables[&unit.name];

    // Polaris's array privatization builds DEF/USE section summaries for
    // every array reference of the loop before deciding; that symbolic
    // work — bounding each subscript over the iteration space — is what
    // Figure 3 shows sharing the compile-time bill with the dependence
    // test. Reproduce it (and its cost) here.
    {
        let mut env = state.env.clone();
        for (_, v, lo, hi) in &la.inner_loops {
            let vid = sym.var(rp, &unit.name, v);
            let mut f = ExprFeatures::default();
            let l = state.substitute(&sym.expr(rp, &unit.name, lo, &mut f));
            let h = state.substitute(&sym.expr(rp, &unit.name, hi, &mut f));
            if !l.has_unknown() && !h.has_unknown() {
                env.set(vid, Range::between(l, h));
            }
        }
        let prover = Prover::new(&env, ops);
        for acc in &la.accesses {
            for sub in &acc.subs {
                let _section = prover.range_of(sub);
            }
        }
    }

    // ---- Scalars -------------------------------------------------------
    let mut first: HashMap<String, FirstRef> = HashMap::new();
    first_refs(body, 0, &mut first);
    let mut written: Vec<&str> = la
        .scalar_writes
        .iter()
        .map(|(n, _, _)| n.as_str())
        .filter(|n| *n != loop_var)
        .collect();
    written.sort_unstable();
    written.dedup();
    // Inner loop variables are trivially private (their DO writes first).
    let inner_vars: HashSet<&str> = la
        .inner_loops
        .iter()
        .map(|(_, v, _, _)| v.as_str())
        .collect();
    for name in written {
        if inner_vars.contains(name) {
            out.private_scalars.push(name.to_string());
            continue;
        }
        match first.get(name) {
            Some(FirstRef::Write { guarded: false }) => {
                out.private_scalars.push(name.to_string());
            }
            Some(FirstRef::Write { guarded: true }) if caps.guarded_regions => {
                // Gated analysis: a guarded first-write is accepted when
                // no unguarded read exists at all (checked by first_refs
                // ordering: the first event was this write).
                out.private_scalars.push(name.to_string());
            }
            _ => out.failed_scalars.push(name.to_string()),
        }
    }

    // ---- Arrays ---------------------------------------------------------
    // Candidate arrays: written in the loop. An array is private when
    // every read is covered by an earlier unguarded write of the same
    // iteration, and the array does not outlive the loop.
    let mut arrays: Vec<&str> = la
        .accesses
        .iter()
        .filter(|a| a.kind == crate::access::AccessKind::Write)
        .map(|a| a.array.as_str())
        .collect();
    arrays.sort_unstable();
    arrays.dedup();
    let outside = names_outside_loop(unit, loop_stmt);
    for array in arrays {
        let reads: Vec<_> = la
            .accesses
            .iter()
            .filter(|a| a.array == array && a.kind == crate::access::AccessKind::Read)
            .collect();
        if reads.is_empty() {
            // Written but never read inside: private only if dead after
            // the loop; otherwise the writes are the loop's output and
            // must go to shared storage (the dependence test already
            // judged them).
            continue;
        }
        // Escape analysis: COMMON or formal arrays, or arrays referenced
        // after the loop, cannot be silently privatized.
        let escapes = match table.get(array).map(|s| (&s.kind, &s.storage)) {
            Some((SymbolKind::Array(_), Storage::Local { .. })) => outside.contains(array),
            _ => true,
        };
        if escapes {
            out.failed_arrays.push(array.to_string());
            continue;
        }
        let order = stmt_order(body);
        let covered = reads.iter().all(|r| {
            la.accesses
                .iter()
                .filter(|w| {
                    w.array == array
                        && w.kind == crate::access::AccessKind::Write
                        && w.guard_depth == 0
                        && order.get(&w.stmt) <= order.get(&r.stmt)
                })
                .any(|w| write_covers_read(rp, &unit.name, sym, state, la, w, r, ops))
        });
        if covered {
            out.private_arrays.push(array.to_string());
        } else {
            out.failed_arrays.push(array.to_string());
        }
    }
    out
}

/// Pre-order position of every statement in the body.
fn stmt_order(body: &Block) -> HashMap<StmtId, usize> {
    let mut order = HashMap::new();
    let mut n = 0;
    body.walk_stmts(&mut |s| {
        order.insert(s.id, n);
        n += 1;
    });
    order
}

/// Does write `w` cover read `r` within one iteration? Either the
/// subscripts match symbolically, or `w` sits in an inner loop whose
/// sweep provably spans the read subscript.
#[allow(clippy::too_many_arguments)]
fn write_covers_read(
    rp: &ResolvedProgram,
    unit: &str,
    sym: &mut SymMap,
    state: &ScalarState,
    la: &LoopAccesses,
    w: &crate::access::ArrayAccess,
    r: &crate::access::ArrayAccess,
    ops: &OpCounter,
) -> bool {
    if w.subs == r.subs && !w.subs.iter().any(|s| s.has_unknown()) {
        return true;
    }
    if w.subs.len() != r.subs.len() {
        return false;
    }
    // Sweep coverage: each dim of the write is either equal to the read's
    // or is `J + c` for an inner loop J whose range spans the read index.
    let mut env = state.env.clone();
    for (_, v, lo, hi) in &la.inner_loops {
        let vid = sym.var(rp, unit, v);
        let mut f = ExprFeatures::default();
        let l = state.substitute(&sym.expr(rp, unit, lo, &mut f));
        let h = state.substitute(&sym.expr(rp, unit, hi, &mut f));
        if !l.has_unknown() && !h.has_unknown() {
            env.set(vid, Range::between(l, h));
        }
    }
    let prover = Prover::new(&env, ops);
    for k in 0..w.subs.len() {
        let ws = &w.subs[k];
        let rs = &r.subs[k];
        if ws == rs {
            continue;
        }
        if !dim_sweep_covers(rp, unit, sym, la, state, ws, rs, &env, &prover) {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn dim_sweep_covers(
    rp: &ResolvedProgram,
    unit: &str,
    sym: &mut SymMap,
    la: &LoopAccesses,
    state: &ScalarState,
    ws: &Expr,
    rs: &Expr,
    env: &AssumeEnv,
    prover: &Prover<'_>,
) -> bool {
    // ws must be J + c for an inner loop var J (coefficient 1).
    for (_, v, lo, hi) in &la.inner_loops {
        let vid = sym.var(rp, unit, v);
        // c = ws - J must be free of J.
        let c = ws.sub(Expr::var(vid));
        if c.vars().contains(&vid) {
            continue;
        }
        if !ws.vars().contains(&vid) {
            continue;
        }
        // The write sweeps [lo + c, hi + c]; the read index must fall in.
        let mut f = ExprFeatures::default();
        let l = state.substitute(&sym.expr(rp, unit, lo, &mut f));
        let h = state.substitute(&sym.expr(rp, unit, hi, &mut f));
        if l.has_unknown() || h.has_unknown() {
            continue;
        }
        let _ = env;
        if prover.prove_ge(rs, &l.add(c.clone())) && prover.prove_le(rs, &h.add(c)) {
            return true;
        }
    }
    false
}

/// First read/write events per scalar name, respecting intra-statement
/// order (reads of an assignment happen before its write).
fn first_refs(body: &Block, guard: usize, first: &mut HashMap<String, FirstRef>) {
    for s in &body.stmts {
        stmt_first_refs(s, guard, first);
    }
}

fn stmt_first_refs(s: &Stmt, guard: usize, first: &mut HashMap<String, FirstRef>) {
    let read = |e: &Ast, first: &mut HashMap<String, FirstRef>, guard: usize| {
        e.walk(&mut |x| {
            if let Ast::Name(n) = x {
                first
                    .entry(n.clone())
                    .or_insert(FirstRef::Read { guarded: guard > 0 });
            }
        });
    };
    let write = |n: &str, first: &mut HashMap<String, FirstRef>, guard: usize| {
        first
            .entry(n.to_string())
            .or_insert(FirstRef::Write { guarded: guard > 0 });
    };
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            read(rhs, first, guard);
            match lhs {
                Ast::Name(n) => write(n, first, guard),
                Ast::Index { subs, .. } => {
                    for sub in subs {
                        read(sub, first, guard);
                    }
                }
                _ => {}
            }
        }
        StmtKind::If { arms, else_blk } => {
            for (c, b) in arms {
                read(c, first, guard);
                first_refs(b, guard + 1, first);
            }
            if let Some(b) = else_blk {
                first_refs(b, guard + 1, first);
            }
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            read(lo, first, guard);
            read(hi, first, guard);
            if let Some(st) = step {
                read(st, first, guard);
            }
            write(var, first, guard);
            first_refs(body, guard, first);
        }
        StmtKind::DoWhile { cond, body } => {
            read(cond, first, guard);
            first_refs(body, guard, first);
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                // Conservative: call may read and write every actual.
                read(a, first, guard);
                if let Ast::Name(n) = a {
                    // Read already recorded; the write would come second,
                    // so no entry update is needed.
                    let _ = n;
                }
            }
        }
        StmtKind::Read { items } => {
            for it in items {
                if let Ast::Name(n) = it {
                    write(n, first, guard);
                }
            }
        }
        StmtKind::Write { items } => {
            for it in items {
                read(it, first, guard);
            }
        }
        _ => {}
    }
}

/// Names referenced in the unit outside the given loop's subtree.
fn names_outside_loop(unit: &Unit, loop_stmt: StmtId) -> HashSet<String> {
    let mut inside: HashSet<StmtId> = HashSet::new();
    unit.body.walk_stmts(&mut |s| {
        if s.id == loop_stmt {
            if let StmtKind::Do { body, .. } = &s.kind {
                inside.insert(s.id);
                body.walk_stmts(&mut |t| {
                    inside.insert(t.id);
                });
            }
        }
    });
    let mut out = HashSet::new();
    unit.body.walk_stmts(&mut |s| {
        if inside.contains(&s.id) {
            return;
        }
        let mut record = |e: &Ast| {
            e.walk(&mut |x| {
                if let Ast::Name(n) | Ast::Index { name: n, .. } = x {
                    out.insert(n.clone());
                }
            });
        };
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                record(lhs);
                record(rhs);
            }
            StmtKind::Call { args, .. } => args.iter().for_each(record),
            StmtKind::Read { items } | StmtKind::Write { items } => items.iter().for_each(record),
            StmtKind::If { arms, .. } => arms.iter().for_each(|(c, _)| record(c)),
            StmtKind::Do { lo, hi, .. } => {
                record(lo);
                record(hi);
            }
            StmtKind::DoWhile { cond, .. } => record(cond),
            _ => {}
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access;
    use crate::callgraph::CallGraph;
    use crate::ranges;
    use crate::summary::Summaries;
    use apar_minifort::frontend;

    fn run(src: &str, caps: Capabilities) -> PrivResult {
        let rp = frontend(src).expect("frontend");
        let unit = rp.main_unit().expect("main").clone();
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let ops = OpCounter::unlimited();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &ops);
        let ur = ranges::analyze_unit(
            &rp,
            &unit.name,
            &mut sym,
            caps,
            &summaries,
            &ranges::ScalarState::default(),
            &ops,
        );
        let mut found = None;
        unit.body.walk_stmts(&mut |s| {
            if found.is_none() {
                if let StmtKind::Do { var, body, .. } = &s.kind {
                    found = Some((s.id, var.clone(), body.clone()));
                }
            }
        });
        let (sid, var, body) = found.expect("loop");
        let state = ur.at_loop.get(&sid).cloned().unwrap_or_default();
        let la = access::collect(&rp, &unit.name, &body, &mut sym, &state);
        analyze(
            &rp, &unit, sid, &body, &var, &la, &state, &mut sym, caps, &ops,
        )
    }

    #[test]
    fn def_before_use_scalar_is_private() {
        let r = run(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nT = A(I) * 2.0\nA(I) = T + 1.0\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(r.private_scalars, vec!["T"]);
        assert!(r.failed_scalars.is_empty());
    }

    #[test]
    fn use_before_def_scalar_fails() {
        let r = run(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = T\nT = A(I)\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(r.private_scalars.is_empty());
        assert_eq!(r.failed_scalars, vec!["T"]);
    }

    #[test]
    fn guarded_first_write_needs_capability() {
        let src = "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nIF (A(I) .GT. 0.0) THEN\nT = 1.0\nELSE\nT = 2.0\nENDIF\nA(I) = T\nENDDO\nEND\n";
        let base = run(src, Capabilities::polaris2008());
        assert_eq!(base.failed_scalars, vec!["T"]);
        let full = run(src, Capabilities::full());
        assert_eq!(full.private_scalars, vec!["T"]);
    }

    #[test]
    fn inner_loop_var_is_private() {
        let r = run(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nDO J = 1, 5\nA(J) = 0.0\nENDDO\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(r.private_scalars.contains(&"J".to_string()));
    }

    #[test]
    fn scratch_array_swept_then_read_is_private() {
        // SA is written over [1, 8] then read at positions within [1, 8].
        let r = run(
            "PROGRAM P\nREAL SA(8), B(10)\nDO I = 1, 10\nDO J = 1, 8\nSA(J) = B(I) * J\nENDDO\nS = SA(1) + SA(8)\nB(I) = S\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(r.private_arrays, vec!["SA"]);
    }

    #[test]
    fn array_read_outside_sweep_fails() {
        let r = run(
            "PROGRAM P\nREAL SA(20), B(10)\nDO I = 1, 10\nDO J = 1, 8\nSA(J) = B(I)\nENDDO\nB(I) = SA(9)\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(r.failed_arrays.contains(&"SA".to_string()), "{:?}", r);
    }

    #[test]
    fn array_used_after_loop_escapes() {
        let r = run(
            "PROGRAM P\nREAL SA(8), B(10)\nDO I = 1, 10\nDO J = 1, 8\nSA(J) = B(I)\nENDDO\nB(I) = SA(3)\nENDDO\nX = SA(1)\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(r.failed_arrays.contains(&"SA".to_string()), "{:?}", r);
    }

    #[test]
    fn common_array_escapes() {
        let r = run(
            "PROGRAM P\nREAL SA(8), B(10)\nCOMMON /C/ SA\nDO I = 1, 10\nDO J = 1, 8\nSA(J) = B(I)\nENDDO\nB(I) = SA(3)\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(r.failed_arrays.contains(&"SA".to_string()), "{:?}", r);
    }

    #[test]
    fn same_subscript_write_then_read() {
        let r = run(
            "PROGRAM P\nREAL T(10), B(10)\nDO I = 1, 10\nT(1) = B(I)\nB(I) = T(1) * 2.0\nENDDO\nEND\n",
            Capabilities::polaris2008(),
        );
        assert_eq!(r.private_arrays, vec!["T"]);
    }
}

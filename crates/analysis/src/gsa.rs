//! GSA translation: gated single-assignment statistics.
//!
//! Polaris translates programs into Gated Single Assignment form before
//! symbolic analysis; every conditional that merges scalar definitions
//! introduces a γ (gamma) node whose gate is the branch predicate, and
//! every loop introduces a μ node. The paper's multifunctionality
//! challenge (§2.1) manifests here: option variables steering `IF`
//! cascades multiply the gated definitions the symbolic passes must
//! consider.
//!
//! This module builds the CFG + dominator substrate and counts the gating
//! structure; the pass manager charges op-cost proportional to the gate
//! volume, which is what makes multifunctional units measurably more
//! expensive to compile (Figures 2/3).

use std::collections::HashSet;

use apar_minifort::ast::{Block, Expr as Ast, StmtKind, Unit};
use apar_minifort::ResolvedProgram;

use crate::cfg::Cfg;

/// Gating statistics of one unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GsaStats {
    /// γ nodes: per IF-merge, one per scalar assigned in any arm.
    pub gamma_nodes: usize,
    /// μ nodes: per loop, one per scalar assigned in the body.
    pub mu_nodes: usize,
    /// Deepest gate nesting (conditional depth weighted by assignments).
    pub max_gate_depth: usize,
    /// IF statements whose predicate reads a variable that is never
    /// assigned outside I/O (an input-deck *option variable* — the
    /// multifunctionality signature).
    pub option_branches: usize,
    /// CFG nodes visited (dominator substrate size).
    pub cfg_nodes: usize,
}

impl GsaStats {
    /// Total gated definitions — the op-cost driver.
    pub fn gated_defs(&self) -> usize {
        self.gamma_nodes + self.mu_nodes
    }
}

/// Builds GSA statistics for one unit (and runs the CFG + dominator
/// construction it rests on).
pub fn translate_unit(_rp: &ResolvedProgram, unit: &Unit) -> GsaStats {
    let cfg = Cfg::build(unit);
    let _idoms = cfg.idoms();
    let mut stats = GsaStats {
        cfg_nodes: cfg.nodes.len(),
        ..Default::default()
    };

    // Option variables: read by IF predicates, assigned only via READ
    // (or never assigned in this unit — set elsewhere through COMMON).
    let mut assigned: HashSet<String> = HashSet::new();
    let mut read_targets: HashSet<String> = HashSet::new();
    unit.body.walk_stmts(&mut |s| match &s.kind {
        StmtKind::Assign {
            lhs: Ast::Name(n), ..
        } => {
            assigned.insert(n.clone());
        }
        StmtKind::Read { items } => {
            for it in items {
                if let Ast::Name(n) = it {
                    read_targets.insert(n.clone());
                }
            }
        }
        _ => {}
    });

    walk(&unit.body, 0, &assigned, &read_targets, &mut stats);
    stats
}

fn walk(
    b: &Block,
    depth: usize,
    assigned: &HashSet<String>,
    read_targets: &HashSet<String>,
    stats: &mut GsaStats,
) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::If { arms, else_blk } => {
                // Option-variable gate?
                let mut is_option = false;
                for (c, _) in arms {
                    c.walk(&mut |e| {
                        if let Ast::Name(n) = e {
                            if read_targets.contains(n) || !assigned.contains(n) {
                                is_option = true;
                            }
                        }
                    });
                }
                if is_option {
                    stats.option_branches += 1;
                }
                // Gammas: scalars assigned in any arm.
                let mut merged: HashSet<String> = HashSet::new();
                for (_, bb) in arms {
                    collect_assigned(bb, &mut merged);
                }
                if let Some(bb) = else_blk {
                    collect_assigned(bb, &mut merged);
                }
                stats.gamma_nodes += merged.len();
                stats.max_gate_depth = stats.max_gate_depth.max(depth + 1);
                for (_, bb) in arms {
                    walk(bb, depth + 1, assigned, read_targets, stats);
                }
                if let Some(bb) = else_blk {
                    walk(bb, depth + 1, assigned, read_targets, stats);
                }
            }
            StmtKind::Do { body, var, .. } => {
                let mut merged: HashSet<String> = HashSet::new();
                collect_assigned(body, &mut merged);
                merged.insert(var.clone());
                stats.mu_nodes += merged.len();
                walk(body, depth, assigned, read_targets, stats);
            }
            StmtKind::DoWhile { body, .. } => {
                let mut merged: HashSet<String> = HashSet::new();
                collect_assigned(body, &mut merged);
                stats.mu_nodes += merged.len();
                walk(body, depth, assigned, read_targets, stats);
            }
            _ => {}
        }
    }
}

fn collect_assigned(b: &Block, out: &mut HashSet<String>) {
    b.walk_stmts(&mut |s| match &s.kind {
        StmtKind::Assign {
            lhs: Ast::Name(n), ..
        } => {
            out.insert(n.clone());
        }
        StmtKind::Read { items } => {
            for it in items {
                if let Ast::Name(n) = it {
                    out.insert(n.clone());
                }
            }
        }
        StmtKind::Do { var, .. } => {
            out.insert(var.clone());
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn stats(src: &str) -> GsaStats {
        let rp = frontend(src).expect("frontend");
        let unit = rp.main_unit().expect("main").clone();
        translate_unit(&rp, &unit)
    }

    #[test]
    fn straight_line_has_no_gates() {
        let s = stats("PROGRAM P\nX = 1.0\nY = 2.0\nEND\n");
        assert_eq!(s.gamma_nodes, 0);
        assert_eq!(s.mu_nodes, 0);
        assert_eq!(s.cfg_nodes, 2);
    }

    #[test]
    fn if_assignments_make_gammas() {
        let s = stats(
            "PROGRAM P\nIF (L .GT. 0.0) THEN\nX = 1.0\nY = 2.0\nELSE\nX = 3.0\nENDIF\nEND\n",
        );
        // X and Y each get one gamma at the merge.
        assert_eq!(s.gamma_nodes, 2);
        assert_eq!(s.max_gate_depth, 1);
    }

    #[test]
    fn loops_make_mu_nodes() {
        let s = stats("PROGRAM P\nDO I = 1, 10\nX = X + 1.0\nENDDO\nEND\n");
        // X and the loop variable I.
        assert_eq!(s.mu_nodes, 2);
    }

    #[test]
    fn option_variables_detected() {
        let s = stats(
            "PROGRAM P\nREAD(*,*) IMIN\nIF (IMIN .EQ. 1) THEN\nX = 1.0\nELSE\nX = 2.0\nENDIF\nEND\n",
        );
        assert_eq!(s.option_branches, 1);
        // A computed gate is not an option branch.
        let s2 = stats(
            "PROGRAM P\nK = 1\nIF (K .EQ. 1) THEN\nX = 1.0\nENDIF\nEND\n",
        );
        assert_eq!(s2.option_branches, 0);
    }

    #[test]
    fn multifunctional_cascades_multiply_gates() {
        // Two option variables, nested dispatch: the gate volume grows
        // multiplicatively with nesting depth.
        let s = stats(
            "PROGRAM P\nREAD(*,*) MODE, SUB\nIF (MODE .EQ. 1) THEN\nIF (SUB .EQ. 1) THEN\nA = 1.0\nELSE\nA = 2.0\nENDIF\nELSE\nIF (SUB .EQ. 1) THEN\nA = 3.0\nELSE\nA = 4.0\nENDIF\nENDIF\nEND\n",
        );
        assert_eq!(s.option_branches, 3);
        assert_eq!(s.gamma_nodes, 3); // one per IF merge (A each time)
        assert_eq!(s.max_gate_depth, 2);
    }
}

//! Interprocedural side-effect summaries.
//!
//! Computed bottom-up over the call graph, a [`UnitEffects`] records per
//! unit: which integer scalars in COMMON storage it (transitively) may
//! modify, which formal positions it may write through, and which arrays
//! (by caller-visible identity) it reads or writes — at whole-array
//! granularity, matching the "summarize access patterns per subroutine
//! and reuse across call sites" precision/compile-time trade-off the
//! paper's Related Work discusses. Loops needing finer cross-call
//! precision rely on inline expansion instead, exactly as Polaris did.
//!
//! A `!LANG C` unit is *opaque* unless
//! [`crate::Capabilities::multilingual`] is on: callers must assume it
//! clobbers everything it could see (§2.4).

use std::collections::{BTreeSet, HashMap};

use apar_minifort::ast::{Expr, StmtKind};
use apar_minifort::symtab::{Storage, SymbolKind};
use apar_minifort::{Lang, ResolvedProgram};

use crate::callgraph::CallGraph;
use crate::symx::SymMap;
use crate::Capabilities;
use apar_symbolic::{OpCounter, VarId};

/// Side effects of calling one unit.
#[derive(Clone, Debug, Default)]
pub struct UnitEffects {
    /// The unit (or a callee) is foreign and unanalyzable: assume it
    /// clobbers all storage it could reach.
    pub opaque: bool,
    /// Symbolic ids of COMMON integer scalars possibly modified.
    /// Ordered sets throughout: consumers iterate these (call windows,
    /// range kills), and iteration order must not vary run to run or
    /// the per-loop op accounting loses its determinism.
    pub modified_commons: BTreeSet<VarId>,
    /// Formal positions possibly written through.
    pub modified_formals: BTreeSet<usize>,
    /// Formal positions of arrays read (whole-array granularity).
    pub read_array_formals: BTreeSet<usize>,
    /// Formal positions of arrays written.
    pub written_array_formals: BTreeSet<usize>,
    /// COMMON arrays read / written, by `(block, member offset)` root.
    pub read_common_arrays: BTreeSet<String>,
    pub written_common_arrays: BTreeSet<String>,
    /// The unit performs READ statements (input-deck variables).
    pub does_input: bool,
}

/// Summaries for all units.
#[derive(Clone, Debug, Default)]
pub struct Summaries {
    pub effects: HashMap<String, UnitEffects>,
}

impl Summaries {
    /// Builds summaries bottom-up. Unknown callees (true externals) are
    /// opaque. Work is billed to `ops` (one op per statement visited);
    /// when the counter's budget trips, remaining units are summarized
    /// as opaque — a sound degradation the pipeline watchdog turns into
    /// a `Complexity` classification for the loops that needed them.
    pub fn build(
        rp: &ResolvedProgram,
        cg: &CallGraph,
        sym: &mut SymMap,
        caps: Capabilities,
        ops: &OpCounter,
    ) -> Summaries {
        let mut out = Summaries::default();
        for uname in cg.bottom_up() {
            let eff = if ops.exceeded() {
                UnitEffects {
                    opaque: true,
                    ..Default::default()
                }
            } else {
                summarize_unit(rp, cg, sym, caps, &uname, &out, ops)
            };
            out.effects.insert(uname, eff);
        }
        out
    }

    /// Effects of `unit`; opaque default for unknown units.
    pub fn of(&self, unit: &str) -> UnitEffects {
        self.effects.get(unit).cloned().unwrap_or(UnitEffects {
            opaque: true,
            ..Default::default()
        })
    }
}

fn summarize_unit(
    rp: &ResolvedProgram,
    cg: &CallGraph,
    sym: &mut SymMap,
    caps: Capabilities,
    uname: &str,
    done: &Summaries,
    ops: &OpCounter,
) -> UnitEffects {
    let Some(unit) = rp.unit(uname) else {
        return UnitEffects {
            opaque: true,
            ..Default::default()
        };
    };
    let mut eff = UnitEffects::default();
    if unit.lang == Lang::C && !caps.multilingual {
        eff.opaque = true;
        return eff;
    }
    if cg.is_recursive(uname) {
        // Recursion is rare in F77; treat conservatively.
        eff.opaque = true;
        return eff;
    }
    let table = &rp.tables[uname];
    let common_root = |name: &str| -> Option<String> {
        match &table.get(name)?.storage {
            Storage::Common { block, offset } => Some(format!("/{}/+{}", block, offset)),
            _ => None,
        }
    };

    let record_write = |eff: &mut UnitEffects, sym: &mut SymMap, name: &str| {
        let Some(s) = table.get(name) else { return };
        match (&s.kind, &s.storage) {
            (SymbolKind::Scalar, Storage::Common { .. }) => {
                eff.modified_commons.insert(sym.var(rp, uname, name));
            }
            (SymbolKind::Scalar, Storage::Formal { position }) => {
                eff.modified_formals.insert(*position);
            }
            (SymbolKind::Array(_), Storage::Formal { position }) => {
                eff.modified_formals.insert(*position);
                eff.written_array_formals.insert(*position);
            }
            (SymbolKind::Array(_), Storage::Common { .. }) => {
                if let Some(r) = common_root(name) {
                    eff.written_common_arrays.insert(r);
                }
            }
            _ => {}
        }
    };
    let record_read = |eff: &mut UnitEffects, name: &str| {
        let Some(s) = table.get(name) else { return };
        match (&s.kind, &s.storage) {
            (SymbolKind::Array(_), Storage::Formal { position }) => {
                eff.read_array_formals.insert(*position);
            }
            (SymbolKind::Array(_), Storage::Common { .. }) => {
                if let Some(r) = common_root(name) {
                    eff.read_common_arrays.insert(r);
                }
            }
            _ => {}
        }
    };

    // Intra-unit effects.
    unit.body.walk_stmts(&mut |s| {
        let _ = ops.charge(1);
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                if let Some(n) = lhs.lvalue_name() {
                    record_write(&mut eff, sym, n);
                }
                rhs.walk(&mut |e| {
                    if let Expr::Index { name, .. } | Expr::Name(name) = e {
                        record_read(&mut eff, name);
                    }
                });
            }
            StmtKind::Read { items } => {
                eff.does_input = true;
                for it in items {
                    if let Some(n) = it.lvalue_name() {
                        record_write(&mut eff, sym, n);
                    }
                }
            }
            StmtKind::Write { items } => {
                for it in items {
                    it.walk(&mut |e| {
                        if let Expr::Index { name, .. } | Expr::Name(name) = e {
                            record_read(&mut eff, name);
                        }
                    });
                }
            }
            StmtKind::Do { var, .. } => {
                record_write(&mut eff, sym, var);
            }
            _ => {}
        }
    });

    // Propagate callee effects through call sites.
    unit.body.walk_stmts(&mut |s| {
        let _ = ops.charge(1);
        if let StmtKind::Call { name, args } = &s.kind {
            let callee = done.of(name);
            if callee.opaque {
                eff.opaque = true;
                return;
            }
            eff.does_input |= callee.does_input;
            eff.modified_commons
                .extend(callee.modified_commons.iter().copied());
            eff.read_common_arrays
                .extend(callee.read_common_arrays.iter().cloned());
            eff.written_common_arrays
                .extend(callee.written_common_arrays.iter().cloned());
            // Translate formal effects to this unit's names.
            for (pos, arg) in args.iter().enumerate() {
                let touched_w = callee.modified_formals.contains(&pos);
                let touched_r = callee.read_array_formals.contains(&pos)
                    || callee.written_array_formals.contains(&pos);
                if !(touched_w || touched_r) {
                    continue;
                }
                if let Expr::Name(an) | Expr::Index { name: an, .. } = arg {
                    if touched_w {
                        record_write(&mut eff, sym, an);
                    }
                    if touched_r {
                        record_read(&mut eff, an);
                    }
                }
            }
        }
    });

    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn build(src: &str, caps: Capabilities) -> (ResolvedProgram, Summaries, SymMap) {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let s = Summaries::build(&rp, &cg, &mut sym, caps, &OpCounter::unlimited());
        (rp, s, sym)
    }

    #[test]
    fn tripped_budget_degrades_to_opaque_not_panic() {
        let rp = frontend(
            "PROGRAM P\nCOMMON /C/ K\nK = 1\nCALL S\nEND\nSUBROUTINE S\nCOMMON /C/ M\nM = 2\nEND\n",
        )
        .expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let ops = OpCounter::with_budget(1);
        let s = Summaries::build(&rp, &cg, &mut sym, caps_all(), &ops);
        assert!(ops.exceeded());
        // Units summarized after the trip degrade to opaque — sound,
        // deterministic, and never a panic.
        assert!(s.effects.values().any(|e| e.opaque));
    }

    fn caps_all() -> Capabilities {
        Capabilities::full()
    }

    #[test]
    fn direct_effects() {
        let (rp, s, mut sym) = build(
            "SUBROUTINE F(A, N)\nREAL A(*)\nCOMMON /C/ K, G(10)\nA(1) = G(2)\nK = N + 1\nEND\nPROGRAM P\nEND\n",
            Capabilities::polaris2008(),
        );
        let e = s.of("F");
        assert!(!e.opaque);
        assert!(e.written_array_formals.contains(&0));
        assert!(e.modified_formals.contains(&0));
        assert!(!e.modified_formals.contains(&1));
        assert!(e.modified_commons.contains(&sym.var(&rp, "F", "K")));
        assert_eq!(e.read_common_arrays.len(), 1);
    }

    #[test]
    fn effects_propagate_through_calls() {
        let (rp, s, mut sym) = build(
            "PROGRAM P\nREAL X(5)\nCALL OUTER(X)\nEND\n\
             SUBROUTINE OUTER(B)\nREAL B(*)\nCALL INNER(B)\nEND\n\
             SUBROUTINE INNER(A)\nREAL A(*)\nCOMMON /C/ K\nA(3) = 1.0\nK = 2\nEND\n",
            Capabilities::polaris2008(),
        );
        let outer = s.of("OUTER");
        assert!(outer.written_array_formals.contains(&0));
        assert!(outer.modified_commons.contains(&sym.var(&rp, "INNER", "K")));
        let p = s.of("P");
        assert!(!p.opaque);
    }

    #[test]
    fn c_units_are_opaque_in_baseline() {
        let src =
            "PROGRAM P\nCALL CPROC\nEND\n!LANG C\nSUBROUTINE CPROC\nCOMMON /C/ K\nK = 1\nEND\n";
        let (_, s, _) = build(src, Capabilities::polaris2008());
        assert!(s.of("CPROC").opaque);
        assert!(s.of("P").opaque, "opacity propagates to callers");
        let (_, s2, _) = build(src, Capabilities::full());
        assert!(!s2.of("CPROC").opaque, "multilingual analysis sees inside");
        assert!(!s2.of("P").opaque);
    }

    #[test]
    fn unknown_externals_are_opaque() {
        let (_, s, _) = build("PROGRAM P\nCALL MYSTERY(X)\nEND\n", Capabilities::full());
        assert!(s.of("P").opaque);
    }

    #[test]
    fn read_statement_marks_input() {
        let (_, s, _) = build(
            "PROGRAM P\nCALL RD\nEND\nSUBROUTINE RD\nCOMMON /C/ N\nREAD(*,*) N\nEND\n",
            Capabilities::polaris2008(),
        );
        assert!(s.of("RD").does_input);
        assert!(s.of("P").does_input);
    }
}

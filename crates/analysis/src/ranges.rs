//! Forward scalar value and range analysis.
//!
//! Walks each unit once, tracking for every integer scalar an exact
//! symbolic value (when known) and a symbolic [`Range`]. The state
//! snapshot taken at each `DO` header — including the ranges of all
//! enclosing loop variables — is what the data-dependence Range Test
//! consumes.
//!
//! The analysis is where the paper's `rangeless` hindrance materializes:
//! a variable set by `READ` (an input-deck parameter) or clobbered by an
//! opaque call has no range, and subscript comparisons involving it are
//! futile (§3). The [`crate::Capabilities::input_deck_ranges`] ablation
//! models a compiler that exploits validated deck bounds instead.

use std::collections::{HashMap, HashSet};

use apar_minifort::ast::{BinOp, Block, Expr as Ast, StmtKind, UnOp};
use apar_minifort::{ResolvedProgram, StmtId, Ty};
use apar_symbolic::{AssumeEnv, Expr, OpCounter, Range, VarId};

use crate::summary::Summaries;
use crate::symx::{ExprFeatures, SymMap};
use crate::Capabilities;

/// Upper bound assumed for validated input-deck integers when the
/// corresponding capability is on.
pub const DECK_MAX: i64 = 1 << 20;

/// Known facts about integer scalars at a program point.
#[derive(Clone, Debug, Default)]
pub struct ScalarState {
    /// Exact symbolic values (in terms of variables with no known value).
    pub values: HashMap<VarId, Expr>,
    /// Value ranges.
    pub env: AssumeEnv,
}

impl ScalarState {
    /// Forgets everything about `v`, including facts whose bounds
    /// mention `v`.
    pub fn kill(&mut self, v: VarId) {
        self.values.remove(&v);
        self.values.retain(|_, e| !e.vars().contains(&v));
        let stale: Vec<VarId> = self
            .env
            .iter()
            .filter(|(_, r)| {
                r.lo.as_ref().is_some_and(|e| e.vars().contains(&v))
                    || r.hi.as_ref().is_some_and(|e| e.vars().contains(&v))
            })
            .map(|(k, _)| *k)
            .collect();
        for s in stale {
            self.env.kill(s);
        }
        self.env.kill(v);
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.values.clear();
        self.env = AssumeEnv::new();
    }

    /// Substitutes known exact values into an expression.
    pub fn substitute(&self, e: &Expr) -> Expr {
        e.subst_map(&mut |v| self.values.get(&v).cloned())
    }

    /// Join at a control-flow merge: keep values equal on both sides and
    /// union the ranges.
    pub fn join(&self, other: &ScalarState) -> ScalarState {
        let mut values = HashMap::new();
        for (v, e) in &self.values {
            if other.values.get(v) == Some(e) {
                values.insert(*v, e.clone());
            }
        }
        let mut env = AssumeEnv::new();
        for (v, r) in self.env.iter() {
            let ro = other.env.range_of(*v);
            if ro.is_rangeless() {
                continue;
            }
            env.set(*v, r.union(&ro));
        }
        ScalarState { values, env }
    }
}

/// Result of analyzing one unit.
#[derive(Clone, Debug, Default)]
pub struct UnitRanges {
    /// State at the top of each loop body: enclosing loop variables (and
    /// this loop's variable) carry their iteration ranges.
    pub at_loop: HashMap<StmtId, ScalarState>,
    /// State just before each CALL statement (before its kills) — the
    /// input to interprocedural constant propagation.
    pub at_call: HashMap<StmtId, ScalarState>,
    /// Variables that were explicitly made rangeless by input statements.
    pub deck_vars: HashSet<VarId>,
}

/// Analyzes a unit starting from `seed` facts (e.g. interprocedural
/// constants). Work is billed to `ops` (one op per statement, plus the
/// body-kill scans); when the budget trips the walk stops — loops not
/// yet reached get no `at_loop` state, i.e. they become rangeless,
/// which the pipeline watchdog reports as `Complexity`.
pub fn analyze_unit(
    rp: &ResolvedProgram,
    unit_name: &str,
    sym: &mut SymMap,
    caps: Capabilities,
    summaries: &Summaries,
    seed: &ScalarState,
    ops: &OpCounter,
) -> UnitRanges {
    let Some(unit) = rp.unit(unit_name) else {
        return UnitRanges::default();
    };
    if unit.lang == apar_minifort::Lang::C && !caps.multilingual {
        // The baseline compiler cannot see inside foreign units (§2.4).
        return UnitRanges::default();
    }
    let mut out = UnitRanges::default();
    let has_goto = unit_has_goto(unit);
    let mut w = Walker {
        rp,
        unit: unit_name,
        sym,
        caps,
        summaries,
        out: &mut out,
        has_goto,
        ops,
    };
    let mut state = seed.clone();
    w.block(&unit.body, &mut state);
    out
}

/// True when a block's last statement unconditionally leaves it.
fn block_exits(b: &Block) -> bool {
    matches!(
        b.stmts.last().map(|s| &s.kind),
        Some(StmtKind::Stop | StmtKind::Return | StmtKind::Goto(_))
    )
}

fn unit_has_goto(unit: &apar_minifort::Unit) -> bool {
    let mut found = false;
    unit.body.walk_stmts(&mut |s| {
        if matches!(s.kind, StmtKind::Goto(_)) {
            found = true;
        }
    });
    found
}

struct Walker<'a> {
    rp: &'a ResolvedProgram,
    unit: &'a str,
    sym: &'a mut SymMap,
    caps: Capabilities,
    summaries: &'a Summaries,
    out: &'a mut UnitRanges,
    has_goto: bool,
    ops: &'a OpCounter,
}

impl Walker<'_> {
    fn is_int_scalar(&self, name: &str) -> bool {
        let t = &self.rp.tables[self.unit];
        t.type_of(name) == Ty::Integer && !t.is_array(name)
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_sym(&mut self, e: &Ast) -> Expr {
        let mut f = ExprFeatures::default();
        self.sym.expr(self.rp, self.unit, e, &mut f)
    }

    fn block(&mut self, b: &Block, state: &mut ScalarState) {
        for s in &b.stmts {
            // Watchdog: a tripped budget ends the walk; unreached loops
            // simply stay rangeless.
            if self.ops.charge(1).is_err() {
                return;
            }
            if self.has_goto && s.label.is_some() {
                // A label may be reached by arbitrary GOTOs: drop facts.
                state.clear();
            }
            self.stmt(s, state);
        }
    }

    fn stmt(&mut self, s: &apar_minifort::ast::Stmt, state: &mut ScalarState) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                match lhs {
                    Ast::Name(n) if self.is_int_scalar(n) => {
                        let v = self.sym.var(self.rp, self.unit, n);
                        let e = self.to_sym(rhs);
                        let e = state.substitute(&e);
                        state.kill(v);
                        if !e.has_unknown() && !e.vars().contains(&v) {
                            state.values.insert(v, e.clone());
                            state.env.set(v, Range::exact(e));
                        }
                    }
                    Ast::Name(n) => {
                        // Non-integer or array-element write: kill if it
                        // shadows a tracked scalar (aliasing through
                        // EQUIVALENCE is handled coarsely: exact tracking
                        // only for unaliased names).
                        let v = self.sym.var(self.rp, self.unit, n);
                        state.kill(v);
                    }
                    _ => {}
                }
            }
            StmtKind::Read { items } => {
                for it in items {
                    if let Some(n) = it.lvalue_name() {
                        let v = self.sym.var(self.rp, self.unit, n);
                        state.kill(v);
                        self.out.deck_vars.insert(v);
                        if self.caps.input_deck_ranges && self.is_int_scalar(n) {
                            // Model a validated deck: positive, bounded.
                            state
                                .env
                                .set(v, Range::between(Expr::int(1), Expr::int(DECK_MAX)));
                        }
                    }
                }
            }
            StmtKind::Call { name, args } => {
                self.out.at_call.insert(s.id, state.clone());
                let eff = self.summaries.of(name);
                if eff.opaque {
                    state.clear();
                    return;
                }
                for v in &eff.modified_commons {
                    state.kill(*v);
                }
                if eff.does_input {
                    // Deck variables written inside the callee.
                    for v in &eff.modified_commons {
                        self.out.deck_vars.insert(*v);
                        if self.caps.input_deck_ranges {
                            state
                                .env
                                .set(*v, Range::between(Expr::int(1), Expr::int(DECK_MAX)));
                        }
                    }
                }
                for (pos, a) in args.iter().enumerate() {
                    if eff.modified_formals.contains(&pos) {
                        if let Ast::Name(n) = a {
                            let v = self.sym.var(self.rp, self.unit, n);
                            state.kill(v);
                        }
                    }
                }
            }
            StmtKind::If { arms, else_blk } => {
                let entry = state.clone();
                let mut joined: Option<ScalarState> = None;
                let join_in = |st: ScalarState, joined: &mut Option<ScalarState>| {
                    *joined = Some(match joined.take() {
                        None => st,
                        Some(j) => j.join(&st),
                    });
                };
                for (cond, body) in arms {
                    let mut st = entry.clone();
                    self.refine_with_cond(cond, &mut st);
                    self.block(body, &mut st);
                    // Arms ending in STOP/RETURN/GOTO never reach the
                    // join point.
                    if !block_exits(body) {
                        join_in(st, &mut joined);
                    }
                }
                match else_blk {
                    Some(b) => {
                        let mut st = entry.clone();
                        self.block(b, &mut st);
                        if !block_exits(b) {
                            join_in(st, &mut joined);
                        }
                    }
                    None => {
                        // Fall-through when no arm fires. Input-deck
                        // validation code like `IF (M .LT. N) STOP` is
                        // exploited only under the deck-ranges
                        // capability: the negated guard holds here.
                        let mut st = entry;
                        if self.caps.input_deck_ranges {
                            for (cond, body) in arms {
                                if block_exits(body) {
                                    self.refine_with_negation(cond, &mut st);
                                }
                            }
                        }
                        join_in(st, &mut joined);
                    }
                }
                *state = joined.unwrap_or_default();
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let v = self.sym.var(self.rp, self.unit, var);
                let lo_e = state.substitute(&self.to_sym(lo));
                let hi_e = state.substitute(&self.to_sym(hi));
                let step_c = match step {
                    None => Some(1),
                    Some(e) => self.to_sym(e).as_int(),
                };
                // Kill everything the body may modify, then give the loop
                // variable its range.
                let mut body_state = state.clone();
                for k in self.body_kill_set(body) {
                    body_state.kill(k);
                }
                body_state.kill(v);
                if !lo_e.has_unknown() && !hi_e.has_unknown() {
                    match step_c {
                        Some(st) if st > 0 => {
                            body_state.env.set(v, Range::between(lo_e, hi_e));
                        }
                        Some(st) if st < 0 => {
                            body_state.env.set(v, Range::between(hi_e, lo_e));
                        }
                        _ => {}
                    }
                }
                self.out.at_loop.insert(s.id, body_state.clone());
                self.block(body, &mut body_state);
                // After the loop: entry facts minus body kills, loop var
                // unknown.
                let mut after = state.clone();
                for k in self.body_kill_set(body) {
                    after.kill(k);
                }
                after.kill(v);
                *state = after;
            }
            StmtKind::DoWhile { body, .. } => {
                let mut body_state = state.clone();
                for k in self.body_kill_set(body) {
                    body_state.kill(k);
                }
                self.out.at_loop.insert(s.id, body_state.clone());
                self.block(body, &mut body_state);
                let mut after = state.clone();
                for k in self.body_kill_set(body) {
                    after.kill(k);
                }
                *state = after;
            }
            _ => {}
        }
    }

    /// Variables (by symbolic id) the body may modify. An opaque call
    /// yields a sentinel handled by returning every tracked id.
    fn body_kill_set(&mut self, body: &Block) -> Vec<VarId> {
        let mut kills: Vec<VarId> = Vec::new();
        let mut opaque = false;
        let mut names: Vec<String> = Vec::new();
        let mut calls: Vec<(String, Vec<Ast>)> = Vec::new();
        body.walk_stmts(&mut |s| match &s.kind {
            StmtKind::Assign { lhs, .. } => {
                if let Some(n) = lhs.lvalue_name() {
                    names.push(n.to_string());
                }
            }
            StmtKind::Read { items } => {
                for it in items {
                    if let Some(n) = it.lvalue_name() {
                        names.push(n.to_string());
                    }
                }
            }
            StmtKind::Do { var, .. } => names.push(var.clone()),
            StmtKind::Call { name, args } => calls.push((name.clone(), args.clone())),
            _ => {}
        });
        for n in names {
            kills.push(self.sym.var(self.rp, self.unit, &n));
        }
        for (callee, args) in calls {
            let eff = self.summaries.of(&callee);
            if eff.opaque {
                opaque = true;
                break;
            }
            kills.extend(eff.modified_commons.iter().copied());
            for (pos, a) in args.iter().enumerate() {
                if eff.modified_formals.contains(&pos) {
                    if let Ast::Name(n) = a {
                        kills.push(self.sym.var(self.rp, self.unit, n));
                    }
                }
            }
        }
        if opaque {
            // Return every id currently known to the interner: total kill.
            kills = (0..self.sym.interner.len() as u32)
                .map(apar_symbolic::VarId)
                .collect();
        }
        kills.sort();
        kills.dedup();
        kills
    }

    /// Refines ranges from a positive IF guard (conjunctions recurse).
    fn refine_with_cond(&mut self, cond: &Ast, state: &mut ScalarState) {
        match cond {
            Ast::Bin(BinOp::And, l, r) => {
                self.refine_with_cond(l, state);
                self.refine_with_cond(r, state);
            }
            Ast::Bin(op, l, r) if op.is_relational() => {
                let le = state.substitute(&self.to_sym(l));
                let re = state.substitute(&self.to_sym(r));
                // VAR rel expr
                if let Ast::Name(n) = &**l {
                    if self.is_int_scalar(n) && !re.has_unknown() {
                        let v = self.sym.var(self.rp, self.unit, n);
                        self.apply_rel(state, v, *op, &re);
                    }
                }
                // expr rel VAR (mirror the operator)
                if let Ast::Name(n) = &**r {
                    if self.is_int_scalar(n) && !le.has_unknown() {
                        let v = self.sym.var(self.rp, self.unit, n);
                        let mirrored = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        self.apply_rel(state, v, mirrored, &le);
                    }
                }
            }
            Ast::Un(UnOp::Not, inner) => {
                // .NOT. (a .LT. b) refines like (a .GE. b).
                if let Ast::Bin(op, l, r) = &**inner {
                    let negated = match op {
                        BinOp::Lt => Some(BinOp::Ge),
                        BinOp::Le => Some(BinOp::Gt),
                        BinOp::Gt => Some(BinOp::Le),
                        BinOp::Ge => Some(BinOp::Lt),
                        BinOp::Eq => Some(BinOp::Ne),
                        BinOp::Ne => Some(BinOp::Eq),
                        _ => None,
                    };
                    if let Some(nop) = negated {
                        self.refine_with_cond(&Ast::Bin(nop, l.clone(), r.clone()), state);
                    }
                }
            }
            _ => {}
        }
    }

    /// Refines with the *negation* of a guard — used after an IF arm
    /// that unconditionally exits (input-deck validation patterns).
    fn refine_with_negation(&mut self, cond: &Ast, state: &mut ScalarState) {
        match cond {
            // .NOT.(a .OR. b) refines both negations.
            Ast::Bin(BinOp::Or, l, r) => {
                self.refine_with_negation(l, state);
                self.refine_with_negation(r, state);
            }
            Ast::Bin(op, l, r) if op.is_relational() => {
                let negated = match op {
                    BinOp::Lt => BinOp::Ge,
                    BinOp::Le => BinOp::Gt,
                    BinOp::Gt => BinOp::Le,
                    BinOp::Ge => BinOp::Lt,
                    BinOp::Eq => BinOp::Ne,
                    BinOp::Ne => BinOp::Eq,
                    _ => return,
                };
                self.refine_with_cond(&Ast::Bin(negated, l.clone(), r.clone()), state);
            }
            Ast::Un(UnOp::Not, inner) => self.refine_with_cond(inner, state),
            _ => {}
        }
    }

    fn apply_rel(&mut self, state: &mut ScalarState, v: VarId, op: BinOp, bound: &Expr) {
        // Guard bounds must not mention v itself.
        if bound.vars().contains(&v) {
            return;
        }
        match op {
            BinOp::Lt => state.env.assume(v, Range::at_most(bound.sub(Expr::int(1)))),
            BinOp::Le => state.env.assume(v, Range::at_most(bound.clone())),
            BinOp::Gt => state
                .env
                .assume(v, Range::at_least(bound.add(Expr::int(1)))),
            BinOp::Ge => state.env.assume(v, Range::at_least(bound.clone())),
            BinOp::Eq => state.env.assume(v, Range::exact(bound.clone())),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use apar_minifort::frontend;
    use apar_symbolic::{OpCounter, Prover};

    struct T {
        rp: ResolvedProgram,
        sym: SymMap,
        ur: UnitRanges,
        unit: &'static str,
    }

    fn run(src: &str, unit: &'static str, caps: Capabilities) -> T {
        let rp = frontend(src).expect("frontend");
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let ops = OpCounter::unlimited();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &ops);
        let ur = analyze_unit(
            &rp,
            unit,
            &mut sym,
            caps,
            &summaries,
            &ScalarState::default(),
            &ops,
        );
        T { rp, sym, ur, unit }
    }

    fn loop_state(t: &T, n: usize) -> &ScalarState {
        // The n-th DO loop (in pre-order) of the unit.
        let unit = t.rp.unit(t.unit).unwrap();
        let mut ids = Vec::new();
        unit.body.walk_stmts(&mut |s| {
            if matches!(s.kind, StmtKind::Do { .. }) {
                ids.push(s.id);
            }
        });
        &t.ur.at_loop[&ids[n]]
    }

    #[test]
    fn loop_variable_gets_its_range() {
        let mut t = run(
            "PROGRAM P\nN = 100\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let i = t.sym.var(&t.rp, "P", "I");
        let ops = OpCounter::unlimited();
        let p = Prover::new(&st.env, &ops);
        assert!(p.prove_ge(&Expr::var(i), &Expr::int(1)));
        assert!(p.prove_le(&Expr::var(i), &Expr::int(100)));
    }

    #[test]
    fn constants_propagate_and_substitute() {
        let mut t = run(
            "PROGRAM P\nLDIM = 64\nLDA = LDIM\nDO I = 1, LDA\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let lda = t.sym.var(&t.rp, "P", "LDA");
        assert_eq!(st.values.get(&lda), Some(&Expr::int(64)));
        let i = t.sym.var(&t.rp, "P", "I");
        assert_eq!(st.env.range_of(i).hi, Some(Expr::int(64)));
    }

    #[test]
    fn read_makes_rangeless_in_baseline() {
        let mut t = run(
            "PROGRAM P\nREAD(*,*) N\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        assert!(st.env.is_rangeless(n));
        assert!(t.ur.deck_vars.contains(&n));
        // With the capability, the deck variable gets bounds.
        let mut t2 = run(
            "PROGRAM P\nREAD(*,*) N\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::full(),
        );
        let st2 = loop_state(&t2, 0).clone();
        let n2 = t2.sym.var(&t2.rp, "P", "N");
        assert!(!st2.env.is_rangeless(n2));
    }

    #[test]
    fn assignment_kills_dependent_facts() {
        let mut t = run(
            "PROGRAM P\nN = 10\nM = N + 1\nN = 20\nDO I = 1, M\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let m = t.sym.var(&t.rp, "P", "M");
        // M was computed from the OLD N; facts must not claim M == N + 1
        // after N changed. M's exact value (11) survives because the
        // substitution happened eagerly.
        assert_eq!(st.values.get(&m), Some(&Expr::int(11)));
    }

    #[test]
    fn if_guard_refines_then_branch() {
        let mut t = run(
            "PROGRAM P\nREAD(*,*) N\nIF (N .GE. 1) THEN\nDO I = 1, N\nX = 1.0\nENDDO\nENDIF\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        assert_eq!(st.env.range_of(n).lo, Some(Expr::int(1)));
        assert!(st.env.range_of(n).hi.is_none());
    }

    #[test]
    fn join_after_if_unions_ranges() {
        let mut t = run(
            "PROGRAM P\nIF (L .GT. 0.0) THEN\nN = 10\nELSE\nN = 20\nENDIF\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        let r = st.env.range_of(n);
        assert_eq!(r.lo, Some(Expr::int(10)));
        assert_eq!(r.hi, Some(Expr::int(20)));
        // Exact value is NOT known.
        assert!(!st.values.contains_key(&n));
    }

    #[test]
    fn loop_body_kills_are_applied_before_analysis() {
        // N is modified inside the loop: its old value must not be used
        // for the loop bound fact of an inner loop.
        let mut t = run(
            "PROGRAM P\nN = 10\nDO I = 1, 5\nDO J = 1, N\nX = 1.0\nENDDO\nN = N + 1\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 1).clone();
        let j = t.sym.var(&t.rp, "P", "J");
        let n = t.sym.var(&t.rp, "P", "N");
        assert!(st.env.is_rangeless(n), "N modified in outer loop body");
        // J's range references N symbolically (not the stale constant).
        assert_eq!(st.env.range_of(j).hi, Some(Expr::var(n)));
    }

    #[test]
    fn opaque_call_clears_everything() {
        let mut t = run(
            "PROGRAM P\nN = 10\nCALL CMYSTERY\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n!LANG C\nSUBROUTINE CMYSTERY\nCOMMON /Q/ Z\nZ = 1.0\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        assert!(st.env.is_rangeless(n));
    }

    #[test]
    fn fortran_call_kills_only_its_effects() {
        let mut t = run(
            "PROGRAM P\nCOMMON /C/ K\nN = 10\nK = 5\nCALL BUMP\nDO I = 1, N\nX = 1.0\nENDDO\nEND\nSUBROUTINE BUMP\nCOMMON /C/ K\nK = K + 1\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        let k = t.sym.var(&t.rp, "P", "K");
        assert_eq!(st.values.get(&n), Some(&Expr::int(10)));
        assert!(st.env.is_rangeless(k), "K modified by BUMP");
    }

    #[test]
    fn labels_in_goto_units_clear_facts() {
        let mut t = run(
            "PROGRAM P\nN = 10\nGOTO 20\n20 CONTINUE\nDO I = 1, N\nX = 1.0\nENDDO\nEND\n",
            "P",
            Capabilities::polaris2008(),
        );
        let st = loop_state(&t, 0).clone();
        let n = t.sym.var(&t.rp, "P", "N");
        assert!(st.env.is_rangeless(n));
    }
}

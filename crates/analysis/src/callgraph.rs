//! The program call graph.
//!
//! Nodes are program units; edges record every call site together with
//! the loop depth it occurs at (needed for the Figure 4 nesting metrics,
//! which count subroutines and loops *along the deepest call-graph
//! path*). Function references (`Expr::CallF`) count as calls when they
//! name a defined unit.

use std::collections::{HashMap, HashSet};

use apar_minifort::ast::{Expr, Stmt, StmtKind, Unit};
use apar_minifort::resolve::is_intrinsic;
use apar_minifort::{ResolvedProgram, StmtId};

/// One call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    pub caller: String,
    pub callee: String,
    pub stmt: StmtId,
    /// Number of loops enclosing the call site within the caller.
    pub loop_depth: usize,
}

/// The call graph of a resolved program.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    pub sites: Vec<CallSite>,
    callees: HashMap<String, Vec<usize>>, // unit -> site indices
    callers: HashMap<String, Vec<usize>>,
    units: Vec<String>,
}

impl CallGraph {
    /// Builds the call graph. Calls to undefined names (true externals)
    /// are kept as edges to leaf nodes.
    pub fn build(rp: &ResolvedProgram) -> Self {
        let defined: HashSet<&str> = rp.program.units.iter().map(|u| u.name.as_str()).collect();
        let mut cg = CallGraph {
            units: rp.program.units.iter().map(|u| u.name.clone()).collect(),
            ..Default::default()
        };
        for unit in &rp.program.units {
            collect_unit(unit, &defined, &mut cg);
        }
        for (i, s) in cg.sites.iter().enumerate() {
            cg.callees.entry(s.caller.clone()).or_default().push(i);
            cg.callers.entry(s.callee.clone()).or_default().push(i);
        }
        cg
    }

    /// All units in program order.
    pub fn units(&self) -> &[String] {
        &self.units
    }

    /// Call sites within `unit`.
    pub fn calls_from<'a>(&'a self, unit: &str) -> impl Iterator<Item = &'a CallSite> {
        self.callees
            .get(unit)
            .into_iter()
            .flatten()
            .map(|&i| &self.sites[i])
    }

    /// Call sites targeting `unit`.
    pub fn calls_to<'a>(&'a self, unit: &str) -> impl Iterator<Item = &'a CallSite> {
        self.callers
            .get(unit)
            .into_iter()
            .flatten()
            .map(|&i| &self.sites[i])
    }

    /// Units reachable from `root` (inclusive).
    pub fn reachable(&self, root: &str) -> HashSet<String> {
        let mut seen = HashSet::new();
        let mut stack = vec![root.to_string()];
        while let Some(u) = stack.pop() {
            if !seen.insert(u.clone()) {
                continue;
            }
            for s in self.calls_from(&u) {
                stack.push(s.callee.clone());
            }
        }
        seen
    }

    /// Longest call-chain length from `root` to each unit (root = 0).
    /// Paths through cycles are cut at first revisit.
    pub fn call_depths(&self, root: &str) -> HashMap<String, usize> {
        let mut best: HashMap<String, usize> = HashMap::new();
        let mut path: Vec<String> = Vec::new();
        self.dfs_depth(root, 0, &mut path, &mut best);
        best
    }

    fn dfs_depth(
        &self,
        u: &str,
        d: usize,
        path: &mut Vec<String>,
        best: &mut HashMap<String, usize>,
    ) {
        if path.iter().any(|p| p == u) || d > 64 {
            return;
        }
        let e = best.entry(u.to_string()).or_insert(d);
        if d > *e {
            *e = d;
        }
        path.push(u.to_string());
        for s in self.calls_from(u) {
            self.dfs_depth(&s.callee, d + 1, path, best);
        }
        path.pop();
    }

    /// Longest accumulated loop depth along any call path from `root`
    /// to each unit's entry (loops enclosing each call site en route).
    pub fn loop_depths_from(&self, root: &str) -> HashMap<String, usize> {
        let mut best: HashMap<String, usize> = HashMap::new();
        let mut path: Vec<String> = Vec::new();
        self.dfs_loops(root, 0, &mut path, &mut best);
        best
    }

    fn dfs_loops(
        &self,
        u: &str,
        acc: usize,
        path: &mut Vec<String>,
        best: &mut HashMap<String, usize>,
    ) {
        if path.iter().any(|p| p == u) || path.len() > 64 {
            return;
        }
        let e = best.entry(u.to_string()).or_insert(acc);
        if acc > *e {
            *e = acc;
        }
        path.push(u.to_string());
        for s in self.calls_from(u) {
            self.dfs_loops(&s.callee, acc + s.loop_depth, path, best);
        }
        path.pop();
    }

    /// Bottom-up order (callees before callers); units in cycles appear
    /// in arbitrary relative order.
    pub fn bottom_up(&self) -> Vec<String> {
        let mut order = Vec::new();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1 = visiting, 2 = done
        for u in &self.units {
            self.post(u, &mut state, &mut order);
        }
        order
    }

    fn post<'a>(&'a self, u: &'a str, state: &mut HashMap<&'a str, u8>, order: &mut Vec<String>) {
        if state.get(u).is_some() { return }
        state.insert(u, 1);
        // Collect callees (owned indices to avoid borrow issues).
        let site_idx: Vec<usize> = self.callees.get(u).cloned().unwrap_or_default();
        for i in site_idx {
            let callee = self.sites[i].callee.as_str();
            if state.get(callee).copied() != Some(1) {
                self.post(callee, state, order);
            }
        }
        state.insert(u, 2);
        if self.units.iter().any(|x| x == u) {
            order.push(u.to_string());
        }
    }

    /// True if `unit` participates in a call cycle.
    pub fn is_recursive(&self, unit: &str) -> bool {
        let mut stack: Vec<String> = self.calls_from(unit).map(|s| s.callee.clone()).collect();
        let mut seen = HashSet::new();
        while let Some(u) = stack.pop() {
            if u == unit {
                return true;
            }
            if seen.insert(u.clone()) {
                for s in self.calls_from(&u) {
                    stack.push(s.callee.clone());
                }
            }
        }
        false
    }
}

fn collect_unit(unit: &Unit, defined: &HashSet<&str>, cg: &mut CallGraph) {
    fn walk(
        stmts: &[Stmt],
        depth: usize,
        unit: &str,
        defined: &HashSet<&str>,
        cg: &mut CallGraph,
    ) {
        for s in stmts {
            let record = |name: &str, cg: &mut CallGraph| {
                if !is_intrinsic(name) {
                    cg.sites.push(CallSite {
                        caller: unit.to_string(),
                        callee: name.to_string(),
                        stmt: s.id,
                        loop_depth: depth,
                    });
                }
            };
            // Function calls inside expressions.
            let mut exprs: Vec<&Expr> = Vec::new();
            match &s.kind {
                StmtKind::Assign { lhs, rhs } => {
                    exprs.push(lhs);
                    exprs.push(rhs);
                }
                StmtKind::If { arms, .. } => exprs.extend(arms.iter().map(|(c, _)| c)),
                StmtKind::Do { lo, hi, step, .. } => {
                    exprs.push(lo);
                    exprs.push(hi);
                    if let Some(st) = step {
                        exprs.push(st);
                    }
                }
                StmtKind::DoWhile { cond, .. } => exprs.push(cond),
                StmtKind::Call { name, args } => {
                    record(name, cg);
                    exprs.extend(args.iter());
                }
                StmtKind::Read { items } | StmtKind::Write { items } => {
                    exprs.extend(items.iter());
                }
                _ => {}
            }
            for e in exprs {
                e.walk(&mut |x| {
                    if let Expr::CallF { name, .. } = x {
                        if defined.contains(name.as_str()) {
                            record(name, cg);
                        }
                    }
                });
            }
            match &s.kind {
                StmtKind::If { arms, else_blk } => {
                    for (_, b) in arms {
                        walk(&b.stmts, depth, unit, defined, cg);
                    }
                    if let Some(b) = else_blk {
                        walk(&b.stmts, depth, unit, defined, cg);
                    }
                }
                StmtKind::Do { body, .. } => walk(&body.stmts, depth + 1, unit, defined, cg),
                StmtKind::DoWhile { body, .. } => walk(&body.stmts, depth + 1, unit, defined, cg),
                _ => {}
            }
        }
    }
    walk(&unit.body.stmts, 0, &unit.name, defined, cg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn cg(src: &str) -> CallGraph {
        CallGraph::build(&frontend(src).expect("frontend"))
    }

    #[test]
    fn records_call_sites_with_loop_depth() {
        let g = cg(
            "PROGRAM P\nDO I = 1, 10\nCALL A\nDO J = 1, 10\nCALL B\nENDDO\nENDDO\nEND\nSUBROUTINE A\nEND\nSUBROUTINE B\nEND\n",
        );
        let from_p: Vec<_> = g.calls_from("P").collect();
        assert_eq!(from_p.len(), 2);
        let a = from_p.iter().find(|s| s.callee == "A").unwrap();
        let b = from_p.iter().find(|s| s.callee == "B").unwrap();
        assert_eq!(a.loop_depth, 1);
        assert_eq!(b.loop_depth, 2);
    }

    #[test]
    fn function_calls_count_when_defined() {
        let g = cg(
            "PROGRAM P\nX = F(1) + SQRT(2.0) + G(3)\nEND\nFUNCTION F(K)\nF = K\nEND\n",
        );
        // F defined -> edge; SQRT intrinsic -> no; G undefined function -> no.
        let from_p: Vec<_> = g.calls_from("P").map(|s| s.callee.clone()).collect();
        assert_eq!(from_p, vec!["F"]);
    }

    #[test]
    fn reachability_and_depths() {
        let g = cg(
            "PROGRAM P\nCALL A\nEND\nSUBROUTINE A\nCALL B\nEND\nSUBROUTINE B\nEND\nSUBROUTINE ORPHAN\nCALL B\nEND\n",
        );
        let r = g.reachable("P");
        assert!(r.contains("B"));
        assert!(!r.contains("ORPHAN"));
        let d = g.call_depths("P");
        assert_eq!(d["P"], 0);
        assert_eq!(d["A"], 1);
        assert_eq!(d["B"], 2);
    }

    #[test]
    fn deepest_path_wins() {
        // P -> C directly (depth 1) and P -> A -> B -> C (depth 3).
        let g = cg(
            "PROGRAM P\nCALL C\nCALL A\nEND\nSUBROUTINE A\nCALL B\nEND\nSUBROUTINE B\nCALL C\nEND\nSUBROUTINE C\nEND\n",
        );
        assert_eq!(g.call_depths("P")["C"], 3);
    }

    #[test]
    fn loop_depth_accumulates_along_paths() {
        let g = cg(
            "PROGRAM P\nDO I = 1, 5\nCALL A\nENDDO\nEND\nSUBROUTINE A\nDO J = 1, 5\nDO K = 1, 5\nCALL B\nENDDO\nENDDO\nEND\nSUBROUTINE B\nEND\n",
        );
        let ld = g.loop_depths_from("P");
        assert_eq!(ld["A"], 1);
        assert_eq!(ld["B"], 3);
    }

    #[test]
    fn bottom_up_orders_callees_first() {
        let g = cg(
            "PROGRAM P\nCALL A\nEND\nSUBROUTINE A\nCALL B\nEND\nSUBROUTINE B\nEND\n",
        );
        let order = g.bottom_up();
        let pos = |u: &str| order.iter().position(|x| x == u).unwrap();
        assert!(pos("B") < pos("A"));
        assert!(pos("A") < pos("P"));
    }

    #[test]
    fn recursion_detection() {
        let g = cg(
            "PROGRAM P\nCALL A\nEND\nSUBROUTINE A\nCALL B\nEND\nSUBROUTINE B\nCALL A\nEND\nSUBROUTINE C\nEND\n",
        );
        assert!(g.is_recursive("A"));
        assert!(g.is_recursive("B"));
        assert!(!g.is_recursive("P"));
        assert!(!g.is_recursive("C"));
    }
}
